#ifndef VALENTINE_HARNESS_PARALLEL_H_
#define VALENTINE_HARNESS_PARALLEL_H_

/// \file parallel.h
/// Multi-threaded experiment execution. The paper ran ~75K experiments
/// as batch jobs on two 80-core machines; this is the same
/// embarrassingly-parallel structure at library level: pairs are
/// distributed over a thread pool, outcomes land at their pair's index,
/// so results are byte-identical to the sequential runner.
///
/// ColumnMatcher::Match must be safe to call concurrently on one
/// instance (all built-in matchers are; Cupid's memo cache is mutex
/// guarded).
///
/// The runner itself holds no valentine::Mutex: work distribution is a
/// single std::atomic<size_t> cursor (claim-by-fetch_add), and each
/// outcome is written to its pair's pre-sized slot, so there is no
/// shared mutable state for GUARDED_BY to name. Everything the workers
/// *call into* — caches, journal, metrics, tracer — locks through the
/// annotated layer (src/core/mutex.h, DESIGN.md §11), and those mutexes
/// are leaf-level by rank, so workers can never deadlock each other.

#include <cstddef>
#include <vector>

#include "harness/runner.h"

namespace valentine {

/// Runs the family over the suite with `num_threads` workers
/// (0 = hardware concurrency). Output order matches the suite order and
/// is identical to RunFamilyOnSuite's.
std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads = 0);

/// Fault-tolerant variant: per-experiment deadlines, retries, journal
/// replay/append (see FamilyRunContext). The journal is internally
/// synchronized, so workers append concurrently; line order in the
/// journal is nondeterministic but the resume index — and therefore
/// the report — is order-insensitive.
std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads, const FamilyRunContext& run);

/// How work is sliced across the thread pool.
enum class ParallelGranularity {
  /// One work item per dataset pair (the legacy slicing): cannot use
  /// more threads than there are pairs.
  kPair,
  /// One work item per (pair, grid configuration): a small suite with a
  /// wide grid still saturates every core. Per-config results land at
  /// their (pair, config) index and are folded with ReducePairOutcome
  /// in grid order, so the outcome vector is byte-identical to kPair's
  /// and to the sequential runner's.
  kConfig,
};

/// Granularity-selecting variant. kPair reproduces the 4-argument
/// overload exactly; kConfig additionally parallelizes inside each pair.
std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads, const FamilyRunContext& run,
    ParallelGranularity granularity);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_PARALLEL_H_
