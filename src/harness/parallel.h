#ifndef VALENTINE_HARNESS_PARALLEL_H_
#define VALENTINE_HARNESS_PARALLEL_H_

/// \file parallel.h
/// Multi-threaded experiment execution. The paper ran ~75K experiments
/// as batch jobs on two 80-core machines; this is the same
/// embarrassingly-parallel structure at library level: pairs are
/// distributed over a thread pool, outcomes land at their pair's index,
/// so results are byte-identical to the sequential runner.
///
/// ColumnMatcher::Match must be safe to call concurrently on one
/// instance (all built-in matchers are; Cupid's memo cache is mutex
/// guarded).

#include <cstddef>
#include <vector>

#include "harness/runner.h"

namespace valentine {

/// Runs the family over the suite with `num_threads` workers
/// (0 = hardware concurrency). Output order matches the suite order and
/// is identical to RunFamilyOnSuite's.
std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads = 0);

/// Fault-tolerant variant: per-experiment deadlines, retries, journal
/// replay/append (see FamilyRunContext). The journal is internally
/// synchronized, so workers append concurrently; line order in the
/// journal is nondeterministic but the resume index — and therefore
/// the report — is order-insensitive.
std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads, const FamilyRunContext& run);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_PARALLEL_H_
