#include "harness/experiment.h"

#include <chrono>

#include "metrics/metrics.h"

namespace valentine {

ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair) {
  ExperimentResult result;
  result.pair_id = pair.id;
  result.scenario = pair.scenario;
  result.method = matcher.Name();
  result.config = config;
  result.ground_truth_size = pair.ground_truth.size();

  auto start = std::chrono::steady_clock::now();
  MatchResult matches = matcher.Match(pair.source, pair.target);
  auto end = std::chrono::steady_clock::now();
  result.runtime_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  result.recall_at_gt = RecallAtGroundTruth(matches, pair.ground_truth);
  result.map = MeanAveragePrecision(matches, pair.ground_truth);
  return result;
}

}  // namespace valentine
