#include "harness/experiment.h"

#include "metrics/metrics.h"
#include "obs/clock.h"
#include "obs/trace.h"

namespace valentine {

ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair) {
  return RunExperiment(matcher, config, pair, MatchContext());
}

ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair,
                               const MatchContext& context) {
  return RunExperiment(matcher, config, pair, context, nullptr, nullptr);
}

ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair,
                               const MatchContext& context,
                               const PreparedTable* prepared_source,
                               const PreparedTable* prepared_target) {
  ExperimentResult result;
  result.pair_id = pair.id;
  result.scenario = pair.scenario;
  result.method = matcher.Name();
  result.config = config;
  result.ground_truth_size = pair.ground_truth.size();

  const bool prepared =
      prepared_source != nullptr && prepared_target != nullptr;
  SpanScope score_span(context.tracer, context.trace_id, "score",
                       matcher.Name(), context.parent_span);
  score_span.Attr("path", prepared ? "prepared" : "monolithic");
  // Matchers see the score span as their parent so any spans they emit
  // (cache builds, nested prepares) nest under the measured region.
  MatchContext inner = context;
  inner.parent_span = score_span.id() != 0 ? score_span.id()
                                           : context.parent_span;

  const Clock& clock = ClockOrSteady(context.clock);
  int64_t start_ns = clock.NowNanos();
  Result<MatchResult> matches =
      prepared ? matcher.Score(*prepared_source, *prepared_target, inner)
               : matcher.Match(pair.source, pair.target, inner);
  int64_t end_ns = clock.NowNanos();
  result.runtime_ms = ElapsedMs(start_ns, end_ns);

  if (!matches.ok()) {
    result.code = matches.status().code();
    result.error = matches.status().message();
    score_span.Attr("code", StatusCodeName(result.code));
    return result;
  }
  score_span.Attr("code", StatusCodeName(StatusCode::kOk));
  MatchResult ranked = std::move(matches).ValueOrDie();
  result.recall_at_gt = RecallAtGroundTruth(ranked, pair.ground_truth);
  result.map = MeanAveragePrecision(ranked, pair.ground_truth);
  return result;
}

}  // namespace valentine
