#include "harness/experiment.h"

#include <chrono>

#include "metrics/metrics.h"

namespace valentine {

ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair) {
  return RunExperiment(matcher, config, pair, MatchContext());
}

ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair,
                               const MatchContext& context) {
  return RunExperiment(matcher, config, pair, context, nullptr, nullptr);
}

ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair,
                               const MatchContext& context,
                               const PreparedTable* prepared_source,
                               const PreparedTable* prepared_target) {
  ExperimentResult result;
  result.pair_id = pair.id;
  result.scenario = pair.scenario;
  result.method = matcher.Name();
  result.config = config;
  result.ground_truth_size = pair.ground_truth.size();

  auto start = std::chrono::steady_clock::now();
  Result<MatchResult> matches =
      (prepared_source != nullptr && prepared_target != nullptr)
          ? matcher.Score(*prepared_source, *prepared_target, context)
          : matcher.Match(pair.source, pair.target, context);
  auto end = std::chrono::steady_clock::now();
  result.runtime_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  if (!matches.ok()) {
    result.code = matches.status().code();
    result.error = matches.status().message();
    return result;
  }
  MatchResult ranked = std::move(matches).ValueOrDie();
  result.recall_at_gt = RecallAtGroundTruth(ranked, pair.ground_truth);
  result.map = MeanAveragePrecision(ranked, pair.ground_truth);
  return result;
}

}  // namespace valentine
