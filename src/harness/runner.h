#ifndef VALENTINE_HARNESS_RUNNER_H_
#define VALENTINE_HARNESS_RUNNER_H_

/// \file runner.h
/// Suite construction and batch execution (paper Fig. 1): fabricate the
/// dataset-pair suite from each source table, run every grid
/// configuration of every method family on every pair, and aggregate
/// Recall@|GT| per scenario (min / median / max, as in the box plots).

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/deadline.h"
#include "fabrication/fabricator.h"
#include "harness/experiment.h"
#include "harness/journal.h"
#include "harness/param_grid.h"
#include "matchers/artifact_cache.h"
#include "metrics/metrics.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/column_profile.h"

namespace valentine {

/// Controls how many fabricated pairs a suite contains.
struct PairSuiteOptions {
  /// Row-overlap levels for unionable pairs.
  std::vector<double> row_overlaps = {0.3, 0.5, 0.8};
  /// Column-overlap levels for view-unionable / (semantically-)joinable.
  std::vector<double> column_overlaps = {0.3, 0.5, 0.8};
  /// Include noisy-schema variants.
  bool schema_noise_variants = true;
  /// Include noisy-instance variants (where the scenario allows).
  bool instance_noise_variants = true;
  uint64_t seed = 1;
};

/// Fabricates the full pair suite from one original table: all four
/// scenarios crossed with overlap levels and noise combinations
/// (the C++ analogue of the paper's 180-pairs-per-source suites).
std::vector<DatasetPair> BuildFabricatedSuite(const Table& original,
                                              const PairSuiteOptions& options);

/// Fault-tolerance knobs for experiment execution. The defaults are the
/// legacy behaviour: no budget, no retries, no journal.
struct ExecutionPolicy {
  /// Per-attempt wall-clock budget (ms); 0 disables the deadline.
  double budget_ms = 0.0;
  /// Total attempts per experiment (>= 1). Retries apply only to codes
  /// IsRetryableStatus accepts — a deadline overrun would just overrun
  /// again, so it is terminal.
  size_t max_attempts = 1;
  /// Exponential backoff: delay = min(max, base * 2^(attempt-1)),
  /// jittered deterministically from (seed, experiment key, attempt).
  double backoff_base_ms = 10.0;
  double backoff_max_ms = 1000.0;
  uint64_t backoff_seed = 42;
  /// Invoked with the computed delay before each retry. The default is
  /// a no-op: library code never sleeps (the delay stays observable and
  /// testable); embedders that talk to rate-limited backends can plug a
  /// real wait here.
  std::function<void(double delay_ms)> backoff_wait;
  /// Cooperative cancellation shared by every experiment.
  const CancellationToken* cancel = nullptr;
};

/// True for failures worth retrying (transient classes: kInternal,
/// kIOError, kResourceExhausted). Deterministic failures and budget
/// overruns are terminal.
bool IsRetryableStatus(const Status& status);

/// The backoff delay (ms) before retry number `attempt` (1-based count
/// of failures so far) of the experiment identified by `key`. Pure
/// function of (policy, key, attempt): campaign reruns compute the
/// identical schedule.
double BackoffDelayMs(const ExecutionPolicy& policy, const std::string& key,
                      size_t attempt);

/// Best-of-grid outcome of one method family on one pair (the paper's
/// grid search "operates each algorithm under optimal conditions").
struct FamilyPairOutcome {
  std::string family;
  std::string pair_id;
  Scenario scenario = Scenario::kUnionable;
  double best_recall = 0.0;
  std::string best_config;
  double total_ms = 0.0;    ///< summed over all grid configurations
  size_t runs = 0;
  size_t failed_runs = 0;   ///< configurations whose final status != kOk
  size_t retries = 0;       ///< extra attempts beyond the first, summed
  /// Failure taxonomy: (code, count) for every non-OK terminal status,
  /// sorted by code so serialization is deterministic.
  std::vector<std::pair<StatusCode, size_t>> failure_counts;
};

/// Shared execution state for a family run: the policy plus optional
/// journal plumbing. `completed` entries are replayed instead of
/// executed (crash resume); finished experiments are appended to
/// `journal` when set. All pointers are borrowed.
struct FamilyRunContext {
  ExecutionPolicy policy;
  OutcomeJournal* journal = nullptr;
  const JournalIndex* completed = nullptr;
  /// Shared column-profile cache: when set, each pair's table profiles
  /// are resolved (built once, then reused across configurations,
  /// families, and threads) and attached to every MatchContext. Results
  /// are byte-identical with or without a cache — profiles only change
  /// where artifacts are computed, never what they contain.
  ProfileCache* profiles = nullptr;
  /// Shared prepared-table artifact cache: when set, each (table,
  /// family, prepare-key) artifact is built once and every
  /// configuration sharing the key scores against it (Prepare runs
  /// outside the per-attempt deadline, under the policy's cancellation
  /// token only). Results are byte-identical with or without a cache —
  /// Score accepts only own-family same-key artifacts and re-prepares
  /// inline otherwise. A failed Prepare falls back to the monolithic
  /// path so the failure surfaces through the same status taxonomy.
  ArtifactCache* artifacts = nullptr;
  /// Observability (obs/): all optional, all borrowed. `clock` is the
  /// timing source for runtime measurements (nullptr = steady clock);
  /// `tracer` receives experiment/attempt/backoff/prepare/score spans;
  /// `metrics` receives valentine_experiment* counters and the runtime
  /// histogram. None of them changes any report field except the timing
  /// values a fake clock makes deterministic.
  const Clock* clock = nullptr;
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Enclosing span id (typically the family span) experiment spans
  /// parent onto; 0 = root.
  uint64_t parent_span = 0;
};

/// Runs one grid configuration of the family on the pair under the run
/// context: journaled results are replayed (crash resume), everything
/// else executes under the policy and is appended to the journal. This
/// is the parallel unit of ParallelGranularity::kConfig; it is safe to
/// call concurrently for distinct (pair, config) work items.
ExperimentResult RunConfigOnPair(const MethodFamily& family,
                                 size_t config_index, const DatasetPair& pair,
                                 const FamilyRunContext& run);

/// Deterministic fold of the per-configuration results (in grid order)
/// into the best-of-grid outcome. Pure function of its inputs, so any
/// execution order that lands results at their grid index reproduces
/// the sequential outcome bit-for-bit.
FamilyPairOutcome ReducePairOutcome(const MethodFamily& family,
                                    const DatasetPair& pair,
                                    const std::vector<ExperimentResult>& results);

/// Runs every configuration of the family on the pair; keeps the best
/// recall and accumulates runtime.
FamilyPairOutcome RunFamilyOnPair(const MethodFamily& family,
                                  const DatasetPair& pair);

/// Fault-tolerant variant: applies the policy's deadline/retry budget
/// per configuration, replays journaled results, and records failures
/// in the outcome's taxonomy instead of aborting. Failed configurations
/// never update best_recall/best_config.
FamilyPairOutcome RunFamilyOnPair(const MethodFamily& family,
                                  const DatasetPair& pair,
                                  const FamilyRunContext& run);

/// Runs the family over a whole suite.
std::vector<FamilyPairOutcome> RunFamilyOnSuite(
    const MethodFamily& family, const std::vector<DatasetPair>& suite);

/// Fault-tolerant suite run (see the pair-level overload).
std::vector<FamilyPairOutcome> RunFamilyOnSuite(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    const FamilyRunContext& run);

/// Per-scenario recall distribution of a batch of outcomes.
struct ScenarioStats {
  Scenario scenario = Scenario::kUnionable;
  Summary recall;
};
std::vector<ScenarioStats> AggregateByScenario(
    const std::vector<FamilyPairOutcome>& outcomes);

/// Mean per-configuration runtime (ms) across outcomes — the Table IV
/// quantity ("average runtime per experiment").
double AverageRuntimeMsPerRun(const std::vector<FamilyPairOutcome>& outcomes);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_RUNNER_H_
