#ifndef VALENTINE_HARNESS_RUNNER_H_
#define VALENTINE_HARNESS_RUNNER_H_

/// \file runner.h
/// Suite construction and batch execution (paper Fig. 1): fabricate the
/// dataset-pair suite from each source table, run every grid
/// configuration of every method family on every pair, and aggregate
/// Recall@|GT| per scenario (min / median / max, as in the box plots).

#include <vector>

#include "fabrication/fabricator.h"
#include "harness/experiment.h"
#include "harness/param_grid.h"
#include "metrics/metrics.h"

namespace valentine {

/// Controls how many fabricated pairs a suite contains.
struct PairSuiteOptions {
  /// Row-overlap levels for unionable pairs.
  std::vector<double> row_overlaps = {0.3, 0.5, 0.8};
  /// Column-overlap levels for view-unionable / (semantically-)joinable.
  std::vector<double> column_overlaps = {0.3, 0.5, 0.8};
  /// Include noisy-schema variants.
  bool schema_noise_variants = true;
  /// Include noisy-instance variants (where the scenario allows).
  bool instance_noise_variants = true;
  uint64_t seed = 1;
};

/// Fabricates the full pair suite from one original table: all four
/// scenarios crossed with overlap levels and noise combinations
/// (the C++ analogue of the paper's 180-pairs-per-source suites).
std::vector<DatasetPair> BuildFabricatedSuite(const Table& original,
                                              const PairSuiteOptions& options);

/// Best-of-grid outcome of one method family on one pair (the paper's
/// grid search "operates each algorithm under optimal conditions").
struct FamilyPairOutcome {
  std::string family;
  std::string pair_id;
  Scenario scenario = Scenario::kUnionable;
  double best_recall = 0.0;
  std::string best_config;
  double total_ms = 0.0;    ///< summed over all grid configurations
  size_t runs = 0;
};

/// Runs every configuration of the family on the pair; keeps the best
/// recall and accumulates runtime.
FamilyPairOutcome RunFamilyOnPair(const MethodFamily& family,
                                  const DatasetPair& pair);

/// Runs the family over a whole suite.
std::vector<FamilyPairOutcome> RunFamilyOnSuite(
    const MethodFamily& family, const std::vector<DatasetPair>& suite);

/// Per-scenario recall distribution of a batch of outcomes.
struct ScenarioStats {
  Scenario scenario = Scenario::kUnionable;
  Summary recall;
};
std::vector<ScenarioStats> AggregateByScenario(
    const std::vector<FamilyPairOutcome>& outcomes);

/// Mean per-configuration runtime (ms) across outcomes — the Table IV
/// quantity ("average runtime per experiment").
double AverageRuntimeMsPerRun(const std::vector<FamilyPairOutcome>& outcomes);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_RUNNER_H_
