#include "harness/report.h"

#include <algorithm>
#include <cstdio>

namespace valentine {

std::string FormatDouble(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string RenderWhisker(const Summary& s, size_t width) {
  std::string bar(width, ' ');
  auto pos = [&](double v) {
    v = std::clamp(v, 0.0, 1.0);
    return std::min(width - 1, static_cast<size_t>(v * (width - 1)));
  };
  size_t lo = pos(s.min);
  size_t mid = pos(s.median);
  size_t hi = pos(s.max);
  for (size_t i = lo; i <= hi; ++i) bar[i] = '-';
  bar[lo] = '|';
  bar[hi] = '|';
  bar[mid] = 'o';
  return "[" + bar + "]";
}

void PrintScenarioStats(const std::string& method,
                        const std::vector<ScenarioStats>& stats) {
  std::printf("%s\n", method.c_str());
  for (const auto& st : stats) {
    std::printf("  %-24s %s min=%.2f med=%.2f max=%.2f (n=%zu)\n",
                ScenarioName(st.scenario), RenderWhisker(st.recall).c_str(),
                st.recall.min, st.recall.median, st.recall.max,
                st.recall.count);
  }
}

void PrintTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size(), 0);
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&] {
    std::printf("+");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  print_row(header);
  print_sep();
  for (const auto& row : rows) print_row(row);
  print_sep();
}

}  // namespace valentine
