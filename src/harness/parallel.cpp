#include "harness/parallel.h"

#include <atomic>
#include <thread>

namespace valentine {

std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads) {
  return RunFamilyOnSuiteParallel(family, suite, num_threads,
                                  FamilyRunContext());
}

std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads, const FamilyRunContext& run) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, suite.size());
  if (num_threads <= 1) return RunFamilyOnSuite(family, suite, run);

  std::vector<FamilyPairOutcome> outcomes(suite.size());
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= suite.size()) return;
      outcomes[i] = RunFamilyOnPair(family, suite[i], run);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return outcomes;
}

}  // namespace valentine
