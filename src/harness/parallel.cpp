#include "harness/parallel.h"

#include <atomic>
#include <thread>

namespace valentine {

std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads) {
  return RunFamilyOnSuiteParallel(family, suite, num_threads,
                                  FamilyRunContext());
}

std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads, const FamilyRunContext& run) {
  return RunFamilyOnSuiteParallel(family, suite, num_threads, run,
                                  ParallelGranularity::kPair);
}

namespace {

std::vector<FamilyPairOutcome> RunPairGranularity(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads, const FamilyRunContext& run) {
  std::vector<FamilyPairOutcome> outcomes(suite.size());
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= suite.size()) return;
      outcomes[i] = RunFamilyOnPair(family, suite[i], run);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  return outcomes;
}

std::vector<FamilyPairOutcome> RunConfigGranularity(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads, const FamilyRunContext& run) {
  const size_t num_configs = family.grid.size();
  const size_t total = suite.size() * num_configs;
  // Per-experiment results land at their flattened (pair, config) index;
  // workers share nothing else, so any interleaving produces the same
  // matrix. The fold below walks it in deterministic order.
  std::vector<std::vector<ExperimentResult>> results(suite.size());
  for (auto& row : results) row.resize(num_configs);
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      size_t w = next.fetch_add(1);
      if (w >= total) return;
      size_t pair_index = w / num_configs;
      size_t config_index = w % num_configs;
      results[pair_index][config_index] =
          RunConfigOnPair(family, config_index, suite[pair_index], run);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();

  std::vector<FamilyPairOutcome> outcomes;
  outcomes.reserve(suite.size());
  for (size_t i = 0; i < suite.size(); ++i) {
    outcomes.push_back(ReducePairOutcome(family, suite[i], results[i]));
  }
  return outcomes;
}

}  // namespace

std::vector<FamilyPairOutcome> RunFamilyOnSuiteParallel(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    size_t num_threads, const FamilyRunContext& run,
    ParallelGranularity granularity) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  const size_t max_useful = granularity == ParallelGranularity::kConfig
                                ? suite.size() * family.grid.size()
                                : suite.size();
  num_threads = std::min(num_threads, max_useful);
  if (num_threads <= 1) return RunFamilyOnSuite(family, suite, run);
  return granularity == ParallelGranularity::kConfig
             ? RunConfigGranularity(family, suite, num_threads, run)
             : RunPairGranularity(family, suite, num_threads, run);
}

}  // namespace valentine
