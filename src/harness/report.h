#ifndef VALENTINE_HARNESS_REPORT_H_
#define VALENTINE_HARNESS_REPORT_H_

/// \file report.h
/// Console reporting: the ASCII analogues of the paper's box plots
/// (Figs. 4-7) and result tables (Tables III-IV).

#include <string>
#include <vector>

#include "harness/runner.h"

namespace valentine {

/// "min — median — max" as an ASCII whisker bar over [0, 1].
std::string RenderWhisker(const Summary& s, size_t width = 40);

/// Prints one figure block: per-scenario whisker rows for one method.
void PrintScenarioStats(const std::string& method,
                        const std::vector<ScenarioStats>& stats);

/// Prints a simple fixed-width table: header row + rows of cells.
void PrintTable(const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Formats a double with the given precision.
std::string FormatDouble(double value, int precision = 3);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_REPORT_H_
