#include "harness/journal.h"

#include <cstdio>
#include <cstdlib>

#include "harness/json_export.h"

namespace valentine {

namespace {

/// %.17g guarantees exact double round-trips (see header).
std::string PreciseNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Inverse of JsonEscape for the subset of escapes it emits.
std::optional<std::string> JsonUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (i + 4 >= s.size()) return std::nullopt;
        unsigned code = 0;
        for (size_t k = 1; k <= 4; ++k) {
          char h = s[i + k];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return std::nullopt;
        }
        if (code > 0xff) return std::nullopt;  // writer only emits < 0x20
        out.push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default: return std::nullopt;
    }
  }
  return out;
}

/// Extracts the raw (still-escaped) value of "key":"..." from a line.
std::optional<std::string> RawStringField(const std::string& line,
                                          const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  size_t start = at + needle.size();
  size_t end = start;
  while (end < line.size()) {
    if (line[end] == '"') {
      // Count preceding backslashes: an even run means the quote closes.
      size_t bs = 0;
      while (end > start + bs && line[end - 1 - bs] == '\\') ++bs;
      if (bs % 2 == 0) break;
    }
    ++end;
  }
  if (end >= line.size()) return std::nullopt;
  return line.substr(start, end - start);
}

std::optional<std::string> StringField(const std::string& line,
                                       const std::string& key) {
  auto raw = RawStringField(line, key);
  if (!raw) return std::nullopt;
  return JsonUnescape(*raw);
}

std::optional<double> NumberField(const std::string& line,
                                  const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t at = line.find(needle);
  if (at == std::string::npos) return std::nullopt;
  const char* start = line.c_str() + at + needle.size();
  char* end = nullptr;
  double v = std::strtod(start, &end);
  if (end == start) return std::nullopt;
  return v;
}

}  // namespace

std::string JournalKey(const std::string& family, const std::string& pair_id,
                       const std::string& config) {
  // \x1f (unit separator) cannot appear in family/pair/config names.
  return family + "\x1f" + pair_id + "\x1f" + config;
}

std::string SerializeJournalEntry(const JournalEntry& entry) {
  std::string out = "{";
  out += "\"family\":\"" + JsonEscape(entry.family) + "\",";
  out += "\"pair_id\":\"" + JsonEscape(entry.pair_id) + "\",";
  out += "\"config\":\"" + JsonEscape(entry.config) + "\",";
  out += "\"code\":\"" + std::string(StatusCodeName(entry.code)) + "\",";
  out += "\"error\":\"" + JsonEscape(entry.error) + "\",";
  out += "\"recall_at_gt\":" + PreciseNumber(entry.recall_at_gt) + ",";
  out += "\"map\":" + PreciseNumber(entry.map) + ",";
  out += "\"runtime_ms\":" + PreciseNumber(entry.runtime_ms) + ",";
  out += "\"attempts\":" + std::to_string(entry.attempts);
  out += "}";
  return out;
}

std::optional<JournalEntry> ParseJournalEntry(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return std::nullopt;
  }
  JournalEntry e;
  auto family = StringField(line, "family");
  auto pair_id = StringField(line, "pair_id");
  auto config = StringField(line, "config");
  auto code = StringField(line, "code");
  auto error = StringField(line, "error");
  auto recall = NumberField(line, "recall_at_gt");
  auto map = NumberField(line, "map");
  auto runtime = NumberField(line, "runtime_ms");
  auto attempts = NumberField(line, "attempts");
  if (!family || !pair_id || !config || !code || !error || !recall || !map ||
      !runtime || !attempts) {
    return std::nullopt;
  }
  auto parsed_code = StatusCodeFromName(*code);
  if (!parsed_code) return std::nullopt;
  e.family = std::move(*family);
  e.pair_id = std::move(*pair_id);
  e.config = std::move(*config);
  e.code = *parsed_code;
  e.error = std::move(*error);
  e.recall_at_gt = *recall;
  e.map = *map;
  e.runtime_ms = *runtime;
  e.attempts = static_cast<size_t>(*attempts);
  return e;
}

OutcomeJournal::OutcomeJournal(const std::string& path)
    : path_(path), out_(path, std::ios::app | std::ios::binary) {
  if (!out_) {
    status_ = Status::IOError("cannot open journal " + path + " for append");
  }
}

void OutcomeJournal::Append(const JournalEntry& entry) {
  std::string line = SerializeJournalEntry(entry);
  MutexLock lock(&mutex_);
  if (!status_.ok()) return;
  out_ << line << '\n';
  out_.flush();
  if (!out_) {
    status_ = Status::IOError("journal write failed for " + path_);
  }
}

Status OutcomeJournal::status() const {
  MutexLock lock(&mutex_);
  return status_;
}

Result<JournalIndex> JournalIndex::Load(const std::string& path) {
  JournalIndex index;
  std::ifstream in(path, std::ios::binary);
  if (!in) return index;  // missing journal == fresh run
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto entry = ParseJournalEntry(line);
    // A torn tail (process killed mid-write) ends the replayable prefix.
    if (!entry) break;
    std::string key = JournalKey(entry->family, entry->pair_id,
                                 entry->config);
    index.entries_[std::move(key)] = std::move(*entry);
  }
  return index;
}

const JournalEntry* JournalIndex::Find(const std::string& family,
                                       const std::string& pair_id,
                                       const std::string& config) const {
  auto it = entries_.find(JournalKey(family, pair_id, config));
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

}  // namespace valentine
