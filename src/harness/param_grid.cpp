#include "harness/param_grid.h"

#include <cstdio>

#include "matchers/coma.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/embdi.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/semprop.h"
#include "matchers/similarity_flooding.h"

namespace valentine {

namespace {
std::string Fmt(const char* fmt, double a, double b = 0.0, double c = 0.0) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), fmt, a, b, c);
  return buf;
}
}  // namespace

MethodFamily CupidFamily() {
  MethodFamily family{"Cupid", {}};
  const double weights[] = {0.0, 0.2, 0.4, 0.6};
  const double accepts[] = {0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
  for (double leaf_w : weights) {
    for (double w : weights) {
      for (double th : accepts) {
        CupidOptions opt;
        opt.leaf_w_struct = leaf_w;
        opt.w_struct = w;
        opt.th_accept = th;
        family.grid.push_back(
            {Fmt("leaf_w=%.1f w=%.1f th=%.1f", leaf_w, w, th),
             std::make_shared<CupidMatcher>(opt)});
      }
    }
  }
  return family;
}

MethodFamily SimilarityFloodingFamily() {
  MethodFamily family{"SimilarityFlooding", {}};
  SimilarityFloodingOptions opt;
  opt.formula = SfFormula::kC;
  family.grid.push_back({"inverse_average, formula C",
                         std::make_shared<SimilarityFloodingMatcher>(opt)});
  return family;
}

MethodFamily ComaSchemaFamily() {
  MethodFamily family{"COMA-Schema", {}};
  ComaOptions opt;
  opt.strategy = ComaStrategy::kSchema;
  opt.threshold = 0.0;
  family.grid.push_back(
      {"strategy=schema th=0", std::make_shared<ComaMatcher>(opt)});
  return family;
}

MethodFamily ComaInstancesFamily() {
  MethodFamily family{"COMA-Instances", {}};
  ComaOptions opt;
  opt.strategy = ComaStrategy::kInstances;
  opt.threshold = 0.0;
  family.grid.push_back(
      {"strategy=instances th=0", std::make_shared<ComaMatcher>(opt)});
  return family;
}

MethodFamily ComaFamily() {
  MethodFamily family{"COMA", {}};
  for (auto& cm : ComaSchemaFamily().grid) family.grid.push_back(cm);
  for (auto& cm : ComaInstancesFamily().grid) family.grid.push_back(cm);
  return family;
}

namespace {
MethodFamily DistributionFamilyWith(const char* name,
                                    std::vector<double> thresholds) {
  MethodFamily family{name, {}};
  for (double t1 : thresholds) {
    for (double t2 : thresholds) {
      DistributionBasedOptions opt;
      opt.phase1_threshold = t1;
      opt.phase2_threshold = t2;
      family.grid.push_back(
          {Fmt("th1=%.2f th2=%.2f", t1, t2),
           std::make_shared<DistributionBasedMatcher>(opt)});
    }
  }
  return family;
}
}  // namespace

MethodFamily DistributionFamily1() {
  return DistributionFamilyWith("Distribution#1", {0.10, 0.15, 0.20});
}

MethodFamily DistributionFamily2() {
  return DistributionFamilyWith("Distribution#2", {0.30, 0.40, 0.50});
}

MethodFamily SemPropFamily(const Ontology* ontology) {
  MethodFamily family{"SemProp", {}};
  for (double minh : {0.2, 0.3}) {
    for (double sem : {0.4, 0.5, 0.6}) {
      for (double coh : {0.2, 0.4}) {
        SemPropOptions opt;
        opt.minhash_threshold = minh;
        opt.semantic_threshold = sem;
        opt.coherent_group_threshold = coh;
        family.grid.push_back(
            {Fmt("minh=%.1f sem=%.1f coh=%.1f", minh, sem, coh),
             std::make_shared<SemPropMatcher>(ontology, opt)});
      }
    }
  }
  return family;
}

MethodFamily EmbdiFamily() {
  MethodFamily family{"EmbDI", {}};
  EmbdiOptions opt;  // Table II fixed hyperparameters (scaled dims).
  family.grid.push_back({"word2vec len=60 win=3",
                         std::make_shared<EmbdiMatcher>(opt)});
  return family;
}

MethodFamily JaccardLevenshteinFamily() {
  MethodFamily family{"JaccardLevenshtein", {}};
  for (double th : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    JaccardLevenshteinOptions opt;
    opt.threshold = th;
    family.grid.push_back({Fmt("th=%.1f", th),
                           std::make_shared<JaccardLevenshteinMatcher>(opt)});
  }
  return family;
}

std::vector<MethodFamily> AllFamilies(const Ontology* ontology) {
  std::vector<MethodFamily> families;
  families.push_back(CupidFamily());
  families.push_back(SimilarityFloodingFamily());
  families.push_back(ComaFamily());
  families.push_back(DistributionFamily1());
  families.push_back(DistributionFamily2());
  if (ontology != nullptr) {
    families.push_back(SemPropFamily(ontology));
  }
  families.push_back(EmbdiFamily());
  families.push_back(JaccardLevenshteinFamily());
  return families;
}

size_t TotalConfigurations(const std::vector<MethodFamily>& families) {
  size_t total = 0;
  for (const auto& f : families) total += f.grid.size();
  return total;
}

}  // namespace valentine
