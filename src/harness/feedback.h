#ifndef VALENTINE_HARNESS_FEEDBACK_H_
#define VALENTINE_HARNESS_FEEDBACK_H_

/// \file feedback.h
/// Human-in-the-loop match refinement (paper §IX: matching should be a
/// *search problem* where users give positive/negative examples, not
/// thresholds). A FeedbackSession accumulates confirmations/rejections
/// and re-ranks a matcher's output: confirmed pairs pin to the top,
/// rejected pairs drop out, and columns consumed by a confirmed 1-1
/// match stop competing for other partners.

#include <set>
#include <string>
#include <utility>

#include "fabrication/fabricator.h"
#include "matchers/match_result.h"

namespace valentine {

/// \brief Accumulated user feedback over column pairs.
class FeedbackSession {
 public:
  /// Marks a pair as a confirmed correspondence.
  void Confirm(const std::string& source_column,
               const std::string& target_column);
  /// Marks a pair as wrong.
  void Reject(const std::string& source_column,
              const std::string& target_column);

  bool IsConfirmed(const std::string& source_column,
                   const std::string& target_column) const;
  bool IsRejected(const std::string& source_column,
                  const std::string& target_column) const;

  size_t num_confirmed() const { return confirmed_.size(); }
  size_t num_rejected() const { return rejected_.size(); }

  /// Re-ranks a result under the feedback: confirmed pairs first (score
  /// 1), rejected pairs removed. When `exclusive` is true, a confirmed
  /// pair also eliminates other candidates touching its endpoints (the
  /// user asserted a 1-1 correspondence).
  MatchResult Apply(const MatchResult& result, bool exclusive = true) const;

 private:
  using Pair = std::pair<std::string, std::string>;
  std::set<Pair> confirmed_;
  std::set<Pair> rejected_;
};

/// Simulates one review round: a user inspects the top `budget` *not yet
/// labeled* pairs of the ranking and labels each against the ground
/// truth (the oracle experiment for human-in-the-loop evaluation).
/// Returns how many pairs were labeled.
size_t SimulateReviewRound(const MatchResult& ranked,
                           const std::vector<GroundTruthEntry>& gt,
                           size_t budget, FeedbackSession* session);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_FEEDBACK_H_
