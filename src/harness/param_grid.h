#ifndef VALENTINE_HARNESS_PARAM_GRID_H_
#define VALENTINE_HARNESS_PARAM_GRID_H_

/// \file param_grid.h
/// The parameter grids of paper Table II. Each grid expands to a list of
/// configured matcher instances; the full set is 135 configurations
/// (96 Cupid + 1 Similarity Flooding + 2 COMA + 9 Dist#1 + 9 Dist#2 +
/// 12 SemProp + 1 EmbDI + 5 Jaccard-Levenshtein), matching the paper's
/// "553 dataset pairs x 135 configurations" accounting.

#include <memory>
#include <string>
#include <vector>

#include "knowledge/ontology.h"
#include "matchers/matcher.h"

namespace valentine {

/// One grid point: a configured matcher plus a printable description.
struct ConfiguredMatcher {
  std::string description;
  std::shared_ptr<ColumnMatcher> matcher;
};

/// A method family: its name and its full parameter grid.
struct MethodFamily {
  std::string name;
  std::vector<ConfiguredMatcher> grid;
};

/// Cupid: leaf_w_struct, w_struct in {0, 0.2, 0.4, 0.6}, th_accept in
/// {0.3 .. 0.8 step 0.1} -> 96 configurations.
[[nodiscard]] MethodFamily CupidFamily();

/// Similarity Flooding: inverse_average coefficients, formula C -> 1.
[[nodiscard]] MethodFamily SimilarityFloodingFamily();

/// COMA: strategy in {schema, instances}, threshold 0 -> 2.
[[nodiscard]] MethodFamily ComaFamily();
/// The schema-only and instance-only halves, reported separately in the
/// paper's figures.
[[nodiscard]] MethodFamily ComaSchemaFamily();
[[nodiscard]] MethodFamily ComaInstancesFamily();

/// Dist#1: phase thresholds in {0.1, 0.15, 0.2}^2 -> 9.
[[nodiscard]] MethodFamily DistributionFamily1();
/// Dist#2: phase thresholds in {0.3, 0.4, 0.5}^2 -> 9.
[[nodiscard]] MethodFamily DistributionFamily2();

/// SemProp: minhash {0.2, 0.3} x semantic {0.4, 0.5, 0.6} x coherence
/// {0.2, 0.4} -> 12. The ontology may be nullptr (syntactic-only mode).
[[nodiscard]] MethodFamily SemPropFamily(const Ontology* ontology);

/// EmbDI: word2vec with the Table II fixed hyperparameters -> 1.
[[nodiscard]] MethodFamily EmbdiFamily();

/// Jaccard-Levenshtein: threshold {0.4 .. 0.8 step 0.1} -> 5.
[[nodiscard]] MethodFamily JaccardLevenshteinFamily();

/// All families in paper order (SemProp included only when an ontology
/// is supplied, mirroring §VII-A3).
[[nodiscard]] std::vector<MethodFamily> AllFamilies(
    const Ontology* ontology = nullptr);

/// Total configuration count across all families (= 135 with ontology).
size_t TotalConfigurations(const std::vector<MethodFamily>& families);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_PARAM_GRID_H_
