#ifndef VALENTINE_HARNESS_EXPERIMENT_H_
#define VALENTINE_HARNESS_EXPERIMENT_H_

/// \file experiment.h
/// A single experiment = one configured matcher applied to one dataset
/// pair, yielding the ranked matches, the Recall@|GT| score, and the
/// wall-clock runtime (paper Fig. 1's innermost box).

#include <string>

#include "fabrication/fabricator.h"
#include "matchers/matcher.h"

namespace valentine {

/// Outcome of one (matcher, pair) run.
struct ExperimentResult {
  std::string pair_id;
  Scenario scenario = Scenario::kUnionable;
  std::string method;
  std::string config;
  double recall_at_gt = 0.0;
  double map = 0.0;          ///< mean average precision (extra diagnostics)
  double runtime_ms = 0.0;
  size_t ground_truth_size = 0;
};

/// Runs one matcher configuration on one pair and scores it.
ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_EXPERIMENT_H_
