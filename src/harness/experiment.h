#ifndef VALENTINE_HARNESS_EXPERIMENT_H_
#define VALENTINE_HARNESS_EXPERIMENT_H_

/// \file experiment.h
/// A single experiment = one configured matcher applied to one dataset
/// pair, yielding the ranked matches, the Recall@|GT| score, and the
/// wall-clock runtime (paper Fig. 1's innermost box).

#include <string>

#include "fabrication/fabricator.h"
#include "matchers/matcher.h"

namespace valentine {

/// Outcome of one (matcher, pair) run.
struct ExperimentResult {
  std::string pair_id;
  Scenario scenario = Scenario::kUnionable;
  std::string method;
  std::string config;
  double recall_at_gt = 0.0;
  double map = 0.0;          ///< mean average precision (extra diagnostics)
  double runtime_ms = 0.0;
  size_t ground_truth_size = 0;
  /// Final status of the run: kOk for a scored experiment, otherwise
  /// the terminal failure code (recall/map are 0 in that case).
  StatusCode code = StatusCode::kOk;
  std::string error;
  /// Attempts consumed (1 without retries; retry loops accumulate).
  size_t attempts = 1;
};

/// Runs one matcher configuration on one pair and scores it.
ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair);

/// Budget-aware variant: the context's deadline/token is threaded into
/// the matcher; a kDeadlineExceeded / kCancelled abort is reported via
/// `code` + `error` instead of a score. runtime_ms still measures the
/// (partial) wall-clock spent.
ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair,
                               const MatchContext& context);

/// Prepared-artifact variant: when both artifacts are non-null the
/// matcher's Score stage runs against them (the harness's artifact-cache
/// fast path); when either is null this degrades to the monolithic
/// overload above. Results are byte-identical either way — only
/// runtime_ms (which no longer includes prepare work on the fast path)
/// may differ.
ExperimentResult RunExperiment(const ColumnMatcher& matcher,
                               const std::string& config,
                               const DatasetPair& pair,
                               const MatchContext& context,
                               const PreparedTable* prepared_source,
                               const PreparedTable* prepared_target);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_EXPERIMENT_H_
