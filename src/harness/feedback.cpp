#include "harness/feedback.h"

#include "metrics/metrics.h"

namespace valentine {

void FeedbackSession::Confirm(const std::string& source_column,
                              const std::string& target_column) {
  confirmed_.emplace(source_column, target_column);
  rejected_.erase({source_column, target_column});
}

void FeedbackSession::Reject(const std::string& source_column,
                             const std::string& target_column) {
  rejected_.emplace(source_column, target_column);
  confirmed_.erase({source_column, target_column});
}

bool FeedbackSession::IsConfirmed(const std::string& source_column,
                                  const std::string& target_column) const {
  return confirmed_.count({source_column, target_column}) > 0;
}

bool FeedbackSession::IsRejected(const std::string& source_column,
                                 const std::string& target_column) const {
  return rejected_.count({source_column, target_column}) > 0;
}

MatchResult FeedbackSession::Apply(const MatchResult& result,
                                   bool exclusive) const {
  std::set<std::string> confirmed_sources;
  std::set<std::string> confirmed_targets;
  if (exclusive) {
    for (const auto& [s, t] : confirmed_) {
      confirmed_sources.insert(s);
      confirmed_targets.insert(t);
    }
  }

  MatchResult out;
  // Confirmed pairs first, whether or not the matcher ranked them.
  for (const auto& [s, t] : confirmed_) {
    ColumnRef src{"", s};
    ColumnRef tgt{"", t};
    // Recover table names from the ranked list when available.
    for (const Match& m : result.matches()) {
      if (m.source.column == s && m.target.column == t) {
        src = m.source;
        tgt = m.target;
        break;
      }
    }
    out.Add(src, tgt, 1.0);
  }
  for (const Match& m : result.matches()) {
    if (IsConfirmed(m.source.column, m.target.column)) continue;  // added
    if (IsRejected(m.source.column, m.target.column)) continue;
    if (exclusive && (confirmed_sources.count(m.source.column) ||
                      confirmed_targets.count(m.target.column))) {
      continue;
    }
    out.Add(m);
  }
  out.Sort();
  return out;
}

size_t SimulateReviewRound(const MatchResult& ranked,
                           const std::vector<GroundTruthEntry>& gt,
                           size_t budget, FeedbackSession* session) {
  size_t labeled = 0;
  for (size_t i = 0; i < ranked.size() && labeled < budget; ++i) {
    const Match& m = ranked[i];
    if (session->IsConfirmed(m.source.column, m.target.column) ||
        session->IsRejected(m.source.column, m.target.column)) {
      continue;
    }
    if (MatchesGroundTruth(m, gt)) {
      session->Confirm(m.source.column, m.target.column);
    } else {
      session->Reject(m.source.column, m.target.column);
    }
    ++labeled;
  }
  return labeled;
}

}  // namespace valentine
