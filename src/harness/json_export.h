#ifndef VALENTINE_HARNESS_JSON_EXPORT_H_
#define VALENTINE_HARNESS_JSON_EXPORT_H_

/// \file json_export.h
/// JSON serialization of experiment outputs, so downstream analysis
/// (notebooks, dashboards) can consume suite runs — the original suite
/// ships its "detailed experimental results" as files in its repo; this
/// is the equivalent export path.

#include <string>
#include <vector>

#include "core/status.h"
#include "harness/campaign.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "matchers/match_result.h"

namespace valentine {

/// Escapes a string for embedding in JSON (quotes, control chars).
std::string JsonEscape(const std::string& s);

/// One experiment result as a JSON object.
std::string ToJson(const ExperimentResult& result);

/// A batch of experiment results as a JSON array.
std::string ToJson(const std::vector<ExperimentResult>& results);

/// A ranked match list as a JSON array of {source, target, score}.
std::string ToJson(const MatchResult& result);

/// Best-of-grid outcomes as a JSON array.
std::string ToJson(const std::vector<FamilyPairOutcome>& outcomes);

/// One family's campaign aggregate (scenario stats, failure taxonomy,
/// outcomes) as a JSON object.
std::string ToJson(const CampaignFamilyReport& report);

/// A full campaign report as one JSON object. Under an injected
/// FakeClock (CampaignOptions::clock) a resumed campaign serializes
/// byte-identically to an uninterrupted one — the crash-resume
/// determinism contract, with no post-hoc field scrubbing.
std::string ToJson(const CampaignReport& report);

/// Writes any of the above to a file.
Status WriteJsonFile(const std::string& json, const std::string& path);

}  // namespace valentine

#endif  // VALENTINE_HARNESS_JSON_EXPORT_H_
