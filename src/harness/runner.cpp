#include "harness/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "core/rng.h"
#include "metrics/metrics.h"
#include "obs/opcount.h"

namespace valentine {

std::vector<DatasetPair> BuildFabricatedSuite(
    const Table& original, const PairSuiteOptions& options) {
  std::vector<DatasetPair> suite;
  uint64_t seed = options.seed;
  auto add = [&](FabricationOptions fab) {
    fab.seed = seed++;
    auto result = FabricateDatasetPair(original, fab);
    if (result.ok()) suite.push_back(std::move(result).ValueOrDie());
  };
  std::vector<bool> schema_noise = {false};
  if (options.schema_noise_variants) schema_noise.push_back(true);
  std::vector<bool> instance_noise = {false};
  if (options.instance_noise_variants) instance_noise.push_back(true);

  // Unionable: row overlaps x schema noise x instance noise.
  for (double row : options.row_overlaps) {
    for (bool sn : schema_noise) {
      for (bool in : instance_noise) {
        FabricationOptions fab;
        fab.scenario = Scenario::kUnionable;
        fab.row_overlap = row;
        fab.noisy_schema = sn;
        fab.noisy_instances = in;
        add(fab);
      }
    }
  }
  // View-unionable: column overlaps x schema noise x instance noise.
  for (double col : options.column_overlaps) {
    for (bool sn : schema_noise) {
      for (bool in : instance_noise) {
        FabricationOptions fab;
        fab.scenario = Scenario::kViewUnionable;
        fab.column_overlap = col;
        fab.noisy_schema = sn;
        fab.noisy_instances = in;
        add(fab);
      }
    }
  }
  // Joinable: column overlaps x horizontal variant x schema noise
  // (instances always verbatim).
  for (double col : options.column_overlaps) {
    for (bool horiz : {false, true}) {
      for (bool sn : schema_noise) {
        FabricationOptions fab;
        fab.scenario = Scenario::kJoinable;
        fab.column_overlap = col;
        fab.joinable_horizontal_variant = horiz;
        fab.noisy_schema = sn;
        add(fab);
      }
    }
  }
  // Semantically-joinable: same grid, instances always noisy.
  for (double col : options.column_overlaps) {
    for (bool horiz : {false, true}) {
      for (bool sn : schema_noise) {
        FabricationOptions fab;
        fab.scenario = Scenario::kSemanticallyJoinable;
        fab.column_overlap = col;
        fab.joinable_horizontal_variant = horiz;
        fab.noisy_schema = sn;
        add(fab);
      }
    }
  }
  return suite;
}

bool IsRetryableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInternal:
    case StatusCode::kIOError:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

double BackoffDelayMs(const ExecutionPolicy& policy, const std::string& key,
                      size_t attempt) {
  if (attempt == 0) return 0.0;
  double exp = policy.backoff_base_ms *
               std::pow(2.0, static_cast<double>(attempt - 1));
  double capped = std::min(policy.backoff_max_ms, exp);
  // Deterministic jitter in [0.5, 1): same (seed, key, attempt) always
  // yields the same delay, so schedules are reproducible in tests and
  // across resumed campaigns.
  Rng rng(policy.backoff_seed ^ DeterministicSeed(key) ^ attempt);
  return capped * (0.5 + 0.5 * rng.UniformDouble());
}

namespace {

/// Renders a double attribute value without trailing noise (for span
/// annotations like backoff delays).
std::string FormatMsAttr(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", ms);
  return buf;
}

/// Folds a thread-local kernel op-count delta into the registry under
/// `valentine_opcount_total{family,op}`. Counter adds are atomic and
/// order-independent, so parallel family runs aggregate
/// deterministically. No-op when counting is compiled out or the delta
/// is all zero — reports themselves never carry these numbers (the
/// registry is the single exclusion point from report byte-identity).
void SurfaceOpCounts(MetricsRegistry* metrics, const std::string& family,
                     const opcount::Snapshot& delta) {
  if (metrics == nullptr || !delta.AnyNonZero()) return;
  for (opcount::Op op : opcount::AllOps()) {
    uint64_t n = delta.value(op);
    if (n == 0) continue;
    metrics
        ->CounterFor("valentine_opcount_total",
                     {{"family", family}, {"op", opcount::OpName(op)}})
        ->Increment(n);
  }
}

/// Runs one configuration under the policy: a fresh per-attempt
/// deadline, bounded retries for transient codes, runtime accumulated
/// across attempts. `source_profile` / `target_profile` may be null.
/// Each attempt gets an "attempt" span under `experiment_span`; retry
/// waits are recorded as "backoff" point events.
ExperimentResult RunExperimentWithPolicy(const ColumnMatcher& matcher,
                                         const std::string& config,
                                         const DatasetPair& pair,
                                         const std::string& family_name,
                                         const FamilyRunContext& run,
                                         uint64_t experiment_span,
                                         const TableProfile* source_profile,
                                         const TableProfile* target_profile,
                                         const PreparedTable* prepared_source,
                                         const PreparedTable* prepared_target) {
  const ExecutionPolicy& policy = run.policy;
  const std::string key = JournalKey(family_name, pair.id, config);
  const size_t max_attempts = std::max<size_t>(1, policy.max_attempts);
  ExperimentResult result;
  double total_runtime_ms = 0.0;
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    SpanScope attempt_span(run.tracer, key, "attempt",
                           "attempt " + std::to_string(attempt),
                           experiment_span);
    attempt_span.Attr("attempt", std::to_string(attempt));
    MatchContext context;
    if (policy.budget_ms > 0.0) {
      context.deadline = Deadline::AfterMs(policy.budget_ms);
    }
    context.cancel = policy.cancel;
    context.trace_id = key;
    context.source_profile = source_profile;
    context.target_profile = target_profile;
    context.clock = run.clock;
    context.tracer = run.tracer;
    context.parent_span = attempt_span.id() != 0 ? attempt_span.id()
                                                 : experiment_span;
    // Kernel op counts for this attempt, attributed to the family. The
    // snapshots bracket the matcher call on the thread that runs it, so
    // thread-local deltas are exact even under the parallel runner.
    opcount::Snapshot ops_before = opcount::ThreadSnapshot();
    result = RunExperiment(matcher, config, pair, context, prepared_source,
                           prepared_target);
    SurfaceOpCounts(run.metrics, family_name,
                    opcount::ThreadSnapshot().DeltaSince(ops_before));
    total_runtime_ms += result.runtime_ms;
    result.attempts = attempt;
    attempt_span.Attr("code", StatusCodeName(result.code));
    attempt_span.End();
    if (result.code == StatusCode::kOk ||
        !IsRetryableStatus(Status::WithCode(result.code, result.error)) ||
        attempt == max_attempts) {
      break;
    }
    double delay_ms = BackoffDelayMs(policy, key, attempt);
    if (run.tracer != nullptr) {
      run.tracer->RecordEvent(key, "backoff", "backoff", experiment_span,
                              {{"delay_ms", FormatMsAttr(delay_ms)}});
    }
    if (policy.backoff_wait) policy.backoff_wait(delay_ms);
  }
  result.runtime_ms = total_runtime_ms;
  return result;
}

ExperimentResult ReplayJournalEntry(const JournalEntry& entry,
                                    const ColumnMatcher& matcher,
                                    const DatasetPair& pair) {
  ExperimentResult result;
  result.pair_id = entry.pair_id;
  result.scenario = pair.scenario;
  result.method = matcher.Name();
  result.config = entry.config;
  result.recall_at_gt = entry.recall_at_gt;
  result.map = entry.map;
  result.runtime_ms = entry.runtime_ms;
  result.ground_truth_size = pair.ground_truth.size();
  result.code = entry.code;
  result.error = entry.error;
  result.attempts = entry.attempts;
  return result;
}

}  // namespace

FamilyPairOutcome RunFamilyOnPair(const MethodFamily& family,
                                  const DatasetPair& pair) {
  return RunFamilyOnPair(family, pair, FamilyRunContext());
}

ExperimentResult RunConfigOnPair(const MethodFamily& family,
                                 size_t config_index, const DatasetPair& pair,
                                 const FamilyRunContext& run) {
  const ConfiguredMatcher& cm = family.grid[config_index];
  const std::string key = JournalKey(family.name, pair.id, cm.description);
  // The experiment span's trace id IS the journal key, so traces join
  // line-for-line with the crash-resume journal.
  SpanScope experiment_span(run.tracer, key, "experiment", key,
                            run.parent_span);
  experiment_span.Attr("family", family.name);
  experiment_span.Attr("pair", pair.id);
  experiment_span.Attr("config", cm.description);
  const JournalEntry* done =
      run.completed == nullptr
          ? nullptr
          : run.completed->Find(family.name, pair.id, cm.description);
  if (done != nullptr) {
    // Crash resume: replay the journaled outcome (including
    // quarantined failures — they are never re-attempted).
    experiment_span.Attr("replayed", "true");
    experiment_span.Attr("code", StatusCodeName(done->code));
    if (run.metrics != nullptr) {
      run.metrics
          ->CounterFor("valentine_experiments_replayed_total",
                       {{"family", family.name}})
          ->Increment();
    }
    return ReplayJournalEntry(*done, *cm.matcher, pair);
  }
  // Resolve shared profiles for the pair's tables (built once per table
  // across the whole cache lifetime). The cache owns the profiles; the
  // shared_ptrs here only pin them for the duration of the call.
  std::shared_ptr<const TableProfile> source_profile, target_profile;
  if (run.profiles != nullptr) {
    source_profile = run.profiles->GetOrBuild(
        pair.source, run.tracer, key, experiment_span.id(), run.metrics);
    target_profile = run.profiles->GetOrBuild(
        pair.target, run.tracer, key, experiment_span.id(), run.metrics);
  }
  // Resolve shared prepared artifacts (built once per (table, family,
  // prepare-key) across configurations and threads). Prepare runs under
  // the policy's cancellation token but outside the per-attempt
  // deadline; a null return (failed Prepare) degrades to the monolithic
  // path so the failure is reported per-configuration as before.
  PreparedTablePtr prepared_source, prepared_target;
  if (run.artifacts != nullptr) {
    MatchContext prepare_context;
    prepare_context.cancel = run.policy.cancel;
    prepare_context.trace_id = key + "#prepare";
    prepare_context.source_profile = source_profile.get();
    prepare_context.target_profile = target_profile.get();
    prepare_context.clock = run.clock;
    prepare_context.tracer = run.tracer;
    prepare_context.parent_span = experiment_span.id();
    prepared_source = run.artifacts->GetOrPrepare(
        *cm.matcher, pair.source, source_profile.get(), prepare_context);
    prepared_target = run.artifacts->GetOrPrepare(
        *cm.matcher, pair.target, target_profile.get(), prepare_context);
  }
  ExperimentResult r = RunExperimentWithPolicy(
      *cm.matcher, cm.description, pair, family.name, run,
      experiment_span.id(), source_profile.get(), target_profile.get(),
      prepared_source.get(), prepared_target.get());
  experiment_span.Attr("code", StatusCodeName(r.code));
  experiment_span.Attr("attempts", std::to_string(r.attempts));
  if (run.metrics != nullptr) {
    run.metrics
        ->CounterFor("valentine_experiments_total", {{"family", family.name}})
        ->Increment();
    Histogram* runtime = run.metrics->HistogramFor(
        "valentine_experiment_runtime_ms", {{"family", family.name}});
    if (runtime != nullptr) runtime->Observe(r.runtime_ms);
  }
  if (run.journal != nullptr) {
    run.journal->Append({family.name, pair.id, cm.description, r.code,
                         r.error, r.recall_at_gt, r.map, r.runtime_ms,
                         r.attempts});
  }
  return r;
}

FamilyPairOutcome ReducePairOutcome(
    const MethodFamily& family, const DatasetPair& pair,
    const std::vector<ExperimentResult>& results) {
  FamilyPairOutcome out;
  out.family = family.name;
  out.pair_id = pair.id;
  out.scenario = pair.scenario;
  std::map<StatusCode, size_t> failures;
  for (size_t c = 0; c < results.size(); ++c) {
    const ExperimentResult& r = results[c];
    out.total_ms += r.runtime_ms;
    ++out.runs;
    out.retries += r.attempts - 1;
    if (r.code == StatusCode::kOk) {
      // Only successful runs compete for best-of-grid; a failed config
      // must not claim the tie-break slot a successful one would get.
      if (r.recall_at_gt > out.best_recall || out.best_config.empty()) {
        out.best_recall = r.recall_at_gt;
        out.best_config = family.grid[c].description;
      }
    } else {
      ++out.failed_runs;
      ++failures[r.code];
    }
  }
  out.failure_counts.assign(failures.begin(), failures.end());
  return out;
}

FamilyPairOutcome RunFamilyOnPair(const MethodFamily& family,
                                  const DatasetPair& pair,
                                  const FamilyRunContext& run) {
  std::vector<ExperimentResult> results;
  results.reserve(family.grid.size());
  for (size_t c = 0; c < family.grid.size(); ++c) {
    results.push_back(RunConfigOnPair(family, c, pair, run));
  }
  return ReducePairOutcome(family, pair, results);
}

std::vector<FamilyPairOutcome> RunFamilyOnSuite(
    const MethodFamily& family, const std::vector<DatasetPair>& suite) {
  return RunFamilyOnSuite(family, suite, FamilyRunContext());
}

std::vector<FamilyPairOutcome> RunFamilyOnSuite(
    const MethodFamily& family, const std::vector<DatasetPair>& suite,
    const FamilyRunContext& run) {
  std::vector<FamilyPairOutcome> outcomes;
  outcomes.reserve(suite.size());
  for (const DatasetPair& pair : suite) {
    outcomes.push_back(RunFamilyOnPair(family, pair, run));
  }
  return outcomes;
}

std::vector<ScenarioStats> AggregateByScenario(
    const std::vector<FamilyPairOutcome>& outcomes) {
  std::map<Scenario, std::vector<double>> buckets;
  for (const auto& o : outcomes) buckets[o.scenario].push_back(o.best_recall);
  std::vector<ScenarioStats> stats;
  for (auto& [scenario, recalls] : buckets) {
    stats.push_back({scenario, Summarize(std::move(recalls))});
  }
  return stats;
}

double AverageRuntimeMsPerRun(
    const std::vector<FamilyPairOutcome>& outcomes) {
  double total = 0.0;
  size_t runs = 0;
  for (const auto& o : outcomes) {
    total += o.total_ms;
    runs += o.runs;
  }
  return runs == 0 ? 0.0 : total / static_cast<double>(runs);
}

}  // namespace valentine
