#include "harness/runner.h"

#include <algorithm>
#include <map>

#include "metrics/metrics.h"

namespace valentine {

std::vector<DatasetPair> BuildFabricatedSuite(
    const Table& original, const PairSuiteOptions& options) {
  std::vector<DatasetPair> suite;
  uint64_t seed = options.seed;
  auto add = [&](FabricationOptions fab) {
    fab.seed = seed++;
    auto result = FabricateDatasetPair(original, fab);
    if (result.ok()) suite.push_back(std::move(result).ValueOrDie());
  };
  std::vector<bool> schema_noise = {false};
  if (options.schema_noise_variants) schema_noise.push_back(true);
  std::vector<bool> instance_noise = {false};
  if (options.instance_noise_variants) instance_noise.push_back(true);

  // Unionable: row overlaps x schema noise x instance noise.
  for (double row : options.row_overlaps) {
    for (bool sn : schema_noise) {
      for (bool in : instance_noise) {
        FabricationOptions fab;
        fab.scenario = Scenario::kUnionable;
        fab.row_overlap = row;
        fab.noisy_schema = sn;
        fab.noisy_instances = in;
        add(fab);
      }
    }
  }
  // View-unionable: column overlaps x schema noise x instance noise.
  for (double col : options.column_overlaps) {
    for (bool sn : schema_noise) {
      for (bool in : instance_noise) {
        FabricationOptions fab;
        fab.scenario = Scenario::kViewUnionable;
        fab.column_overlap = col;
        fab.noisy_schema = sn;
        fab.noisy_instances = in;
        add(fab);
      }
    }
  }
  // Joinable: column overlaps x horizontal variant x schema noise
  // (instances always verbatim).
  for (double col : options.column_overlaps) {
    for (bool horiz : {false, true}) {
      for (bool sn : schema_noise) {
        FabricationOptions fab;
        fab.scenario = Scenario::kJoinable;
        fab.column_overlap = col;
        fab.joinable_horizontal_variant = horiz;
        fab.noisy_schema = sn;
        add(fab);
      }
    }
  }
  // Semantically-joinable: same grid, instances always noisy.
  for (double col : options.column_overlaps) {
    for (bool horiz : {false, true}) {
      for (bool sn : schema_noise) {
        FabricationOptions fab;
        fab.scenario = Scenario::kSemanticallyJoinable;
        fab.column_overlap = col;
        fab.joinable_horizontal_variant = horiz;
        fab.noisy_schema = sn;
        add(fab);
      }
    }
  }
  return suite;
}

FamilyPairOutcome RunFamilyOnPair(const MethodFamily& family,
                                  const DatasetPair& pair) {
  FamilyPairOutcome out;
  out.family = family.name;
  out.pair_id = pair.id;
  out.scenario = pair.scenario;
  for (const ConfiguredMatcher& cm : family.grid) {
    ExperimentResult r = RunExperiment(*cm.matcher, cm.description, pair);
    out.total_ms += r.runtime_ms;
    ++out.runs;
    if (r.recall_at_gt > out.best_recall || out.best_config.empty()) {
      out.best_recall = r.recall_at_gt;
      out.best_config = cm.description;
    }
  }
  return out;
}

std::vector<FamilyPairOutcome> RunFamilyOnSuite(
    const MethodFamily& family, const std::vector<DatasetPair>& suite) {
  std::vector<FamilyPairOutcome> outcomes;
  outcomes.reserve(suite.size());
  for (const DatasetPair& pair : suite) {
    outcomes.push_back(RunFamilyOnPair(family, pair));
  }
  return outcomes;
}

std::vector<ScenarioStats> AggregateByScenario(
    const std::vector<FamilyPairOutcome>& outcomes) {
  std::map<Scenario, std::vector<double>> buckets;
  for (const auto& o : outcomes) buckets[o.scenario].push_back(o.best_recall);
  std::vector<ScenarioStats> stats;
  for (auto& [scenario, recalls] : buckets) {
    stats.push_back({scenario, Summarize(std::move(recalls))});
  }
  return stats;
}

double AverageRuntimeMsPerRun(
    const std::vector<FamilyPairOutcome>& outcomes) {
  double total = 0.0;
  size_t runs = 0;
  for (const auto& o : outcomes) {
    total += o.total_ms;
    runs += o.runs;
  }
  return runs == 0 ? 0.0 : total / static_cast<double>(runs);
}

}  // namespace valentine
