#ifndef VALENTINE_HARNESS_JOURNAL_H_
#define VALENTINE_HARNESS_JOURNAL_H_

/// \file journal.h
/// Append-only JSONL outcome journal for crash-resumable campaigns.
/// Every finished experiment (one configuration on one pair, including
/// terminal failures after the retry budget) is appended as one JSON
/// line and flushed, so a campaign killed mid-flight loses at most the
/// experiments that were in progress. On restart the journal is loaded
/// into a JournalIndex and completed (family, pair, config) triples are
/// replayed from it instead of re-executed; the resumed campaign's
/// report is byte-identical (modulo wall-clock runtime fields) to an
/// uninterrupted run.

#include <fstream>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"

namespace valentine {

/// One journaled experiment outcome. `code` is kOk for successful runs;
/// terminal failures record the final StatusCode and message after the
/// retry budget was exhausted (the quarantine record: resume never
/// re-attempts such a triple).
struct JournalEntry {
  std::string family;
  std::string pair_id;
  std::string config;
  StatusCode code = StatusCode::kOk;
  std::string error;
  double recall_at_gt = 0.0;
  double map = 0.0;
  double runtime_ms = 0.0;
  size_t attempts = 1;
};

/// The unique key of an experiment within a campaign.
std::string JournalKey(const std::string& family, const std::string& pair_id,
                       const std::string& config);

/// Serializes one entry as a single JSON line (no trailing newline).
/// Doubles use %.17g so values round-trip exactly — a resumed campaign
/// must reproduce recalls bit-for-bit or tie-breaks could flip.
std::string SerializeJournalEntry(const JournalEntry& entry);

/// Parses one JSONL line; nullopt when the line is malformed (e.g. the
/// torn final line of a killed process).
std::optional<JournalEntry> ParseJournalEntry(const std::string& line);

/// \brief Thread-safe append-only JSONL writer. Each Append writes one
/// line and flushes; errors latch into status() instead of throwing so
/// a full disk degrades the journal, never the campaign.
class OutcomeJournal {
 public:
  explicit OutcomeJournal(const std::string& path);
  OutcomeJournal(const OutcomeJournal&) = delete;
  OutcomeJournal& operator=(const OutcomeJournal&) = delete;

  void Append(const JournalEntry& entry) EXCLUDES(mutex_);

  /// First error encountered (open or write); OK while healthy.
  Status status() const EXCLUDES(mutex_);

  const std::string& path() const { return path_; }

 private:
  const std::string path_;  // lint:allow(guarded-by-coverage) immutable
  mutable Mutex mutex_{LockRank::kJournal, "OutcomeJournal"};
  std::ofstream out_ GUARDED_BY(mutex_);
  Status status_ GUARDED_BY(mutex_);
};

/// \brief Read-only index over a journal file, keyed by
/// (family, pair_id, config).
class JournalIndex {
 public:
  /// Loads a journal. A missing file yields an empty index (fresh run);
  /// a torn final line is tolerated (parsing stops at the first
  /// malformed line). Later duplicates win, matching append order.
  static Result<JournalIndex> Load(const std::string& path);

  const JournalEntry* Find(const std::string& family,
                           const std::string& pair_id,
                           const std::string& config) const;

  size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<std::string, JournalEntry> entries_;
};

}  // namespace valentine

#endif  // VALENTINE_HARNESS_JOURNAL_H_
