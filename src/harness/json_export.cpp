#include "harness/json_export.h"

#include <cstdio>
#include <fstream>

namespace valentine {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

namespace {
std::string JsonNumber(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}
}  // namespace

std::string ToJson(const ExperimentResult& result) {
  std::string out = "{";
  out += "\"pair_id\":\"" + JsonEscape(result.pair_id) + "\",";
  out += "\"scenario\":\"" + std::string(ScenarioName(result.scenario)) +
         "\",";
  out += "\"method\":\"" + JsonEscape(result.method) + "\",";
  out += "\"config\":\"" + JsonEscape(result.config) + "\",";
  out += "\"recall_at_gt\":" + JsonNumber(result.recall_at_gt) + ",";
  out += "\"map\":" + JsonNumber(result.map) + ",";
  out += "\"runtime_ms\":" + JsonNumber(result.runtime_ms) + ",";
  out += "\"ground_truth_size\":" +
         std::to_string(result.ground_truth_size) + ",";
  out += "\"code\":\"" + std::string(StatusCodeName(result.code)) + "\",";
  out += "\"error\":\"" + JsonEscape(result.error) + "\",";
  out += "\"attempts\":" + std::to_string(result.attempts);
  out += "}";
  return out;
}

std::string ToJson(const std::vector<ExperimentResult>& results) {
  std::string out = "[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) out += ",";
    out += ToJson(results[i]);
  }
  out += "]";
  return out;
}

std::string ToJson(const MatchResult& result) {
  std::string out = "[";
  for (size_t i = 0; i < result.size(); ++i) {
    if (i > 0) out += ",";
    const Match& m = result[i];
    out += "{\"source\":\"" + JsonEscape(m.source.ToString()) +
           "\",\"target\":\"" + JsonEscape(m.target.ToString()) +
           "\",\"score\":" + JsonNumber(m.score) + "}";
  }
  out += "]";
  return out;
}

namespace {

/// Failure taxonomy as a JSON object keyed by stable code name. The
/// input is sorted by code, so the serialization is deterministic.
std::string FailuresToJson(
    const std::vector<std::pair<StatusCode, size_t>>& failures) {
  std::string out = "{";
  for (size_t i = 0; i < failures.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + std::string(StatusCodeName(failures[i].first)) +
           "\":" + std::to_string(failures[i].second);
  }
  out += "}";
  return out;
}

}  // namespace

std::string ToJson(const std::vector<FamilyPairOutcome>& outcomes) {
  std::string out = "[";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (i > 0) out += ",";
    const FamilyPairOutcome& o = outcomes[i];
    out += "{\"family\":\"" + JsonEscape(o.family) + "\",\"pair_id\":\"" +
           JsonEscape(o.pair_id) + "\",\"scenario\":\"" +
           ScenarioName(o.scenario) + "\",\"best_recall\":" +
           JsonNumber(o.best_recall) + ",\"best_config\":\"" +
           JsonEscape(o.best_config) + "\",\"total_ms\":" +
           JsonNumber(o.total_ms) + ",\"runs\":" + std::to_string(o.runs) +
           ",\"failed_runs\":" + std::to_string(o.failed_runs) +
           ",\"retries\":" + std::to_string(o.retries) +
           ",\"failures\":" + FailuresToJson(o.failure_counts) + "}";
  }
  out += "]";
  return out;
}

std::string ToJson(const CampaignFamilyReport& report) {
  std::string out = "{";
  out += "\"family\":\"" + JsonEscape(report.family) + "\",";
  out += "\"avg_runtime_ms\":" + JsonNumber(report.avg_runtime_ms) + ",";
  out += "\"failed_experiments\":" +
         std::to_string(report.failed_experiments) + ",";
  out += "\"retry_attempts\":" + std::to_string(report.retry_attempts) + ",";
  out += "\"failure_taxonomy\":" + FailuresToJson(report.failure_taxonomy) +
         ",";
  out += "\"by_scenario\":[";
  for (size_t i = 0; i < report.by_scenario.size(); ++i) {
    if (i > 0) out += ",";
    const ScenarioStats& s = report.by_scenario[i];
    out += "{\"scenario\":\"" + std::string(ScenarioName(s.scenario)) +
           "\",\"min\":" + JsonNumber(s.recall.min) +
           ",\"median\":" + JsonNumber(s.recall.median) +
           ",\"max\":" + JsonNumber(s.recall.max) +
           ",\"mean\":" + JsonNumber(s.recall.mean) +
           ",\"count\":" + std::to_string(s.recall.count) + "}";
  }
  out += "],";
  out += "\"outcomes\":" + ToJson(report.outcomes);
  out += "}";
  return out;
}

std::string ToJson(const CampaignReport& report) {
  std::string out = "{";
  out += "\"num_pairs\":" + std::to_string(report.num_pairs) + ",";
  out += "\"num_configurations\":" +
         std::to_string(report.num_configurations) + ",";
  out += "\"num_experiments\":" + std::to_string(report.num_experiments) +
         ",";
  out += "\"failed_experiments\":" +
         std::to_string(report.failed_experiments) + ",";
  out += "\"families\":[";
  for (size_t i = 0; i < report.families.size(); ++i) {
    if (i > 0) out += ",";
    out += ToJson(report.families[i]);
  }
  out += "]}";
  // Interleaving-dependent diagnostics (cache hit/miss splits, runtime
  // histograms) are deliberately absent: they live on the
  // MetricsRegistry and export via RenderPrometheusText/ToMetricsJson,
  // keeping this report inside the byte-identity contract.
  return out;
}

Status WriteJsonFile(const std::string& json, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << json;
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace valentine
