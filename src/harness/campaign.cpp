#include "harness/campaign.h"

#include <algorithm>
#include <map>
#include <optional>

#include "harness/journal.h"
#include "harness/parallel.h"

namespace valentine {

CampaignReport RunCampaignOnSuite(const std::vector<DatasetPair>& suite,
                                  const std::vector<MethodFamily>& families,
                                  const CampaignOptions& options) {
  // Journal plumbing: load the resume index first (so completed triples
  // are skipped), then open the same file for appending new outcomes.
  std::optional<JournalIndex> completed;
  std::optional<OutcomeJournal> journal;
  FamilyRunContext run;
  run.policy = options.policy;
  if (!options.journal_path.empty()) {
    Result<JournalIndex> loaded = JournalIndex::Load(options.journal_path);
    if (loaded.ok()) {
      completed = std::move(loaded).ValueOrDie();
      run.completed = &*completed;
    }
    journal.emplace(options.journal_path);
    run.journal = &*journal;
  }
  // One profile cache for the whole campaign: the first family to touch
  // a table pays the profiling cost, every later configuration and
  // family reuses the artifacts. Scoped to this call — the cache borrows
  // the suite's tables.
  std::optional<ProfileCache> profiles;
  if (options.use_profile_cache) {
    profiles.emplace(options.profile_spec);
    run.profiles = &*profiles;
  }
  // One artifact cache for the whole campaign: each (table, family,
  // prepare-key) artifact is built once; configurations that only sweep
  // score-stage parameters share it. Scoped to this call — artifacts
  // borrow the suite's tables.
  std::optional<ArtifactCache> artifacts;
  if (options.use_artifact_cache) {
    artifacts.emplace();
    run.artifacts = &*artifacts;
  }

  CampaignReport report;
  report.num_pairs = suite.size();
  for (const MethodFamily& family : families) {
    if (!options.family_filter.empty() &&
        std::find(options.family_filter.begin(),
                  options.family_filter.end(),
                  family.name) == options.family_filter.end()) {
      continue;
    }
    report.num_configurations += family.grid.size();
    CampaignFamilyReport fr;
    fr.family = family.name;
    fr.outcomes = RunFamilyOnSuiteParallel(family, suite, options.num_threads,
                                           run, options.granularity);
    fr.by_scenario = AggregateByScenario(fr.outcomes);
    fr.avg_runtime_ms = AverageRuntimeMsPerRun(fr.outcomes);
    std::map<StatusCode, size_t> taxonomy;
    for (const FamilyPairOutcome& o : fr.outcomes) {
      fr.failed_experiments += o.failed_runs;
      fr.retry_attempts += o.retries;
      for (const auto& [code, count] : o.failure_counts) {
        taxonomy[code] += count;
      }
    }
    fr.failure_taxonomy.assign(taxonomy.begin(), taxonomy.end());
    report.failed_experiments += fr.failed_experiments;
    report.num_experiments += family.grid.size() * suite.size();
    report.families.push_back(std::move(fr));
  }
  if (artifacts.has_value()) {
    for (const auto& [family, stats] : artifacts->StatsSnapshot()) {
      report.artifact_cache_stats.push_back(
          {family, stats.hits, stats.misses, stats.builds});
    }
  }
  return report;
}

CampaignReport RunCampaign(const std::vector<Table>& sources,
                           const std::vector<MethodFamily>& families,
                           const CampaignOptions& options) {
  std::vector<DatasetPair> suite;
  uint64_t seed = options.suite.seed;
  for (const Table& source : sources) {
    PairSuiteOptions per_source = options.suite;
    per_source.seed = seed;
    seed += 1000;
    for (auto& pair : BuildFabricatedSuite(source, per_source)) {
      suite.push_back(std::move(pair));
    }
  }
  return RunCampaignOnSuite(suite, families, options);
}

}  // namespace valentine
