#include "harness/campaign.h"

#include <algorithm>
#include <map>
#include <optional>

#include "harness/journal.h"
#include "harness/parallel.h"

namespace valentine {

namespace {

/// Registers the # HELP strings once per campaign registry.
void RegisterHelp(MetricsRegistry& metrics) {
  metrics.SetHelp("valentine_experiments_total",
                  "Experiments executed (journal replays excluded).");
  metrics.SetHelp("valentine_experiments_replayed_total",
                  "Experiments replayed from the crash-resume journal.");
  metrics.SetHelp("valentine_experiment_failures_total",
                  "Terminal non-OK experiment outcomes by status code.");
  metrics.SetHelp("valentine_experiment_retries_total",
                  "Extra attempts beyond the first, summed.");
  metrics.SetHelp("valentine_experiment_runtime_ms",
                  "Per-experiment runtime (ms), summed over attempts.");
  metrics.SetHelp("valentine_artifact_cache_hits_total",
                  "Prepared-table artifact cache hits.");
  metrics.SetHelp("valentine_artifact_cache_misses_total",
                  "Prepared-table artifact cache misses.");
  metrics.SetHelp("valentine_artifact_cache_builds_total",
                  "Prepared-table artifact builds (including failed ones).");
  metrics.SetHelp("valentine_profile_cache_hits_total",
                  "Column-profile cache hits.");
  metrics.SetHelp("valentine_profile_cache_builds_total",
                  "Column-profile cache builds.");
}

}  // namespace

CampaignReport RunCampaignOnSuite(const std::vector<DatasetPair>& suite,
                                  const std::vector<MethodFamily>& families,
                                  const CampaignOptions& options) {
  // The campaign always aggregates into a fresh registry of its own:
  // the report's failure taxonomy is derived from it, and only at the
  // end is it merged into the caller's registry — so one long-lived
  // registry can span many campaigns without double-counting reports.
  MetricsRegistry metrics;
  RegisterHelp(metrics);
  SpanScope campaign_span(options.tracer, "campaign", "campaign", "campaign");

  // Journal plumbing: load the resume index first (so completed triples
  // are skipped), then open the same file for appending new outcomes.
  std::optional<JournalIndex> completed;
  std::optional<OutcomeJournal> journal;
  FamilyRunContext run;
  run.policy = options.policy;
  run.clock = options.clock;
  run.tracer = options.tracer;
  run.metrics = &metrics;
  if (!options.journal_path.empty()) {
    Result<JournalIndex> loaded = JournalIndex::Load(options.journal_path);
    if (loaded.ok()) {
      completed = std::move(loaded).ValueOrDie();
      run.completed = &*completed;
    }
    journal.emplace(options.journal_path);
    run.journal = &*journal;
  }
  // One profile cache for the whole campaign: the first family to touch
  // a table pays the profiling cost, every later configuration and
  // family reuses the artifacts. Scoped to this call — the cache borrows
  // the suite's tables.
  std::optional<ProfileCache> profiles;
  if (options.use_profile_cache) {
    profiles.emplace(options.profile_spec);
    run.profiles = &*profiles;
  }
  // One artifact cache for the whole campaign: each (table, family,
  // prepare-key) artifact is built once; configurations that only sweep
  // score-stage parameters share it. Scoped to this call — artifacts
  // borrow the suite's tables.
  std::optional<ArtifactCache> artifacts;
  if (options.use_artifact_cache) {
    artifacts.emplace();
    run.artifacts = &*artifacts;
  }

  CampaignReport report;
  report.num_pairs = suite.size();
  for (const MethodFamily& family : families) {
    if (!options.family_filter.empty() &&
        std::find(options.family_filter.begin(),
                  options.family_filter.end(),
                  family.name) == options.family_filter.end()) {
      continue;
    }
    SpanScope family_span(options.tracer, "campaign", "family", family.name,
                          campaign_span.id());
    run.parent_span = family_span.id();
    report.num_configurations += family.grid.size();
    CampaignFamilyReport fr;
    fr.family = family.name;
    fr.outcomes = RunFamilyOnSuiteParallel(family, suite, options.num_threads,
                                           run, options.granularity);
    fr.by_scenario = AggregateByScenario(fr.outcomes);
    fr.avg_runtime_ms = AverageRuntimeMsPerRun(fr.outcomes);
    // Failures and retries flow through the registry: the outcomes'
    // deterministic per-pair counts are accumulated as labelled
    // counters, and the report's taxonomy is read back from them — the
    // registry is the source of truth, the report a deterministic view.
    for (const FamilyPairOutcome& o : fr.outcomes) {
      fr.failed_experiments += o.failed_runs;
      fr.retry_attempts += o.retries;
      if (o.retries > 0) {
        metrics
            .CounterFor("valentine_experiment_retries_total",
                        {{"family", family.name}})
            ->Increment(o.retries);
      }
      for (const auto& [code, count] : o.failure_counts) {
        metrics
            .CounterFor("valentine_experiment_failures_total",
                        {{"family", family.name},
                         {"code", StatusCodeName(code)}})
            ->Increment(count);
      }
    }
    for (const MetricsRegistry::CounterSample& sample :
         metrics.CounterSamples()) {
      if (sample.name != "valentine_experiment_failures_total") continue;
      std::string code_name, family_name;
      for (const auto& [key, value] : sample.labels) {
        if (key == "code") code_name = value;
        if (key == "family") family_name = value;
      }
      if (family_name != family.name) continue;
      std::optional<StatusCode> code = StatusCodeFromName(code_name);
      if (code.has_value()) {
        fr.failure_taxonomy.emplace_back(*code, sample.value);
      }
    }
    std::sort(fr.failure_taxonomy.begin(), fr.failure_taxonomy.end());
    family_span.Attr("pairs", std::to_string(suite.size()));
    family_span.Attr("configs", std::to_string(family.grid.size()));
    report.failed_experiments += fr.failed_experiments;
    report.num_experiments += family.grid.size() * suite.size();
    report.families.push_back(std::move(fr));
  }
  // Artifact-cache counters are interleaving-dependent (which thread
  // wins a build race varies), so they are exported only through the
  // registry — the single exclusion point from the report byte-identity
  // contract — never as report fields.
  if (artifacts.has_value()) {
    for (const auto& [family, stats] : artifacts->StatsSnapshot()) {
      metrics
          .CounterFor("valentine_artifact_cache_hits_total",
                      {{"family", family}})
          ->Increment(stats.hits);
      metrics
          .CounterFor("valentine_artifact_cache_misses_total",
                      {{"family", family}})
          ->Increment(stats.misses);
      metrics
          .CounterFor("valentine_artifact_cache_builds_total",
                      {{"family", family}})
          ->Increment(stats.builds);
    }
  }
  campaign_span.End();
  if (options.metrics != nullptr) options.metrics->MergeFrom(metrics);
  return report;
}

CampaignReport RunCampaign(const std::vector<Table>& sources,
                           const std::vector<MethodFamily>& families,
                           const CampaignOptions& options) {
  std::vector<DatasetPair> suite;
  uint64_t seed = options.suite.seed;
  for (const Table& source : sources) {
    PairSuiteOptions per_source = options.suite;
    per_source.seed = seed;
    seed += 1000;
    for (auto& pair : BuildFabricatedSuite(source, per_source)) {
      suite.push_back(std::move(pair));
    }
  }
  return RunCampaignOnSuite(suite, families, options);
}

}  // namespace valentine
