#include "harness/campaign.h"

#include <algorithm>

#include "harness/parallel.h"

namespace valentine {

CampaignReport RunCampaignOnSuite(const std::vector<DatasetPair>& suite,
                                  const std::vector<MethodFamily>& families,
                                  const CampaignOptions& options) {
  CampaignReport report;
  report.num_pairs = suite.size();
  for (const MethodFamily& family : families) {
    if (!options.family_filter.empty() &&
        std::find(options.family_filter.begin(),
                  options.family_filter.end(),
                  family.name) == options.family_filter.end()) {
      continue;
    }
    report.num_configurations += family.grid.size();
    CampaignFamilyReport fr;
    fr.family = family.name;
    fr.outcomes =
        RunFamilyOnSuiteParallel(family, suite, options.num_threads);
    fr.by_scenario = AggregateByScenario(fr.outcomes);
    fr.avg_runtime_ms = AverageRuntimeMsPerRun(fr.outcomes);
    report.num_experiments += family.grid.size() * suite.size();
    report.families.push_back(std::move(fr));
  }
  return report;
}

CampaignReport RunCampaign(const std::vector<Table>& sources,
                           const std::vector<MethodFamily>& families,
                           const CampaignOptions& options) {
  std::vector<DatasetPair> suite;
  uint64_t seed = options.suite.seed;
  for (const Table& source : sources) {
    PairSuiteOptions per_source = options.suite;
    per_source.seed = seed;
    seed += 1000;
    for (auto& pair : BuildFabricatedSuite(source, per_source)) {
      suite.push_back(std::move(pair));
    }
  }
  return RunCampaignOnSuite(suite, families, options);
}

}  // namespace valentine
