#ifndef VALENTINE_HARNESS_CAMPAIGN_H_
#define VALENTINE_HARNESS_CAMPAIGN_H_

/// \file campaign.h
/// Whole-campaign orchestration: the paper's Fig. 1 pipeline (fabricate
/// suites from source tables -> run every configuration of every method
/// family -> aggregate per scenario) as one library call, so embedders
/// and the benches share the same driver.

#include <string>
#include <vector>

#include "harness/parallel.h"
#include "harness/param_grid.h"
#include "harness/runner.h"

namespace valentine {

/// Campaign configuration.
struct CampaignOptions {
  PairSuiteOptions suite;
  /// Threads for the experiment runner (0 = hardware concurrency).
  size_t num_threads = 0;
  /// When non-empty, only families whose name appears here run.
  std::vector<std::string> family_filter;
  /// Per-experiment deadlines / retries / backoff (default: legacy
  /// behaviour — no budget, no retries).
  ExecutionPolicy policy;
  /// When non-empty, experiments are journaled to this JSONL path and
  /// a killed campaign resumes from it: completed (family, pair,
  /// config) triples — including quarantined failures — are replayed,
  /// and the final report is byte-identical to an uninterrupted run
  /// (modulo wall-clock runtime fields).
  std::string journal_path;
  /// Share one ProfileCache across every family and configuration of
  /// the campaign, so per-column artifacts (distinct values, sets,
  /// histograms, MinHash sketches, text/numeric stats) are computed
  /// once per table instead of once per experiment. Reports are
  /// byte-identical either way (modulo wall-clock runtime fields).
  bool use_profile_cache = true;
  /// Artifact parameters for the shared cache; the defaults match the
  /// matcher defaults, which is what makes the artifacts servable.
  ProfileSpec profile_spec;
  /// Work slicing for the thread pool: kConfig (the default) also
  /// parallelizes the grid inside each pair, so small suites with wide
  /// grids saturate the cores. Either value yields byte-identical
  /// reports.
  ParallelGranularity granularity = ParallelGranularity::kConfig;
  /// Share one prepared-table ArtifactCache across every family and
  /// configuration of the campaign: each (table, family, prepare-key)
  /// artifact is built once and all configurations sharing the key
  /// score against it. Reports are byte-identical either way (modulo
  /// wall-clock runtime fields and the cache-stats diagnostics).
  bool use_artifact_cache = true;
  /// Observability (obs/), all optional and borrowed. `clock` is the
  /// timing source for every runtime measurement in the campaign
  /// (inject a FakeClock for byte-reproducible reports); `tracer`
  /// receives the campaign/family/experiment/attempt/prepare/score span
  /// tree; `metrics` receives the campaign's counters and histograms
  /// (merged in at the end, so one registry can span campaigns without
  /// double-counting). The report is byte-identical with or without
  /// them.
  const Clock* clock = nullptr;
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// Aggregated results of one family over the campaign suite.
struct CampaignFamilyReport {
  std::string family;
  std::vector<ScenarioStats> by_scenario;
  double avg_runtime_ms = 0.0;
  std::vector<FamilyPairOutcome> outcomes;
  size_t failed_experiments = 0;  ///< terminal non-OK configurations
  size_t retry_attempts = 0;      ///< attempts beyond the first, summed
  /// Failure taxonomy over the whole family, sorted by code.
  std::vector<std::pair<StatusCode, size_t>> failure_taxonomy;
};

/// Full campaign output. Every field here is covered by the
/// byte-identity contract (parallel == sequential == resumed, tracing
/// on == off); interleaving-dependent diagnostics — cache hit/miss
/// splits, runtime histograms — live on the MetricsRegistry instead
/// (valentine_artifact_cache_*, valentine_profile_cache_*), the single
/// exclusion point from that contract.
struct CampaignReport {
  size_t num_pairs = 0;
  size_t num_configurations = 0;
  size_t num_experiments = 0;
  size_t failed_experiments = 0;
  std::vector<CampaignFamilyReport> families;
};

/// Fabricates the suite from every source table and runs the families.
CampaignReport RunCampaign(const std::vector<Table>& sources,
                           const std::vector<MethodFamily>& families,
                           const CampaignOptions& options = {});

/// Convenience: campaign over an already-fabricated suite.
CampaignReport RunCampaignOnSuite(const std::vector<DatasetPair>& suite,
                                  const std::vector<MethodFamily>& families,
                                  const CampaignOptions& options = {});

}  // namespace valentine

#endif  // VALENTINE_HARNESS_CAMPAIGN_H_
