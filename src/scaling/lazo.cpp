#include "scaling/lazo.h"

#include <algorithm>

namespace valentine {

LazoEstimate EstimateLazo(const LazoSketch& a, const LazoSketch& b) {
  LazoEstimate out;
  if (a.cardinality == 0 && b.cardinality == 0) {
    out.jaccard = 1.0;
    return out;
  }
  if (a.cardinality == 0 || b.cardinality == 0) return out;

  double j = a.signature.EstimateJaccard(b.signature);
  double total = static_cast<double>(a.cardinality + b.cardinality);
  double inter = j / (1.0 + j) * total;
  // The intersection can never exceed the smaller set.
  inter = std::min(inter, static_cast<double>(
                              std::min(a.cardinality, b.cardinality)));
  out.jaccard = j;
  out.intersection_size = inter;
  out.containment_a_in_b = inter / static_cast<double>(a.cardinality);
  out.containment_b_in_a = inter / static_cast<double>(b.cardinality);
  out.containment_a_in_b = std::min(out.containment_a_in_b, 1.0);
  out.containment_b_in_a = std::min(out.containment_b_in_a, 1.0);
  return out;
}

}  // namespace valentine
