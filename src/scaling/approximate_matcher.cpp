#include "scaling/approximate_matcher.h"

namespace valentine {

Result<MatchResult> ApproximateOverlapMatcher::MatchWithContext(
    const Table& source, const Table& target,
    const MatchContext& context) const {
  const size_t sig_size = options_.lsh.bands * options_.lsh.rows_per_band;

  // Sketch every column once.
  std::vector<LazoSketch> src_sketches;
  src_sketches.reserve(source.num_columns());
  for (const Column& c : source.columns()) {
    src_sketches.push_back(LazoSketch::Build(c.DistinctStringSet(), sig_size));
  }

  MatchResult result;
  if (options_.estimate_all_pairs) {
    std::vector<LazoSketch> tgt_sketches;
    tgt_sketches.reserve(target.num_columns());
    for (const Column& c : target.columns()) {
      tgt_sketches.push_back(
          LazoSketch::Build(c.DistinctStringSet(), sig_size));
    }
    for (size_t i = 0; i < source.num_columns(); ++i) {
      VALENTINE_RETURN_NOT_OK(context.Check("lazo all-pairs estimation"));
      for (size_t j = 0; j < target.num_columns(); ++j) {
        LazoEstimate est = EstimateLazo(src_sketches[i], tgt_sketches[j]);
        if (est.jaccard >= options_.min_jaccard) {
          result.Add({source.name(), source.column(i).name()},
                     {target.name(), target.column(j).name()}, est.jaccard);
        }
      }
    }
    result.Sort();
    return result;
  }

  // Index the target once; prune source columns through the LSH.
  LshIndex index(options_.lsh);
  for (const Column& c : target.columns()) {
    // Duplicate column names keep the first occurrence (the index
    // rejects re-adds); empty columns register but never band, so they
    // can no longer surface as spurious jaccard-1.0 candidates.
    Status added = index.Add(c.name(), c.DistinctStringSet());
    if (!added.ok()) continue;
  }
  for (size_t i = 0; i < source.num_columns(); ++i) {
    VALENTINE_RETURN_NOT_OK(context.Check("lsh pruned query"));
    const Column& c = source.column(i);
    for (const auto& [key, jaccard] :
         index.QueryJaccard(c.DistinctStringSet(), options_.min_jaccard)) {
      result.Add({source.name(), c.name()}, {target.name(), key}, jaccard);
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
