#ifndef VALENTINE_SCALING_APPROXIMATE_MATCHER_H_
#define VALENTINE_SCALING_APPROXIMATE_MATCHER_H_

/// \file approximate_matcher.h
/// A sketch-based value-overlap matcher: the scalable counterpart of the
/// Jaccard-Levenshtein baseline (paper §IX: "future research should
/// focus on approximations of existing ... methods to allow for better
/// scaling"). Column value sets are sketched once (MinHash + cardinality,
/// à la Lazo); candidate pairs come from an LSH index instead of the
/// all-pairs loop; scores are Lazo-estimated Jaccard values.

#include "matchers/matcher.h"
#include "scaling/lsh_index.h"

namespace valentine {

/// Approximate matcher parameters.
struct ApproximateOverlapOptions {
  LshOptions lsh;
  /// Pairs with an estimated Jaccard below this are dropped (0 ranks
  /// every LSH candidate pair).
  double min_jaccard = 0.0;
  /// When true, skip LSH candidate pruning and estimate every pair —
  /// isolates the sketching error from the pruning error in ablations.
  bool estimate_all_pairs = false;
};

/// \brief LSH + Lazo approximate value-overlap matcher.
class ApproximateOverlapMatcher : public ColumnMatcher {
 public:
  explicit ApproximateOverlapMatcher(ApproximateOverlapOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "ApproxOverlap"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kInstanceBased;
  }
  std::vector<MatchType> Capabilities() const override {
    return {MatchType::kValueOverlap};
  }
  [[nodiscard]] Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const override;

 private:
  ApproximateOverlapOptions options_;
};

}  // namespace valentine

#endif  // VALENTINE_SCALING_APPROXIMATE_MATCHER_H_
