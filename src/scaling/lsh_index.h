#ifndef VALENTINE_SCALING_LSH_INDEX_H_
#define VALENTINE_SCALING_LSH_INDEX_H_

/// \file lsh_index.h
/// MinHash-LSH domain index in the spirit of LSH Ensemble (Zhu,
/// Nargesian, Pu, Miller — "internet-scale domain search", cited in the
/// paper's §IX): signatures are banded, bands are hashed into buckets,
/// and a query only compares against columns that collide in at least
/// one band. Partitioning by set cardinality sharpens containment
/// queries when domain sizes are skewed.
///
/// Correctness contracts (regression-tested in tests/scaling_test.cpp):
///  * Keys are unique. Adding a key that is already present is rejected
///    with kInvalidArgument instead of silently remapping the key to a
///    new sketch while stale postings keep serving the old one.
///  * Query paths are id-based end to end: a candidate id scores
///    against exactly the sketch that was banded under that id, never
///    against whatever sketch a same-named key pointed to last.
///  * Empty sets never band. An empty set leaves every signature slot
///    at the UINT64_MAX sentinel, so before this guard every pair of
///    empty domains collided in every band and slot and surfaced as
///    spurious candidates with Lazo jaccard 1.0. Empty sets are
///    registered (size/Contains see them) but never enter postings, and
///    empty queries return no candidates.
///  * Removal is supported: Remove(key) physically erases the entry's
///    postings, so an index that tracked a mutating repository serves
///    exactly the live keys.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/status.h"
#include "scaling/lazo.h"

namespace valentine {

/// LSH configuration. With `bands` x `rows_per_band` = signature size,
/// the collision probability of two sets with Jaccard s is
/// 1 - (1 - s^rows)^bands (the usual S-curve).
struct LshOptions {
  size_t bands = 16;
  size_t rows_per_band = 8;
  /// Number of cardinality partitions (1 disables partitioning).
  size_t cardinality_partitions = 4;
};

/// Geometric cardinality partition: [0,100) -> 0, [100,1k) -> 1,
/// [1k,10k) -> 2, ... capped at `partitions - 1`. The boundary
/// saturates instead of overflowing size_t, so extreme partition counts
/// (where 100 * 10^p wraps) keep the mapping monotonic in cardinality.
size_t LshCardinalityPartition(size_t cardinality, size_t partitions);

/// \brief Banded MinHash-LSH index over named value sets.
class LshIndex {
 public:
  explicit LshIndex(LshOptions options = {});

  /// Number of hash slots per signature (bands x rows).
  size_t signature_size() const {
    return options_.bands * options_.rows_per_band;
  }

  /// Sketches and adds a named set. Fails with kInvalidArgument on a
  /// duplicate key (remove first to replace).
  [[nodiscard]] Status Add(const std::string& key,
                           const std::unordered_set<std::string>& set);

  /// Adds a pre-built sketch (the persistent-store load path: a sketch
  /// deserialized from disk bands identically to one built inline).
  /// Fails on duplicate keys and on sketches whose signature width
  /// disagrees with signature_size().
  [[nodiscard]] Status AddSketch(const std::string& key, LazoSketch sketch);

  /// Removes a key and its postings; kNotFound when absent. The key may
  /// be re-added afterwards (with a fresh sketch).
  [[nodiscard]] Status Remove(const std::string& key);

  bool Contains(const std::string& key) const {
    return key_to_id_.count(key) != 0;
  }

  /// Number of live (added and not removed) keys.
  size_t size() const { return live_count_; }

  /// Keys whose signatures collide with the query in >= 1 band;
  /// the superset from which exact/estimated verification proceeds.
  /// Sorted by key. Empty queries produce no candidates.
  std::vector<std::string> Candidates(
      const std::unordered_set<std::string>& query) const;

  /// Containment-oriented candidates: single-slot (r = 1) probing, the
  /// recall-end of the banding S-curve. A small query contained in a
  /// large domain has low Jaccard, so Jaccard banding would miss it;
  /// slot-level collisions (expected J x slots agreeing) do not.
  std::vector<std::string> ContainmentCandidates(
      const std::unordered_set<std::string>& query) const;

  /// Candidate keys with Lazo-estimated Jaccard >= `min_jaccard`,
  /// ranked by estimate (descending).
  std::vector<std::pair<std::string, double>> QueryJaccard(
      const std::unordered_set<std::string>& query,
      double min_jaccard) const;

  /// Candidate keys with estimated containment(query in candidate) >=
  /// `min_containment`, ranked descending — the joinability query of
  /// LSH Ensemble.
  std::vector<std::pair<std::string, double>> QueryContainment(
      const std::unordered_set<std::string>& query,
      double min_containment) const;

 private:
  size_t PartitionOf(size_t cardinality) const;
  void InsertPostings(size_t id, const LazoSketch& sketch);
  void ErasePostings(size_t id, const LazoSketch& sketch);

  /// Live entry ids colliding with the query in >= 1 band (sorted,
  /// deduplicated). Empty-query guard lives in the callers.
  std::vector<size_t> CandidateIds(const LazoSketch& query) const;
  /// Live entry ids colliding in >= 1 single slot (sorted, dedup).
  std::vector<size_t> ContainmentCandidateIds(const LazoSketch& query) const;

  LshOptions options_;
  std::vector<std::string> keys_;      ///< id -> key (id slot never reused)
  std::vector<LazoSketch> sketches_;   ///< id -> the sketch that was banded
  std::vector<uint8_t> live_;          ///< id -> still registered?
  size_t live_count_ = 0;
  std::unordered_map<std::string, size_t> key_to_id_;
  /// partition -> band -> bucket-hash -> entry ids.
  std::vector<std::vector<std::unordered_map<uint64_t, std::vector<size_t>>>>
      buckets_;
  /// slot -> min-value -> entry ids (r = 1 probing for containment).
  std::vector<std::unordered_map<uint64_t, std::vector<size_t>>>
      slot_buckets_;
};

}  // namespace valentine

#endif  // VALENTINE_SCALING_LSH_INDEX_H_
