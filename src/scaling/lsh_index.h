#ifndef VALENTINE_SCALING_LSH_INDEX_H_
#define VALENTINE_SCALING_LSH_INDEX_H_

/// \file lsh_index.h
/// MinHash-LSH domain index in the spirit of LSH Ensemble (Zhu,
/// Nargesian, Pu, Miller — "internet-scale domain search", cited in the
/// paper's §IX): signatures are banded, bands are hashed into buckets,
/// and a query only compares against columns that collide in at least
/// one band. Partitioning by set cardinality sharpens containment
/// queries when domain sizes are skewed.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "scaling/lazo.h"

namespace valentine {

/// LSH configuration. With `bands` x `rows_per_band` = signature size,
/// the collision probability of two sets with Jaccard s is
/// 1 - (1 - s^rows)^bands (the usual S-curve).
struct LshOptions {
  size_t bands = 16;
  size_t rows_per_band = 8;
  /// Number of cardinality partitions (1 disables partitioning).
  size_t cardinality_partitions = 4;
};

/// \brief Banded MinHash-LSH index over named value sets.
class LshIndex {
 public:
  explicit LshIndex(LshOptions options = {});

  /// Number of hash slots per signature (bands x rows).
  size_t signature_size() const {
    return options_.bands * options_.rows_per_band;
  }

  /// Adds a named set to the index.
  void Add(const std::string& key,
           const std::unordered_set<std::string>& set);

  size_t size() const { return sketches_.size(); }

  /// Keys whose signatures collide with the query in >= 1 band;
  /// the superset from which exact/estimated verification proceeds.
  std::vector<std::string> Candidates(
      const std::unordered_set<std::string>& query) const;

  /// Containment-oriented candidates: single-slot (r = 1) probing, the
  /// recall-end of the banding S-curve. A small query contained in a
  /// large domain has low Jaccard, so Jaccard banding would miss it;
  /// slot-level collisions (expected J x slots agreeing) do not.
  std::vector<std::string> ContainmentCandidates(
      const std::unordered_set<std::string>& query) const;

  /// Candidate keys with Lazo-estimated Jaccard >= `min_jaccard`,
  /// ranked by estimate (descending).
  std::vector<std::pair<std::string, double>> QueryJaccard(
      const std::unordered_set<std::string>& query,
      double min_jaccard) const;

  /// Candidate keys with estimated containment(query in candidate) >=
  /// `min_containment`, ranked descending — the joinability query of
  /// LSH Ensemble.
  std::vector<std::pair<std::string, double>> QueryContainment(
      const std::unordered_set<std::string>& query,
      double min_containment) const;

 private:
  /// Raw (unfolded) per-slot MinHash values for banding.
  std::vector<uint64_t> RawSignature(
      const std::unordered_set<std::string>& set) const;
  size_t PartitionOf(size_t cardinality) const;

  LshOptions options_;
  std::vector<std::string> keys_;
  std::vector<LazoSketch> sketches_;
  std::unordered_map<std::string, size_t> key_to_id_;
  /// partition -> band -> bucket-hash -> entry ids.
  std::vector<std::vector<std::unordered_map<uint64_t, std::vector<size_t>>>>
      buckets_;
  /// slot -> min-value -> entry ids (r = 1 probing for containment).
  std::vector<std::unordered_map<uint64_t, std::vector<size_t>>>
      slot_buckets_;
};

}  // namespace valentine

#endif  // VALENTINE_SCALING_LSH_INDEX_H_
