#include "scaling/lsh_index.h"

#include <algorithm>

namespace valentine {

namespace {
uint64_t HashBand(const uint64_t* values, size_t n, uint64_t band_seed) {
  uint64_t h = 1469598103934665603ULL ^ (band_seed * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < n; ++i) {
    h ^= values[i];
    h *= 1099511628211ULL;
    h ^= h >> 33;
  }
  return h;
}
}  // namespace

LshIndex::LshIndex(LshOptions options) : options_(options) {
  if (options_.bands == 0) options_.bands = 1;
  if (options_.rows_per_band == 0) options_.rows_per_band = 1;
  if (options_.cardinality_partitions == 0) {
    options_.cardinality_partitions = 1;
  }
  buckets_.resize(options_.cardinality_partitions);
  for (auto& partition : buckets_) partition.resize(options_.bands);
  slot_buckets_.resize(options_.bands * options_.rows_per_band);
}

size_t LshIndex::PartitionOf(size_t cardinality) const {
  // Geometric cardinality boundaries: [0,100), [100,1k), [1k,10k), ...
  size_t partition = 0;
  size_t boundary = 100;
  while (partition + 1 < options_.cardinality_partitions &&
         cardinality >= boundary) {
    ++partition;
    boundary *= 10;
  }
  return partition;
}

void LshIndex::Add(const std::string& key,
                   const std::unordered_set<std::string>& set) {
  size_t id = keys_.size();
  keys_.push_back(key);
  key_to_id_[key] = id;
  LazoSketch sketch = LazoSketch::Build(set, signature_size());
  const std::vector<uint64_t>& mins = sketch.signature.mins();
  size_t partition = PartitionOf(sketch.cardinality);
  for (size_t b = 0; b < options_.bands; ++b) {
    uint64_t bucket = HashBand(mins.data() + b * options_.rows_per_band,
                               options_.rows_per_band, b);
    buckets_[partition][b][bucket].push_back(id);
  }
  for (size_t s = 0; s < mins.size(); ++s) {
    slot_buckets_[s][mins[s]].push_back(id);
  }
  sketches_.push_back(std::move(sketch));
}

std::vector<std::string> LshIndex::ContainmentCandidates(
    const std::unordered_set<std::string>& query) const {
  LazoSketch sketch = LazoSketch::Build(query, signature_size());
  const std::vector<uint64_t>& mins = sketch.signature.mins();
  std::unordered_set<size_t> hits;
  for (size_t s = 0; s < mins.size(); ++s) {
    auto it = slot_buckets_[s].find(mins[s]);
    if (it == slot_buckets_[s].end()) continue;
    for (size_t id : it->second) hits.insert(id);
  }
  std::vector<std::string> out;
  out.reserve(hits.size());
  for (size_t id : hits) out.push_back(keys_[id]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> LshIndex::Candidates(
    const std::unordered_set<std::string>& query) const {
  LazoSketch sketch = LazoSketch::Build(query, signature_size());
  const std::vector<uint64_t>& mins = sketch.signature.mins();
  std::unordered_set<size_t> hits;
  // A containment-style query must probe every cardinality partition:
  // the matching domain may be much larger than the query.
  for (const auto& partition : buckets_) {
    for (size_t b = 0; b < options_.bands; ++b) {
      uint64_t bucket = HashBand(mins.data() + b * options_.rows_per_band,
                                 options_.rows_per_band, b);
      auto it = partition[b].find(bucket);
      if (it == partition[b].end()) continue;
      for (size_t id : it->second) hits.insert(id);
    }
  }
  std::vector<std::string> out;
  out.reserve(hits.size());
  for (size_t id : hits) out.push_back(keys_[id]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> LshIndex::QueryJaccard(
    const std::unordered_set<std::string>& query, double min_jaccard) const {
  LazoSketch q = LazoSketch::Build(query, signature_size());
  std::vector<std::pair<std::string, double>> out;
  for (const std::string& key : Candidates(query)) {
    const LazoSketch& candidate = sketches_[key_to_id_.at(key)];
    LazoEstimate est = EstimateLazo(q, candidate);
    if (est.jaccard >= min_jaccard) out.emplace_back(key, est.jaccard);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::vector<std::pair<std::string, double>> LshIndex::QueryContainment(
    const std::unordered_set<std::string>& query,
    double min_containment) const {
  LazoSketch q = LazoSketch::Build(query, signature_size());
  std::vector<std::pair<std::string, double>> out;
  for (const std::string& key : ContainmentCandidates(query)) {
    const LazoSketch& candidate = sketches_[key_to_id_.at(key)];
    LazoEstimate est = EstimateLazo(q, candidate);
    if (est.containment_a_in_b >= min_containment) {
      out.emplace_back(key, est.containment_a_in_b);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace valentine
