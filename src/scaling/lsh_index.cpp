#include "scaling/lsh_index.h"

#include <algorithm>
#include <limits>

namespace valentine {

namespace {
uint64_t HashBand(const uint64_t* values, size_t n, uint64_t band_seed) {
  uint64_t h = 1469598103934665603ULL ^ (band_seed * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < n; ++i) {
    h ^= values[i];
    h *= 1099511628211ULL;
    h ^= h >> 33;
  }
  return h;
}

/// An empty set leaves every MinHash slot at the UINT64_MAX sentinel;
/// banding such a signature makes every pair of empty domains collide
/// everywhere. Empty sketches are registered but never posted/probed.
bool EmptySketch(const LazoSketch& sketch) {
  return sketch.cardinality == 0 || sketch.signature.empty_set();
}

void EraseIdFrom(std::unordered_map<uint64_t, std::vector<size_t>>* bucket_map,
                 uint64_t bucket, size_t id) {
  auto it = bucket_map->find(bucket);
  if (it == bucket_map->end()) return;
  auto& ids = it->second;
  ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
  if (ids.empty()) bucket_map->erase(it);
}
}  // namespace

size_t LshCardinalityPartition(size_t cardinality, size_t partitions) {
  // Geometric cardinality boundaries: [0,100), [100,1k), [1k,10k), ...
  size_t partition = 0;
  size_t boundary = 100;
  constexpr size_t kMax = std::numeric_limits<size_t>::max();
  while (partition + 1 < partitions && cardinality >= boundary) {
    ++partition;
    // Saturate: once the next boundary would wrap size_t, no cardinality
    // can reach it, so every larger set shares this partition.
    if (boundary > kMax / 10) break;
    boundary *= 10;
  }
  return partition;
}

LshIndex::LshIndex(LshOptions options) : options_(options) {
  if (options_.bands == 0) options_.bands = 1;
  if (options_.rows_per_band == 0) options_.rows_per_band = 1;
  if (options_.cardinality_partitions == 0) {
    options_.cardinality_partitions = 1;
  }
  buckets_.resize(options_.cardinality_partitions);
  for (auto& partition : buckets_) partition.resize(options_.bands);
  slot_buckets_.resize(options_.bands * options_.rows_per_band);
}

size_t LshIndex::PartitionOf(size_t cardinality) const {
  return LshCardinalityPartition(cardinality,
                                 options_.cardinality_partitions);
}

void LshIndex::InsertPostings(size_t id, const LazoSketch& sketch) {
  const std::vector<uint64_t>& mins = sketch.signature.mins();
  size_t partition = PartitionOf(sketch.cardinality);
  for (size_t b = 0; b < options_.bands; ++b) {
    uint64_t bucket = HashBand(mins.data() + b * options_.rows_per_band,
                               options_.rows_per_band, b);
    buckets_[partition][b][bucket].push_back(id);
  }
  for (size_t s = 0; s < mins.size(); ++s) {
    slot_buckets_[s][mins[s]].push_back(id);
  }
}

void LshIndex::ErasePostings(size_t id, const LazoSketch& sketch) {
  const std::vector<uint64_t>& mins = sketch.signature.mins();
  size_t partition = PartitionOf(sketch.cardinality);
  for (size_t b = 0; b < options_.bands; ++b) {
    uint64_t bucket = HashBand(mins.data() + b * options_.rows_per_band,
                               options_.rows_per_band, b);
    EraseIdFrom(&buckets_[partition][b], bucket, id);
  }
  for (size_t s = 0; s < mins.size(); ++s) {
    EraseIdFrom(&slot_buckets_[s], mins[s], id);
  }
}

Status LshIndex::Add(const std::string& key,
                     const std::unordered_set<std::string>& set) {
  return AddSketch(key, LazoSketch::Build(set, signature_size()));
}

Status LshIndex::AddSketch(const std::string& key, LazoSketch sketch) {
  if (key_to_id_.count(key) != 0) {
    return Status::InvalidArgument("LshIndex: duplicate key '" + key + "'");
  }
  if (sketch.signature.mins().size() != signature_size()) {
    return Status::InvalidArgument(
        "LshIndex: sketch signature width " +
        std::to_string(sketch.signature.mins().size()) +
        " does not match index signature size " +
        std::to_string(signature_size()));
  }
  size_t id = keys_.size();
  keys_.push_back(key);
  key_to_id_[key] = id;
  live_.push_back(1);
  ++live_count_;
  if (!EmptySketch(sketch)) InsertPostings(id, sketch);
  sketches_.push_back(std::move(sketch));
  return Status::OK();
}

Status LshIndex::Remove(const std::string& key) {
  auto it = key_to_id_.find(key);
  if (it == key_to_id_.end()) {
    return Status::NotFound("LshIndex: no key '" + key + "'");
  }
  size_t id = it->second;
  if (!EmptySketch(sketches_[id])) ErasePostings(id, sketches_[id]);
  live_[id] = 0;
  --live_count_;
  key_to_id_.erase(it);
  return Status::OK();
}

std::vector<size_t> LshIndex::CandidateIds(const LazoSketch& query) const {
  const std::vector<uint64_t>& mins = query.signature.mins();
  std::vector<size_t> hits;
  // A containment-style query must probe every cardinality partition:
  // the matching domain may be much larger than the query.
  for (const auto& partition : buckets_) {
    for (size_t b = 0; b < options_.bands; ++b) {
      uint64_t bucket = HashBand(mins.data() + b * options_.rows_per_band,
                                 options_.rows_per_band, b);
      auto it = partition[b].find(bucket);
      if (it == partition[b].end()) continue;
      for (size_t id : it->second) {
        if (live_[id]) hits.push_back(id);
      }
    }
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return hits;
}

std::vector<size_t> LshIndex::ContainmentCandidateIds(
    const LazoSketch& query) const {
  const std::vector<uint64_t>& mins = query.signature.mins();
  std::vector<size_t> hits;
  for (size_t s = 0; s < mins.size(); ++s) {
    auto it = slot_buckets_[s].find(mins[s]);
    if (it == slot_buckets_[s].end()) continue;
    for (size_t id : it->second) {
      if (live_[id]) hits.push_back(id);
    }
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return hits;
}

std::vector<std::string> LshIndex::Candidates(
    const std::unordered_set<std::string>& query) const {
  LazoSketch sketch = LazoSketch::Build(query, signature_size());
  if (EmptySketch(sketch)) return {};
  std::vector<std::string> out;
  for (size_t id : CandidateIds(sketch)) out.push_back(keys_[id]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> LshIndex::ContainmentCandidates(
    const std::unordered_set<std::string>& query) const {
  LazoSketch sketch = LazoSketch::Build(query, signature_size());
  if (EmptySketch(sketch)) return {};
  std::vector<std::string> out;
  for (size_t id : ContainmentCandidateIds(sketch)) out.push_back(keys_[id]);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, double>> LshIndex::QueryJaccard(
    const std::unordered_set<std::string>& query, double min_jaccard) const {
  LazoSketch q = LazoSketch::Build(query, signature_size());
  std::vector<std::pair<std::string, double>> out;
  if (EmptySketch(q)) return out;
  for (size_t id : CandidateIds(q)) {
    LazoEstimate est = EstimateLazo(q, sketches_[id]);
    if (est.jaccard >= min_jaccard) out.emplace_back(keys_[id], est.jaccard);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::vector<std::pair<std::string, double>> LshIndex::QueryContainment(
    const std::unordered_set<std::string>& query,
    double min_containment) const {
  LazoSketch q = LazoSketch::Build(query, signature_size());
  std::vector<std::pair<std::string, double>> out;
  if (EmptySketch(q)) return out;
  for (size_t id : ContainmentCandidateIds(q)) {
    LazoEstimate est = EstimateLazo(q, sketches_[id]);
    if (est.containment_a_in_b >= min_containment) {
      out.emplace_back(keys_[id], est.containment_a_in_b);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace valentine
