#ifndef VALENTINE_SCALING_LAZO_H_
#define VALENTINE_SCALING_LAZO_H_

/// \file lazo.h
/// Lazo-style coupled estimation of Jaccard similarity *and* containment
/// from MinHash signatures plus set cardinalities (Fernandez, Min, Nava,
/// Madden — ICDE 2019, cited by the paper's §IX as the direction for
/// scaling instance-based matching).
///
/// From an estimated Jaccard J and the two cardinalities, the
/// intersection size is |A ∩ B| ≈ J / (1 + J) * (|A| + |B|), which gives
/// both containments without a second pass over the data.

#include <cstddef>

#include "stats/minhash.h"

namespace valentine {

/// Jaccard + both containments, estimated together.
struct LazoEstimate {
  double jaccard = 0.0;
  double containment_a_in_b = 0.0;  ///< |A∩B| / |A|
  double containment_b_in_a = 0.0;  ///< |A∩B| / |B|
  double intersection_size = 0.0;
};

/// \brief A sketch of one set: signature + cardinality.
struct LazoSketch {
  MinHashSignature signature;
  size_t cardinality = 0;

  static LazoSketch Build(const std::unordered_set<std::string>& set,
                          size_t num_hashes = 128) {
    return {MinHashSignature::Build(set, num_hashes), set.size()};
  }
};

/// Estimates Jaccard and containment between two sketched sets.
LazoEstimate EstimateLazo(const LazoSketch& a, const LazoSketch& b);

}  // namespace valentine

#endif  // VALENTINE_SCALING_LAZO_H_
