#ifndef VALENTINE_METRICS_METRICS_H_
#define VALENTINE_METRICS_METRICS_H_

/// \file metrics.h
/// Effectiveness metrics for ranked match lists. The paper's headline
/// metric is Recall@k with k = |ground truth| (R-precision, §II-C);
/// Precision@k, MAP, and reference 1-1 P/R/F1 are provided for analysis
/// and ablations.

#include <vector>

#include "fabrication/fabricator.h"
#include "matchers/match_result.h"

namespace valentine {

/// True when the ranked match `m` corresponds to a ground-truth entry
/// (column names compared on both endpoints).
bool MatchesGroundTruth(const Match& m,
                        const std::vector<GroundTruthEntry>& gt);

/// Recall@k over a *sorted* result: (# relevant in top-k) / k.
double RecallAtK(const MatchResult& sorted_result,
                 const std::vector<GroundTruthEntry>& gt, size_t k);

/// The paper's metric: Recall@k with k = |ground truth|. Returns 0 when
/// the ground truth is empty.
double RecallAtGroundTruth(const MatchResult& sorted_result,
                           const std::vector<GroundTruthEntry>& gt);

/// Precision@k (equal to Recall@k when k = |gt|, see §II-C).
double PrecisionAtK(const MatchResult& sorted_result,
                    const std::vector<GroundTruthEntry>& gt, size_t k);

/// Mean average precision of the ranking w.r.t. the ground truth.
double MeanAveragePrecision(const MatchResult& sorted_result,
                            const std::vector<GroundTruthEntry>& gt);

/// Reference 1-1 metrics: greedily select a 1-1 assignment from the
/// ranking (highest score first, skipping used endpoints), thresholded.
struct OneToOneMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};
OneToOneMetrics OneToOneFromRanking(const MatchResult& sorted_result,
                                    const std::vector<GroundTruthEntry>& gt,
                                    double threshold);

/// Distribution summary used in the paper's box plots.
struct Summary {
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
  double mean = 0.0;
  size_t count = 0;
};
Summary Summarize(std::vector<double> values);

}  // namespace valentine

#endif  // VALENTINE_METRICS_METRICS_H_
