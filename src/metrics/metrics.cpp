#include "metrics/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace valentine {

bool MatchesGroundTruth(const Match& m,
                        const std::vector<GroundTruthEntry>& gt) {
  for (const auto& entry : gt) {
    if (m.source.column == entry.source_column &&
        m.target.column == entry.target_column) {
      return true;
    }
  }
  return false;
}

double RecallAtK(const MatchResult& sorted_result,
                 const std::vector<GroundTruthEntry>& gt, size_t k) {
  if (k == 0) return 0.0;
  size_t relevant = 0;
  size_t limit = std::min(k, sorted_result.size());
  for (size_t i = 0; i < limit; ++i) {
    if (MatchesGroundTruth(sorted_result[i], gt)) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(k);
}

double RecallAtGroundTruth(const MatchResult& sorted_result,
                           const std::vector<GroundTruthEntry>& gt) {
  return RecallAtK(sorted_result, gt, gt.size());
}

double PrecisionAtK(const MatchResult& sorted_result,
                    const std::vector<GroundTruthEntry>& gt, size_t k) {
  if (k == 0) return 0.0;
  size_t limit = std::min(k, sorted_result.size());
  if (limit == 0) return 0.0;
  size_t relevant = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (MatchesGroundTruth(sorted_result[i], gt)) ++relevant;
  }
  return static_cast<double>(relevant) / static_cast<double>(limit);
}

double MeanAveragePrecision(const MatchResult& sorted_result,
                            const std::vector<GroundTruthEntry>& gt) {
  if (gt.empty()) return 0.0;
  size_t relevant = 0;
  double sum_precision = 0.0;
  for (size_t i = 0; i < sorted_result.size(); ++i) {
    if (MatchesGroundTruth(sorted_result[i], gt)) {
      ++relevant;
      sum_precision +=
          static_cast<double>(relevant) / static_cast<double>(i + 1);
    }
  }
  return sum_precision / static_cast<double>(gt.size());
}

OneToOneMetrics OneToOneFromRanking(const MatchResult& sorted_result,
                                    const std::vector<GroundTruthEntry>& gt,
                                    double threshold) {
  std::unordered_set<std::string> used_src;
  std::unordered_set<std::string> used_tgt;
  size_t selected = 0;
  size_t correct = 0;
  for (size_t i = 0; i < sorted_result.size(); ++i) {
    const Match& m = sorted_result[i];
    if (m.score < threshold) break;
    if (used_src.count(m.source.column) || used_tgt.count(m.target.column)) {
      continue;
    }
    used_src.insert(m.source.column);
    used_tgt.insert(m.target.column);
    ++selected;
    if (MatchesGroundTruth(m, gt)) ++correct;
  }
  OneToOneMetrics out;
  if (selected > 0) {
    out.precision = static_cast<double>(correct) / selected;
  }
  if (!gt.empty()) {
    out.recall = static_cast<double>(correct) / gt.size();
  }
  if (out.precision + out.recall > 0.0) {
    out.f1 = 2.0 * out.precision * out.recall / (out.precision + out.recall);
  }
  return out;
}

Summary Summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  size_t mid = values.size() / 2;
  s.median = (values.size() % 2 == 1)
                 ? values[mid]
                 : 0.5 * (values[mid - 1] + values[mid]);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

}  // namespace valentine
