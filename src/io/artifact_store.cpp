#include "io/artifact_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "matchers/artifact_cache.h"

namespace valentine {

namespace {

constexpr char kMagic[4] = {'V', 'D', 'A', '1'};
constexpr uint32_t kVersion = 1;

// ---------------------------------------------------------------------------
// Canonical little-endian writers. Everything multi-byte goes through
// these so the byte stream is identical on every platform.

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutBool(std::string* out, bool v) {
  out->push_back(v ? '\x01' : '\x00');
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

void PutStringVector(std::string* out, const std::vector<std::string>& v) {
  PutU64(out, v.size());
  for (const std::string& s : v) PutString(out, s);
}

/// Unordered sets are canonicalized by sorting: the same set always
/// yields the same bytes regardless of hash-table iteration order.
void PutStringSet(std::string* out,
                  const std::unordered_set<std::string>& set) {
  // Copy feeds std::sort immediately below, so hash order is harmless.
  std::vector<std::string> sorted(
      set.begin(), set.end());  // lint:allow(unordered-iteration)
  std::sort(sorted.begin(), sorted.end());
  PutStringVector(out, sorted);
}

void PutDoubleVector(std::string* out, const std::vector<double>& v) {
  PutU64(out, v.size());
  for (double d : v) PutDouble(out, d);
}

void PutU64Vector(std::string* out, const std::vector<uint64_t>& v) {
  PutU64(out, v.size());
  for (uint64_t x : v) PutU64(out, x);
}

// ---------------------------------------------------------------------------
// Bounds-checked reader. Every Read* returns false on truncation; the
// parser surfaces that as ParseError instead of reading garbage.

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool ReadRaw(void* dst, size_t n) {
    if (bytes_.size() - pos_ < n) return false;
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    char buf[4];
    if (!ReadRaw(buf, 4)) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(buf[i]))
            << (8 * i);
    }
    return true;
  }

  bool ReadU64(uint64_t* v) {
    char buf[8];
    if (!ReadRaw(buf, 8)) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(buf[i]))
            << (8 * i);
    }
    return true;
  }

  bool ReadDouble(double* v) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  bool ReadBool(bool* v) {
    char c;
    if (!ReadRaw(&c, 1)) return false;
    *v = (c != '\x00');
    return true;
  }

  bool ReadString(std::string* s) {
    uint64_t len = 0;
    if (!ReadU64(&len)) return false;
    if (bytes_.size() - pos_ < len) return false;
    s->assign(bytes_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool ReadStringVector(std::vector<std::string>* v) {
    uint64_t n = 0;
    if (!ReadU64(&n)) return false;
    // Even a zero-length string costs an 8-byte length prefix, so a
    // count beyond remaining/8 is corrupt — reject before reserving.
    if (n > (bytes_.size() - pos_) / 8) return false;
    v->clear();
    v->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      std::string s;
      if (!ReadString(&s)) return false;
      v->push_back(std::move(s));
    }
    return true;
  }

  bool ReadStringSet(std::unordered_set<std::string>* set) {
    std::vector<std::string> v;
    if (!ReadStringVector(&v)) return false;
    set->clear();
    set->reserve(v.size());
    for (std::string& s : v) set->insert(std::move(s));
    return true;
  }

  bool ReadDoubleVector(std::vector<double>* v) {
    uint64_t n = 0;
    if (!ReadU64(&n)) return false;
    if (n > (bytes_.size() - pos_) / 8) return false;
    v->assign(n, 0.0);
    for (uint64_t i = 0; i < n; ++i) {
      if (!ReadDouble(&(*v)[i])) return false;
    }
    return true;
  }

  bool ReadU64Vector(std::vector<uint64_t>* v) {
    uint64_t n = 0;
    if (!ReadU64(&n)) return false;
    if (n > (bytes_.size() - pos_) / 8) return false;
    v->assign(n, 0);
    for (uint64_t i = 0; i < n; ++i) {
      if (!ReadU64(&(*v)[i])) return false;
    }
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

void PutSignature(std::string* out, const MinHashSignature& sig) {
  PutBool(out, sig.empty_set());
  PutU64Vector(out, sig.mins());
}

bool ReadSignature(Reader* r, MinHashSignature* sig) {
  bool empty_set = false;
  std::vector<uint64_t> mins;
  if (!r->ReadBool(&empty_set) || !r->ReadU64Vector(&mins)) return false;
  *sig = MinHashSignature::FromMins(std::move(mins), empty_set);
  return true;
}

void PutSpec(std::string* out, const ProfileSpec& spec) {
  PutU64(out, spec.distinct_cap);
  PutU64(out, spec.set_cap);
  PutU64(out, spec.histogram_cap);
  PutU64(out, spec.num_bins);
  PutU64(out, spec.minhash_hashes);
  PutU64(out, spec.ngram_n);
  PutBool(out, spec.build_value_ngrams);
}

bool ReadSpec(Reader* r, ProfileSpec* spec) {
  uint64_t distinct_cap, set_cap, histogram_cap, num_bins, minhash_hashes,
      ngram_n;
  bool build_value_ngrams = false;
  if (!r->ReadU64(&distinct_cap) || !r->ReadU64(&set_cap) ||
      !r->ReadU64(&histogram_cap) || !r->ReadU64(&num_bins) ||
      !r->ReadU64(&minhash_hashes) || !r->ReadU64(&ngram_n) ||
      !r->ReadBool(&build_value_ngrams)) {
    return false;
  }
  spec->distinct_cap = distinct_cap;
  spec->set_cap = set_cap;
  spec->histogram_cap = histogram_cap;
  spec->num_bins = num_bins;
  spec->minhash_hashes = minhash_hashes;
  spec->ngram_n = ngram_n;
  spec->build_value_ngrams = build_value_ngrams;
  return true;
}

}  // namespace

/// The single sanctioned backdoor into ColumnProfile / TableProfile /
/// QuantileHistogram internals (declared friend in their headers):
/// serializes a profile field-by-field and reconstructs it exactly, so
/// a loaded profile is indistinguishable from a freshly built one.
class DiscoveryArtifactCodec {
 public:
  static void PutProfile(std::string* out, const ColumnProfile& p) {
    PutStringVector(out, p.distinct_);
    PutU64(out, p.full_distinct_count_);
    PutStringSet(out, p.distinct_set_);
    PutDoubleVector(out, p.histogram_.centers_);
    PutDoubleVector(out, p.histogram_.masses_);
    PutDouble(out, p.histogram_.min_);
    PutDouble(out, p.histogram_.max_);
    PutSignature(out, p.minhash_);
    PutU64(out, p.text_profile_.count);
    PutDouble(out, p.text_profile_.mean_length);
    PutDouble(out, p.text_profile_.stddev_length);
    PutDouble(out, p.text_profile_.digit_fraction);
    PutDouble(out, p.text_profile_.alpha_fraction);
    PutDouble(out, p.text_profile_.space_fraction);
    PutDouble(out, p.text_profile_.distinct_ratio);
    PutU64(out, p.numeric_stats_.count);
    PutDouble(out, p.numeric_stats_.mean);
    PutDouble(out, p.numeric_stats_.stddev);
    PutDouble(out, p.numeric_stats_.min);
    PutDouble(out, p.numeric_stats_.max);
    PutDouble(out, p.numeric_stats_.median);
    PutDouble(out, p.numeric_fraction_);
    PutStringVector(out, p.name_tokens_);
    PutStringSet(out, p.value_ngrams_);
    PutSpec(out, p.spec_);
  }

  static bool ReadProfile(Reader* r, ColumnProfile* p) {
    uint64_t full_distinct_count = 0;
    uint64_t text_count = 0;
    uint64_t numeric_count = 0;
    if (!r->ReadStringVector(&p->distinct_) ||
        !r->ReadU64(&full_distinct_count) ||
        !r->ReadStringSet(&p->distinct_set_) ||
        !r->ReadDoubleVector(&p->histogram_.centers_) ||
        !r->ReadDoubleVector(&p->histogram_.masses_) ||
        !r->ReadDouble(&p->histogram_.min_) ||
        !r->ReadDouble(&p->histogram_.max_) ||
        !ReadSignature(r, &p->minhash_) || !r->ReadU64(&text_count) ||
        !r->ReadDouble(&p->text_profile_.mean_length) ||
        !r->ReadDouble(&p->text_profile_.stddev_length) ||
        !r->ReadDouble(&p->text_profile_.digit_fraction) ||
        !r->ReadDouble(&p->text_profile_.alpha_fraction) ||
        !r->ReadDouble(&p->text_profile_.space_fraction) ||
        !r->ReadDouble(&p->text_profile_.distinct_ratio) ||
        !r->ReadU64(&numeric_count) ||
        !r->ReadDouble(&p->numeric_stats_.mean) ||
        !r->ReadDouble(&p->numeric_stats_.stddev) ||
        !r->ReadDouble(&p->numeric_stats_.min) ||
        !r->ReadDouble(&p->numeric_stats_.max) ||
        !r->ReadDouble(&p->numeric_stats_.median) ||
        !r->ReadDouble(&p->numeric_fraction_) ||
        !r->ReadStringVector(&p->name_tokens_) ||
        !r->ReadStringSet(&p->value_ngrams_) || !ReadSpec(r, &p->spec_)) {
      return false;
    }
    p->full_distinct_count_ = full_distinct_count;
    p->text_profile_.count = text_count;
    p->numeric_stats_.count = numeric_count;
    return true;
  }

  static std::shared_ptr<const TableProfile> AssembleTableProfile(
      const TableDiscoveryArtifact& artifact) {
    auto profile = std::make_shared<TableProfile>();
    profile->spec_ = artifact.profile_spec;
    profile->columns_ = artifact.profiles;
    return profile;
  }
};

std::shared_ptr<const TableProfile> TableProfileFromArtifact(
    const TableDiscoveryArtifact& artifact) {
  if (!artifact.has_profiles) return nullptr;
  return DiscoveryArtifactCodec::AssembleTableProfile(artifact);
}

TableDiscoveryArtifact BuildDiscoveryArtifact(const Table& table,
                                              size_t signature_size,
                                              bool with_profiles,
                                              const ProfileSpec& spec) {
  TableDiscoveryArtifact artifact;
  artifact.fingerprint = TableContentFingerprint(table);
  artifact.table_name = table.name();
  artifact.signature_size = signature_size;
  artifact.columns.reserve(table.num_columns());
  for (const Column& c : table.columns()) {
    artifact.columns.push_back(
        {c.name(), LazoSketch::Build(c.DistinctStringSet(), signature_size)});
  }
  if (with_profiles) {
    artifact.has_profiles = true;
    artifact.profile_spec = spec;
    artifact.profiles.reserve(table.num_columns());
    for (const Column& c : table.columns()) {
      artifact.profiles.push_back(ColumnProfile::Build(c, spec));
    }
  }
  return artifact;
}

std::string SerializeDiscoveryArtifact(const TableDiscoveryArtifact& a) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kVersion);
  PutU64(&out, a.fingerprint);
  PutString(&out, a.table_name);
  PutU64(&out, a.signature_size);
  PutU64(&out, a.columns.size());
  for (const ColumnDiscoveryArtifact& c : a.columns) {
    PutString(&out, c.name);
    PutU64(&out, c.sketch.cardinality);
    PutSignature(&out, c.sketch.signature);
  }
  PutBool(&out, a.has_profiles);
  if (a.has_profiles) {
    PutSpec(&out, a.profile_spec);
    PutU64(&out, a.profiles.size());
    for (const ColumnProfile& p : a.profiles) {
      DiscoveryArtifactCodec::PutProfile(&out, p);
    }
  }
  return out;
}

Result<TableDiscoveryArtifact> ParseDiscoveryArtifact(
    const std::string& bytes) {
  Reader r(bytes);
  char magic[4];
  if (!r.ReadRaw(magic, sizeof(magic))) {
    return Status::ParseError("artifact: truncated header");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("artifact: bad magic (not a VDA file)");
  }
  uint32_t version = 0;
  if (!r.ReadU32(&version)) {
    return Status::ParseError("artifact: truncated version");
  }
  if (version != kVersion) {
    return Status::ParseError("artifact: unsupported version " +
                              std::to_string(version));
  }
  TableDiscoveryArtifact a;
  uint64_t fingerprint = 0, signature_size = 0, num_columns = 0;
  if (!r.ReadU64(&fingerprint) || !r.ReadString(&a.table_name) ||
      !r.ReadU64(&signature_size) || !r.ReadU64(&num_columns)) {
    return Status::ParseError("artifact: truncated table header");
  }
  a.fingerprint = fingerprint;
  a.signature_size = signature_size;
  if (num_columns > bytes.size()) {
    return Status::ParseError("artifact: implausible column count");
  }
  a.columns.reserve(num_columns);
  for (uint64_t i = 0; i < num_columns; ++i) {
    ColumnDiscoveryArtifact c;
    uint64_t cardinality = 0;
    if (!r.ReadString(&c.name) || !r.ReadU64(&cardinality) ||
        !ReadSignature(&r, &c.sketch.signature)) {
      return Status::ParseError("artifact: truncated column " +
                                std::to_string(i));
    }
    c.sketch.cardinality = cardinality;
    a.columns.push_back(std::move(c));
  }
  if (!r.ReadBool(&a.has_profiles)) {
    return Status::ParseError("artifact: truncated profile flag");
  }
  if (a.has_profiles) {
    uint64_t num_profiles = 0;
    if (!ReadSpec(&r, &a.profile_spec) || !r.ReadU64(&num_profiles)) {
      return Status::ParseError("artifact: truncated profile header");
    }
    if (num_profiles != a.columns.size()) {
      return Status::ParseError("artifact: profile count mismatch");
    }
    a.profiles.reserve(num_profiles);
    for (uint64_t i = 0; i < num_profiles; ++i) {
      ColumnProfile p;
      if (!DiscoveryArtifactCodec::ReadProfile(&r, &p)) {
        return Status::ParseError("artifact: truncated profile " +
                                  std::to_string(i));
      }
      a.profiles.push_back(std::move(p));
    }
  }
  if (!r.AtEnd()) {
    return Status::ParseError("artifact: trailing bytes");
  }
  return a;
}

namespace {

std::string FingerprintHex(uint64_t fingerprint) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return std::string(buf);
}

}  // namespace

ArtifactStore::ArtifactStore(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  // A failure here surfaces on the first Put/Get as IOError.
}

std::string ArtifactStore::PathFor(uint64_t fingerprint) const {
  return directory_ + "/" + FingerprintHex(fingerprint) + ".vda";
}

Status ArtifactStore::Put(
    std::shared_ptr<const TableDiscoveryArtifact> artifact) {
  if (artifact == nullptr) {
    return Status::InvalidArgument("ArtifactStore::Put: null artifact");
  }
  const std::string bytes = SerializeDiscoveryArtifact(*artifact);
  const std::string path = PathFor(artifact->fingerprint);
  // Atomic publish: write a temp file in the same directory, then
  // rename over the final name. Readers never observe partial writes.
  const std::string tmp =
      path + ".tmp." + FingerprintHex(artifact->fingerprint);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("ArtifactStore: cannot open " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      return Status::IOError("ArtifactStore: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::IOError("ArtifactStore: rename failed for " + path);
  }
  MutexLock lock(&mu_);
  cache_[artifact->fingerprint] = std::move(artifact);
  return Status::OK();
}

Result<std::shared_ptr<const TableDiscoveryArtifact>> ArtifactStore::Get(
    uint64_t fingerprint) const {
  {
    MutexLock lock(&mu_);
    auto it = cache_.find(fingerprint);
    if (it != cache_.end()) return it->second;
  }
  const std::string path = PathFor(fingerprint);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("ArtifactStore: no artifact " +
                            FingerprintHex(fingerprint));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError("ArtifactStore: read failed for " + path);
  }
  Result<TableDiscoveryArtifact> parsed = ParseDiscoveryArtifact(bytes);
  if (!parsed.ok()) return parsed.status();
  if (parsed->fingerprint != fingerprint) {
    return Status::ParseError("ArtifactStore: fingerprint mismatch in " +
                              path);
  }
  auto shared = std::make_shared<const TableDiscoveryArtifact>(
      std::move(parsed).ValueOrDie());
  MutexLock lock(&mu_);
  auto [it, inserted] = cache_.emplace(fingerprint, std::move(shared));
  // On a racing double-load the first insert wins; both loads parsed the
  // same bytes, so either object is identical.
  return it->second;
}

bool ArtifactStore::Contains(uint64_t fingerprint) const {
  {
    MutexLock lock(&mu_);
    if (cache_.count(fingerprint) != 0) return true;
  }
  std::error_code ec;
  return std::filesystem::exists(PathFor(fingerprint), ec);
}

Status ArtifactStore::Remove(uint64_t fingerprint) {
  {
    MutexLock lock(&mu_);
    cache_.erase(fingerprint);
  }
  std::error_code ec;
  std::filesystem::remove(PathFor(fingerprint), ec);
  if (ec) {
    return Status::IOError("ArtifactStore: remove failed for " +
                           PathFor(fingerprint));
  }
  return Status::OK();
}

std::vector<uint64_t> ArtifactStore::List() const {
  std::vector<uint64_t> fingerprints;
  std::error_code ec;
  std::filesystem::directory_iterator it(directory_, ec);
  if (ec) return fingerprints;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.size() != 20 || name.substr(16) != ".vda") continue;
    uint64_t fp = 0;
    bool valid = true;
    for (char ch : name.substr(0, 16)) {
      fp <<= 4;
      if (ch >= '0' && ch <= '9') {
        fp |= static_cast<uint64_t>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        fp |= static_cast<uint64_t>(ch - 'a' + 10);
      } else {
        valid = false;
        break;
      }
    }
    if (valid) fingerprints.push_back(fp);
  }
  std::sort(fingerprints.begin(), fingerprints.end());
  return fingerprints;
}

void ArtifactStore::DropMemoryCache() {
  MutexLock lock(&mu_);
  cache_.clear();
}

size_t ArtifactStore::memory_cache_size() const {
  MutexLock lock(&mu_);
  return cache_.size();
}

}  // namespace valentine
