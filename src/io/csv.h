#ifndef VALENTINE_IO_CSV_H_
#define VALENTINE_IO_CSV_H_

/// \file csv.h
/// Minimal RFC-4180-style CSV reader/writer so fabricated dataset pairs
/// can be persisted and re-loaded (the original suite ships its pairs as
/// CSV files). Handles quoting, embedded separators/newlines, and type
/// inference on read.

#include <string>

#include "core/status.h"
#include "core/table.h"

namespace valentine {

/// Options controlling CSV parsing.
struct CsvReadOptions {
  char delimiter = ',';
  /// When true, the first record is the header (column names).
  bool has_header = true;
  /// When true, cells are parsed into typed values and per-column types
  /// are inferred; otherwise everything stays a string.
  bool infer_types = true;
};

/// Parses CSV text into a Table. The table name is caller-provided since
/// CSV has no notion of one.
Result<Table> ReadCsvString(const std::string& text, std::string table_name,
                            const CsvReadOptions& options = {});

/// Reads and parses a CSV file.
Result<Table> ReadCsvFile(const std::string& path, std::string table_name,
                          const CsvReadOptions& options = {});

/// Serializes a table to CSV text (header row + records, quoting cells
/// that contain the delimiter, quotes, or newlines).
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

/// Loads every *.csv file in a directory (non-recursive) as a table
/// named after its file stem — the repository-loading path for the CLI
/// and the discovery engine.
Result<std::vector<Table>> ReadCsvDirectory(
    const std::string& dir_path, const CsvReadOptions& options = {});

}  // namespace valentine

#endif  // VALENTINE_IO_CSV_H_
