#include "io/csv.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace valentine {

namespace {

/// Splits CSV text into records of fields, honoring quoted fields.
Status Tokenize(const std::string& text, char delim,
                std::vector<std::vector<std::string>>* records) {
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  size_t i = 0;
  const size_t n = text.size();
  auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records->push_back(std::move(current));
    current.clear();
  };
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field.push_back(c);
        ++i;
      }
    } else if (c == '"' && !field_started && field.empty()) {
      in_quotes = true;
      field_started = true;
      ++i;
    } else if (c == delim) {
      end_field();
      ++i;
    } else if (c == '\r') {
      ++i;  // Tolerate CRLF.
    } else if (c == '\n') {
      end_record();
      ++i;
    } else {
      field.push_back(c);
      field_started = true;
      ++i;
    }
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted field");
  }
  if (!field.empty() || !current.empty()) {
    end_record();
  }
  return Status::OK();
}

DataType WidenType(DataType acc, DataType next) {
  if (next == DataType::kNull) return acc;
  if (acc == DataType::kNull) return next;
  if (acc == next) return acc;
  auto numeric = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kFloat64;
  };
  if (numeric(acc) && numeric(next)) return DataType::kFloat64;
  return DataType::kString;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text, std::string table_name,
                            const CsvReadOptions& options) {
  std::vector<std::vector<std::string>> records;
  VALENTINE_RETURN_NOT_OK(Tokenize(text, options.delimiter, &records));
  Table table(std::move(table_name));
  if (records.empty()) return table;

  size_t width = records[0].size();
  for (size_t r = 0; r < records.size(); ++r) {
    if (records[r].size() != width) {
      return Status::ParseError("record " + std::to_string(r) + " has " +
                                std::to_string(records[r].size()) +
                                " fields, expected " + std::to_string(width));
    }
  }

  std::vector<std::string> names(width);
  size_t first_data = 0;
  if (options.has_header) {
    names = records[0];
    first_data = 1;
  } else {
    for (size_t c = 0; c < width; ++c) names[c] = "col" + std::to_string(c);
  }

  for (size_t c = 0; c < width; ++c) {
    Column col(names[c], DataType::kString);
    DataType inferred = DataType::kNull;
    col.Reserve(records.size() - first_data);
    for (size_t r = first_data; r < records.size(); ++r) {
      if (options.infer_types) {
        Value v = ParseCell(records[r][c]);
        inferred = WidenType(inferred, v.kind());
        col.Append(std::move(v));
      } else {
        const std::string& cell = records[r][c];
        col.Append(cell.empty() ? Value::Null() : Value::String(cell));
      }
    }
    if (options.infer_types) {
      col.set_type(inferred == DataType::kNull ? DataType::kString : inferred);
    }
    VALENTINE_RETURN_NOT_OK(table.AddColumn(std::move(col)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path, std::string table_name,
                          const CsvReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), std::move(table_name), options);
}

namespace {
void AppendEscaped(const std::string& cell, char delim, std::string* out) {
  bool needs_quotes = cell.find(delim) != std::string::npos ||
                      cell.find('"') != std::string::npos ||
                      cell.find('\n') != std::string::npos ||
                      cell.find('\r') != std::string::npos;
  if (!needs_quotes) {
    *out += cell;
    return;
  }
  out->push_back('"');
  for (char c : cell) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}
}  // namespace

std::string WriteCsvString(const Table& table, char delimiter) {
  std::string out;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    if (c > 0) out.push_back(delimiter);
    AppendEscaped(table.column(c).name(), delimiter, &out);
  }
  out.push_back('\n');
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out.push_back(delimiter);
      AppendEscaped(table.column(c)[r].AsString(), delimiter, &out);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteCsvString(table, delimiter);
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<Table>> ReadCsvDirectory(const std::string& dir_path,
                                            const CsvReadOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir_path, ec)) {
    return Status::IOError("not a directory: " + dir_path);
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir_path, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) return Status::IOError("cannot list " + dir_path);
  std::sort(paths.begin(), paths.end());  // deterministic order
  std::vector<Table> tables;
  for (const std::string& path : paths) {
    std::string stem = fs::path(path).stem().string();
    Result<Table> table = ReadCsvFile(path, stem, options);
    if (!table.ok()) {
      return Status::IOError(path + ": " + table.status().ToString());
    }
    tables.push_back(std::move(table).ValueOrDie());
  }
  return tables;
}

}  // namespace valentine
