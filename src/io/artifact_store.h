#ifndef VALENTINE_IO_ARTIFACT_STORE_H_
#define VALENTINE_IO_ARTIFACT_STORE_H_

/// \file artifact_store.h
/// Persistent, versioned store of per-table discovery artifacts.
///
/// The discovery engine's repository-scale story (ROADMAP item 1)
/// requires that registering a table the repository has already seen —
/// in a previous process, or in a previous copy-on-write snapshot of
/// the serving registry — does not pay the sketch/profile build again.
/// This store holds one artifact per *table content fingerprint*
/// (matchers/artifact_cache.h): the table's Lazo sketches (one per
/// column, ready for LshIndex::AddSketch) plus, optionally, its full
/// ColumnProfiles under the ProfileSpec they were built with.
///
/// Contracts:
///  * Serialization is canonical and byte-stable: the same artifact
///    always serializes to the same bytes, across processes and
///    platforms (fixed little-endian encoding; unordered sets are
///    canonicalized by sorting). Round-tripping is byte-identical.
///  * Files are versioned ("VDA1" magic + u32 version); parsing a
///    truncated, foreign, or future-versioned file yields ParseError,
///    never garbage.
///  * Put is atomic at the filesystem level (write temp + rename), so
///    a crash mid-write never leaves a half-written artifact behind.
///  * The store is thread-safe; its mutex (LockRank::kArtifactStore)
///    ranks above the serve registry lock so the serving layer may
///    consult the store while holding its registry mutex.
///  * Loaded artifacts are immutable and shared via shared_ptr; a
///    process-local cache makes repeat Gets (the serve copy-on-write
///    rebuild path) free of both IO and parsing.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"
#include "core/table.h"
#include "core/thread_annotations.h"
#include "scaling/lazo.h"
#include "stats/column_profile.h"

namespace valentine {

/// One column's persisted discovery state: its name and Lazo sketch
/// (MinHash signature + cardinality), ready to be re-inserted into an
/// LshIndex without touching the column's values.
struct ColumnDiscoveryArtifact {
  std::string name;
  LazoSketch sketch;
};

/// Everything the discovery engine derives from one table, keyed by the
/// table's content fingerprint. `profiles` (when `has_profiles`) holds
/// one ColumnProfile per column, parallel to `columns`, built under
/// `profile_spec` — the load path only serves them to a matcher
/// pipeline configured with an identical spec (ProfileSpecsEqual).
struct TableDiscoveryArtifact {
  uint64_t fingerprint = 0;
  std::string table_name;
  size_t signature_size = 0;  ///< MinHash width the sketches were built with
  std::vector<ColumnDiscoveryArtifact> columns;
  bool has_profiles = false;
  ProfileSpec profile_spec;
  std::vector<ColumnProfile> profiles;
};

/// Derives a table's artifact from scratch: fingerprint, per-column
/// Lazo sketches at `signature_size`, and (when `with_profiles`) full
/// ColumnProfiles under `spec`. Pure function of its arguments.
TableDiscoveryArtifact BuildDiscoveryArtifact(const Table& table,
                                              size_t signature_size,
                                              bool with_profiles,
                                              const ProfileSpec& spec = {});

/// Assembles a shareable TableProfile from an artifact's stored
/// ColumnProfiles (nullptr when the artifact carries none). The result
/// is indistinguishable from TableProfile::Build on the original table
/// under artifact.profile_spec, so it feeds the matcher pipeline's
/// Prepare path directly.
std::shared_ptr<const TableProfile> TableProfileFromArtifact(
    const TableDiscoveryArtifact& artifact);

/// Canonical byte-stable serialization (see file comment for the
/// stability contract).
std::string SerializeDiscoveryArtifact(const TableDiscoveryArtifact& artifact);

/// Inverse of SerializeDiscoveryArtifact. ParseError on bad magic,
/// unsupported version, truncation, or trailing bytes.
Result<TableDiscoveryArtifact> ParseDiscoveryArtifact(
    const std::string& bytes);

/// \brief Directory-backed store: one `<16-hex-fingerprint>.vda` file
/// per artifact, plus a process-local immutable cache.
class ArtifactStore {
 public:
  /// Opens (and creates, if needed) the store rooted at `directory`.
  explicit ArtifactStore(std::string directory);
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  const std::string& directory() const { return directory_; }

  /// Persists the artifact (write-through: disk then memory cache).
  /// Overwrites any previous artifact with the same fingerprint.
  [[nodiscard]] Status Put(
      std::shared_ptr<const TableDiscoveryArtifact> artifact) EXCLUDES(mu_);

  /// Fetches by fingerprint: memory cache first, then disk (parsing and
  /// caching on hit). NotFound when the fingerprint is absent; IOError /
  /// ParseError on unreadable or corrupt files.
  Result<std::shared_ptr<const TableDiscoveryArtifact>> Get(
      uint64_t fingerprint) const EXCLUDES(mu_);

  /// True when the fingerprint is present in memory or on disk.
  bool Contains(uint64_t fingerprint) const EXCLUDES(mu_);

  /// Removes the artifact from cache and disk. OK when absent.
  [[nodiscard]] Status Remove(uint64_t fingerprint) EXCLUDES(mu_);

  /// Fingerprints of every artifact on disk, sorted ascending.
  std::vector<uint64_t> List() const;

  /// Drops the in-memory cache (cold-restart simulation for tests;
  /// subsequent Gets re-read from disk).
  void DropMemoryCache() EXCLUDES(mu_);

  size_t memory_cache_size() const EXCLUDES(mu_);

 private:
  std::string PathFor(uint64_t fingerprint) const;

  const std::string directory_;  // lint:allow(guarded-by-coverage) immutable
  mutable Mutex mu_{LockRank::kArtifactStore, "ArtifactStore"};
  mutable std::map<uint64_t, std::shared_ptr<const TableDiscoveryArtifact>>
      cache_ GUARDED_BY(mu_);
};

}  // namespace valentine

#endif  // VALENTINE_IO_ARTIFACT_STORE_H_
