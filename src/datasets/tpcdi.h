#ifndef VALENTINE_DATASETS_TPCDI_H_
#define VALENTINE_DATASETS_TPCDI_H_

/// \file tpcdi.h
/// Deterministic stand-in for the TPC-DI `Prospect` table (paper §V-A:
/// fabricated TPC-DI pairs span 11-22 columns and 7492-14983 rows). The
/// schema mirrors the published Prospect definition: customer identity,
/// address, demographics, and financial attributes.

#include "core/table.h"

namespace valentine {

/// Generates the 22-column Prospect-like table.
Table MakeTpcdiProspect(size_t rows = 2000, uint64_t seed = 2026);

}  // namespace valentine

#endif  // VALENTINE_DATASETS_TPCDI_H_
