#include "datasets/wikidata.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "datasets/synthetic.h"
#include "fabrication/noise.h"
#include "fabrication/splitter.h"

namespace valentine {

namespace {

const std::vector<std::string>& MiddleNames() {
  static const std::vector<std::string> kPool = {
      "Aaron", "Lee",  "Marie", "Ann",  "Ray", "Jean",
      "Lou",   "Mae",  "Dean",  "Earl", "Kay", "Jay",
  };
  return kPool;
}

const std::vector<std::string>& VoiceTypes() {
  static const std::vector<std::string> kPool = {
      "soprano", "mezzo-soprano", "contralto", "tenor", "baritone", "bass",
  };
  return kPool;
}

const std::vector<std::string>& Awards() {
  static const std::vector<std::string> kPool = {
      "Grammy Award",          "American Music Award", "Billboard Award",
      "MTV Video Music Award", "CMA Award",            "Brit Award",
      "Golden Globe",          "Kennedy Center Honor",
  };
  return kPool;
}

const char* kMonthNames[] = {"January",   "February", "March",    "April",
                             "May",       "June",     "July",     "August",
                             "September", "October",  "November", "December"};

/// Column-name map from the table-A encoding to the table-B encoding
/// (the paper's "partner -> spouse" style variation).
const std::vector<std::pair<std::string, std::string>>& RenameMap() {
  static const std::vector<std::pair<std::string, std::string>> kMap = {
      {"artist", "performer_name"},
      {"birth_name", "full_name"},
      {"birth_date", "date_of_birth"},
      {"birth_place", "place_of_birth"},
      {"citizenship", "nationality"},
      {"gender", "sex"},
      {"genre", "music_genre"},
      {"instrument", "plays_instrument"},
      {"label", "record_company"},
      {"debut_year", "career_start"},
      {"partner", "spouse"},
      {"father", "fathers_name"},
      {"mother", "mothers_name"},
      {"notable_work", "famous_song"},
      {"award", "honours"},
      {"residence", "lives_in"},
      {"height_cm", "height"},
      {"net_worth_musd", "fortune"},
      {"website", "homepage"},
      {"voice_type", "vocal_range"},
  };
  return kMap;
}

struct SingerRows {
  std::vector<std::string> first, middle, last, birth_city, genre, instrument,
      label, partner, father, mother, work, award, residence, website, voice,
      gender;
  std::vector<int> birth_year, birth_month, birth_day, debut_year, height;
  std::vector<double> net_worth;
};

SingerRows GenerateRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  SingerRows r;
  auto pick = [&](const std::vector<std::string>& pool) {
    return rng.Pick(pool);
  };
  for (size_t i = 0; i < n; ++i) {
    r.first.push_back(pick(vocab::FirstNames()));
    r.middle.push_back(pick(MiddleNames()));
    r.last.push_back(pick(vocab::LastNames()));
    r.birth_city.push_back(pick(vocab::Cities()));
    r.genre.push_back(pick(vocab::MusicGenres()));
    r.instrument.push_back(pick({"guitar", "piano", "drums", "bass",
                                 "violin", "saxophone", "harmonica"}));
    r.label.push_back(pick(vocab::Companies()));
    r.partner.push_back(pick(vocab::FirstNames()) + " " +
                        pick(vocab::LastNames()));
    r.father.push_back(pick(vocab::FirstNames()) + " " + r.last.back());
    r.mother.push_back(pick(vocab::FirstNames()) + " " +
                       pick(vocab::LastNames()));
    r.work.push_back(pick(vocab::Words()) + " " + pick(vocab::Words()));
    r.award.push_back(pick(Awards()));
    r.residence.push_back(pick(vocab::Cities()));
    std::string slug = r.first.back() + r.last.back();
    for (char& c : slug) c = static_cast<char>(std::tolower(c));
    r.website.push_back(slug + ".com");
    r.voice.push_back(pick(VoiceTypes()));
    r.gender.push_back(rng.Bernoulli(0.5) ? "male" : "female");
    r.birth_year.push_back(static_cast<int>(rng.UniformInt(1930, 2000)));
    r.birth_month.push_back(static_cast<int>(rng.UniformInt(1, 12)));
    r.birth_day.push_back(static_cast<int>(rng.UniformInt(1, 28)));
    r.debut_year.push_back(r.birth_year.back() +
                           static_cast<int>(rng.UniformInt(15, 30)));
    r.height.push_back(static_cast<int>(rng.UniformInt(150, 200)));
    r.net_worth.push_back(
        std::round(rng.UniformDouble(0.5, 400.0) * 10.0) / 10.0);
  }
  return r;
}

void AppendString(Table* t, const std::string& name,
                  std::vector<std::string> values) {
  Column c(name, DataType::kString);
  for (auto& v : values) c.Append(Value::String(std::move(v)));
  (void)t->AddColumn(std::move(c));
}

/// Builds the table in encoding A (verbatim) or B (renamed columns plus
/// alternative encodings in six value columns).
Table BuildSingersTable(const SingerRows& r, bool encoding_b,
                        const std::string& table_name) {
  size_t n = r.first.size();
  Table t(table_name);
  std::vector<std::string> artist(n), birth_name(n), birth_date(n),
      citizenship(n), genre(n), website(n);
  for (size_t i = 0; i < n; ++i) {
    if (encoding_b) {
      // The six alternative-encoding columns (paper: "Elvis Presley" ->
      // "Elvis Aaron Presley", etc.).
      artist[i] = r.first[i] + " " + r.middle[i] + " " + r.last[i];
      birth_name[i] = r.last[i] + ", " + r.first[i] + " " + r.middle[i];
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s %d, %d",
                    kMonthNames[r.birth_month[i] - 1], r.birth_day[i],
                    r.birth_year[i]);
      birth_date[i] = buf;
      citizenship[i] = "USA";
      genre[i] = r.genre[i] + " music";
      website[i] = "https://www." + r.website[i];
    } else {
      artist[i] = r.first[i] + " " + r.last[i];
      birth_name[i] = r.first[i] + " " + r.middle[i] + " " + r.last[i];
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", r.birth_year[i],
                    r.birth_month[i], r.birth_day[i]);
      birth_date[i] = buf;
      citizenship[i] = "United States of America";
      genre[i] = r.genre[i];
      website[i] = r.website[i];
    }
  }
  auto name_of = [&](size_t idx) {
    const auto& m = RenameMap()[idx];
    return encoding_b ? m.second : m.first;
  };
  AppendString(&t, name_of(0), artist);
  AppendString(&t, name_of(1), birth_name);
  AppendString(&t, name_of(2), birth_date);
  AppendString(&t, name_of(3), r.birth_city);
  AppendString(&t, name_of(4), citizenship);
  AppendString(&t, name_of(5), r.gender);
  AppendString(&t, name_of(6), genre);
  AppendString(&t, name_of(7), r.instrument);
  AppendString(&t, name_of(8), r.label);
  {
    Column c(name_of(9), DataType::kInt64);
    for (int v : r.debut_year) c.Append(Value::Int(v));
    (void)t.AddColumn(std::move(c));
  }
  AppendString(&t, name_of(10), r.partner);
  AppendString(&t, name_of(11), r.father);
  AppendString(&t, name_of(12), r.mother);
  AppendString(&t, name_of(13), r.work);
  AppendString(&t, name_of(14), r.award);
  AppendString(&t, name_of(15), r.residence);
  {
    Column c(name_of(16), DataType::kInt64);
    for (int v : r.height) c.Append(Value::Int(v));
    (void)t.AddColumn(std::move(c));
  }
  {
    Column c(name_of(17), DataType::kFloat64);
    for (double v : r.net_worth) c.Append(Value::Float(v));
    (void)t.AddColumn(std::move(c));
  }
  AppendString(&t, name_of(18), website);
  AppendString(&t, name_of(19), r.voice);
  return t;
}

}  // namespace

Table MakeWikidataSingersBase(size_t rows, uint64_t seed) {
  return BuildSingersTable(GenerateRows(rows, seed), /*encoding_b=*/false,
                           "singers");
}

std::vector<DatasetPair> MakeWikidataPairs(size_t rows, uint64_t seed) {
  SingerRows r = GenerateRows(rows, seed);
  Table a_full = BuildSingersTable(r, false, "singers_a");
  Table b_full = BuildSingersTable(r, true, "singers_b");
  Rng rng(seed ^ 0x5151);

  auto ground_truth_for = [&](const Table& a, const Table& b) {
    std::vector<GroundTruthEntry> gt;
    std::unordered_map<std::string, std::string> map;
    for (const auto& [an, bn] : RenameMap()) map[an] = bn;
    for (const auto& an : a.ColumnNames()) {
      const std::string& bn = map.at(an);
      if (b.ColumnIndex(bn)) gt.push_back({an, bn});
    }
    return gt;
  };

  std::vector<DatasetPair> pairs;

  // Unionable: same 20 columns, ~50% row overlap. Alternative encodings
  // in six columns make the instance side non-trivial.
  {
    HorizontalSplit hs = SplitRowsWithOverlap(rows, 0.5, &rng);
    DatasetPair p;
    p.scenario = Scenario::kUnionable;
    p.source = a_full.TakeRows(hs.rows_a);
    p.target = b_full.TakeRows(hs.rows_b);
    p.ground_truth = ground_truth_for(p.source, p.target);
    p.id = "wikidata_unionable";
    pairs.push_back(std::move(p));
  }

  // View-unionable: no row overlap, ~65% column overlap, and extra
  // instance noise on the target — the paper notes its fabrication
  // deliberately varies distribution similarity here (horizontal splits
  // plus noise), which is what defeats the distribution-based method.
  {
    HorizontalSplit hs = SplitRowsWithOverlap(rows, 0.0, &rng);
    VerticalSplit vs =
        SplitColumnsWithOverlap(a_full.num_columns(), 0.65, &rng);
    DatasetPair p;
    p.scenario = Scenario::kViewUnionable;
    p.source = a_full.Project(vs.cols_a).TakeRows(hs.rows_a);
    p.target = b_full.Project(vs.cols_b).TakeRows(hs.rows_b);
    p.source.set_name("singers_a");
    p.target.set_name("singers_b");
    InstanceNoiseOptions noise;
    AddInstanceNoise(&p.target, noise, &rng);
    p.ground_truth = ground_truth_for(p.source, p.target);
    p.id = "wikidata_view_unionable";
    pairs.push_back(std::move(p));
  }

  // Joinable: vertical split with shared join columns, full rows, and
  // *consistent* encodings on the shared side: the joinable case uses
  // verbatim instances, so the target shard keeps encoding A values but
  // encoding B names.
  {
    VerticalSplit vs =
        SplitColumnsWithOverlap(a_full.num_columns(), 0.4, &rng);
    Table b_named_a_values = a_full;
    for (size_t c = 0; c < b_named_a_values.num_columns(); ++c) {
      (void)b_named_a_values.RenameColumn(c, RenameMap()[c].second);
    }
    b_named_a_values.set_name("singers_b");
    DatasetPair p;
    p.scenario = Scenario::kJoinable;
    p.source = a_full.Project(vs.cols_a);
    p.target = b_named_a_values.Project(vs.cols_b);
    p.source.set_name("singers_a");
    p.target.set_name("singers_b");
    p.ground_truth.clear();
    for (size_t c : vs.shared) {
      p.ground_truth.push_back(
          {RenameMap()[c].first, RenameMap()[c].second});
    }
    p.id = "wikidata_joinable";
    pairs.push_back(std::move(p));
  }

  // Semantically-joinable: same vertical split but the target keeps the
  // *alternative* encodings, so the join key demands semantics.
  {
    VerticalSplit vs =
        SplitColumnsWithOverlap(a_full.num_columns(), 0.4, &rng);
    DatasetPair p;
    p.scenario = Scenario::kSemanticallyJoinable;
    p.source = a_full.Project(vs.cols_a);
    p.target = b_full.Project(vs.cols_b);
    p.source.set_name("singers_a");
    p.target.set_name("singers_b");
    for (size_t c : vs.shared) {
      p.ground_truth.push_back(
          {RenameMap()[c].first, RenameMap()[c].second});
    }
    p.id = "wikidata_semantically_joinable";
    pairs.push_back(std::move(p));
  }

  return pairs;
}

}  // namespace valentine
