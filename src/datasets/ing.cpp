#include "datasets/ing.h"

#include "datasets/synthetic.h"

namespace valentine {

namespace {

/// Deterministic pool of hex-ish hash strings shared by both tables of a
/// pair, so matching hash columns overlap *and* have near-identical
/// distributions.
std::vector<std::string> MakeHashPool(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> pool;
  pool.reserve(n);
  const char* hex = "0123456789abcdef";
  for (size_t i = 0; i < n; ++i) {
    std::string h;
    for (size_t k = 0; k < 12; ++k) h.push_back(hex[rng.Index(16)]);
    pool.push_back(std::move(h));
  }
  return pool;
}

std::vector<std::string> MakeLabeledPool(const std::string& prefix, size_t n) {
  std::vector<std::string> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pool.push_back(prefix + "-" + std::to_string(100 + i));
  }
  return pool;
}

const std::vector<std::string>& AgileWords() {
  static const std::vector<std::string> kPool = {
      "refactor",  "migrate", "implement", "investigate", "fix",
      "deploy",    "review",  "automate",  "monitor",     "integrate",
      "pipeline",  "login",   "dashboard", "payments",    "mortgage",
      "savings",   "fraud",   "onboarding","compliance",  "reporting",
  };
  return kPool;
}

const std::vector<std::string>& TeamNames() {
  static const std::vector<std::string> kPool = {
      "Team Phoenix", "Team Hydra",  "Team Orion",  "Team Falcon",
      "Team Nimbus",  "Team Quartz", "Team Vortex", "Team Atlas",
      "Team Borealis","Team Condor", "Team Delta",  "Team Echo",
  };
  return kPool;
}


/// Finite pool of staff names (real teams are finite; combinatorial
/// random names would make person columns indistinguishable).
std::vector<std::string> MakeStaffPool(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pool.push_back(rng.Pick(vocab::FirstNames()) + " " +
                   rng.Pick(vocab::LastNames()));
  }
  return pool;
}

/// Finite pool of recurring task phrases (backlogs repeat templates).
std::vector<std::string> MakePhrasePool(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pool.push_back(rng.Pick(AgileWords()) + " " + rng.Pick(AgileWords()) +
                   " " + rng.Pick(AgileWords()));
  }
  return pool;
}

}  // namespace

DatasetPair MakeIngPair1(size_t rows, uint64_t seed) {
  // Shared value pools for the matching columns. Decoy columns draw
  // from *different* pools (different hashes, staff, phrases, or value
  // formats), as their real counterparts would — this is what lets the
  // distribution-based method separate true matches from bait.
  auto sprint_ids = MakeLabeledPool("SPR", 40);
  auto epic_names = MakeLabeledPool("EPIC", 30);
  auto task_hashes = MakeHashPool(300, seed ^ 0x1111);
  auto other_hashes = MakeHashPool(300, seed ^ 0x9999);
  auto staff = MakeStaffPool(120, seed ^ 0x5555);
  auto leads = MakeStaffPool(40, seed ^ 0x6666);
  auto phrases = MakePhrasePool(150, seed ^ 0x7777);
  auto epic_phrases = MakePhrasePool(60, seed ^ 0x8888);
  std::vector<std::string> statuses = {"todo", "in progress", "review",
                                       "blocked", "done"};
  std::vector<std::string> priorities = {"low", "medium", "high", "critical"};

  // --- Table A: 33-column custom SCRUM system. ---
  SyntheticTableBuilder a("scrum_a", rows, seed);
  a.AddCategorical("task_hash", task_hashes)                // GT 1
      .AddCategorical("sprint_id", sprint_ids)              // GT 2
      .AddCategorical("epic_name", epic_names)              // GT 3
      .AddCategorical("team_id", TeamNames())               // GT 4
      .AddCategorical("owner_team", TeamNames())            // GT 5
      .AddCategorical("assignee", staff)                    // GT 6
      .AddCategorical("task_description", phrases)          // GT 7
      .AddCategorical("status", statuses)                   // GT 8
      .AddCategorical("priority", priorities)               // GT 9
      .AddUniformInt("story_points", 1, 13)                 // GT 10
      .AddDateColumn("start_date", 2018, 2020)              // GT 11
      .AddDateColumn("end_date", 2018, 2021)                // GT 12
      .AddUniformInt("sprint_number", 1, 26)                // GT 13
      .AddCategorical("board_name", MakeLabeledPool("BRD", 15))  // GT 14
      // 19 extra A-only columns, several deliberately confusable (but,
      // as in real systems, with their own value pools/formats).
      .AddCategorical("epic_description", epic_phrases)
      .AddCategorical("parent_task_hash", other_hashes)
      .AddCategorical("linked_task_hash", other_hashes)
      .AddCategorical("reporter", leads)
      .AddCategorical("reviewer", leads)
      .AddCategorical("resolution", {"fixed", "wontfix", "duplicate",
                                     "cannot reproduce", "done"})
      .AddUniformInt("time_spent_hours", 1, 120)
      .AddUniformInt("time_estimate_hours", 1, 100)
      .AddPatternColumn("created_at", "201d-0d-1d 0d:3d")
      .AddPatternColumn("updated_at", "202d-0d-2d 1d:0d")
      .AddUniformInt("comment_count", 0, 40)
      .AddUniformInt("attachment_count", 0, 10)
      .AddCategorical("labels", AgileWords())
      .AddCategorical("component", MakeLabeledPool("CMP", 20))
      .AddCategorical("fix_version", MakeLabeledPool("REL", 18))
      .AddFlagColumn("is_subtask", 0.3)
      .AddFlagColumn("is_blocked_flag", 0.15)
      .AddUniformInt("reopen_count", 0, 5)
      .AddCategorical("environment", {"dev", "test", "acceptance", "prod"});

  // --- Table B: 16-column second SCRUM system; 14 matching columns with
  // identical or near-identical names, 2 unique. ---
  SyntheticTableBuilder b("scrum_b", rows + 37, seed ^ 0x2222);
  b.AddCategorical("task_hash", task_hashes)
      .AddCategorical("sprintid", sprint_ids)
      .AddCategorical("epic", epic_names)
      .AddCategorical("team_id", TeamNames())
      .AddCategorical("ownerteam", TeamNames())
      // Misleading names, matching values (the paper's "similar words
      // that are used in multiple contexts"): "resource" holds assignee
      // names, "estimate" holds story points (name-similar to A's
      // time_estimate_hours), "created"/"closed" hold the sprint start
      // and end dates (name-similar to A's created_at).
      .AddCategorical("resource", staff)
      .AddCategorical("description", phrases)
      .AddCategorical("status", statuses)
      .AddCategorical("prio", priorities)
      .AddUniformInt("estimate", 1, 13)
      .AddDateColumn("created", 2018, 2020)
      .AddDateColumn("closed", 2018, 2021)
      .AddUniformInt("sprint_nr", 1, 26)
      .AddCategorical("board", MakeLabeledPool("BRD", 15))
      // B-only columns.
      .AddCategorical("squad_tribe", MakeLabeledPool("TRB", 8))
      .AddUniformInt("velocity_target", 20, 80);

  DatasetPair p;
  p.id = "ing1_scrum";
  p.scenario = Scenario::kUnionable;
  p.source = a.Build();
  p.target = b.Build();
  p.ground_truth = {
      {"task_hash", "task_hash"},       {"sprint_id", "sprintid"},
      {"epic_name", "epic"},            {"team_id", "team_id"},
      {"owner_team", "ownerteam"},      {"assignee", "resource"},
      {"task_description", "description"},{"status", "status"},
      {"priority", "prio"},             {"story_points", "estimate"},
      {"start_date", "created"},        {"end_date", "closed"},
      {"sprint_number", "sprint_nr"},   {"board_name", "board"},
  };
  return p;
}

DatasetPair MakeIngPair2(size_t rows, uint64_t seed) {
  // Shared pools for the matching column families. App *dependency*
  // columns concentrate on a small subset of platform apps — a distinct
  // distribution from the app-name columns over the full catalogue,
  // which is what makes the n and m sides separable by value
  // distribution (as in the real ING#2 data).
  auto app_names = MakeLabeledPool("APP", 120);
  auto platform_apps = std::vector<std::string>(app_names.begin(),
                                                app_names.begin() + 30);
  auto app_codes = MakeHashPool(120, seed ^ 0x3333);
  auto team_pool = std::vector<std::string>(TeamNames());
  auto mgr_pool = MakeStaffPool(50, seed ^ 0xaaaa);
  auto dept_pool = MakeLabeledPool("DEPT", 12);
  auto host_pool = MakeLabeledPool("HOST", 60);
  auto cost_pool = MakeLabeledPool("CC", 25);
  std::vector<std::string> criticality = {"low", "medium", "high",
                                          "mission critical"};
  std::vector<std::string> lifecycle = {"plan", "build", "run", "retire"};
  std::vector<std::string> env = {"dev", "test", "acceptance", "prod"};

  // --- Table A: wide 59-column technical inventory. Several columns per
  // business concept (the n side of the n-m ground truth). ---
  SyntheticTableBuilder a("apps_tech", rows, seed);
  a.AddCategorical("application_name", app_names)      // -> app_nm_key
      .AddCategorical("application_alias", app_names)  // -> app_nm_key
      .AddCategorical("application_code", app_codes)   // -> app_cd_key
      .AddCategorical("ci_identifier", app_codes)      // -> app_cd_key
      .AddCategorical("owner_team", team_pool)         // -> team_nm_key
      .AddCategorical("support_team", team_pool)       // -> team_nm_key
      .AddCategorical("devops_team", team_pool)        // -> team_nm_key
      .AddCategorical("manager_name", mgr_pool)        // -> mgr_nm_key
      .AddCategorical("product_owner", mgr_pool)       // -> mgr_nm_key
      .AddCategorical("department", dept_pool)         // -> dept_cd_key
      .AddCategorical("division", dept_pool)           // -> dept_cd_key
      .AddCategorical("hostname", host_pool)           // -> hw_nm_key
      .AddCategorical("cluster_name", host_pool)       // -> hw_nm_key
      .AddCategorical("criticality", criticality)      // -> crit_cd_key
      .AddCategorical("lifecycle_phase", lifecycle)    // -> phase_cd_key
      .AddCategorical("environment", env)              // -> env_cd_key
      .AddCategorical("cost_center", cost_pool)        // -> cc_cd_key
      .AddCategorical("used_by_app", platform_apps)    // -> rel_app_key
      .AddCategorical("uses_app", platform_apps)       // -> rel_app_key
      .AddCategorical("depends_on_app", platform_apps) // -> rel_app_key
      // A-only technical noise columns (39 more).
      .AddPatternColumn("ip_address", "ddd.ddd.d.dd")
      .AddPatternColumn("mac_address", "aa:aa:aa:dd:dd:dd")
      .AddUniformInt("cpu_cores", 1, 64)
      .AddUniformInt("memory_gb", 2, 512)
      .AddUniformInt("disk_gb", 20, 4000)
      .AddCategorical("os_name", {"RHEL", "Windows Server", "Ubuntu",
                                  "AIX", "Solaris"})
      .AddCategorical("os_version", {"6.10", "7.9", "8.4", "2016", "2019",
                                     "20.04", "22.04"})
      .AddCategorical("db_engine", {"Oracle", "PostgreSQL", "MySQL",
                                    "MSSQL", "DB2", "none"})
      .AddUniformInt("port", 1024, 65535)
      .AddCategorical("protocol", {"https", "http", "tcp", "mq", "sftp"})
      .AddDateColumn("install_date", 2005, 2020)
      .AddDateColumn("last_patch_date", 2019, 2021)
      .AddDateColumn("decommission_date", 2021, 2026)
      .AddUniformInt("incident_count", 0, 120)
      .AddUniformInt("change_count", 0, 60)
      .AddGaussianFloat("availability_pct", 99.2, 0.6)
      .AddGaussianInt("monthly_cost_eur", 4200, 2500, 100)
      .AddFlagColumn("is_virtualized", 0.8)
      .AddFlagColumn("is_clustered", 0.4)
      .AddFlagColumn("has_drp", 0.6)
      .AddFlagColumn("pci_scope", 0.2)
      .AddFlagColumn("gdpr_scope", 0.5)
      .AddCategorical("backup_policy", {"daily", "weekly", "hourly", "none"})
      .AddCategorical("monitoring_tool", {"nagios", "zabbix", "prometheus",
                                          "dynatrace"})
      .AddCategorical("ticket_queue", MakeLabeledPool("Q", 15))
      .AddPatternColumn("serial_number", "AAddddddd")
      .AddCategorical("vendor", vocab::Companies())
      .AddCategorical("license_type", {"perpetual", "subscription",
                                       "open source"})
      .AddUniformInt("license_count", 1, 500)
      .AddCategorical("datacenter", {"AMS-1", "AMS-2", "FRA-1", "DUB-1"})
      .AddCategorical("rack_id", MakeLabeledPool("RACK", 40))
      .AddUniformInt("rack_unit", 1, 42)
      .AddCategorical("network_zone", {"dmz", "internal", "restricted"})
      .AddPatternColumn("subnet", "dd.dd.dd.d/dd")
      .AddCategorical("storage_tier", {"gold", "silver", "bronze"})
      .AddUniformInt("iops_limit", 100, 20000)
      .AddCategorical("patch_window", {"sat-night", "sun-night", "weekday"})
      .AddUniformInt("uptime_days", 0, 900)
      .AddTextColumn("technical_notes", AgileWords(), 2, 8);

  // --- Table B: 25-column business view; suffixed names, nested-ish
  // composite values in two columns. ---
  SyntheticTableBuilder b("apps_biz", rows, seed ^ 0x4444);
  b.AddCategorical("app_nm_key", app_names)
      .AddCategorical("app_cd_key", app_codes)
      .AddCategorical("team_nm_key", team_pool)
      .AddCategorical("mgr_nm_key", mgr_pool)
      .AddCategorical("dept_cd_key", dept_pool)
      .AddCategorical("hw_nm_key", host_pool)
      .AddCategorical("crit_cd_key", criticality)
      .AddCategorical("phase_cd_key", lifecycle)
      .AddCategorical("env_cd_key", env)
      .AddCategorical("cc_cd_key", cost_pool)
      .AddCategorical("rel_app_key", platform_apps)
      // B-only business columns.
      .AddTextColumn("business_capability_txt", AgileWords(), 1, 4)
      .AddCategorical("business_owner_key", MakeLabeledPool("BU", 10))
      .AddGaussianInt("budget_keur_amt", 800, 350, 50)
      .AddUniformInt("fte_cnt", 1, 40)
      .AddCategorical("sla_tier_cd", {"tier-1", "tier-2", "tier-3",
                                      "tier-4"})
      .AddCategorical("risk_rating_cd", {"R1", "R2", "R3"})
      .AddDateColumn("review_dt", 2020, 2021)
      .AddFlagColumn("outsourced_flg", 0.3)
      .AddCategorical("strategy_cd", {"invest", "maintain", "divest"})
      .AddTextColumn("remarks_txt", AgileWords(), 2, 6)
      .AddCategorical("region_cd", {"EU", "US", "APAC"})
      .AddUniformInt("user_cnt", 10, 100000)
      .AddCategorical("channel_cd", {"retail", "wholesale", "internal"})
      .AddPatternColumn("composite_ref", "AAA-ddd|AAA-ddd");

  DatasetPair p;
  p.id = "ing2_apps";
  p.scenario = Scenario::kJoinable;
  p.source = a.Build();
  p.target = b.Build();
  // n-m ground truth: several technical columns map to one business key.
  p.ground_truth = {
      {"application_name", "app_nm_key"},
      {"application_alias", "app_nm_key"},
      {"application_code", "app_cd_key"},
      {"ci_identifier", "app_cd_key"},
      {"owner_team", "team_nm_key"},
      {"support_team", "team_nm_key"},
      {"devops_team", "team_nm_key"},
      {"manager_name", "mgr_nm_key"},
      {"product_owner", "mgr_nm_key"},
      {"department", "dept_cd_key"},
      {"division", "dept_cd_key"},
      {"hostname", "hw_nm_key"},
      {"cluster_name", "hw_nm_key"},
      {"criticality", "crit_cd_key"},
      {"lifecycle_phase", "phase_cd_key"},
      {"environment", "env_cd_key"},
      {"cost_center", "cc_cd_key"},
      {"used_by_app", "rel_app_key"},
      {"uses_app", "rel_app_key"},
      {"depends_on_app", "rel_app_key"},
  };
  return p;
}

}  // namespace valentine
