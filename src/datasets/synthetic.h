#ifndef VALENTINE_DATASETS_SYNTHETIC_H_
#define VALENTINE_DATASETS_SYNTHETIC_H_

/// \file synthetic.h
/// Generic synthetic table construction: deterministic column generators
/// (ids, categoricals, names, numerics, dates, patterned codes, free
/// text) plus embedded vocabulary pools. The per-source generators
/// (TPC-DI, Open Data, ChEMBL, WikiData, Magellan, ING) are built on top
/// of this — see DESIGN.md §3 for why generated stand-ins preserve the
/// paper's experimental behaviour.

#include <string>
#include <vector>

#include "core/rng.h"
#include "core/table.h"

namespace valentine {

/// Embedded vocabulary pools used by the dataset generators.
namespace vocab {
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();
const std::vector<std::string>& Cities();
const std::vector<std::string>& Countries();
const std::vector<std::string>& CountryCodes();  ///< aligned with Countries()
const std::vector<std::string>& UsStates();
const std::vector<std::string>& Companies();
const std::vector<std::string>& Streets();
const std::vector<std::string>& Words();        ///< generic English nouns
const std::vector<std::string>& MusicGenres();
const std::vector<std::string>& Occupations();
}  // namespace vocab

/// \brief Fluent builder of deterministic synthetic tables.
///
/// All generators draw from one seeded Rng, so the same (name, rows,
/// seed, call sequence) always yields the identical table.
class SyntheticTableBuilder {
 public:
  SyntheticTableBuilder(std::string table_name, size_t rows, uint64_t seed);

  /// Sequential integer key starting at `start`.
  SyntheticTableBuilder& AddIdColumn(const std::string& name,
                                     int64_t start = 1);
  /// Ids rendered as "<prefix><number>", e.g. "CUST00042".
  SyntheticTableBuilder& AddPrefixedIdColumn(const std::string& name,
                                             const std::string& prefix);
  /// Uniform draw from a vocabulary (with replacement).
  SyntheticTableBuilder& AddCategorical(const std::string& name,
                                        const std::vector<std::string>& pool);
  /// Uniform integers in [lo, hi].
  SyntheticTableBuilder& AddUniformInt(const std::string& name, int64_t lo,
                                       int64_t hi);
  /// Gaussian integers (rounded, clamped at lo).
  SyntheticTableBuilder& AddGaussianInt(const std::string& name, double mean,
                                        double stddev, int64_t lo = 0);
  /// Gaussian doubles rounded to 2 decimals.
  SyntheticTableBuilder& AddGaussianFloat(const std::string& name,
                                          double mean, double stddev);
  /// Dates uniform in [year_lo, year_hi], rendered "YYYY-MM-DD".
  SyntheticTableBuilder& AddDateColumn(const std::string& name,
                                       int year_lo, int year_hi);
  /// Patterned codes: in `pattern`, 'd' -> digit, 'A' -> uppercase
  /// letter, 'a' -> lowercase letter; other chars are literal.
  SyntheticTableBuilder& AddPatternColumn(const std::string& name,
                                          const std::string& pattern);
  /// Free text: `min_words`..`max_words` words drawn from the pool.
  SyntheticTableBuilder& AddTextColumn(const std::string& name,
                                       const std::vector<std::string>& pool,
                                       size_t min_words, size_t max_words);
  /// Full person names "First Last".
  SyntheticTableBuilder& AddPersonNameColumn(const std::string& name);
  /// Boolean flags with probability `p_true`, rendered "Y"/"N".
  SyntheticTableBuilder& AddFlagColumn(const std::string& name,
                                       double p_true = 0.5);
  /// Nulls out a fraction of an existing column's cells.
  SyntheticTableBuilder& WithNulls(const std::string& column_name,
                                   double null_rate);

  /// Finalizes the table (the builder may not be reused afterwards).
  Table Build();

 private:
  Rng rng_;
  Table table_;
  size_t rows_;
};

}  // namespace valentine

#endif  // VALENTINE_DATASETS_SYNTHETIC_H_
