#ifndef VALENTINE_DATASETS_WIKIDATA_H_
#define VALENTINE_DATASETS_WIKIDATA_H_

/// \file wikidata.h
/// Curated WikiData-style matching challenge (paper §V-B): two tables
/// about USA singers with identical underlying entities but (i) varied
/// column names in the second table (partner -> spouse, etc.) and
/// (ii) alternative value encodings in six selected columns (e.g.
/// "Elvis Presley" -> "Elvis Aaron Presley", ISO dates -> long-form
/// dates). Variants are fabricated for all four relatedness scenarios.

#include <vector>

#include "core/table.h"
#include "fabrication/fabricator.h"

namespace valentine {

/// The base 20-column singers table (table-A encoding).
Table MakeWikidataSingersBase(size_t rows = 1000, uint64_t seed = 7);

/// The four curated pairs, one per relatedness scenario, in the order
/// Unionable, View-Unionable, Joinable, Semantically-Joinable.
std::vector<DatasetPair> MakeWikidataPairs(size_t rows = 1000,
                                           uint64_t seed = 7);

}  // namespace valentine

#endif  // VALENTINE_DATASETS_WIKIDATA_H_
