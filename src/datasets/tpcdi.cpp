#include "datasets/tpcdi.h"

#include "datasets/synthetic.h"

namespace valentine {

Table MakeTpcdiProspect(size_t rows, uint64_t seed) {
  SyntheticTableBuilder b("prospect", rows, seed);
  b.AddPrefixedIdColumn("agency_id", "AGY")
      .AddCategorical("last_name", vocab::LastNames())
      .AddCategorical("first_name", vocab::FirstNames())
      .AddPatternColumn("middle_initial", "A")
      .AddCategorical("gender", {"M", "F"})
      .AddPatternColumn("address_line1", "ddd aA")
      .AddCategorical("address_line2", vocab::Streets())
      .AddPatternColumn("postal_code", "ddddd")
      .AddCategorical("city", vocab::Cities())
      .AddCategorical("state", vocab::UsStates())
      .AddCategorical("country", vocab::Countries())
      .AddPatternColumn("phone", "(ddd) ddd-dddd")
      .AddGaussianInt("income", 65000, 22000, 12000)
      .AddUniformInt("number_cars", 0, 4)
      .AddUniformInt("number_children", 0, 5)
      .AddCategorical("marital_status", {"S", "M", "D", "W", "U"})
      .AddUniformInt("age", 18, 95)
      .AddGaussianInt("credit_rating", 620, 90, 300)
      .AddFlagColumn("own_or_rent", 0.6)
      .AddCategorical("employer", vocab::Companies())
      .AddUniformInt("number_credit_cards", 0, 9)
      .AddGaussianInt("net_worth", 250000, 180000, 0)
      .WithNulls("address_line2", 0.15)
      .WithNulls("employer", 0.05);
  return b.Build();
}

}  // namespace valentine
