#include "datasets/synthetic.h"

#include <cmath>
#include <cstdio>

namespace valentine {

namespace vocab {

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> kPool = {
      "James",   "Mary",    "Robert",  "Patricia", "John",    "Jennifer",
      "Michael", "Linda",   "David",   "Elizabeth","William", "Barbara",
      "Richard", "Susan",   "Joseph",  "Jessica",  "Thomas",  "Sarah",
      "Charles", "Karen",   "Chris",   "Lisa",     "Daniel",  "Nancy",
      "Matthew", "Betty",   "Anthony", "Sandra",   "Mark",    "Margaret",
      "Donald",  "Ashley",  "Steven",  "Kimberly", "Andrew",  "Emily",
      "Paul",    "Donna",   "Joshua",  "Michelle", "Kenneth", "Carol",
      "Kevin",   "Amanda",  "Brian",   "Melissa",  "George",  "Deborah",
      "Timothy", "Stephanie","Ronald", "Rebecca",  "Jason",   "Laura",
      "Edward",  "Helen",   "Jeffrey", "Sharon",   "Ryan",    "Cynthia",
      "Jacob",   "Kathleen","Gary",    "Amy",      "Nicholas","Angela",
      "Eric",    "Shirley", "Jonathan","Anna",     "Stephen", "Ruth",
      "Larry",   "Brenda",  "Justin",  "Pamela",   "Scott",   "Nicole",
      "Brandon", "Katherine","Benjamin","Samantha","Samuel",  "Christine",
      "Gregory", "Emma",    "Frank",   "Catherine","Alexander","Debra",
      "Raymond", "Virginia","Patrick", "Rachel",   "Jack",    "Carolyn",
      "Dennis",  "Janet",   "Jerry",   "Maria",
  };
  return kPool;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string> kPool = {
      "Smith",    "Johnson",  "Williams", "Brown",    "Jones",
      "Garcia",   "Miller",   "Davis",    "Rodriguez","Martinez",
      "Hernandez","Lopez",    "Gonzalez", "Wilson",   "Anderson",
      "Thomas",   "Taylor",   "Moore",    "Jackson",  "Martin",
      "Lee",      "Perez",    "Thompson", "White",    "Harris",
      "Sanchez",  "Clark",    "Ramirez",  "Lewis",    "Robinson",
      "Walker",   "Young",    "Allen",    "King",     "Wright",
      "Scott",    "Torres",   "Nguyen",   "Hill",     "Flores",
      "Green",    "Adams",    "Nelson",   "Baker",    "Hall",
      "Rivera",   "Campbell", "Mitchell", "Carter",   "Roberts",
      "Gomez",    "Phillips", "Evans",    "Turner",   "Diaz",
      "Parker",   "Cruz",     "Edwards",  "Collins",  "Reyes",
      "Stewart",  "Morris",   "Morales",  "Murphy",   "Cook",
      "Rogers",   "Gutierrez","Ortiz",    "Morgan",   "Cooper",
      "Peterson", "Bailey",   "Reed",     "Kelly",    "Howard",
      "Ramos",    "Kim",      "Cox",      "Ward",     "Richardson",
  };
  return kPool;
}

const std::vector<std::string>& Cities() {
  static const std::vector<std::string> kPool = {
      "New York",     "Los Angeles", "Chicago",     "Houston",
      "Phoenix",      "Philadelphia","San Antonio", "San Diego",
      "Dallas",       "San Jose",    "Austin",      "Jacksonville",
      "Fort Worth",   "Columbus",    "Charlotte",   "Indianapolis",
      "Seattle",      "Denver",      "Boston",      "Nashville",
      "Detroit",      "Portland",    "Memphis",     "Louisville",
      "Baltimore",    "Milwaukee",   "Albuquerque", "Tucson",
      "Fresno",       "Sacramento",  "Mesa",        "Kansas City",
      "Atlanta",      "Omaha",       "Raleigh",     "Miami",
      "Oakland",      "Minneapolis", "Tulsa",       "Cleveland",
      "Wichita",      "Arlington",   "Tampa",       "Honolulu",
      "Pittsburgh",   "Toronto",     "Vancouver",   "Montreal",
      "London",       "Manchester",  "Amsterdam",   "Rotterdam",
      "Berlin",       "Munich",      "Paris",       "Lyon",
  };
  return kPool;
}

const std::vector<std::string>& Countries() {
  static const std::vector<std::string> kPool = {
      "United States", "Canada",      "United Kingdom", "Netherlands",
      "Germany",       "France",      "Spain",          "Italy",
      "Portugal",      "Belgium",     "Switzerland",    "Austria",
      "Sweden",        "Norway",      "Denmark",        "Finland",
      "Ireland",       "Poland",      "Greece",         "Japan",
      "Australia",     "New Zealand", "Brazil",         "Mexico",
      "Argentina",     "India",       "China",          "South Korea",
  };
  return kPool;
}

const std::vector<std::string>& CountryCodes() {
  static const std::vector<std::string> kPool = {
      "US", "CA", "UK", "NL", "DE", "FR", "ES", "IT", "PT", "BE",
      "CH", "AT", "SE", "NO", "DK", "FI", "IE", "PL", "GR", "JP",
      "AU", "NZ", "BR", "MX", "AR", "IN", "CN", "KR",
  };
  return kPool;
}

const std::vector<std::string>& UsStates() {
  static const std::vector<std::string> kPool = {
      "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
      "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
      "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
      "NM", "NY", "NC", "ND", "OH", "OK", "OR", "PA", "RI", "SC",
      "SD", "TN", "TX", "UT", "VT", "VA", "WA", "WV", "WI", "WY",
  };
  return kPool;
}

const std::vector<std::string>& Companies() {
  static const std::vector<std::string> kPool = {
      "Acme Corp",        "Globex",          "Initech",
      "Umbrella Group",   "Stark Industries","Wayne Enterprises",
      "Wonka Industries", "Tyrell Corp",     "Cyberdyne Systems",
      "Soylent Corp",     "Massive Dynamic", "Hooli",
      "Pied Piper",       "Vandelay Industries","Dunder Mifflin",
      "Sterling Cooper",  "Oceanic Airlines","Weyland-Yutani",
      "Aperture Science", "Black Mesa",      "Vehement Capital",
      "Gringotts Bank",   "Octan Energy",    "Zorin Industries",
      "Macrosoft",        "Goliath National","Duff Brewing",
      "Planet Express",   "Monsters Inc",    "Gekko and Co",
  };
  return kPool;
}

const std::vector<std::string>& Streets() {
  static const std::vector<std::string> kPool = {
      "Main St",      "Oak Ave",     "Maple Dr",    "Cedar Ln",
      "Pine St",      "Elm St",      "Washington Ave","Lake Rd",
      "Hill St",      "Park Ave",    "Sunset Blvd", "River Rd",
      "Church St",    "Spring St",   "High St",     "Center St",
      "Union Ave",    "Prospect St", "Highland Ave","Franklin St",
      "Jefferson Ave","Lincoln Blvd","Madison St",  "Adams Dr",
      "Monroe Ln",    "Jackson Way", "Harrison Ct", "Tyler Pl",
  };
  return kPool;
}

const std::vector<std::string>& Words() {
  static const std::vector<std::string> kPool = {
      "analysis",  "platform",  "report",   "module",    "pipeline",
      "dataset",   "service",   "account",  "inventory", "payment",
      "schedule",  "request",   "response", "network",   "storage",
      "compute",   "process",   "review",   "release",   "update",
      "backlog",   "feature",   "defect",   "metric",    "quality",
      "security",  "capacity",  "workflow", "customer",  "contract",
      "invoice",   "shipment",  "warehouse","catalog",   "campaign",
      "channel",   "segment",   "forecast", "budget",    "audit",
      "policy",    "standard",  "protocol", "interface", "gateway",
      "cluster",   "instance",  "container","function",  "variable",
  };
  return kPool;
}

const std::vector<std::string>& MusicGenres() {
  static const std::vector<std::string> kPool = {
      "rock",  "pop",    "country", "blues",   "jazz",   "soul",
      "folk",  "gospel", "rap",     "hip hop", "r&b",    "disco",
      "metal", "punk",   "indie",   "electronic","latin", "reggae",
  };
  return kPool;
}

const std::vector<std::string>& Occupations() {
  static const std::vector<std::string> kPool = {
      "engineer",  "teacher",   "nurse",      "accountant", "lawyer",
      "architect", "designer",  "analyst",    "manager",    "developer",
      "scientist", "technician","electrician","plumber",    "chef",
      "pilot",     "dentist",   "pharmacist", "journalist", "librarian",
  };
  return kPool;
}

}  // namespace vocab

SyntheticTableBuilder::SyntheticTableBuilder(std::string table_name,
                                             size_t rows, uint64_t seed)
    : rng_(seed), table_(std::move(table_name)), rows_(rows) {}

SyntheticTableBuilder& SyntheticTableBuilder::AddIdColumn(
    const std::string& name, int64_t start) {
  Column col(name, DataType::kInt64);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    col.Append(Value::Int(start + static_cast<int64_t>(i)));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddPrefixedIdColumn(
    const std::string& name, const std::string& prefix) {
  Column col(name, DataType::kString);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%05zu", i + 1);
    col.Append(Value::String(prefix + buf));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddCategorical(
    const std::string& name, const std::vector<std::string>& pool) {
  Column col(name, DataType::kString);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    col.Append(Value::String(rng_.Pick(pool)));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddUniformInt(
    const std::string& name, int64_t lo, int64_t hi) {
  Column col(name, DataType::kInt64);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    col.Append(Value::Int(rng_.UniformInt(lo, hi)));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddGaussianInt(
    const std::string& name, double mean, double stddev, int64_t lo) {
  Column col(name, DataType::kInt64);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    int64_t v = static_cast<int64_t>(std::llround(rng_.Gaussian(mean, stddev)));
    col.Append(Value::Int(std::max(lo, v)));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddGaussianFloat(
    const std::string& name, double mean, double stddev) {
  Column col(name, DataType::kFloat64);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    double v = rng_.Gaussian(mean, stddev);
    col.Append(Value::Float(std::round(v * 100.0) / 100.0));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddDateColumn(
    const std::string& name, int year_lo, int year_hi) {
  Column col(name, DataType::kDate);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    int year = static_cast<int>(rng_.UniformInt(year_lo, year_hi));
    int month = static_cast<int>(rng_.UniformInt(1, 12));
    int day = static_cast<int>(rng_.UniformInt(1, 28));
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
    col.Append(Value::String(buf));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddPatternColumn(
    const std::string& name, const std::string& pattern) {
  Column col(name, DataType::kString);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    std::string v;
    v.reserve(pattern.size());
    for (char p : pattern) {
      switch (p) {
        case 'd':
          v.push_back(static_cast<char>('0' + rng_.Index(10)));
          break;
        case 'A':
          v.push_back(static_cast<char>('A' + rng_.Index(26)));
          break;
        case 'a':
          v.push_back(static_cast<char>('a' + rng_.Index(26)));
          break;
        default:
          v.push_back(p);
      }
    }
    col.Append(Value::String(std::move(v)));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddTextColumn(
    const std::string& name, const std::vector<std::string>& pool,
    size_t min_words, size_t max_words) {
  Column col(name, DataType::kString);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    size_t n = min_words + rng_.Index(max_words - min_words + 1);
    std::string text;
    for (size_t w = 0; w < n; ++w) {
      if (w > 0) text += " ";
      text += rng_.Pick(pool);
    }
    col.Append(Value::String(std::move(text)));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddPersonNameColumn(
    const std::string& name) {
  Column col(name, DataType::kString);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    col.Append(Value::String(rng_.Pick(vocab::FirstNames()) + " " +
                             rng_.Pick(vocab::LastNames())));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::AddFlagColumn(
    const std::string& name, double p_true) {
  Column col(name, DataType::kString);
  col.Reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    col.Append(Value::String(rng_.Bernoulli(p_true) ? "Y" : "N"));
  }
  (void)table_.AddColumn(std::move(col));
  return *this;
}

SyntheticTableBuilder& SyntheticTableBuilder::WithNulls(
    const std::string& column_name, double null_rate) {
  auto idx = table_.ColumnIndex(column_name);
  if (idx) {
    Column& col = table_.column(*idx);
    for (size_t i = 0; i < col.size(); ++i) {
      if (rng_.Bernoulli(null_rate)) col[i] = Value::Null();
    }
  }
  return *this;
}

Table SyntheticTableBuilder::Build() { return std::move(table_); }

}  // namespace valentine
