#ifndef VALENTINE_DATASETS_ING_H_
#define VALENTINE_DATASETS_ING_H_

/// \file ing.h
/// Synthetic stand-ins for the two proprietary ING Bank dataset pairs
/// (paper §V-B), which cannot be public. Built to reproduce the published
/// qualitative structure (DESIGN.md §3):
///
///  * ING#1 — two SCRUM backlog tables (33x935 and 16x972 in the paper)
///    whose matching columns have identical or near-identical names but
///    whose contents (hashes, descriptions, repeated agile vocabulary)
///    create false-positive bait; matching columns carry almost-identical
///    value distributions (which is why the distribution-based method
///    won).
///  * ING#2 — an application-inventory pair: one wide low-level table
///    (59x1000) and one business-level table (25x1000) whose column names
///    carry suffixes, with *n-m ground truth*: one business column
///    corresponds to several technical columns (the structure COMA's 1-1
///    selection failed on).

#include "fabrication/fabricator.h"

namespace valentine {

/// The SCRUM backlog pair with expert-style ground truth (14 matches).
DatasetPair MakeIngPair1(size_t rows = 500, uint64_t seed = 11);

/// The application-inventory pair with n-m ground truth.
DatasetPair MakeIngPair2(size_t rows = 500, uint64_t seed = 12);

}  // namespace valentine

#endif  // VALENTINE_DATASETS_ING_H_
