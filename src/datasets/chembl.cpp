#include "datasets/chembl.h"

#include "datasets/synthetic.h"

namespace valentine {

namespace {
const std::vector<std::string>& Organisms() {
  static const std::vector<std::string> kPool = {
      "Homo sapiens",        "Mus musculus",     "Rattus norvegicus",
      "Escherichia coli",    "Canis familiaris", "Bos taurus",
      "Plasmodium falciparum","Danio rerio",     "Cavia porcellus",
      "Oryctolagus cuniculus","Sus scrofa",      "Gallus gallus",
  };
  return kPool;
}

const std::vector<std::string>& TargetNames() {
  static const std::vector<std::string> kPool = {
      "Carbonic anhydrase II",  "Cyclooxygenase-2",
      "Acetylcholinesterase",   "Dopamine D2 receptor",
      "Thrombin",               "Tyrosine kinase ABL",
      "HERG potassium channel", "Cytochrome P450 3A4",
      "Histamine H1 receptor",  "Serotonin transporter",
      "Epidermal growth factor receptor", "Beta-2 adrenergic receptor",
  };
  return kPool;
}

const std::vector<std::string>& CellLines() {
  static const std::vector<std::string> kPool = {
      "HeLa", "HEK293", "CHO-K1", "MCF7", "A549", "HepG2",
      "PC-3", "U-87",   "Caco-2", "THP-1",
  };
  return kPool;
}

const std::vector<std::string>& AssayWords() {
  static const std::vector<std::string> kPool = {
      "inhibition", "binding",   "affinity",   "potency",  "displacement",
      "radioligand","fluorescence","cytotoxicity","permeability","clearance",
      "agonist",    "antagonist","selectivity","substrate","metabolism",
  };
  return kPool;
}
}  // namespace

Table MakeChemblAssays(size_t rows, uint64_t seed) {
  SyntheticTableBuilder b("assays", rows, seed);
  b.AddPrefixedIdColumn("assay_id", "CHEMBL")
      .AddTextColumn("description", AssayWords(), 4, 12)
      .AddCategorical("assay_type", {"B", "F", "A", "T", "P", "U"})
      .AddCategorical("assay_category",
                      {"screening", "confirmatory", "panel", "other"})
      .AddCategorical("assay_organism", Organisms())
      .AddPatternColumn("assay_tax_id", "dddddd")
      .AddCategorical("assay_strain", {"Wistar", "Sprague-Dawley", "BALB/c",
                                       "C57BL/6", "K-12", "unspecified"})
      .AddCategorical("assay_tissue",
                      {"liver", "brain", "heart", "kidney", "plasma",
                       "lung", "muscle", "spleen"})
      .AddCategorical("assay_cell_type", CellLines())
      .AddCategorical("assay_subcellular_fraction",
                      {"membrane", "cytosol", "microsome", "mitochondria",
                       "nucleus", "none"})
      .AddPrefixedIdColumn("tid", "T")
      .AddCategorical("target_name", TargetNames())
      .AddCategorical("relationship_type", {"D", "H", "M", "N", "S", "U"})
      .AddCategorical("confidence_score",
                      {"0", "1", "3", "4", "5", "6", "7", "8", "9"})
      .AddCategorical("curated_by", {"Autocuration", "Intermediate",
                                     "Expert", "NULL"})
      .AddPrefixedIdColumn("doc_id", "DOC")
      .AddCategorical("journal", {"J Med Chem", "Bioorg Med Chem Lett",
                                  "Eur J Med Chem", "ACS Med Chem Lett",
                                  "MedChemComm", "Nature", "Science"})
      .AddUniformInt("year", 1990, 2021)
      .AddCategorical("src_short_name",
                      {"LITERATURE", "PUBCHEM", "DRUGMATRIX", "TP_TRANSPORTER",
                       "ATLAS", "SUPPLEMENTARY"})
      .AddPatternColumn("chembl_id", "CHEMBLddddddd")
      .AddCategorical("bao_format",
                      {"BAO_0000219", "BAO_0000218", "BAO_0000019",
                       "BAO_0000366", "BAO_0000221"})
      .AddGaussianFloat("assay_value_mean", 6.2, 1.4)
      .AddUniformInt("activity_count", 1, 480)
      .WithNulls("assay_strain", 0.4)
      .WithNulls("assay_subcellular_fraction", 0.3)
      .WithNulls("assay_tissue", 0.25);
  return b.Build();
}

Ontology MakeEfoLikeOntology() {
  // Labels use EFO's formal vocabulary, which only partially matches
  // the Assays column names — exactly the gap that made SemProp's
  // embedding-based linking unreliable in the paper (its vectors relate
  // surface forms, not domain semantics).
  Ontology o;
  size_t root = o.AddClass("experimental_factor", {"experimental factor"});
  size_t assay = o.AddSubclass(
      root, "assay", {"planned process", "assay", "measurement method"});
  o.AddSubclass(assay, "assay_type",
                {"process classification", "methodology"});
  o.AddSubclass(assay, "assay_description",
                {"textual entity", "protocol narrative"});
  o.AddSubclass(assay, "assay_measurement",
                {"quantitative observation", "measurement datum"});
  size_t organism = o.AddSubclass(
      root, "organism", {"organism", "taxonomic entity", "NCBI taxon"});
  o.AddSubclass(organism, "strain", {"breed or strain variant"});
  size_t anatomy = o.AddSubclass(
      root, "anatomical_entity", {"anatomical entity", "organism part"});
  o.AddSubclass(anatomy, "cell_type", {"cell", "cultured cell population"});
  o.AddSubclass(anatomy, "subcellular_fraction",
                {"cellular component", "organelle fraction"});
  size_t target = o.AddSubclass(
      root, "molecular_target", {"molecular entity", "polypeptide"});
  o.AddSubclass(target, "target_confidence",
                {"curation confidence", "evidence level"});
  size_t publication = o.AddSubclass(
      root, "publication", {"information content entity", "bibliographic "
                            "reference", "journal article"});
  o.AddSubclass(publication, "publication_year", {"temporal annotation"});
  o.AddSubclass(root, "data_source", {"provenance record", "curation "
                                      "activity"});
  o.AddSubclass(root, "identifier", {"centrally registered identifier",
                                     "accession number"});
  return o;
}

}  // namespace valentine
