#ifndef VALENTINE_DATASETS_MAGELLAN_H_
#define VALENTINE_DATASETS_MAGELLAN_H_

/// \file magellan.h
/// Stand-ins for the 7 Magellan repository dataset pairs (paper §V-B):
/// real-world unionable pairs curated for entity matching, with
/// *identical column names* on both sides, overlapping values with minor
/// discrepancies (format differences, typos) and occasional multi-valued
/// attributes (e.g. actor lists) — the combination that let schema-based
/// methods score 1.0 while instance-based methods dropped (Table III).

#include <vector>

#include "fabrication/fabricator.h"

namespace valentine {

/// The seven unionable pairs: restaurants, movies x2, beers, books,
/// music, bikes.
std::vector<DatasetPair> MakeMagellanPairs(size_t rows = 400,
                                           uint64_t seed = 5);

}  // namespace valentine

#endif  // VALENTINE_DATASETS_MAGELLAN_H_
