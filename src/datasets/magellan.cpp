#include "datasets/magellan.h"

#include <cmath>

#include "datasets/synthetic.h"
#include "fabrication/splitter.h"
#include "text/typo_model.h"

namespace valentine {

namespace {

/// Applies real-world discrepancies to one shard: per-cell case jitter,
/// typos, and punctuation drift on strings, value jitter on numerics —
/// the kind of cross-source drift (fodors-vs-zagat, rotten-vs-imdb)
/// these entity-matching datasets are famous for. This is what pulls
/// the instance-based methods below the schema-based ones on Magellan
/// (paper Table III).
void ApplyDiscrepancies(Table* t, double rate, Rng* rng) {
  TypoModel typos(0.08);
  for (size_t c = 0; c < t->num_columns(); ++c) {
    Column& col = t->column(c);
    const bool numeric = col.NumericFraction() > 0.9;
    for (size_t r = 0; r < col.size(); ++r) {
      Value& v = col[r];
      if (v.is_null() || !rng->Bernoulli(rate)) continue;
      if (numeric) {
        // Sources disagree on exact figures (ratings, prices, counts).
        auto d = v.TryFloat();
        if (!d) continue;
        double jittered = *d * rng->UniformDouble(0.92, 1.08);
        if (v.kind() == DataType::kInt64) {
          v = Value::Int(static_cast<int64_t>(std::llround(jittered)));
        } else {
          v = Value::Float(std::round(jittered * 10.0) / 10.0);
        }
        continue;
      }
      std::string s = v.AsString();
      switch (rng->Index(3)) {
        case 0:  // case jitter
          for (char& ch : s) {
            ch = static_cast<char>(std::toupper(
                static_cast<unsigned char>(ch)));
          }
          break;
        case 1:  // typo
          s = typos.Perturb(s, rng);
          break;
        default:  // surrounding whitespace / punctuation drift
          s = s + ".";
          break;
      }
      v = Value::String(std::move(s));
    }
  }
}

/// Reformats a phone-style column in place ("123/456-7890" ->
/// "(123) 456-7890"): the classic cross-source encoding difference.
void ReformatPhones(Table* t, const std::string& column) {
  auto idx = t->ColumnIndex(column);
  if (!idx) return;
  Column& col = t->column(*idx);
  for (size_t r = 0; r < col.size(); ++r) {
    std::string s = col[r].AsString();
    std::string digits;
    for (char c : s) {
      if (c >= '0' && c <= '9') digits.push_back(c);
    }
    if (digits.size() != 10) continue;
    col[r] = Value::String("(" + digits.substr(0, 3) + ") " +
                           digits.substr(3, 3) + "-" + digits.substr(6));
  }
}

/// Shuffles the element order of "; "-joined multi-valued cells —
/// sources list actors in different orders, so the joined strings stop
/// matching exactly (the multi-valued complication of §VII-B2).
void ReorderLists(Table* t, const std::string& column, Rng* rng) {
  auto idx = t->ColumnIndex(column);
  if (!idx) return;
  Column& col = t->column(*idx);
  for (size_t r = 0; r < col.size(); ++r) {
    std::string s = col[r].AsString();
    std::vector<std::string> parts;
    size_t pos = 0;
    while (true) {
      size_t sep = s.find("; ", pos);
      if (sep == std::string::npos) {
        parts.push_back(s.substr(pos));
        break;
      }
      parts.push_back(s.substr(pos, sep - pos));
      pos = sep + 2;
    }
    if (parts.size() < 2) continue;
    rng->Shuffle(&parts);
    std::string joined;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (i > 0) joined += "; ";
      joined += parts[i];
    }
    col[r] = Value::String(std::move(joined));
  }
}

/// Builds a unionable Magellan-style pair from one base table: identical
/// column names, ~60% row overlap, discrepancies on the second shard.
DatasetPair MakeUnionablePair(const Table& base, const std::string& id,
                              double discrepancy_rate, Rng* rng) {
  HorizontalSplit hs =
      SplitRowsWithOverlap(base.num_rows(), 0.6, rng);
  DatasetPair p;
  p.scenario = Scenario::kUnionable;
  p.source = base.TakeRows(hs.rows_a);
  p.target = base.TakeRows(hs.rows_b);
  p.source.set_name(base.name() + "_a");
  p.target.set_name(base.name() + "_b");
  ApplyDiscrepancies(&p.target, discrepancy_rate, rng);
  for (const auto& name : base.ColumnNames()) {
    p.ground_truth.push_back({name, name});
  }
  p.id = id;
  return p;
}

const std::vector<std::string>& Cuisines() {
  static const std::vector<std::string> kPool = {
      "italian", "mexican",  "chinese", "japanese", "thai",
      "indian",  "american", "french",  "greek",    "korean",
  };
  return kPool;
}

const std::vector<std::string>& MovieTitles() {
  static const std::vector<std::string> kPool = {
      "The Last Harbor",   "Midnight Circuit", "Paper Mountains",
      "A Quiet Divide",    "Iron Meridian",    "The Glass Orchard",
      "Falling Northward", "Silent Cartography","Ember and Ash",
      "The Seventh Tide",  "Hollow Crown",     "Beneath the Static",
      "Crimson Ledger",    "The Long Thaw",    "Orbit of Sparrows",
      "Velvet Armistice",  "The Cartel Waltz", "Stray Light",
      "Winter's Apostle",  "The Benevolent Liar",
  };
  return kPool;
}

/// Multi-valued attribute: a semicolon-joined list of 2-4 person names.
void AddPersonListColumn(Table* t, const std::string& name, size_t rows,
                         Rng* rng) {
  Column c(name, DataType::kString);
  for (size_t i = 0; i < rows; ++i) {
    size_t n = 2 + rng->Index(3);
    std::string list;
    for (size_t k = 0; k < n; ++k) {
      if (k > 0) list += "; ";
      list += rng->Pick(vocab::FirstNames()) + " " +
              rng->Pick(vocab::LastNames());
    }
    c.Append(Value::String(std::move(list)));
  }
  (void)t->AddColumn(std::move(c));
}

}  // namespace

std::vector<DatasetPair> MakeMagellanPairs(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<DatasetPair> pairs;

  // 1. Restaurants: name, address, city, phone, cuisine (5 cols).
  {
    SyntheticTableBuilder b("restaurants", rows, rng.Next());
    b.AddTextColumn("name", vocab::Words(), 1, 3)
        .AddPatternColumn("address", "ddd aA")
        .AddCategorical("city", vocab::Cities())
        .AddPatternColumn("phone", "ddd/ddd-dddd")
        .AddCategorical("cuisine", Cuisines());
    DatasetPair p =
        MakeUnionablePair(b.Build(), "magellan_restaurants", 0.35, &rng);
    ReformatPhones(&p.target, "phone");  // fodors/zagat-style drift
    pairs.push_back(std::move(p));
  }

  // 2. Movies (rotten/imdb style): title, year, director, actors(list),
  // rating, genre (6 cols, multi-valued actors).
  {
    SyntheticTableBuilder b("movies1", rows, rng.Next());
    b.AddCategorical("title", MovieTitles())
        .AddUniformInt("year", 1960, 2020)
        .AddPersonNameColumn("director")
        .AddGaussianFloat("rating", 6.4, 1.2)
        .AddCategorical("genre", {"drama", "comedy", "thriller", "action",
                                  "romance", "horror", "sci-fi"});
    Table t = b.Build();
    AddPersonListColumn(&t, "actors", rows, &rng);
    DatasetPair p = MakeUnionablePair(t, "magellan_movies1", 0.35, &rng);
    ReorderLists(&p.target, "actors", &rng);  // multi-valued complication
    pairs.push_back(std::move(p));
  }

  // 3. Movies (anime style): title, year, episodes, producer (4 cols).
  {
    SyntheticTableBuilder b("movies2", rows, rng.Next());
    b.AddCategorical("title", MovieTitles())
        .AddUniformInt("year", 1980, 2021)
        .AddUniformInt("episodes", 1, 120)
        .AddCategorical("producer", vocab::Companies());
    pairs.push_back(
        MakeUnionablePair(b.Build(), "magellan_movies2", 0.2, &rng));
  }

  // 4. Beers: name, brewery, style, abv, ibu (5 cols).
  {
    SyntheticTableBuilder b("beers", rows, rng.Next());
    b.AddTextColumn("beer_name", vocab::Words(), 1, 3)
        .AddCategorical("brew_factory_name", vocab::Companies())
        .AddCategorical("style", {"IPA", "stout", "lager", "pilsner",
                                  "porter", "saison", "wheat", "amber ale"})
        .AddGaussianFloat("abv", 5.8, 1.4)
        .AddUniformInt("ibu", 5, 110);
    pairs.push_back(
        MakeUnionablePair(b.Build(), "magellan_beers", 0.25, &rng));
  }

  // 5. Books: title, author, isbn, publisher, pages, price (6 cols).
  {
    SyntheticTableBuilder b("books", rows, rng.Next());
    b.AddTextColumn("title", vocab::Words(), 2, 5)
        .AddPersonNameColumn("author")
        .AddPatternColumn("isbn", "ddd-d-dd-dddddd-d")
        .AddCategorical("publisher", vocab::Companies())
        .AddUniformInt("pages", 90, 1200)
        .AddGaussianFloat("price", 22.0, 9.0);
    pairs.push_back(
        MakeUnionablePair(b.Build(), "magellan_books", 0.2, &rng));
  }

  // 6. Music: song, artist, album, genre, duration, year (6 cols).
  {
    SyntheticTableBuilder b("music", rows, rng.Next());
    b.AddTextColumn("song_name", vocab::Words(), 1, 4)
        .AddPersonNameColumn("artist_name")
        .AddTextColumn("album_name", vocab::Words(), 1, 3)
        .AddCategorical("genre", vocab::MusicGenres())
        .AddUniformInt("duration_sec", 95, 560)
        .AddUniformInt("released", 1955, 2021);
    pairs.push_back(
        MakeUnionablePair(b.Build(), "magellan_music", 0.3, &rng));
  }

  // 7. Bikes: model, brand, price, city, km_driven, owner_count (6 cols,
  // the largest of the Magellan pairs).
  {
    SyntheticTableBuilder b("bikes", rows * 2, rng.Next());
    b.AddTextColumn("bike_name", vocab::Words(), 2, 4)
        .AddCategorical("brand", vocab::Companies())
        .AddGaussianInt("price", 52000, 21000, 5000)
        .AddCategorical("city_posted", vocab::Cities())
        .AddGaussianInt("km_driven", 25000, 14000, 100)
        .AddCategorical("owner_type", {"first", "second", "third", "fourth"});
    pairs.push_back(
        MakeUnionablePair(b.Build(), "magellan_bikes", 0.25, &rng));
  }

  return pairs;
}

}  // namespace valentine
