#include "datasets/opendata.h"

#include "datasets/synthetic.h"

namespace valentine {

Table MakeOpenDataTable(size_t rows, uint64_t seed) {
  SyntheticTableBuilder b("permits", rows, seed);
  b.AddPrefixedIdColumn("permit_number", "PRM")
      .AddCategorical("permit_type",
                      {"building", "demolition", "electrical", "plumbing",
                       "mechanical", "signage", "excavation"})
      .AddCategorical("permit_status",
                      {"issued", "pending", "expired", "revoked", "closed"})
      .AddDateColumn("application_date", 2010, 2020)
      .AddDateColumn("issue_date", 2010, 2021)
      .AddDateColumn("expiry_date", 2011, 2025)
      .AddTextColumn("work_description", vocab::Words(), 3, 10)
      .AddPatternColumn("street_number", "dddd")
      .AddCategorical("street_name", vocab::Streets())
      .AddCategorical("city", vocab::Cities())
      .AddCategorical("province", vocab::UsStates())
      .AddPatternColumn("postal_code", "AdA dAd")
      .AddCategorical("country", vocab::Countries())
      .AddGaussianFloat("latitude", 45.0, 3.0)
      .AddGaussianFloat("longitude", -79.0, 8.0)
      .AddCategorical("ward", {"Ward 1", "Ward 2", "Ward 3", "Ward 4",
                               "Ward 5", "Ward 6", "Ward 7", "Ward 8"})
      .AddUniformInt("council_district", 1, 24)
      .AddGaussianInt("construction_value", 180000, 120000, 1000)
      .AddGaussianFloat("permit_fee", 850.0, 400.0)
      .AddUniformInt("dwelling_units_created", 0, 12)
      .AddUniformInt("dwelling_units_lost", 0, 4)
      .AddUniformInt("storeys", 1, 40)
      .AddGaussianInt("floor_area_sqm", 420, 350, 10)
      .AddCategorical("structure_type",
                      {"detached", "semi-detached", "apartment", "commercial",
                       "industrial", "institutional", "mixed"})
      .AddCategorical("current_use", vocab::Words())
      .AddCategorical("proposed_use", vocab::Words())
      .AddPersonNameColumn("applicant_name")
      .AddCategorical("applicant_type",
                      {"owner", "agent", "contractor", "architect"})
      .AddCategorical("contractor_name", vocab::Companies())
      .AddPatternColumn("contractor_phone", "ddd-ddd-dddd")
      .AddPersonNameColumn("owner_name")
      .AddPatternColumn("owner_phone", "(ddd) ddd-dddd")
      .AddCategorical("architect_firm", vocab::Companies())
      .AddPatternColumn("roll_number", "dd-dd-ddddd")
      .AddPatternColumn("legal_description", "Aa dd Aa ddd")
      .AddCategorical("zoning_district", {"R1", "R2", "R3", "C1", "C2", "M1",
                                          "M2", "OS", "AG"})
      .AddFlagColumn("heritage_property", 0.06)
      .AddFlagColumn("conditional_approval", 0.2)
      .AddUniformInt("inspection_count", 0, 15)
      .AddDateColumn("last_inspection_date", 2012, 2021)
      .AddCategorical("inspector_name", vocab::LastNames())
      .AddCategorical("review_outcome",
                      {"approved", "approved with conditions", "rejected",
                       "deferred"})
      .AddGaussianFloat("development_charge", 12000.0, 8000.0)
      .AddGaussianFloat("parkland_levy", 2200.0, 1500.0)
      .AddUniformInt("parking_spaces", 0, 200)
      .AddUniformInt("bicycle_spaces", 0, 80)
      .AddCategorical("sewer_connection", {"municipal", "septic", "none"})
      .AddCategorical("water_connection", {"municipal", "well", "none"})
      .AddCategorical("data_source", {"canada_open_data", "usa_open_data",
                                      "uk_open_data"})
      .AddDateColumn("record_updated", 2019, 2021)
      .AddPatternColumn("geo_id", "Gdddddd")
      .WithNulls("architect_firm", 0.35)
      .WithNulls("parkland_levy", 0.25)
      .WithNulls("last_inspection_date", 0.2)
      .WithNulls("heritage_property", 0.1);
  return b.Build();
}

}  // namespace valentine
