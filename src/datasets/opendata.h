#ifndef VALENTINE_DATASETS_OPENDATA_H_
#define VALENTINE_DATASETS_OPENDATA_H_

/// \file opendata.h
/// Deterministic stand-in for the Open Data table the paper fabricated
/// from (§V-A: the Canada/USA/UK Open Data benchmark of Nargesian et
/// al.; fabricated pairs span 26-51 columns and 11628-23255 rows). The
/// generated table is a wide civic "building permits" style relation
/// with the characteristic Open Data mix: codes, free text, money,
/// dates, geo fields, and sparsely populated columns.

#include "core/table.h"

namespace valentine {

/// Generates the 51-column open-data-like table.
Table MakeOpenDataTable(size_t rows = 2000, uint64_t seed = 4711);

}  // namespace valentine

#endif  // VALENTINE_DATASETS_OPENDATA_H_
