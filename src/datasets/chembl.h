#ifndef VALENTINE_DATASETS_CHEMBL_H_
#define VALENTINE_DATASETS_CHEMBL_H_

/// \file chembl.h
/// Deterministic stand-in for the ChEMBL `Assays` table (paper §V-A:
/// fabricated ChEMBL pairs span 12-23 columns and 7500-15000 rows) plus
/// an EFO-like ontology covering its column semantics — ChEMBL is the
/// one dataset source the paper could run SemProp on, because it ships
/// with a compatible ontology.

#include "core/table.h"
#include "knowledge/ontology.h"

namespace valentine {

/// Generates the 23-column Assays-like table. The vocabulary is
/// deliberately domain-specific (assay types, organisms, targets): that
/// specialization is what defeats general-purpose pre-trained embeddings
/// in the paper's SemProp experiments.
Table MakeChemblAssays(size_t rows = 2000, uint64_t seed = 99);

/// Builds the EFO-like ontology whose class labels cover the Assays
/// schema (used by SemProp's semantic matcher).
Ontology MakeEfoLikeOntology();

}  // namespace valentine

#endif  // VALENTINE_DATASETS_CHEMBL_H_
