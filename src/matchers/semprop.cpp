#include "matchers/semprop.h"

#include <algorithm>

#include "stats/column_profile.h"
#include "stats/minhash.h"
#include "text/tokenizer.h"

namespace valentine {

std::pair<size_t, double> SemPropMatcher::LinkToOntology(
    const std::string& name) const {
  constexpr size_t kNoLink = static_cast<size_t>(-1);
  if (ontology_ == nullptr) return {kNoLink, 0.0};
  Embedding name_emb = embedder_.EmbedText(JoinTokens(
      TokenizeIdentifier(name)));
  size_t best_class = kNoLink;
  double best_sim = 0.0;
  for (size_t c = 0; c < ontology_->num_classes(); ++c) {
    for (const auto& label : ontology_->cls(c).labels) {
      double sim = CosineSimilarity(name_emb, embedder_.EmbedText(label));
      if (sim > best_sim) {
        best_sim = sim;
        best_class = c;
      }
    }
  }
  if (best_sim < options_.semantic_threshold) return {kNoLink, 0.0};
  return {best_class, best_sim};
}

Result<MatchResult> SemPropMatcher::MatchWithContext(
    const Table& source, const Table& target,
    const MatchContext& context) const {
  constexpr size_t kNoLink = static_cast<size_t>(-1);
  const size_t ns = source.num_columns();
  const size_t nt = target.num_columns();

  // --- Semantic stage: link every column name to an ontology class. ---
  std::vector<std::pair<size_t, double>> src_links(ns, {kNoLink, 0.0});
  std::vector<std::pair<size_t, double>> tgt_links(nt, {kNoLink, 0.0});
  for (size_t i = 0; i < ns; ++i) {
    VALENTINE_RETURN_NOT_OK(context.Check("semprop ontology linking"));
    src_links[i] = LinkToOntology(source.column(i).name());
  }
  for (size_t j = 0; j < nt; ++j) {
    VALENTINE_RETURN_NOT_OK(context.Check("semprop ontology linking"));
    tgt_links[j] = LinkToOntology(target.column(j).name());
  }

  // Coherent-group score per table: the fraction of linked columns.
  // A table whose links are scattered/absent gets its semantic matches
  // suppressed (below the coherence threshold the links are untrusted).
  auto coherence = [&](const std::vector<std::pair<size_t, double>>& links) {
    if (links.empty()) return 0.0;
    size_t linked = 0;
    for (const auto& [cls, sim] : links) {
      if (cls != kNoLink) ++linked;
    }
    return static_cast<double>(linked) / static_cast<double>(links.size());
  };
  bool coherent = coherence(src_links) >= options_.coherent_group_threshold &&
                  coherence(tgt_links) >= options_.coherent_group_threshold;

  std::vector<std::vector<double>> sem_score(ns, std::vector<double>(nt, 0.0));
  if (coherent && ontology_ != nullptr) {
    for (size_t i = 0; i < ns; ++i) {
      if (src_links[i].first == kNoLink) continue;
      for (size_t j = 0; j < nt; ++j) {
        if (tgt_links[j].first == kNoLink) continue;
        auto dist = ontology_->HierarchyDistance(src_links[i].first,
                                                 tgt_links[j].first);
        if (!dist || *dist > options_.max_class_distance) continue;
        double link_strength =
            0.5 * (src_links[i].second + tgt_links[j].second);
        // Nearby-but-not-identical classes relate more weakly.
        double decay = 1.0 / (1.0 + static_cast<double>(*dist));
        sem_score[i][j] = link_strength * decay;
      }
    }
  }

  // --- Syntactic stage for pairs the semantic matcher did not relate:
  // MinHash-estimated Jaccard over value sets. ---
  auto capped_set = [&](const Column& c) {
    // Cap in first-seen row order, never by iterating the unordered set:
    // hash order would make the kept subset — and the MinHash Jaccard
    // estimates built on it — nondeterministic across runs/platforms.
    std::vector<std::string> distinct = c.DistinctStrings();
    if (options_.max_values > 0 && distinct.size() > options_.max_values) {
      distinct.resize(options_.max_values);
    }
    return std::unordered_set<std::string>(distinct.begin(), distinct.end());
  };
  // Signatures come from the table profile when it sketched the same
  // value set with the same number of permutations (MinHash is a pure
  // function of the set, so a served signature is bit-identical to one
  // built here); otherwise they are built inline as before.
  auto signatures = [&](const Table& t, const TableProfile* tp) {
    std::vector<MinHashSignature> sigs;
    sigs.reserve(t.num_columns());
    const bool served = tp != nullptr && tp->Matches(t) &&
                        tp->spec().minhash_hashes == options_.minhash_hashes;
    for (size_t i = 0; i < t.num_columns(); ++i) {
      if (served && tp->column(i).CapsEquivalent(options_.max_values,
                                                 tp->spec().set_cap)) {
        sigs.push_back(tp->column(i).minhash());
      } else {
        sigs.push_back(MinHashSignature::Build(capped_set(t.column(i)),
                                               options_.minhash_hashes));
      }
    }
    return sigs;
  };
  std::vector<MinHashSignature> src_sigs =
      signatures(source, context.source_profile);
  std::vector<MinHashSignature> tgt_sigs =
      signatures(target, context.target_profile);

  MatchResult result;
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      double score = sem_score[i][j];
      if (score <= 0.0) {
        double jac = src_sigs[i].EstimateJaccard(tgt_sigs[j]);
        if (jac >= options_.minhash_threshold) {
          // Syntactic matches rank below semantic ones, as in Aurum.
          score = 0.5 * jac;
        }
      }
      if (score > 0.0) {
        result.Add({source.name(), source.column(i).name()},
                   {target.name(), target.column(j).name()}, score);
      }
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
