#include "matchers/semprop.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "stats/column_profile.h"
#include "stats/minhash.h"
#include "text/tokenizer.h"

namespace valentine {

std::pair<size_t, double> SemPropMatcher::LinkToOntology(
    const std::string& name) const {
  constexpr size_t kNoLink = static_cast<size_t>(-1);
  if (ontology_ == nullptr) return {kNoLink, 0.0};
  Embedding name_emb = embedder_.EmbedText(JoinTokens(
      TokenizeIdentifier(name)));
  size_t best_class = kNoLink;
  double best_sim = 0.0;
  for (size_t c = 0; c < ontology_->num_classes(); ++c) {
    for (const auto& label : ontology_->cls(c).labels) {
      double sim = CosineSimilarity(name_emb, embedder_.EmbedText(label));
      if (sim > best_sim) {
        best_sim = sim;
        best_class = c;
      }
    }
  }
  if (best_sim < options_.semantic_threshold) return {kNoLink, 0.0};
  return {best_class, best_sim};
}

namespace {

/// Per-table artifact: the expensive embedding-based ontology links and
/// the MinHash signatures. Coherence is recomputed from the links at
/// score time (it is a cheap fold over one vector).
struct SemPropPrepared : PreparedTable {
  using PreparedTable::PreparedTable;
  std::vector<std::pair<size_t, double>> links;
  std::vector<MinHashSignature> sigs;
};

}  // namespace

std::string SemPropMatcher::PrepareKey() const {
  // Links depend on the ontology content, the embedder dimension (seed
  // is fixed), and the semantic threshold; signatures depend on the
  // value cap and permutation count. The remaining options are
  // score-stage.
  return "ont=" +
         (ontology_ != nullptr ? std::to_string(ontology_->Fingerprint())
                               : "none") +
         ";dim=" + std::to_string(options_.embedding_dim) +
         ";sem=" + std::to_string(options_.semantic_threshold) +
         ";cap=" + std::to_string(options_.max_values) +
         ";hashes=" + std::to_string(options_.minhash_hashes);
}

Result<PreparedTablePtr> SemPropMatcher::Prepare(
    const Table& table, const TableProfile* profile,
    const MatchContext& context) const {
  auto prepared =
      std::make_shared<SemPropPrepared>(&table, Name(), PrepareKey());
  const size_t n = table.num_columns();

  // --- Semantic stage: link every column name to an ontology class. ---
  constexpr size_t kNoLink = static_cast<size_t>(-1);
  prepared->links.assign(n, {kNoLink, 0.0});
  for (size_t i = 0; i < n; ++i) {
    VALENTINE_RETURN_NOT_OK(context.Check("semprop ontology linking"));
    prepared->links[i] = LinkToOntology(table.column(i).name());
  }

  // --- Syntactic stage inputs: MinHash signatures over value sets. ---
  auto capped_set = [&](const Column& c) {
    // Cap in first-seen row order, never by iterating the unordered set:
    // hash order would make the kept subset — and the MinHash Jaccard
    // estimates built on it — nondeterministic across runs/platforms.
    std::vector<std::string> distinct = c.DistinctStrings();
    if (options_.max_values > 0 && distinct.size() > options_.max_values) {
      distinct.resize(options_.max_values);
    }
    return std::unordered_set<std::string>(distinct.begin(), distinct.end());
  };
  // Signatures come from the table profile when it sketched the same
  // value set with the same number of permutations (MinHash is a pure
  // function of the set, so a served signature is bit-identical to one
  // built here); otherwise they are built inline as before.
  const bool served = profile != nullptr && profile->Matches(table) &&
                      profile->spec().minhash_hashes ==
                          options_.minhash_hashes;
  prepared->sigs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (served && profile->column(i).CapsEquivalent(options_.max_values,
                                                    profile->spec().set_cap)) {
      prepared->sigs.push_back(profile->column(i).minhash());
    } else {
      prepared->sigs.push_back(MinHashSignature::Build(
          capped_set(table.column(i)), options_.minhash_hashes));
    }
  }
  return PreparedTablePtr(std::move(prepared));
}

Result<MatchResult> SemPropMatcher::Score(const PreparedTable& source,
                                          const PreparedTable& target,
                                          const MatchContext& context) const {
  const auto* src = dynamic_cast<const SemPropPrepared*>(&source);
  const auto* tgt = dynamic_cast<const SemPropPrepared*>(&target);
  if (src == nullptr || tgt == nullptr ||
      src->prepare_key() != PrepareKey() ||
      tgt->prepare_key() != PrepareKey()) {
    return MatchWithContext(source.table(), target.table(), context);
  }
  VALENTINE_RETURN_NOT_OK(context.Check("semprop score"));

  constexpr size_t kNoLink = static_cast<size_t>(-1);
  const Table& source_table = src->table();
  const Table& target_table = tgt->table();
  const size_t ns = src->links.size();
  const size_t nt = tgt->links.size();

  // Coherent-group score per table: the fraction of linked columns.
  // A table whose links are scattered/absent gets its semantic matches
  // suppressed (below the coherence threshold the links are untrusted).
  auto coherence = [&](const std::vector<std::pair<size_t, double>>& links) {
    if (links.empty()) return 0.0;
    size_t linked = 0;
    for (const auto& [cls, sim] : links) {
      if (cls != kNoLink) ++linked;
    }
    return static_cast<double>(linked) / static_cast<double>(links.size());
  };
  bool coherent = coherence(src->links) >= options_.coherent_group_threshold &&
                  coherence(tgt->links) >= options_.coherent_group_threshold;

  std::vector<std::vector<double>> sem_score(ns, std::vector<double>(nt, 0.0));
  if (coherent && ontology_ != nullptr) {
    for (size_t i = 0; i < ns; ++i) {
      if (src->links[i].first == kNoLink) continue;
      for (size_t j = 0; j < nt; ++j) {
        if (tgt->links[j].first == kNoLink) continue;
        auto dist = ontology_->HierarchyDistance(src->links[i].first,
                                                 tgt->links[j].first);
        if (!dist || *dist > options_.max_class_distance) continue;
        double link_strength =
            0.5 * (src->links[i].second + tgt->links[j].second);
        // Nearby-but-not-identical classes relate more weakly.
        double decay = 1.0 / (1.0 + static_cast<double>(*dist));
        sem_score[i][j] = link_strength * decay;
      }
    }
  }

  MatchResult result;
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      double score = sem_score[i][j];
      if (score <= 0.0) {
        double jac = src->sigs[i].EstimateJaccard(tgt->sigs[j]);
        if (jac >= options_.minhash_threshold) {
          // Syntactic matches rank below semantic ones, as in Aurum.
          score = 0.5 * jac;
        }
      }
      if (score > 0.0) {
        result.Add({source_table.name(), source_table.column(i).name()},
                   {target_table.name(), target_table.column(j).name()},
                   score);
      }
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
