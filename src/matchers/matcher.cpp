#include "matchers/matcher.h"

#include <utility>

namespace valentine {

MatchResult ColumnMatcher::Match(const Table& source,
                                 const Table& target) const {
  Result<MatchResult> result = MatchWithContext(source, target, {});
  // An unbounded default context never expires and is never cancelled,
  // so only injected faults can land here; the infallible legacy
  // contract maps them to "no matches found".
  if (!result.ok()) return MatchResult();
  return std::move(result).ValueOrDie();
}

const char* MatchTypeName(MatchType type) {
  switch (type) {
    case MatchType::kAttributeOverlap: return "Attribute Overlap";
    case MatchType::kValueOverlap: return "Value Overlap";
    case MatchType::kSemanticOverlap: return "Semantic Overlap";
    case MatchType::kDataType: return "Data Type";
    case MatchType::kDistribution: return "Distribution";
    case MatchType::kEmbeddings: return "Embeddings";
  }
  return "Unknown";
}

const char* MatcherCategoryName(MatcherCategory category) {
  switch (category) {
    case MatcherCategory::kSchemaBased: return "schema-based";
    case MatcherCategory::kInstanceBased: return "instance-based";
    case MatcherCategory::kHybrid: return "hybrid";
  }
  return "unknown";
}

}  // namespace valentine
