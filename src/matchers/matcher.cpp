#include "matchers/matcher.h"

namespace valentine {

const char* MatchTypeName(MatchType type) {
  switch (type) {
    case MatchType::kAttributeOverlap: return "Attribute Overlap";
    case MatchType::kValueOverlap: return "Value Overlap";
    case MatchType::kSemanticOverlap: return "Semantic Overlap";
    case MatchType::kDataType: return "Data Type";
    case MatchType::kDistribution: return "Distribution";
    case MatchType::kEmbeddings: return "Embeddings";
  }
  return "Unknown";
}

const char* MatcherCategoryName(MatcherCategory category) {
  switch (category) {
    case MatcherCategory::kSchemaBased: return "schema-based";
    case MatcherCategory::kInstanceBased: return "instance-based";
    case MatcherCategory::kHybrid: return "hybrid";
  }
  return "unknown";
}

}  // namespace valentine
