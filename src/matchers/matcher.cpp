#include "matchers/matcher.h"

#include <utility>

namespace valentine {

MatchResult ColumnMatcher::Match(const Table& source,
                                 const Table& target) const {
  Result<MatchResult> result = MatchWithContext(source, target, {});
  // An unbounded default context never expires and is never cancelled,
  // so only injected faults can land here; the infallible legacy
  // contract maps them to "no matches found".
  if (!result.ok()) return MatchResult();
  return std::move(result).ValueOrDie();
}

Result<PreparedTablePtr> ColumnMatcher::Prepare(
    const Table& table, const TableProfile* profile,
    const MatchContext& context) const {
  (void)profile;  // the state-less default artifact has nothing to serve
  VALENTINE_RETURN_NOT_OK(context.Check("prepare"));
  return PreparedTablePtr(
      std::make_shared<const PreparedTable>(&table, Name(), PrepareKey()));
}

Result<MatchResult> ColumnMatcher::Score(const PreparedTable& source,
                                         const PreparedTable& target,
                                         const MatchContext& context) const {
  // Monolithic matchers (decorators, approximate matchers) have no
  // separable prepare stage: scoring a prepared pair is just matching
  // the underlying tables.
  return MatchWithContext(source.table(), target.table(), context);
}

Result<MatchResult> ColumnMatcher::MatchWithContext(
    const Table& source, const Table& target,
    const MatchContext& context) const {
  // Pipelined matchers match by composing their two stages. The
  // context's profiles (when a ProfileCache supplied them) accelerate
  // Prepare without changing its artifact.
  Result<PreparedTablePtr> prepared_source =
      Prepare(source, context.source_profile, context);
  VALENTINE_RETURN_NOT_OK(prepared_source.status());
  Result<PreparedTablePtr> prepared_target =
      Prepare(target, context.target_profile, context);
  VALENTINE_RETURN_NOT_OK(prepared_target.status());
  return Score(**prepared_source, **prepared_target, context);
}

const char* MatchTypeName(MatchType type) {
  switch (type) {
    case MatchType::kAttributeOverlap: return "Attribute Overlap";
    case MatchType::kValueOverlap: return "Value Overlap";
    case MatchType::kSemanticOverlap: return "Semantic Overlap";
    case MatchType::kDataType: return "Data Type";
    case MatchType::kDistribution: return "Distribution";
    case MatchType::kEmbeddings: return "Embeddings";
  }
  return "Unknown";
}

const char* MatcherCategoryName(MatcherCategory category) {
  switch (category) {
    case MatcherCategory::kSchemaBased: return "schema-based";
    case MatcherCategory::kInstanceBased: return "instance-based";
    case MatcherCategory::kHybrid: return "hybrid";
  }
  return "unknown";
}

}  // namespace valentine
