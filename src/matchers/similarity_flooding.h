#ifndef VALENTINE_MATCHERS_SIMILARITY_FLOODING_H_
#define VALENTINE_MATCHERS_SIMILARITY_FLOODING_H_

/// \file similarity_flooding.h
/// Similarity Flooding (Melnik, Garcia-Molina, Rahm — ICDE 2002).
///
/// Each schema becomes a labeled digraph (table --column--> attribute
/// --type--> datatype). The two graphs are combined into a pairwise
/// connectivity graph whose nodes are map pairs (a, b); a map pair
/// propagates its similarity to neighbours connected through equal edge
/// labels, with "inverse average" propagation coefficients, iterated to a
/// fixpoint. As in the Valentine paper, the initial similarity is a
/// Levenshtein name similarity (the original leaves the function open),
/// the propagation coefficient is inverse_average and the fixpoint
/// formula is variant C.

#include "matchers/matcher.h"

namespace valentine {

/// Fixpoint formulae from the original paper (Table 3 there). Valentine
/// uses C; A and B are kept for the ablation bench.
enum class SfFormula {
  kBasic,  ///< σ^{i+1} = normalize(σ^i + φ(σ^i))
  kA,      ///< σ^{i+1} = normalize(σ^0 + φ(σ^i))
  kB,      ///< σ^{i+1} = normalize(φ(σ^0 + σ^i))
  kC,      ///< σ^{i+1} = normalize(σ^0 + σ^i + φ(σ^0 + σ^i))
};

/// Post-flooding filters from the original paper (§7 there): how the
/// multimapping of column pairs is reduced before ranking.
enum class SfFilter {
  kNone,            ///< rank every column pair by final similarity
  kStableMarriage,  ///< Gale-Shapley stable assignment over similarities
  kPerfectionist,   ///< keep pairs that are each other's best candidate
};

/// Similarity Flooding parameters.
struct SimilarityFloodingOptions {
  SfFormula formula = SfFormula::kC;
  SfFilter filter = SfFilter::kNone;
  size_t max_iterations = 100;
  double epsilon = 1e-4;  ///< fixpoint residual threshold
};

/// \brief Similarity Flooding graph matcher.
class SimilarityFloodingMatcher : public ColumnMatcher {
 public:
  explicit SimilarityFloodingMatcher(SimilarityFloodingOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "SimilarityFlooding"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kSchemaBased;
  }
  std::vector<MatchType> Capabilities() const override {
    return {MatchType::kAttributeOverlap, MatchType::kDataType};
  }
  /// Artifact: the per-table schema digraph. Formula, filter, and
  /// fixpoint controls are all score-stage, so the key is constant.
  std::string PrepareKey() const override;
  [[nodiscard]] Result<PreparedTablePtr> Prepare(
      const Table& table, const TableProfile* profile,
      const MatchContext& context) const override;
  [[nodiscard]] Result<MatchResult> Score(
      const PreparedTable& source, const PreparedTable& target,
      const MatchContext& context) const override;

 private:
  SimilarityFloodingOptions options_;
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_SIMILARITY_FLOODING_H_
