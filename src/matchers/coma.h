#ifndef VALENTINE_MATCHERS_COMA_H_
#define VALENTINE_MATCHERS_COMA_H_

/// \file coma.h
/// COMA (Do & Rahm — VLDB 2002) and its instance-based extension
/// (Engmann & Massmann, BTW 2007): a *composite* matcher that runs a
/// library of first-line matchers and combines their similarity cubes
/// through pluggable aggregation, direction, and selection strategies —
/// the combination machinery is COMA's actual contribution.
///
/// Substitution note (DESIGN.md §3): the paper uses the closed-source
/// COMA 3.0 Community Edition jar; this is a from-scratch composite
/// matcher covering the same matcher categories (name trigram, name
/// token-edit, synonyms via thesaurus, name path, affix, data type; the
/// instance strategy adds value-overlap and instance-profile matchers)
/// and the same strategy axes:
///
///  * aggregation: Max / Min / Average / Weighted (default Weighted);
///  * direction: Forward / Backward / Both;
///  * selection: MaxN / MaxDelta / Threshold / OneToOne / All
///    (default OneToOne, matching COMA 3.0's best-counterpart
///    selection — the behaviour that missed the paper's ING#2 n-m
///    matches).

#include <vector>

#include "knowledge/thesaurus.h"
#include "matchers/matcher.h"

namespace valentine {

/// Strategy selector (paper Table II: strategy in {schema, instances}).
enum class ComaStrategy {
  kSchema,
  kInstances,
};

/// How the first-line matcher scores of a column pair are combined.
enum class ComaAggregation {
  kMax,
  kMin,
  kAverage,   ///< unweighted mean
  kWeighted,  ///< default COMA composite: weighted mean
};

/// Which side's candidate ranking drives selection.
enum class ComaDirection {
  kForward,   ///< per source column
  kBackward,  ///< per target column
  kBoth,      ///< pair must survive both directions
};

/// Which aggregated pairs make it into the final match result.
enum class ComaSelection {
  kAll,       ///< every pair above the threshold, ranked
  kMaxN,      ///< top-n per direction
  kMaxDelta,  ///< within delta of the direction's best score
  kOneToOne,  ///< greedy best-counterpart selection
};

/// COMA parameters. The default selection is kAll, matching the paper's
/// configuration (§VI-B: "we allow the output to include any found
/// element pair ... accept similarity threshold ... 0"). kOneToOne
/// reproduces the best-counterpart behaviour the paper observed as a
/// COMA 3.0 bug on n-m ground truth (ING#2).
struct ComaOptions {
  ComaStrategy strategy = ComaStrategy::kSchema;
  ComaAggregation aggregation = ComaAggregation::kWeighted;
  ComaDirection direction = ComaDirection::kBoth;
  ComaSelection selection = ComaSelection::kAll;
  /// Accept-similarity threshold on the combined score; 0 keeps all
  /// pairs (the paper's configuration).
  double threshold = 0.0;
  /// Candidates kept per element under kMaxN.
  size_t max_n = 2;
  /// Score slack under kMaxDelta.
  double delta = 0.05;
  /// Cap on distinct values per column in the value-overlap matcher.
  size_t max_distinct_values = 1000;
  /// Optional extra first-line matchers (off by default so the paper's
  /// tuned composite is unchanged; flip on for experiments).
  bool use_soundex = false;      ///< phonetic name matcher
  bool use_tfidf_tokens = false; ///< TF-IDF cosine over value tokens
                                 ///< (instance strategy only)
};

/// One first-line matcher's verdict on a column pair.
struct ComaComponentScore {
  const char* matcher;
  double score;
  double weight;
};

/// \brief COMA composite matcher (schema or instance strategy).
class ComaMatcher : public ColumnMatcher {
 public:
  explicit ComaMatcher(ComaOptions options = {},
                       const Thesaurus* thesaurus = nullptr)
      : options_(options),
        thesaurus_(thesaurus ? thesaurus : &Thesaurus::Default()) {}

  std::string Name() const override {
    return options_.strategy == ComaStrategy::kSchema ? "COMA-Schema"
                                                      : "COMA-Instances";
  }
  MatcherCategory Category() const override {
    return options_.strategy == ComaStrategy::kSchema
               ? MatcherCategory::kSchemaBased
               : MatcherCategory::kInstanceBased;
  }
  std::vector<MatchType> Capabilities() const override {
    std::vector<MatchType> caps = {MatchType::kAttributeOverlap,
                                   MatchType::kSemanticOverlap,
                                   MatchType::kDataType};
    if (options_.strategy == ComaStrategy::kInstances) {
      caps.push_back(MatchType::kValueOverlap);
      caps.push_back(MatchType::kDistribution);
    }
    return caps;
  }
  /// Artifact: identifier tokens per column; the instance strategy adds
  /// capped value sets, text profiles, numeric stats, and numeric
  /// fractions. Thesaurus lookups happen at score time, so the artifact
  /// is knowledge-base independent.
  std::string PrepareKey() const override;
  [[nodiscard]] Result<PreparedTablePtr> Prepare(
      const Table& table, const TableProfile* profile,
      const MatchContext& context) const override;
  [[nodiscard]] Result<MatchResult> Score(
      const PreparedTable& source, const PreparedTable& target,
      const MatchContext& context) const override;

  /// The full per-matcher score breakdown for one column pair (schema
  /// part only — instance matchers need the whole columns). Exposed for
  /// tests and the strategy ablation.
  std::vector<ComaComponentScore> SchemaComponentScores(
      const std::string& source_table, const Column& a,
      const std::string& target_table, const Column& b) const;

  /// Individual first-line matchers, exposed for tests and ablations.
  double NameTrigramSim(const std::string& a, const std::string& b) const;
  double NameSynonymSim(const std::string& a, const std::string& b) const;
  double NamePathSim(const std::string& table_a, const std::string& col_a,
                     const std::string& table_b,
                     const std::string& col_b) const;
  /// Affix matcher: longest common substring relative to the shorter
  /// name — robust to table-name prefixes and truncating abbreviations.
  static double NameAffixSim(const std::string& a, const std::string& b);
  static double DataTypeSim(DataType a, DataType b);

  /// Combines component scores under an aggregation strategy (exposed
  /// for tests).
  static double Aggregate(const std::vector<ComaComponentScore>& scores,
                          ComaAggregation aggregation);

 private:
  /// SchemaComponentScores with the two columns' identifier tokens
  /// precomputed by the caller: one tokenization per column per Match
  /// call (or zero when a table profile supplies them) instead of two
  /// per column pair. Produces exactly the public overload's scores.
  std::vector<ComaComponentScore> SchemaComponentScoresWithTokens(
      const std::string& source_table, const Column& a,
      const std::vector<std::string>& a_tokens,
      const std::string& target_table, const Column& b,
      const std::vector<std::string>& b_tokens) const;

  ComaOptions options_;
  const Thesaurus* thesaurus_;
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_COMA_H_
