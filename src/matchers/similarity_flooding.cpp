#include "matchers/similarity_flooding.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>

#include "graph/digraph.h"
#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace valentine {

namespace {

constexpr const char* kColumnKind = "column";
constexpr const char* kTableKind = "table";
constexpr const char* kTypeKind = "type";

/// Builds the schema graph: table --column--> attr --type--> datatype.
Digraph BuildSchemaGraph(const Table& table) {
  Digraph g;
  NodeId t = g.AddNode(table.name(), kTableKind);
  for (const Column& c : table.columns()) {
    NodeId col = g.AddNode(c.name(), kColumnKind);
    g.AddEdge(t, col, "column");
    NodeId type = g.GetOrAddNode(DataTypeName(c.type()), kTypeKind);
    g.AddEdge(col, type, "type");
  }
  return g;
}

/// Initial similarity between two schema-graph nodes.
double InitialSimilarity(const Digraph& a, NodeId na, const Digraph& b,
                         NodeId nb) {
  if (a.kind(na) != b.kind(nb)) return 0.0;
  if (a.kind(na) == kTypeKind) {
    return a.name(na) == b.name(nb) ? 1.0 : 0.0;
  }
  return LevenshteinSimilarity(ToLower(a.name(na)), ToLower(b.name(nb)));
}

/// Per-table artifact: the schema digraph (a value type, so the
/// artifact owns its copy outright).
struct SfPrepared : PreparedTable {
  using PreparedTable::PreparedTable;
  Digraph graph;
};

}  // namespace

std::string SimilarityFloodingMatcher::PrepareKey() const {
  // The schema graph depends only on the table; every option is
  // score-stage.
  return "";
}

Result<PreparedTablePtr> SimilarityFloodingMatcher::Prepare(
    const Table& table, const TableProfile* profile,
    const MatchContext& context) const {
  (void)profile;  // schema-only: nothing a value profile could serve
  VALENTINE_RETURN_NOT_OK(context.Check("similarity-flooding prepare"));
  auto prepared = std::make_shared<SfPrepared>(&table, Name(), PrepareKey());
  prepared->graph = BuildSchemaGraph(table);
  return PreparedTablePtr(std::move(prepared));
}

Result<MatchResult> SimilarityFloodingMatcher::Score(
    const PreparedTable& source, const PreparedTable& target,
    const MatchContext& context) const {
  const auto* src = dynamic_cast<const SfPrepared*>(&source);
  const auto* tgt = dynamic_cast<const SfPrepared*>(&target);
  if (src == nullptr || tgt == nullptr ||
      src->prepare_key() != PrepareKey() ||
      tgt->prepare_key() != PrepareKey()) {
    return MatchWithContext(source.table(), target.table(), context);
  }
  const Table& source_table = src->table();
  const Table& target_table = tgt->table();
  const Digraph& ga = src->graph;
  const Digraph& gb = tgt->graph;
  const size_t na = ga.num_nodes();
  const size_t nb = gb.num_nodes();
  const size_t n_pairs = na * nb;
  auto pair_id = [&](NodeId x, NodeId y) { return x * nb + y; };

  // --- Initial similarities σ0. ---
  std::vector<double> sigma0(n_pairs, 0.0);
  for (NodeId x = 0; x < na; ++x) {
    for (NodeId y = 0; y < nb; ++y) {
      sigma0[pair_id(x, y)] = InitialSimilarity(ga, x, gb, y);
    }
  }

  // --- Pairwise connectivity + propagation graph. ---
  // For every pair of equal-labeled edges (x->x2 in A, y->y2 in B) the
  // map pairs (x,y) and (x2,y2) reinforce each other in both directions.
  // Inverse-average coefficient: the weight leaving (x,y) toward
  // (x2,y2) for label l is 2 / (outdeg_l(x) + outdeg_l(y)).
  struct PropEdge {
    size_t from;
    size_t to;
    double weight;
  };
  std::vector<PropEdge> prop;
  for (NodeId x = 0; x < na; ++x) {
    for (const auto& ea : ga.OutEdges(x)) {
      for (NodeId y = 0; y < nb; ++y) {
        for (const auto& eb : gb.OutEdges(y)) {
          if (ea.label != eb.label) continue;
          size_t p = pair_id(x, y);
          size_t q = pair_id(ea.target, eb.target);
          double out_avg = 0.5 * (ga.OutDegreeWithLabel(x, ea.label) +
                                  gb.OutDegreeWithLabel(y, ea.label));
          double in_avg =
              0.5 * (ga.InDegreeWithLabel(ea.target, ea.label) +
                     gb.InDegreeWithLabel(eb.target, ea.label));
          // Forward flooding p -> q and backward q -> p.
          prop.push_back({p, q, 1.0 / out_avg});
          prop.push_back({q, p, 1.0 / in_avg});
        }
      }
    }
  }

  // --- Fixpoint iteration. ---
  std::vector<double> sigma = sigma0;
  std::vector<double> phi(n_pairs, 0.0);
  std::vector<double> next(n_pairs, 0.0);
  std::vector<double> basis(n_pairs, 0.0);
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    VALENTINE_RETURN_NOT_OK(context.Check("similarity-flooding fixpoint"));
    // Propagation input depends on the formula.
    switch (options_.formula) {
      case SfFormula::kBasic:
      case SfFormula::kA:
        basis = sigma;
        break;
      case SfFormula::kB:
      case SfFormula::kC:
        for (size_t i = 0; i < n_pairs; ++i) basis[i] = sigma0[i] + sigma[i];
        break;
    }
    std::fill(phi.begin(), phi.end(), 0.0);
    for (const PropEdge& e : prop) phi[e.to] += basis[e.from] * e.weight;

    switch (options_.formula) {
      case SfFormula::kBasic:
        for (size_t i = 0; i < n_pairs; ++i) next[i] = sigma[i] + phi[i];
        break;
      case SfFormula::kA:
        for (size_t i = 0; i < n_pairs; ++i) next[i] = sigma0[i] + phi[i];
        break;
      case SfFormula::kB:
        for (size_t i = 0; i < n_pairs; ++i) next[i] = phi[i];
        break;
      case SfFormula::kC:
        for (size_t i = 0; i < n_pairs; ++i) next[i] = basis[i] + phi[i];
        break;
    }
    double max_val = 0.0;
    for (double v : next) max_val = std::max(max_val, v);
    if (max_val > 0.0) {
      for (double& v : next) v /= max_val;
    }
    double residual = 0.0;
    for (size_t i = 0; i < n_pairs; ++i) {
      residual += (next[i] - sigma[i]) * (next[i] - sigma[i]);
    }
    sigma.swap(next);
    if (std::sqrt(residual) < options_.epsilon) break;
  }

  // --- Filter: keep column-column map pairs. ---
  std::vector<NodeId> src_cols, tgt_cols;
  for (NodeId x = 0; x < na; ++x) {
    if (ga.kind(x) == kColumnKind) src_cols.push_back(x);
  }
  for (NodeId y = 0; y < nb; ++y) {
    if (gb.kind(y) == kColumnKind) tgt_cols.push_back(y);
  }
  auto sim_of = [&](size_t si, size_t tj) {
    return sigma[pair_id(src_cols[si], tgt_cols[tj])];
  };

  MatchResult result;
  auto add_pair = [&](size_t si, size_t tj) {
    result.Add({source_table.name(), ga.name(src_cols[si])},
               {target_table.name(), gb.name(tgt_cols[tj])}, sim_of(si, tj));
  };

  switch (options_.filter) {
    case SfFilter::kNone:
      for (size_t si = 0; si < src_cols.size(); ++si) {
        for (size_t tj = 0; tj < tgt_cols.size(); ++tj) add_pair(si, tj);
      }
      break;
    case SfFilter::kStableMarriage: {
      // Gale-Shapley with source columns proposing.
      const size_t ns_c = src_cols.size();
      const size_t nt_c = tgt_cols.size();
      std::vector<std::vector<size_t>> prefs(ns_c);
      for (size_t si = 0; si < ns_c; ++si) {
        prefs[si].resize(nt_c);
        for (size_t tj = 0; tj < nt_c; ++tj) prefs[si][tj] = tj;
        std::sort(prefs[si].begin(), prefs[si].end(),
                  [&](size_t a, size_t b) {
                    if (sim_of(si, a) != sim_of(si, b)) {
                      return sim_of(si, a) > sim_of(si, b);
                    }
                    return a < b;
                  });
      }
      std::vector<size_t> next_proposal(ns_c, 0);
      std::vector<long> engaged_to(nt_c, -1);  // target -> source
      std::vector<size_t> free_sources;
      for (size_t si = 0; si < ns_c; ++si) free_sources.push_back(si);
      while (!free_sources.empty()) {
        size_t si = free_sources.back();
        if (next_proposal[si] >= nt_c) {
          free_sources.pop_back();  // exhausted all candidates
          continue;
        }
        size_t tj = prefs[si][next_proposal[si]++];
        if (engaged_to[tj] < 0) {
          engaged_to[tj] = static_cast<long>(si);
          free_sources.pop_back();
        } else if (sim_of(si, tj) >
                   sim_of(static_cast<size_t>(engaged_to[tj]), tj)) {
          free_sources.pop_back();
          free_sources.push_back(static_cast<size_t>(engaged_to[tj]));
          engaged_to[tj] = static_cast<long>(si);
        }
      }
      for (size_t tj = 0; tj < nt_c; ++tj) {
        if (engaged_to[tj] >= 0) {
          add_pair(static_cast<size_t>(engaged_to[tj]), tj);
        }
      }
      break;
    }
    case SfFilter::kPerfectionist:
      // Keep (s, t) only when each is the other's unique best.
      for (size_t si = 0; si < src_cols.size(); ++si) {
        size_t best_tj = 0;
        for (size_t tj = 1; tj < tgt_cols.size(); ++tj) {
          if (sim_of(si, tj) > sim_of(si, best_tj)) best_tj = tj;
        }
        size_t best_si = 0;
        for (size_t sk = 1; sk < src_cols.size(); ++sk) {
          if (sim_of(sk, best_tj) > sim_of(best_si, best_tj)) best_si = sk;
        }
        if (best_si == si) add_pair(si, best_tj);
      }
      break;
  }
  result.Sort();
  return result;
}

}  // namespace valentine
