#ifndef VALENTINE_MATCHERS_JACCARD_LEVENSHTEIN_H_
#define VALENTINE_MATCHERS_JACCARD_LEVENSHTEIN_H_

/// \file jaccard_levenshtein.h
/// The paper's baseline (§VI-A, "Jaccard-Levenshtein Matcher"): a naive
/// instance-based matcher that computes all pairwise column similarities
/// with Jaccard similarity, where two values count as identical when
/// their normalized Levenshtein distance is below a threshold.

#include "matchers/matcher.h"
#include "text/string_similarity.h"

namespace valentine {

/// Parameters of the baseline (paper Table II: threshold in [0.4, 0.8]).
struct JaccardLevenshteinOptions {
  /// Maximum normalized Levenshtein distance for two values to be
  /// treated as identical.
  double threshold = 0.5;
  /// Cap on distinct values compared per column (keeps the quadratic
  /// fuzzy stage tractable; 0 = unlimited).
  size_t max_distinct_values = 500;
  /// Edit-distance kernel for the fuzzy stage. Both kernels score
  /// identically; kNaive is the pre-optimization reference kept for the
  /// bench A/B and equivalence tests.
  LevenshteinKernel kernel = LevenshteinKernel::kBanded;
  /// Candidate pruning (off at 0): column pairs whose fuzzy-Jaccard
  /// score cannot reach this threshold are skipped and never added to
  /// the result. The size-ratio bound min(|A|,|B|)/max(|A|,|B|) is a
  /// provable upper bound on the score, so that prune is exact; the
  /// MinHash estimate (used only when both profiles are available and
  /// cap-compatible) is probabilistic and softened by `prune_slack`.
  /// Pruning changes result *contents* (absent pairs), not scores, and
  /// is therefore opt-in — the default campaign path never prunes.
  double prune_below = 0.0;
  /// Safety margin subtracted before the MinHash prune fires: skip only
  /// when estimate + prune_slack < prune_below.
  double prune_slack = 0.15;
};

/// \brief Fuzzy-Jaccard value-overlap baseline matcher.
class JaccardLevenshteinMatcher : public ColumnMatcher {
 public:
  explicit JaccardLevenshteinMatcher(JaccardLevenshteinOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "JaccardLevenshtein"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kInstanceBased;
  }
  std::vector<MatchType> Capabilities() const override {
    return {MatchType::kValueOverlap};
  }
  /// Artifact: capped distinct-value lists (+ MinHash sketches when the
  /// opt-in prune is on). The threshold/kernel sweep shares one
  /// artifact per table.
  std::string PrepareKey() const override;
  [[nodiscard]] Result<PreparedTablePtr> Prepare(
      const Table& table, const TableProfile* profile,
      const MatchContext& context) const override;
  [[nodiscard]] Result<MatchResult> Score(
      const PreparedTable& source, const PreparedTable& target,
      const MatchContext& context) const override;

 private:
  JaccardLevenshteinOptions options_;
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_JACCARD_LEVENSHTEIN_H_
