#ifndef VALENTINE_MATCHERS_JACCARD_LEVENSHTEIN_H_
#define VALENTINE_MATCHERS_JACCARD_LEVENSHTEIN_H_

/// \file jaccard_levenshtein.h
/// The paper's baseline (§VI-A, "Jaccard-Levenshtein Matcher"): a naive
/// instance-based matcher that computes all pairwise column similarities
/// with Jaccard similarity, where two values count as identical when
/// their normalized Levenshtein distance is below a threshold.

#include "matchers/matcher.h"

namespace valentine {

/// Parameters of the baseline (paper Table II: threshold in [0.4, 0.8]).
struct JaccardLevenshteinOptions {
  /// Maximum normalized Levenshtein distance for two values to be
  /// treated as identical.
  double threshold = 0.5;
  /// Cap on distinct values compared per column (keeps the quadratic
  /// fuzzy stage tractable; 0 = unlimited).
  size_t max_distinct_values = 500;
};

/// \brief Fuzzy-Jaccard value-overlap baseline matcher.
class JaccardLevenshteinMatcher : public ColumnMatcher {
 public:
  explicit JaccardLevenshteinMatcher(JaccardLevenshteinOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "JaccardLevenshtein"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kInstanceBased;
  }
  std::vector<MatchType> Capabilities() const override {
    return {MatchType::kValueOverlap};
  }
  [[nodiscard]] Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const override;

 private:
  JaccardLevenshteinOptions options_;
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_JACCARD_LEVENSHTEIN_H_
