#ifndef VALENTINE_MATCHERS_EMBDI_H_
#define VALENTINE_MATCHERS_EMBDI_H_

/// \file embdi.h
/// EmbDI (Cappuzzo, Papotti, Thirumuruganathan — SIGMOD 2020): local
/// relational embeddings for data integration.
///
/// Both tables are compiled into one heterogeneous graph with three node
/// classes — record ids (RID), attribute ids (CID), and values — where a
/// cell links its RID, its CID, and its value node. Random walks over
/// this graph become "sentences"; a word2vec model trained on them embeds
/// every node; columns match by cosine similarity of their CID vectors.
/// Value nodes are shared across tables, so instance overlap is the
/// bridge that pulls corresponding CIDs together — and, as the paper
/// observes, the method degrades when overlap is scarce.

#include "matchers/matcher.h"

namespace valentine {

/// Which embedding trainer consumes the random-walk sentences.
enum class EmbdiTraining {
  kWord2Vec,  ///< skip-gram + negative sampling (the paper's setting)
  kPpmi,      ///< PPMI co-occurrence + random projection (ablation)
};

/// EmbDI parameters (paper Table II: word2vec, sentence_length 60,
/// window_size 3, n_dimensions 300). Dimensions and walk counts default
/// lower here for bench runtimes (EXPERIMENTS.md); shapes are preserved.
struct EmbdiOptions {
  EmbdiTraining training = EmbdiTraining::kWord2Vec;
  size_t sentence_length = 60;
  size_t window_size = 3;
  size_t dimensions = 64;
  size_t walks_per_node = 5;   ///< random walks started per graph node
  size_t epochs = 3;
  uint64_t seed = 1234;
  /// Cap on rows sampled per table when building the graph (0 = all).
  size_t max_rows = 500;
};

/// \brief EmbDI local-embedding matcher.
class EmbdiMatcher : public ColumnMatcher {
 public:
  explicit EmbdiMatcher(EmbdiOptions options = {}) : options_(options) {}

  std::string Name() const override { return "EmbDI"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kHybrid;
  }
  std::vector<MatchType> Capabilities() const override {
    return {MatchType::kEmbeddings};
  }
  /// Artifact: a prefix-free replay fragment (column names plus the
  /// non-null cells of the sampled rows). The joint graph, walks, and
  /// training are inherently pair-level, so they stay in Score; the
  /// fragment exists so each table's rows are extracted once and the
  /// replay reproduces the exact node-insertion order of the monolithic
  /// build. Keyed on the row cap; every other option is score-stage.
  std::string PrepareKey() const override;
  [[nodiscard]] Result<PreparedTablePtr> Prepare(
      const Table& table, const TableProfile* profile,
      const MatchContext& context) const override;
  [[nodiscard]] Result<MatchResult> Score(
      const PreparedTable& source, const PreparedTable& target,
      const MatchContext& context) const override;

 private:
  EmbdiOptions options_;
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_EMBDI_H_
