#ifndef VALENTINE_MATCHERS_MATCH_RESULT_H_
#define VALENTINE_MATCHERS_MATCH_RESULT_H_

/// \file match_result.h
/// The output contract of every matcher: a *ranked* list of column pairs
/// with confidence scores. Valentine's central argument (paper §II-C) is
/// that dataset discovery needs rankings, not 1-1 match sets — all
/// effectiveness metrics here consume this ranking.

#include <string>
#include <vector>

#include "core/table.h"

namespace valentine {

/// \brief One candidate correspondence between a source and target column.
struct Match {
  ColumnRef source;
  ColumnRef target;
  double score = 0.0;

  bool SamePair(const Match& other) const {
    return source == other.source && target == other.target;
  }
};

/// \brief A ranked list of matches (highest score first after Sort()).
class MatchResult {
 public:
  MatchResult() = default;

  void Add(ColumnRef source, ColumnRef target, double score) {
    matches_.push_back({std::move(source), std::move(target), score});
  }
  void Add(Match m) { matches_.push_back(std::move(m)); }

  size_t size() const { return matches_.size(); }
  bool empty() const { return matches_.empty(); }
  const Match& operator[](size_t i) const { return matches_[i]; }
  const std::vector<Match>& matches() const { return matches_; }

  /// Sorts by descending score; ties broken lexicographically on the
  /// column refs so rankings are fully deterministic.
  void Sort();

  /// The first k matches after sorting (fewer if the list is shorter).
  std::vector<Match> TopK(size_t k) const;

  /// Drops matches scoring strictly below `threshold`.
  void FilterBelow(double threshold);

  /// Multi-line debug rendering "source -> target : score".
  std::string ToString(size_t limit = 20) const;

 private:
  std::vector<Match> matches_;
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_MATCH_RESULT_H_
