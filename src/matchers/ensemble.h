#ifndef VALENTINE_MATCHERS_ENSEMBLE_H_
#define VALENTINE_MATCHERS_ENSEMBLE_H_

/// \file ensemble.h
/// Matcher composition by rank fusion — the paper's first lesson learned
/// (§IX "One size does not fit all": COMA's *composing* of methods
/// "should be the preferred way in dataset discovery"). An
/// EnsembleMatcher runs several member matchers and fuses their ranked
/// lists:
///
///  * kReciprocalRank — RRF: score(pair) = Σ 1 / (k + rank_m(pair));
///    robust to incomparable score scales;
///  * kBorda — Borda count over ranks;
///  * kScoreAverage — mean of member scores (assumes [0,1] scales).

#include <memory>
#include <vector>

#include "matchers/matcher.h"

namespace valentine {

/// How member rankings are combined.
enum class FusionStrategy {
  kReciprocalRank,
  kBorda,
  kScoreAverage,
};

/// Ensemble parameters.
struct EnsembleOptions {
  FusionStrategy fusion = FusionStrategy::kReciprocalRank;
  /// RRF damping constant (the classic default is 60; smaller values
  /// weight the top ranks harder — good for short column rankings).
  double rrf_k = 10.0;
};

/// \brief Rank-fusion composite over member matchers.
class EnsembleMatcher : public ColumnMatcher {
 public:
  EnsembleMatcher(std::vector<MatcherPtr> members,
                  EnsembleOptions options = {})
      : members_(std::move(members)), options_(options) {}

  std::string Name() const override;
  MatcherCategory Category() const override;
  std::vector<MatchType> Capabilities() const override;
  /// Artifact: one member artifact per member, in member order. The key
  /// concatenates every member's name and prepare key, so an ensemble
  /// artifact is only served to an ensemble with the same member lineup.
  std::string PrepareKey() const override;
  [[nodiscard]] Result<PreparedTablePtr> Prepare(
      const Table& table, const TableProfile* profile,
      const MatchContext& context) const override;
  [[nodiscard]] Result<MatchResult> Score(
      const PreparedTable& source, const PreparedTable& target,
      const MatchContext& context) const override;

  size_t num_members() const { return members_.size(); }

 private:
  std::vector<MatcherPtr> members_;
  EnsembleOptions options_;
};

/// The suite's recommended default ensemble: COMA (instances) + the
/// distribution-based matcher + the Jaccard-Levenshtein baseline — the
/// three winners across the paper's data sources.
[[nodiscard]] MatcherPtr MakeDefaultEnsemble(EnsembleOptions options = {});

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_ENSEMBLE_H_
