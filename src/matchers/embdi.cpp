#include "matchers/embdi.h"

#include <algorithm>

#include <functional>

#include "graph/digraph.h"
#include "knowledge/cooc_embedding.h"
#include "knowledge/word2vec.h"

namespace valentine {

namespace {

/// Adds one table to the shared EmbDI graph. CID/RID tokens are
/// namespaced by table; value tokens are shared across tables.
void AddTableToGraph(const Table& table, const std::string& prefix,
                     size_t max_rows, Digraph* g) {
  size_t rows = table.num_rows();
  if (max_rows > 0) rows = std::min(rows, max_rows);
  std::vector<NodeId> cids;
  cids.reserve(table.num_columns());
  for (const Column& c : table.columns()) {
    cids.push_back(
        g->GetOrAddNode("cid__" + prefix + "__" + c.name(), "cid"));
  }
  for (size_t r = 0; r < rows; ++r) {
    NodeId rid =
        g->GetOrAddNode("rid__" + prefix + "__" + std::to_string(r), "rid");
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value& v = table.column(c)[r];
      if (v.is_null()) continue;
      NodeId val = g->GetOrAddNode("tt__" + v.AsString(), "value");
      g->AddEdge(rid, val, "cell");
      g->AddEdge(val, cids[c], "attr");
    }
  }
}

}  // namespace

Result<MatchResult> EmbdiMatcher::MatchWithContext(
    const Table& source, const Table& target,
    const MatchContext& context) const {
  Digraph g;
  AddTableToGraph(source, "A", options_.max_rows, &g);
  AddTableToGraph(target, "B", options_.max_rows, &g);

  // --- Sentence generation via uniform random walks. ---
  Rng rng(options_.seed);
  std::vector<std::vector<std::string>> sentences;
  sentences.reserve(g.num_nodes() * options_.walks_per_node);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    VALENTINE_RETURN_NOT_OK(context.Check("embdi random walks"));
    for (size_t w = 0; w < options_.walks_per_node; ++w) {
      std::vector<std::string> sentence;
      sentence.reserve(options_.sentence_length);
      NodeId cur = start;
      for (size_t s = 0; s < options_.sentence_length; ++s) {
        sentence.push_back(g.name(cur));
        std::vector<NodeId> next = g.Neighbors(cur);
        if (next.empty()) break;
        cur = next[rng.Index(next.size())];
      }
      if (sentence.size() > 1) sentences.push_back(std::move(sentence));
    }
  }

  // --- Train local embeddings (trainer per options). ---
  Word2Vec w2v_model;
  CoocEmbedding cooc_model;
  std::function<const Embedding*(const std::string&)> lookup;
  if (options_.training == EmbdiTraining::kWord2Vec) {
    Word2VecOptions w2v;
    w2v.dimensions = options_.dimensions;
    w2v.window = options_.window_size;
    w2v.epochs = options_.epochs;
    w2v.seed = options_.seed;
    w2v_model = Word2Vec(w2v);
    VALENTINE_RETURN_NOT_OK(w2v_model.TrainWithContext(sentences, context));
    lookup = [&w2v_model](const std::string& w) {
      return w2v_model.Vector(w);
    };
  } else {
    CoocOptions cooc;
    cooc.dimensions = options_.dimensions;
    cooc.window = options_.window_size;
    cooc.seed = options_.seed;
    cooc_model = CoocEmbedding(cooc);
    VALENTINE_RETURN_NOT_OK(context.Check("embdi cooc training"));
    cooc_model.Train(sentences);
    lookup = [&cooc_model](const std::string& w) {
      return cooc_model.Vector(w);
    };
  }

  // --- Match CIDs across tables by cosine similarity. ---
  MatchResult result;
  for (const Column& a : source.columns()) {
    const Embedding* va = lookup("cid__A__" + a.name());
    for (const Column& b : target.columns()) {
      const Embedding* vb = lookup("cid__B__" + b.name());
      double sim = 0.0;
      if (va != nullptr && vb != nullptr) {
        // Negative cosine means "unrelated", not "anti-related".
        sim = std::max(0.0, CosineSimilarity(*va, *vb));
      }
      result.Add({source.name(), a.name()}, {target.name(), b.name()}, sim);
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
