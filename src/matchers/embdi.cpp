#include "matchers/embdi.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "graph/digraph.h"
#include "knowledge/cooc_embedding.h"
#include "knowledge/word2vec.h"

namespace valentine {

namespace {

/// Per-table artifact: everything the joint-graph build reads from a
/// table, in the order it reads it. Replaying a fragment into a Digraph
/// reproduces the exact GetOrAddNode insertion order of the original
/// single-pass build, so node ids — and therefore walks and training —
/// are byte-identical to the monolithic path.
struct EmbdiPrepared : PreparedTable {
  using PreparedTable::PreparedTable;
  std::vector<std::string> column_names;
  /// One entry per sampled row: the non-null cells as
  /// (column index, rendered value), in column order.
  std::vector<std::vector<std::pair<size_t, std::string>>> rows;
};

/// Replays one table fragment into the shared EmbDI graph. CID/RID
/// tokens are namespaced by table; value tokens are shared across
/// tables. Mirrors the original AddTableToGraph loop structure exactly.
void AddFragmentToGraph(const EmbdiPrepared& frag, const std::string& prefix,
                        Digraph* g) {
  std::vector<NodeId> cids;
  cids.reserve(frag.column_names.size());
  for (const std::string& name : frag.column_names) {
    cids.push_back(g->GetOrAddNode("cid__" + prefix + "__" + name, "cid"));
  }
  for (size_t r = 0; r < frag.rows.size(); ++r) {
    NodeId rid =
        g->GetOrAddNode("rid__" + prefix + "__" + std::to_string(r), "rid");
    for (const auto& cell : frag.rows[r]) {
      NodeId val = g->GetOrAddNode("tt__" + cell.second, "value");
      g->AddEdge(rid, val, "cell");
      g->AddEdge(val, cids[cell.first], "attr");
    }
  }
}

}  // namespace

std::string EmbdiMatcher::PrepareKey() const {
  // Only the row cap shapes the fragment; trainer, dimensions, walks,
  // and seed all act on the joint graph in Score.
  return "rows=" + std::to_string(options_.max_rows);
}

Result<PreparedTablePtr> EmbdiMatcher::Prepare(
    const Table& table, const TableProfile* profile,
    const MatchContext& context) const {
  (void)profile;  // raw row replay: value profiles hold capped distincts
  VALENTINE_RETURN_NOT_OK(context.Check("embdi prepare"));
  auto prepared =
      std::make_shared<EmbdiPrepared>(&table, Name(), PrepareKey());
  prepared->column_names.reserve(table.num_columns());
  for (const Column& c : table.columns()) {
    prepared->column_names.push_back(c.name());
  }
  size_t rows = table.num_rows();
  if (options_.max_rows > 0) rows = std::min(rows, options_.max_rows);
  prepared->rows.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      const Value& v = table.column(c)[r];
      if (v.is_null()) continue;
      prepared->rows[r].emplace_back(c, v.AsString());
    }
  }
  return PreparedTablePtr(std::move(prepared));
}

Result<MatchResult> EmbdiMatcher::Score(const PreparedTable& source,
                                        const PreparedTable& target,
                                        const MatchContext& context) const {
  const auto* src = dynamic_cast<const EmbdiPrepared*>(&source);
  const auto* tgt = dynamic_cast<const EmbdiPrepared*>(&target);
  if (src == nullptr || tgt == nullptr ||
      src->prepare_key() != PrepareKey() ||
      tgt->prepare_key() != PrepareKey()) {
    return MatchWithContext(source.table(), target.table(), context);
  }

  Digraph g;
  AddFragmentToGraph(*src, "A", &g);
  AddFragmentToGraph(*tgt, "B", &g);

  // --- Sentence generation via uniform random walks. ---
  Rng rng(options_.seed);
  std::vector<std::vector<std::string>> sentences;
  sentences.reserve(g.num_nodes() * options_.walks_per_node);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    VALENTINE_RETURN_NOT_OK(context.Check("embdi random walks"));
    for (size_t w = 0; w < options_.walks_per_node; ++w) {
      std::vector<std::string> sentence;
      sentence.reserve(options_.sentence_length);
      NodeId cur = start;
      for (size_t s = 0; s < options_.sentence_length; ++s) {
        sentence.push_back(g.name(cur));
        std::vector<NodeId> next = g.Neighbors(cur);
        if (next.empty()) break;
        cur = next[rng.Index(next.size())];
      }
      if (sentence.size() > 1) sentences.push_back(std::move(sentence));
    }
  }

  // --- Train local embeddings (trainer per options). ---
  Word2Vec w2v_model;
  CoocEmbedding cooc_model;
  std::function<const Embedding*(const std::string&)> lookup;
  if (options_.training == EmbdiTraining::kWord2Vec) {
    Word2VecOptions w2v;
    w2v.dimensions = options_.dimensions;
    w2v.window = options_.window_size;
    w2v.epochs = options_.epochs;
    w2v.seed = options_.seed;
    w2v_model = Word2Vec(w2v);
    VALENTINE_RETURN_NOT_OK(w2v_model.TrainWithContext(sentences, context));
    lookup = [&w2v_model](const std::string& w) {
      return w2v_model.Vector(w);
    };
  } else {
    CoocOptions cooc;
    cooc.dimensions = options_.dimensions;
    cooc.window = options_.window_size;
    cooc.seed = options_.seed;
    cooc_model = CoocEmbedding(cooc);
    VALENTINE_RETURN_NOT_OK(context.Check("embdi cooc training"));
    cooc_model.Train(sentences);
    lookup = [&cooc_model](const std::string& w) {
      return cooc_model.Vector(w);
    };
  }

  // --- Match CIDs across tables by cosine similarity. ---
  const Table& source_table = src->table();
  const Table& target_table = tgt->table();
  MatchResult result;
  for (const std::string& a : src->column_names) {
    const Embedding* va = lookup("cid__A__" + a);
    for (const std::string& b : tgt->column_names) {
      const Embedding* vb = lookup("cid__B__" + b);
      double sim = 0.0;
      if (va != nullptr && vb != nullptr) {
        // Negative cosine means "unrelated", not "anti-related".
        sim = std::max(0.0, CosineSimilarity(*va, *vb));
      }
      result.Add({source_table.name(), a}, {target_table.name(), b}, sim);
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
