#ifndef VALENTINE_MATCHERS_ARTIFACT_CACHE_H_
#define VALENTINE_MATCHERS_ARTIFACT_CACHE_H_

/// \file artifact_cache.h
/// Build-once, serve-many cache of per-table matcher artifacts — the
/// generalization of `stats::ProfileCache` from one artifact kind
/// (column profiles) to every family's Prepare output. A campaign
/// prepares each suite table once per (family, prepare key) instead of
/// once per (pair, config); a DiscoveryEngine prepares each repository
/// table once across all queries.
///
/// Keying: unlike ProfileCache (which keys by table address and is the
/// single sanctioned pointer-keyed cache — see the `pointer-cache-key`
/// lint rule), entries here are keyed by *value*: a content fingerprint
/// of the table plus the table name, the family name, and the matcher's
/// PrepareKey(). Value keys make hits well-defined across table copies
/// and make the cache immune to allocator address reuse.
///
/// Contract (same as PR 3's profile cache): a cache hit must be
/// byte-identical to an inline Prepare, and every consumer falls back to
/// the inline path unconditionally when the cache declines (build
/// failure, family mismatch) — the cache can change wall-clock time,
/// never report bytes. Artifacts borrow their tables, so the cache must
/// not outlive the tables it was fed (the ProfileCache lifetime rule).
///
/// Thread safety: GetOrPrepare is safe for concurrent callers. Builds
/// run outside the lock (Prepare can be expensive); when two threads
/// race to build the same key, the first insert wins and the loser's
/// artifact is discarded. Stats counters are aggregate observability
/// (hit/miss/build totals can vary with thread interleaving) and are
/// excluded from the byte-identity contract, like wall-clock fields.

#include <cstdint>
#include <map>
#include <string>

#include "core/mutex.h"
#include "core/table.h"
#include "core/thread_annotations.h"
#include "matchers/matcher.h"
#include "matchers/prepared.h"

namespace valentine {

/// FNV-1a content fingerprint of a table: name, column names, declared
/// types, row count, and every cell (nulls distinguished from empty
/// strings). Deterministic across runs and platforms; collisions are
/// astronomically unlikely at suite scale but would only ever serve a
/// same-family artifact, whose Score fallback keeps results sane.
uint64_t TableContentFingerprint(const Table& table);

/// \brief Mutex-guarded build-once cache of PreparedTable artifacts.
class ArtifactCache {
 public:
  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Per-family observability counters.
  struct FamilyStats {
    uint64_t hits = 0;    ///< lookups served from the cache
    uint64_t misses = 0;  ///< lookups that found no entry
    uint64_t builds = 0;  ///< Prepare executions (>= inserted entries)
  };

  /// Returns the cached artifact for (table, matcher family, prepare
  /// key), building it with `matcher.Prepare(table, profile, context)`
  /// on first use. Returns nullptr when Prepare fails — the caller must
  /// then fall back to the monolithic Match path (never treat nullptr
  /// as "no matches").
  PreparedTablePtr GetOrPrepare(const ColumnMatcher& matcher,
                                const Table& table,
                                const TableProfile* profile,
                                const MatchContext& context) EXCLUDES(mu_);

  /// Snapshot of per-family stats, keyed by family Name() (sorted, so
  /// iteration order is deterministic for reports).
  std::map<std::string, FamilyStats> StatsSnapshot() const EXCLUDES(mu_);

  /// Number of distinct artifacts currently held.
  size_t size() const EXCLUDES(mu_);

  /// Drops all entries and stats.
  void Clear() EXCLUDES(mu_);

 private:
  mutable Mutex mu_{LockRank::kArtifactCache, "ArtifactCache"};
  /// Value-based key: fingerprint + table name + family + prepare key,
  /// composed with 0x1f separators (none of which occur in hex digits;
  /// names pass through a length prefix to stay unambiguous).
  std::map<std::string, PreparedTablePtr> map_ GUARDED_BY(mu_);
  std::map<std::string, FamilyStats> stats_ GUARDED_BY(mu_);
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_ARTIFACT_CACHE_H_
