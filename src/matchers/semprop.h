#ifndef VALENTINE_MATCHERS_SEMPROP_H_
#define VALENTINE_MATCHERS_SEMPROP_H_

/// \file semprop.h
/// SemProp (Fernandez, Mansour et al. — ICDE 2018, the matcher inside the
/// Aurum discovery system): links attribute and table names to ontology
/// classes through word-embedding similarity, relates attributes that
/// link (transitively) to the same or nearby classes, and forwards
/// everything else to a syntactic matcher over value sets.
///
/// Substitution note (DESIGN.md §3): pre-trained word vectors are
/// replaced with deterministic char-n-gram hash embeddings — which, like
/// real general-corpus vectors on a specialized domain, capture surface
/// form but not domain semantics. This reproduces the paper's finding
/// that SemProp's pre-trained embeddings are unreliable on ChEMBL-like
/// data.

#include "knowledge/hash_embedding.h"
#include "knowledge/ontology.h"
#include "matchers/matcher.h"

namespace valentine {

/// SemProp parameters (paper Table II).
struct SemPropOptions {
  double minhash_threshold = 0.25;      ///< syntactic MinHash cutoff
  double semantic_threshold = 0.5;      ///< name-to-class link cutoff
  double coherent_group_threshold = 0.3;///< coherent-group score cutoff
  size_t embedding_dim = 64;
  size_t minhash_hashes = 128;
  /// Cap on distinct values hashed per column (0 = unlimited).
  size_t max_values = 1000;
  /// Ontology classes within this hierarchy distance count as related.
  size_t max_class_distance = 2;
};

/// \brief SemProp hybrid semantic + syntactic matcher.
class SemPropMatcher : public ColumnMatcher {
 public:
  /// \param ontology domain ontology the semantic matcher links against;
  ///   may be nullptr, in which case only the syntactic stage runs (the
  ///   paper could evaluate SemProp only on ChEMBL for the same reason).
  explicit SemPropMatcher(const Ontology* ontology,
                          SemPropOptions options = {})
      : ontology_(ontology),
        options_(options),
        embedder_(options.embedding_dim, /*seed=*/101) {}

  std::string Name() const override { return "SemProp"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kHybrid;
  }
  std::vector<MatchType> Capabilities() const override {
    return {MatchType::kAttributeOverlap, MatchType::kValueOverlap,
            MatchType::kEmbeddings};
  }
  /// Artifact: per-column ontology links (the expensive embedding
  /// sweep) and MinHash signatures. Keyed on the ontology fingerprint —
  /// links are a function of the knowledge base, not just the table.
  std::string PrepareKey() const override;
  [[nodiscard]] Result<PreparedTablePtr> Prepare(
      const Table& table, const TableProfile* profile,
      const MatchContext& context) const override;
  [[nodiscard]] Result<MatchResult> Score(
      const PreparedTable& source, const PreparedTable& target,
      const MatchContext& context) const override;

  /// Best ontology class link for a name: (class index, cosine), or
  /// (npos, 0) when nothing clears the semantic threshold.
  std::pair<size_t, double> LinkToOntology(const std::string& name) const;

 private:
  const Ontology* ontology_;
  SemPropOptions options_;
  HashEmbedder embedder_;
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_SEMPROP_H_
