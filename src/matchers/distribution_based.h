#ifndef VALENTINE_MATCHERS_DISTRIBUTION_BASED_H_
#define VALENTINE_MATCHERS_DISTRIBUTION_BASED_H_

/// \file distribution_based.h
/// Distribution-based matching (Zhang, Hadjieleftheriou, Ooi et al. —
/// SIGMOD 2011): relate columns by comparing the distributions of their
/// value sets with the Earth Mover's Distance.
///
/// Phase 1 links column pairs whose full-set EMD falls below θ1.
/// Phase 2 refines surviving links with the *intersection EMD*: the EMD
/// between each column's distribution and the distribution of the two
/// columns' value-set intersection, pruning pairs above θ2.
/// The final step — which the original solves with CPLEX and Valentine
/// with PuLP — selects disjoint clusters; here it is a cluster-editing
/// partition solved exactly (branch-and-bound) on small components with
/// a greedy agglomerative fallback (DESIGN.md §3).
///
/// The paper runs this method twice (Dist#1 with θ in [0.1, 0.2] and
/// Dist#2 with θ in [0.3, 0.5]) and splits the single global threshold
/// into one per phase, which the options mirror.

#include "matchers/matcher.h"

namespace valentine {

/// Distribution-based matcher parameters.
struct DistributionBasedOptions {
  double phase1_threshold = 0.15;  ///< EMD cutoff in phase 1
  double phase2_threshold = 0.15;  ///< intersection-EMD cutoff in phase 2
  size_t num_bins = 32;            ///< quantile-histogram resolution
  size_t max_values = 5000;        ///< cap on distinct values per column
  /// Components up to this size get the exact partition solver.
  size_t exact_solver_limit = 10;
};

/// \brief EMD-clustering matcher over column value distributions.
class DistributionBasedMatcher : public ColumnMatcher {
 public:
  explicit DistributionBasedMatcher(DistributionBasedOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "DistributionBased"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kInstanceBased;
  }
  std::vector<MatchType> Capabilities() const override {
    return {MatchType::kValueOverlap, MatchType::kDistribution};
  }
  /// Artifact: capped distinct-value lists + quantile histograms per
  /// column. The θ1/θ2 sweep (Dist#1 vs Dist#2) shares one artifact.
  std::string PrepareKey() const override;
  [[nodiscard]] Result<PreparedTablePtr> Prepare(
      const Table& table, const TableProfile* profile,
      const MatchContext& context) const override;
  [[nodiscard]] Result<MatchResult> Score(
      const PreparedTable& source, const PreparedTable& target,
      const MatchContext& context) const override;

 private:
  DistributionBasedOptions options_;
};

/// Partition nodes into disjoint clusters maximizing the sum of
/// intra-cluster pair weights (cluster editing objective). `weights` maps
/// node pairs (i < j) packed as i * n + j to a signed weight; missing
/// pairs count as `missing_penalty`. Exact branch-and-bound when
/// n <= exact_limit, greedy agglomerative otherwise. Exposed for tests.
std::vector<size_t> SolveClusterSelection(
    size_t n, const std::vector<std::vector<double>>& weight,
    size_t exact_limit);

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_DISTRIBUTION_BASED_H_
