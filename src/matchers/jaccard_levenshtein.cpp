#include "matchers/jaccard_levenshtein.h"

#include "text/string_similarity.h"

namespace valentine {

Result<MatchResult> JaccardLevenshteinMatcher::MatchWithContext(
    const Table& source, const Table& target,
    const MatchContext& context) const {
  // Pre-extract (and cap) distinct values once per column.
  auto extract = [&](const Table& t) {
    std::vector<std::vector<std::string>> cols;
    cols.reserve(t.num_columns());
    for (const Column& c : t.columns()) {
      std::vector<std::string> vals = c.DistinctStrings();
      if (options_.max_distinct_values > 0 &&
          vals.size() > options_.max_distinct_values) {
        vals.resize(options_.max_distinct_values);
      }
      cols.push_back(std::move(vals));
    }
    return cols;
  };
  auto src_vals = extract(source);
  auto tgt_vals = extract(target);

  MatchResult result;
  for (size_t i = 0; i < source.num_columns(); ++i) {
    // Each row of the matrix is a batch of fuzzy set intersections —
    // the quadratic hot loop — so the budget check lives here.
    VALENTINE_RETURN_NOT_OK(context.Check("fuzzy-jaccard column sweep"));
    for (size_t j = 0; j < target.num_columns(); ++j) {
      double sim = FuzzyJaccard(src_vals[i], tgt_vals[j], options_.threshold);
      result.Add({source.name(), source.column(i).name()},
                 {target.name(), target.column(j).name()}, sim);
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
