#include "matchers/jaccard_levenshtein.h"

#include <algorithm>

#include "stats/column_profile.h"
#include "text/string_similarity.h"

namespace valentine {

namespace {

/// Capped distinct-value lists for every column, served from the table
/// profile when its stored list covers the requested prefix (the profile
/// list and the inline extraction start from the same first-seen order,
/// so a served prefix is bit-identical to extracting) and extracted
/// inline otherwise. `views[i]` points either into the profile or into
/// `owned[i]`.
struct ColumnValues {
  std::vector<const std::vector<std::string>*> views;
  std::vector<std::vector<std::string>> owned;
};

ColumnValues ExtractValues(const Table& t, const TableProfile* profile,
                           size_t cap) {
  ColumnValues out;
  const size_t n = t.num_columns();
  out.views.resize(n);
  out.owned.resize(n);
  const bool served = profile != nullptr && profile->Matches(t);
  for (size_t i = 0; i < n; ++i) {
    if (served) {
      const ColumnProfile& p = profile->column(i);
      if (p.CanServeDistinctPrefix(cap)) {
        size_t len = p.DistinctPrefixLength(cap);
        if (len == p.distinct().size()) {
          out.views[i] = &p.distinct();
        } else {
          out.owned[i].assign(p.distinct().begin(),
                              p.distinct().begin() + len);
          out.views[i] = &out.owned[i];
        }
        continue;
      }
    }
    std::vector<std::string> vals = t.column(i).DistinctStrings();
    if (cap > 0 && vals.size() > cap) vals.resize(cap);
    out.owned[i] = std::move(vals);
    out.views[i] = &out.owned[i];
  }
  return out;
}

}  // namespace

Result<MatchResult> JaccardLevenshteinMatcher::MatchWithContext(
    const Table& source, const Table& target,
    const MatchContext& context) const {
  ColumnValues src = ExtractValues(source, context.source_profile,
                                   options_.max_distinct_values);
  ColumnValues tgt = ExtractValues(target, context.target_profile,
                                   options_.max_distinct_values);

  // MinHash sketches for the opt-in prune: reuse the profile sketch when
  // it was built over exactly our value set, else build from the lists
  // in hand. Either way the sketch is a pure function of the set, so
  // pruning decisions do not depend on whether a cache was attached.
  const bool pruning = options_.prune_below > 0.0;
  const size_t sketch_hashes = ProfileSpec().minhash_hashes;
  std::vector<MinHashSignature> src_sigs, tgt_sigs;
  if (pruning) {
    auto sketch = [&](const Table& t, const TableProfile* profile,
                      const ColumnValues& vals,
                      std::vector<MinHashSignature>* sigs) {
      const bool served = profile != nullptr && profile->Matches(t);
      sigs->reserve(t.num_columns());
      for (size_t i = 0; i < t.num_columns(); ++i) {
        if (served) {
          const ColumnProfile& p = profile->column(i);
          if (p.CapsEquivalent(options_.max_distinct_values,
                               profile->spec().set_cap) &&
              p.minhash().size() == sketch_hashes) {
            sigs->push_back(p.minhash());
            continue;
          }
        }
        std::unordered_set<std::string> set(vals.views[i]->begin(),
                                            vals.views[i]->end());
        sigs->push_back(MinHashSignature::Build(set, sketch_hashes));
      }
    };
    sketch(source, context.source_profile, src, &src_sigs);
    sketch(target, context.target_profile, tgt, &tgt_sigs);
  }

  MatchResult result;
  for (size_t i = 0; i < source.num_columns(); ++i) {
    // Each row of the matrix is a batch of fuzzy set intersections —
    // the quadratic hot loop — so the budget check lives here.
    VALENTINE_RETURN_NOT_OK(context.Check("fuzzy-jaccard column sweep"));
    for (size_t j = 0; j < target.num_columns(); ++j) {
      const std::vector<std::string>& a = *src.views[i];
      const std::vector<std::string>& b = *tgt.views[j];
      if (pruning && !a.empty() && !b.empty()) {
        // Exact bound: matched <= min(|A|,|B|), union >= max(|A|,|B|).
        double ratio = static_cast<double>(std::min(a.size(), b.size())) /
                       static_cast<double>(std::max(a.size(), b.size()));
        if (ratio < options_.prune_below) continue;
        double est = src_sigs[i].EstimateJaccard(tgt_sigs[j]);
        if (est + options_.prune_slack < options_.prune_below) continue;
      }
      double sim = FuzzyJaccard(a, b, options_.threshold, options_.kernel);
      result.Add({source.name(), source.column(i).name()},
                 {target.name(), target.column(j).name()}, sim);
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
