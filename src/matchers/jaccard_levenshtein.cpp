#include "matchers/jaccard_levenshtein.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "stats/column_profile.h"
#include "text/string_similarity.h"

namespace valentine {

namespace {

/// Capped distinct-value lists for every column, served from the table
/// profile when its stored list covers the requested prefix (the profile
/// list and the inline extraction start from the same first-seen order,
/// so a served prefix is bit-identical to extracting) and extracted
/// inline otherwise. `views[i]` points either into the profile or into
/// `owned[i]`.
struct ColumnValues {
  std::vector<const std::vector<std::string>*> views;
  std::vector<std::vector<std::string>> owned;
};

ColumnValues ExtractValues(const Table& t, const TableProfile* profile,
                           size_t cap) {
  ColumnValues out;
  const size_t n = t.num_columns();
  out.views.resize(n);
  out.owned.resize(n);
  const bool served = profile != nullptr && profile->Matches(t);
  for (size_t i = 0; i < n; ++i) {
    if (served) {
      const ColumnProfile& p = profile->column(i);
      if (p.CanServeDistinctPrefix(cap)) {
        size_t len = p.DistinctPrefixLength(cap);
        if (len == p.distinct().size()) {
          out.views[i] = &p.distinct();
        } else {
          out.owned[i].assign(p.distinct().begin(),
                              p.distinct().begin() + len);
          out.views[i] = &out.owned[i];
        }
        continue;
      }
    }
    std::vector<std::string> vals = t.column(i).DistinctStrings();
    if (cap > 0 && vals.size() > cap) vals.resize(cap);
    out.owned[i] = std::move(vals);
    out.views[i] = &out.owned[i];
  }
  return out;
}

/// Per-table artifact: owned capped distinct lists, plus MinHash
/// sketches when the opt-in prune needs them.
struct JlPrepared : PreparedTable {
  using PreparedTable::PreparedTable;
  std::vector<std::vector<std::string>> values;
  std::vector<MinHashSignature> sigs;  ///< empty unless pruning
};

}  // namespace

std::string JaccardLevenshteinMatcher::PrepareKey() const {
  // threshold / kernel / prune thresholds are score-stage; the artifact
  // depends only on the value cap and on whether sketches are needed.
  return "cap=" + std::to_string(options_.max_distinct_values) +
         ";sketch=" + (options_.prune_below > 0.0 ? "1" : "0");
}

Result<PreparedTablePtr> JaccardLevenshteinMatcher::Prepare(
    const Table& table, const TableProfile* profile,
    const MatchContext& context) const {
  VALENTINE_RETURN_NOT_OK(context.Check("jaccard-levenshtein prepare"));
  auto prepared = std::make_shared<JlPrepared>(&table, Name(), PrepareKey());
  const size_t n = table.num_columns();
  ColumnValues vals =
      ExtractValues(table, profile, options_.max_distinct_values);
  prepared->values.resize(n);
  for (size_t i = 0; i < n; ++i) prepared->values[i] = *vals.views[i];

  // MinHash sketches for the opt-in prune: reuse the profile sketch when
  // it was built over exactly our value set, else build from the lists
  // in hand. Either way the sketch is a pure function of the set, so
  // pruning decisions do not depend on whether a cache was attached.
  if (options_.prune_below > 0.0) {
    const size_t sketch_hashes = ProfileSpec().minhash_hashes;
    const bool served = profile != nullptr && profile->Matches(table);
    prepared->sigs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (served) {
        const ColumnProfile& p = profile->column(i);
        if (p.CapsEquivalent(options_.max_distinct_values,
                             profile->spec().set_cap) &&
            p.minhash().size() == sketch_hashes) {
          prepared->sigs.push_back(p.minhash());
          continue;
        }
      }
      std::unordered_set<std::string> set(prepared->values[i].begin(),
                                          prepared->values[i].end());
      prepared->sigs.push_back(MinHashSignature::Build(set, sketch_hashes));
    }
  }
  return PreparedTablePtr(std::move(prepared));
}

Result<MatchResult> JaccardLevenshteinMatcher::Score(
    const PreparedTable& source, const PreparedTable& target,
    const MatchContext& context) const {
  const auto* src = dynamic_cast<const JlPrepared*>(&source);
  const auto* tgt = dynamic_cast<const JlPrepared*>(&target);
  if (src == nullptr || tgt == nullptr ||
      src->prepare_key() != PrepareKey() ||
      tgt->prepare_key() != PrepareKey()) {
    // Foreign or stale artifact: re-prepare inline (the compose default)
    // so cached and uncached paths stay byte-identical.
    return MatchWithContext(source.table(), target.table(), context);
  }

  const Table& source_table = src->table();
  const Table& target_table = tgt->table();
  const bool pruning = options_.prune_below > 0.0;
  MatchResult result;
  for (size_t i = 0; i < src->values.size(); ++i) {
    // Each row of the matrix is a batch of fuzzy set intersections —
    // the quadratic hot loop — so the budget check lives here.
    VALENTINE_RETURN_NOT_OK(context.Check("fuzzy-jaccard column sweep"));
    for (size_t j = 0; j < tgt->values.size(); ++j) {
      const std::vector<std::string>& a = src->values[i];
      const std::vector<std::string>& b = tgt->values[j];
      if (pruning && !a.empty() && !b.empty()) {
        // Exact bound: matched <= min(|A|,|B|), union >= max(|A|,|B|).
        double ratio = static_cast<double>(std::min(a.size(), b.size())) /
                       static_cast<double>(std::max(a.size(), b.size()));
        if (ratio < options_.prune_below) continue;
        double est = src->sigs[i].EstimateJaccard(tgt->sigs[j]);
        if (est + options_.prune_slack < options_.prune_below) continue;
      }
      double sim = FuzzyJaccard(a, b, options_.threshold, options_.kernel);
      result.Add({source_table.name(), source_table.column(i).name()},
                 {target_table.name(), target_table.column(j).name()}, sim);
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
