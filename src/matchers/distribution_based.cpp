#include "matchers/distribution_based.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_set>
#include <utility>

#include "stats/column_profile.h"
#include "stats/emd.h"
#include "stats/histogram.h"

namespace valentine {

namespace {

/// Exhaustive partition search over at most `exact_limit` nodes:
/// recursively assigns each node to an existing block or a new one,
/// keeping the best total intra-block weight.
void ExactPartition(size_t node, size_t n,
                    const std::vector<std::vector<double>>& weight,
                    std::vector<size_t>* assign, size_t num_blocks,
                    double score, double* best_score,
                    std::vector<size_t>* best_assign) {
  if (node == n) {
    if (score > *best_score) {
      *best_score = score;
      *best_assign = *assign;
    }
    return;
  }
  for (size_t b = 0; b <= num_blocks; ++b) {
    double delta = 0.0;
    for (size_t prev = 0; prev < node; ++prev) {
      if ((*assign)[prev] == b) delta += weight[prev][node];
    }
    (*assign)[node] = b;
    ExactPartition(node + 1, n, weight, assign,
                   std::max(num_blocks, b + 1), score + delta, best_score,
                   best_assign);
  }
}

/// Greedy agglomerative clustering: merge the cluster pair with the
/// largest positive gain until no merge improves the objective. The
/// inter-cluster gain matrix is maintained incrementally, so the whole
/// run is O(n^3) in the worst case.
std::vector<size_t> GreedyPartition(
    size_t n, const std::vector<std::vector<double>>& weight) {
  std::vector<size_t> assign(n);
  for (size_t i = 0; i < n; ++i) assign[i] = i;
  std::vector<bool> alive(n, true);
  // gain[a][b] = total pair weight between current clusters a and b.
  std::vector<std::vector<double>> gain(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      gain[i][j] = gain[j][i] = weight[i][j];
    }
  }
  while (true) {
    double best_gain = 0.0;
    size_t best_a = 0;
    size_t best_b = 0;
    for (size_t a = 0; a < n; ++a) {
      if (!alive[a]) continue;
      for (size_t b = a + 1; b < n; ++b) {
        if (!alive[b]) continue;
        if (gain[a][b] > best_gain) {
          best_gain = gain[a][b];
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_gain <= 0.0) break;
    for (size_t i = 0; i < n; ++i) {
      if (assign[i] == best_b) assign[i] = best_a;
    }
    for (size_t c = 0; c < n; ++c) {
      if (!alive[c] || c == best_a || c == best_b) continue;
      gain[best_a][c] += gain[best_b][c];
      gain[c][best_a] = gain[best_a][c];
    }
    alive[best_b] = false;
  }
  return assign;
}

}  // namespace

std::vector<size_t> SolveClusterSelection(
    size_t n, const std::vector<std::vector<double>>& weight,
    size_t exact_limit) {
  if (n == 0) return {};
  if (n <= exact_limit) {
    std::vector<size_t> assign(n, 0);
    std::vector<size_t> best_assign(n, 0);
    double best_score = -std::numeric_limits<double>::max();
    ExactPartition(0, n, weight, &assign, 0, 0.0, &best_score, &best_assign);
    return best_assign;
  }
  return GreedyPartition(n, weight);
}

namespace {

/// Per-table artifact: capped distinct-value lists and quantile
/// histograms per column — the per-table halves of the phase-1/phase-2
/// EMD sweep. Intersection sets stay in Score (pair-dependent).
struct DistPrepared : PreparedTable {
  using PreparedTable::PreparedTable;
  std::vector<std::vector<std::string>> values;
  std::vector<QuantileHistogram> hists;
};

}  // namespace

std::string DistributionBasedMatcher::PrepareKey() const {
  // θ1/θ2 and the solver limit are score-stage; the artifact depends on
  // the value cap and the histogram resolution.
  return "cap=" + std::to_string(options_.max_values) +
         ";bins=" + std::to_string(options_.num_bins);
}

Result<PreparedTablePtr> DistributionBasedMatcher::Prepare(
    const Table& table, const TableProfile* profile,
    const MatchContext& context) const {
  VALENTINE_RETURN_NOT_OK(context.Check("distribution-based prepare"));
  auto prepared = std::make_shared<DistPrepared>(&table, Name(), PrepareKey());
  const size_t n = table.num_columns();
  prepared->values.resize(n);
  prepared->hists.resize(n);

  // Distinct value lists and quantile histograms are served from the
  // table profile when the profile artifacts were built over exactly the
  // value prefix this configuration would cap to (same first-seen order,
  // same bin count) — otherwise extracted inline.
  const bool served = profile != nullptr && profile->Matches(table);
  for (size_t c = 0; c < n; ++c) {
    const ColumnProfile* cp = served ? &profile->column(c) : nullptr;
    if (cp != nullptr && cp->CanServeDistinctPrefix(options_.max_values)) {
      size_t len = cp->DistinctPrefixLength(options_.max_values);
      prepared->values[c].assign(cp->distinct().begin(),
                                 cp->distinct().begin() + len);
    } else {
      std::vector<std::string> vals = table.column(c).DistinctStrings();
      if (options_.max_values > 0 && vals.size() > options_.max_values) {
        vals.resize(options_.max_values);
      }
      prepared->values[c] = std::move(vals);
    }
    if (cp != nullptr && profile->spec().num_bins == options_.num_bins &&
        cp->CapsEquivalent(options_.max_values,
                           profile->spec().histogram_cap)) {
      prepared->hists[c] = cp->histogram();
    } else {
      prepared->hists[c] = QuantileHistogram::Build(
          ValuesToPoints(prepared->values[c]), options_.num_bins);
    }
  }
  return PreparedTablePtr(std::move(prepared));
}

Result<MatchResult> DistributionBasedMatcher::Score(
    const PreparedTable& source, const PreparedTable& target,
    const MatchContext& context) const {
  const auto* src = dynamic_cast<const DistPrepared*>(&source);
  const auto* tgt = dynamic_cast<const DistPrepared*>(&target);
  if (src == nullptr || tgt == nullptr ||
      src->prepare_key() != PrepareKey() ||
      tgt->prepare_key() != PrepareKey()) {
    return MatchWithContext(source.table(), target.table(), context);
  }

  const Table& source_table = src->table();
  const Table& target_table = tgt->table();
  const size_t ns = src->values.size();
  const size_t nt = tgt->values.size();
  const size_t n = ns + nt;

  // Phase-2 needs each target column's values as a set; build each at
  // most once and only for columns phase 1 actually reaches.
  std::vector<std::unordered_set<std::string>> tgt_sets(nt);
  std::vector<bool> tgt_set_built(nt, false);
  auto target_set = [&](size_t j) -> const std::unordered_set<std::string>& {
    if (!tgt_set_built[j]) {
      tgt_sets[j].insert(tgt->values[j].begin(), tgt->values[j].end());
      tgt_set_built[j] = true;
    }
    return tgt_sets[j];
  };

  // --- Phase 1: full-set EMD under θ1 over cross-table pairs. ---
  // Signed weights for the final partition: surviving links positive,
  // everything else mildly repulsive so blocks stay clique-like.
  constexpr double kNonEdgePenalty = -0.25;
  std::vector<std::vector<double>> weight(
      n, std::vector<double>(n, kNonEdgePenalty));
  struct Link {
    size_t a;
    size_t b;
    double score;
  };
  std::vector<Link> links;
  for (size_t i = 0; i < ns; ++i) {
    // One check per source column bounds cancellation latency to a row
    // of EMD computations (the phase-1/phase-2 sweep dominates runtime).
    VALENTINE_RETURN_NOT_OK(context.Check("distribution-based EMD sweep"));
    for (size_t j = 0; j < nt; ++j) {
      double emd1 = EmdBetweenHistograms(src->hists[i], tgt->hists[j]);
      if (emd1 > options_.phase1_threshold) continue;

      // --- Phase 2: intersection EMD under θ2. ---
      const std::unordered_set<std::string>& set_b = target_set(j);
      std::vector<std::string> inter;
      for (const auto& v : src->values[i]) {
        if (set_b.count(v)) inter.push_back(v);
      }
      double emd2;
      if (inter.empty()) {
        emd2 = std::numeric_limits<double>::max();
      } else {
        QuantileHistogram hi =
            QuantileHistogram::Build(ValuesToPoints(inter), options_.num_bins);
        emd2 = std::max(EmdBetweenHistograms(src->hists[i], hi),
                        EmdBetweenHistograms(tgt->hists[j], hi));
      }
      if (emd2 > options_.phase2_threshold) continue;
      double score = 1.0 / (1.0 + emd2);
      links.push_back({i, ns + j, score});
      weight[i][ns + j] = score;
    }
  }

  // --- Final step: disjoint cluster selection (ILP substitute). ---
  std::vector<size_t> assign =
      SolveClusterSelection(n, weight, options_.exact_solver_limit);

  MatchResult result;
  for (const Link& link : links) {
    if (assign[link.a] != assign[link.b]) continue;
    result.Add({source_table.name(), source_table.column(link.a).name()},
               {target_table.name(), target_table.column(link.b - ns).name()},
               link.score);
  }
  result.Sort();
  return result;
}

}  // namespace valentine
