#include "matchers/fault_injection.h"

#include <thread>
#include <utility>

#include "core/rng.h"
#include "obs/clock.h"

namespace valentine {

FaultInjectingMatcher::FaultInjectingMatcher(
    std::shared_ptr<const ColumnMatcher> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  // An OK "failure" would silently disable injection; coerce it.
  if (plan_.code == StatusCode::kOk) plan_.code = StatusCode::kInternal;
}

Result<MatchResult> FaultInjectingMatcher::MatchWithContext(
    const Table& source, const Table& target,
    const MatchContext& context) const {
  const std::string key = context.trace_id.empty()
                              ? source.name() + "\x1f" + target.name()
                              : context.trace_id;
  size_t attempt;
  {
    MutexLock lock(&mutex_);
    attempt = ++attempts_[key];
  }

  if (plan_.hang_ms > 0.0) {
    // Cooperative "hang": busy-poll the context instead of sleeping, so
    // a deadline or cancellation interrupts it the way it interrupts a
    // real hot loop (and library code stays free of wall-clock sleeps).
    // Time is read through the injectable Clock; under a non-advancing
    // FakeClock the loop spins until the (real steady-clock) deadline or
    // cancellation fires, which is exactly what the tests rely on.
    const Clock& clock = ClockOrSteady(context.clock);
    const int64_t until_ns =
        clock.NowNanos() + static_cast<int64_t>(plan_.hang_ms * 1e6);
    while (clock.NowNanos() < until_ns) {
      VALENTINE_RETURN_NOT_OK(context.Check("injected hang"));
      std::this_thread::yield();
    }
  }

  bool fail = plan_.always_fail || attempt <= plan_.fail_first;
  if (!fail && plan_.fail_probability > 0.0) {
    Rng rng(plan_.seed ^ DeterministicSeed(key) ^ attempt);
    fail = rng.UniformDouble() < plan_.fail_probability;
  }
  if (fail) return Status::WithCode(plan_.code, plan_.message);
  return inner_->Match(source, target, context);
}

size_t FaultInjectingMatcher::AttemptsFor(const std::string& key) const {
  MutexLock lock(&mutex_);
  auto it = attempts_.find(key);
  return it == attempts_.end() ? 0 : it->second;
}

}  // namespace valentine
