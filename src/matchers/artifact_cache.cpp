#include "matchers/artifact_cache.h"

#include <utility>

#include "obs/trace.h"

namespace valentine {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void FnvMix(uint64_t* h, const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    *h ^= static_cast<unsigned char>(data[i]);
    *h *= kFnvPrime;
  }
}

void FnvMixString(uint64_t* h, const std::string& s) {
  // Length-prefix every string so ("ab","c") and ("a","bc") differ.
  uint64_t n = s.size();
  FnvMix(h, reinterpret_cast<const char*>(&n), sizeof(n));
  FnvMix(h, s.data(), s.size());
}

std::string HexU64(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

uint64_t TableContentFingerprint(const Table& table) {
  uint64_t h = kFnvOffset;
  FnvMixString(&h, table.name());
  uint64_t rows = table.num_rows();
  FnvMix(&h, reinterpret_cast<const char*>(&rows), sizeof(rows));
  for (const Column& column : table.columns()) {
    FnvMixString(&h, column.name());
    FnvMixString(&h, DataTypeName(column.type()));
    for (const Value& v : column.values()) {
      char null_tag = v.is_null() ? 1 : 0;
      FnvMix(&h, &null_tag, 1);
      if (!v.is_null()) FnvMixString(&h, v.AsString());
    }
  }
  return h;
}

PreparedTablePtr ArtifactCache::GetOrPrepare(const ColumnMatcher& matcher,
                                             const Table& table,
                                             const TableProfile* profile,
                                             const MatchContext& context) {
  const std::string family = matcher.Name();
  std::string key = HexU64(TableContentFingerprint(table));
  key.push_back('\x1f');
  key += table.name();
  key.push_back('\x1f');
  key += family;
  key.push_back('\x1f');
  key += matcher.PrepareKey();

  {
    MutexLock lock(&mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_[family].hits;
      return it->second;
    }
    ++stats_[family].misses;
  }

  // Build outside the lock: Prepare can be arbitrarily expensive, and
  // two concurrent builders are still correct (artifacts for equal keys
  // are interchangeable by the Prepare determinism contract). The build
  // is traced as cache-build > prepare under the caller's span; which
  // config's trace hosts the build follows the first-miss race, so
  // threaded traces place it nondeterministically (DESIGN.md §10).
  SpanScope build_span(context.tracer, context.trace_id, "cache-build",
                       family + "/" + table.name(), context.parent_span);
  build_span.Attr("cache", "artifact");
  SpanScope prepare_span(context.tracer, context.trace_id, "prepare",
                         matcher.PrepareKey(), build_span.id());
  MatchContext inner = context;
  inner.parent_span = prepare_span.id() != 0 ? prepare_span.id()
                                             : context.parent_span;
  Result<PreparedTablePtr> built = matcher.Prepare(table, profile, inner);
  prepare_span.Attr("code", StatusCodeName(built.ok()
                                               ? StatusCode::kOk
                                               : built.status().code()));
  prepare_span.End();
  build_span.End();
  {
    MutexLock lock(&mu_);
    ++stats_[family].builds;
    if (!built.ok()) return nullptr;
    auto [it, inserted] = map_.emplace(std::move(key), *built);
    (void)inserted;  // first insert wins; a racing loser serves the winner
    return it->second;
  }
}

std::map<std::string, ArtifactCache::FamilyStats> ArtifactCache::StatsSnapshot()
    const {
  MutexLock lock(&mu_);
  return stats_;
}

size_t ArtifactCache::size() const {
  MutexLock lock(&mu_);
  return map_.size();
}

void ArtifactCache::Clear() {
  MutexLock lock(&mu_);
  map_.clear();
  stats_.clear();
}

}  // namespace valentine
