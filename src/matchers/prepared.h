#ifndef VALENTINE_MATCHERS_PREPARED_H_
#define VALENTINE_MATCHERS_PREPARED_H_

/// \file prepared.h
/// The per-table half of the two-stage matching pipeline. A
/// `PreparedTable` is an immutable, family-specific artifact computed by
/// `ColumnMatcher::Prepare` from one table: capped value lists, token
/// vectors, MinHash signatures, schema graphs, EmbDI replay fragments —
/// whatever the family's `Score` stage needs that depends on only one
/// side of the pair. Separating the stages turns one-vs-many discovery
/// (paper §II-B: one query table against N repository tables) from
/// O(N * prepare) into O(prepare + N * score), and lets the campaign
/// harness prepare each suite table once per family instead of once per
/// (pair, config).
///
/// Contract: artifacts are deep (they own their derived state and never
/// borrow mutable parts of the table), but they *borrow* the Table they
/// were built from, so an artifact must not outlive its table — the same
/// lifetime rule as `stats::ProfileCache`. Artifacts are identified by
/// (family name, prepare key): `Score` accepts an artifact only when the
/// dynamic type matches and `prepare_key()` equals the matcher's current
/// `PrepareKey()`; on any mismatch it falls back to re-preparing inline,
/// so a wrong or stale artifact can cost time but never changes bytes.

#include <memory>
#include <string>
#include <utility>

#include "core/table.h"

namespace valentine {

/// \brief Base class of every family-specific per-table artifact.
///
/// Families subclass this and store their derived state in the subclass;
/// consumers hold artifacts as `PreparedTablePtr` (shared, const) so one
/// artifact can serve many concurrent Score calls.
class PreparedTable {
 public:
  PreparedTable(const Table* table, std::string family,
                std::string prepare_key)
      : table_(table),
        family_(std::move(family)),
        prepare_key_(std::move(prepare_key)) {}

  virtual ~PreparedTable() = default;

  PreparedTable(const PreparedTable&) = delete;
  PreparedTable& operator=(const PreparedTable&) = delete;

  /// The table this artifact was prepared from (borrowed; see file
  /// comment for the lifetime rule).
  const Table& table() const { return *table_; }

  /// Name() of the matcher that built this artifact.
  const std::string& family() const { return family_; }

  /// PrepareKey() of the matcher at build time — the prepare-relevant
  /// option subset. Score compares it against the current matcher's key
  /// to decide whether the artifact can be served.
  const std::string& prepare_key() const { return prepare_key_; }

 private:
  const Table* table_;
  std::string family_;
  std::string prepare_key_;
};

/// Shared const handle: one artifact, many concurrent readers.
using PreparedTablePtr = std::shared_ptr<const PreparedTable>;

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_PREPARED_H_
