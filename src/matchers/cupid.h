#ifndef VALENTINE_MATCHERS_CUPID_H_
#define VALENTINE_MATCHERS_CUPID_H_

/// \file cupid.h
/// Cupid (Madhavan, Bernstein, Rahm — VLDB 2001): a schema-based matcher
/// combining linguistic and structural similarity over schema trees.
///
/// For flat relational tables the schema tree is two levels deep
/// (table -> columns), which is also how the Valentine paper deployed it
/// (they cap w_struct at 0.6 because relations lack XML-style nesting).
/// The linguistic matcher tokenizes and normalizes names, expands
/// abbreviations, stems, and scores token pairs via thesaurus relatedness
/// with a string-similarity fallback; the structural matcher runs the
/// TreeMatch leaf/ancestor mutual-reinforcement loop.

#include <unordered_map>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "knowledge/thesaurus.h"
#include "matchers/matcher.h"

namespace valentine {

/// Cupid parameters (paper Table II plus the TreeMatch constants from the
/// original paper, which Valentine leaves at their defaults).
struct CupidOptions {
  double leaf_w_struct = 0.2;  ///< structural weight at leaves [0, 0.6]
  double w_struct = 0.2;       ///< structural weight at inner nodes [0, 0.6]
  double th_accept = 0.5;      ///< strong-link threshold [0.3, 0.8]
  double th_high = 0.6;        ///< ancestor reinforcement trigger
  double th_low = 0.35;        ///< ancestor penalty trigger
  double c_inc = 1.2;          ///< reinforcement factor
  double c_dec = 0.9;          ///< penalty factor
};

/// \brief Cupid schema-based matcher.
class CupidMatcher : public ColumnMatcher {
 public:
  explicit CupidMatcher(CupidOptions options = {},
                        const Thesaurus* thesaurus = nullptr)
      : options_(options),
        thesaurus_(thesaurus ? thesaurus : &Thesaurus::Default()) {}

  std::string Name() const override { return "Cupid"; }
  MatcherCategory Category() const override {
    return MatcherCategory::kSchemaBased;
  }
  std::vector<MatchType> Capabilities() const override {
    return {MatchType::kAttributeOverlap, MatchType::kSemanticOverlap,
            MatchType::kDataType};
  }
  /// Artifact: normalized (tokenized, abbreviation-expanded, stemmed)
  /// name tokens per column plus the table name's tokens. Keyed on the
  /// thesaurus fingerprint; every TreeMatch parameter is score-stage,
  /// so the whole Cupid grid shares one artifact per table.
  std::string PrepareKey() const override;
  [[nodiscard]] Result<PreparedTablePtr> Prepare(
      const Table& table, const TableProfile* profile,
      const MatchContext& context) const override;
  [[nodiscard]] Result<MatchResult> Score(
      const PreparedTable& source, const PreparedTable& target,
      const MatchContext& context) const override;

  /// Linguistic similarity between two attribute names (exposed for
  /// tests and ablations): tokenize, expand, stem, thesaurus + string
  /// best-match average.
  double LinguisticSimilarity(const std::string& a,
                              const std::string& b) const;

  /// Data-type compatibility factor in [0, 1].
  static double TypeCompatibility(DataType a, DataType b);

 private:
  const CupidOptions options_;  // lint:allow(guarded-by-coverage) immutable
  const Thesaurus* const thesaurus_;  // lint:allow(guarded-by-coverage) immutable
  /// Linguistic similarity is parameter-independent, so results are
  /// memoized per name pair (grid runs revisit the same names often).
  /// Guarded by cache_mutex_ so Match() is safe to call concurrently
  /// (the parallel runner shares matcher instances across threads).
  mutable Mutex cache_mutex_{LockRank::kCupidMemo, "CupidMatcher"};
  mutable std::unordered_map<std::string, double> lsim_cache_
      GUARDED_BY(cache_mutex_);
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_CUPID_H_
