#include "matchers/coma.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "stats/column_profile.h"
#include "stats/descriptive.h"
#include "text/stemmer.h"
#include "text/string_similarity.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace valentine {

double ComaMatcher::NameTrigramSim(const std::string& a,
                                   const std::string& b) const {
  return TrigramSimilarity(ToLower(a), ToLower(b));
}

double ComaMatcher::NameSynonymSim(const std::string& a,
                                   const std::string& b) const {
  struct Tok {
    std::string raw;
    std::string stem;
  };
  auto normalize = [&](const std::string& name) {
    std::vector<Tok> tokens;
    for (const std::string& t : TokenizeIdentifier(name)) {
      std::string raw = thesaurus_->Expand(t);
      tokens.push_back({raw, StemToken(raw)});
    }
    return tokens;
  };
  std::vector<Tok> ta = normalize(a);
  std::vector<Tok> tb = normalize(b);
  if (ta.empty() || tb.empty()) return 0.0;
  auto token_sim = [&](const Tok& x, const Tok& y) {
    if (x.stem == y.stem) return 1.0;
    return std::max(thesaurus_->Relatedness(x.raw, y.raw),
                    thesaurus_->Relatedness(x.stem, y.stem));
  };
  auto one_way = [&](const std::vector<Tok>& xs, const std::vector<Tok>& ys) {
    double total = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) best = std::max(best, token_sim(x, y));
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  return 0.5 * (one_way(ta, tb) + one_way(tb, ta));
}

double ComaMatcher::NamePathSim(const std::string& table_a,
                                const std::string& col_a,
                                const std::string& table_b,
                                const std::string& col_b) const {
  return TrigramSimilarity(ToLower(table_a) + "." + ToLower(col_a),
                           ToLower(table_b) + "." + ToLower(col_b));
}

double ComaMatcher::NameAffixSim(const std::string& a, const std::string& b) {
  std::string la = ToLower(a);
  std::string lb = ToLower(b);
  // Compare separator-free forms so "addr_line" and "addrline" agree.
  auto strip = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c != '_' && c != '-' && c != ' ') out.push_back(c);
    }
    return out;
  };
  la = strip(la);
  lb = strip(lb);
  if (la.empty() || lb.empty()) return 0.0;
  size_t lcs = LongestCommonSubstring(la, lb);
  return static_cast<double>(lcs) /
         static_cast<double>(std::min(la.size(), lb.size()));
}

double ComaMatcher::DataTypeSim(DataType a, DataType b) {
  if (a == b) return 1.0;
  if (TypesCompatible(a, b)) return 0.7;
  return 0.0;
}

std::vector<ComaComponentScore> ComaMatcher::SchemaComponentScores(
    const std::string& source_table, const Column& a,
    const std::string& target_table, const Column& b) const {
  return SchemaComponentScoresWithTokens(
      source_table, a, TokenizeIdentifier(a.name()), target_table, b,
      TokenizeIdentifier(b.name()));
}

std::vector<ComaComponentScore> ComaMatcher::SchemaComponentScoresWithTokens(
    const std::string& source_table, const Column& a,
    const std::vector<std::string>& a_tokens, const std::string& target_table,
    const Column& b, const std::vector<std::string>& b_tokens) const {
  std::vector<ComaComponentScore> scores;
  scores.push_back({"name_trigram", NameTrigramSim(a.name(), b.name()), 1.5});
  scores.push_back({"name_synonym", NameSynonymSim(a.name(), b.name()), 2.0});
  // Token-level edit-distance measure (COMA's Name matcher combines
  // several string measures, not only n-grams).
  scores.push_back({"name_token_edit",
                    BestMatchAverage(a_tokens, b_tokens,
                                     &JaroWinklerSimilarity),
                    2.0});
  scores.push_back({"name_path",
                    NamePathSim(source_table, a.name(), target_table,
                                b.name()),
                    1.0});
  scores.push_back({"name_affix", NameAffixSim(a.name(), b.name()), 1.5});
  scores.push_back({"data_type", DataTypeSim(a.type(), b.type()), 1.0});
  if (options_.use_soundex) {
    scores.push_back({"name_soundex",
                      BestMatchAverage(a_tokens, b_tokens,
                                       &SoundexSimilarity),
                      0.5});
  }
  return scores;
}

double ComaMatcher::Aggregate(const std::vector<ComaComponentScore>& scores,
                              ComaAggregation aggregation) {
  if (scores.empty()) return 0.0;
  switch (aggregation) {
    case ComaAggregation::kMax: {
      double best = 0.0;
      for (const auto& s : scores) best = std::max(best, s.score);
      return best;
    }
    case ComaAggregation::kMin: {
      double worst = std::numeric_limits<double>::max();
      for (const auto& s : scores) worst = std::min(worst, s.score);
      return worst;
    }
    case ComaAggregation::kAverage: {
      double total = 0.0;
      for (const auto& s : scores) total += s.score;
      return total / static_cast<double>(scores.size());
    }
    case ComaAggregation::kWeighted: {
      double total = 0.0;
      double total_w = 0.0;
      for (const auto& s : scores) {
        total += s.score * s.weight;
        total_w += s.weight;
      }
      return total_w > 0.0 ? total / total_w : 0.0;
    }
  }
  return 0.0;
}

namespace {

/// Applies the direction + selection strategies to the aggregated score
/// matrix, returning the surviving (i, j) pairs.
std::vector<std::pair<size_t, size_t>> SelectPairs(
    const std::vector<std::vector<double>>& score, const ComaOptions& opt) {
  const size_t ns = score.size();
  const size_t nt = ns == 0 ? 0 : score[0].size();
  std::vector<std::pair<size_t, size_t>> out;

  auto passes_threshold = [&](size_t i, size_t j) {
    return score[i][j] >= opt.threshold;
  };

  if (opt.selection == ComaSelection::kAll) {
    for (size_t i = 0; i < ns; ++i) {
      for (size_t j = 0; j < nt; ++j) {
        if (passes_threshold(i, j)) out.emplace_back(i, j);
      }
    }
    return out;
  }

  if (opt.selection == ComaSelection::kOneToOne) {
    // Greedy best-counterpart selection over descending scores.
    std::vector<std::tuple<double, size_t, size_t>> ranked;
    for (size_t i = 0; i < ns; ++i) {
      for (size_t j = 0; j < nt; ++j) {
        if (passes_threshold(i, j)) ranked.emplace_back(score[i][j], i, j);
      }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (std::get<0>(a) != std::get<0>(b)) {
                  return std::get<0>(a) > std::get<0>(b);
                }
                if (std::get<1>(a) != std::get<1>(b)) {
                  return std::get<1>(a) < std::get<1>(b);
                }
                return std::get<2>(a) < std::get<2>(b);
              });
    std::vector<bool> used_src(ns, false), used_tgt(nt, false);
    for (const auto& [s, i, j] : ranked) {
      if (used_src[i] || used_tgt[j]) continue;
      used_src[i] = true;
      used_tgt[j] = true;
      out.emplace_back(i, j);
    }
    return out;
  }

  // kMaxN / kMaxDelta: build per-direction candidate sets, then apply
  // the direction strategy.
  auto forward_keep = [&](size_t i, size_t j) {
    // Rank of (i, j) within row i.
    if (opt.selection == ComaSelection::kMaxN) {
      size_t better = 0;
      for (size_t k = 0; k < nt; ++k) {
        if (score[i][k] > score[i][j]) ++better;
      }
      return better < opt.max_n;
    }
    double best = 0.0;
    for (size_t k = 0; k < nt; ++k) best = std::max(best, score[i][k]);
    return score[i][j] >= best - opt.delta;
  };
  auto backward_keep = [&](size_t i, size_t j) {
    if (opt.selection == ComaSelection::kMaxN) {
      size_t better = 0;
      for (size_t k = 0; k < ns; ++k) {
        if (score[k][j] > score[i][j]) ++better;
      }
      return better < opt.max_n;
    }
    double best = 0.0;
    for (size_t k = 0; k < ns; ++k) best = std::max(best, score[k][j]);
    return score[i][j] >= best - opt.delta;
  };

  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      if (!passes_threshold(i, j)) continue;
      bool keep = false;
      switch (opt.direction) {
        case ComaDirection::kForward:
          keep = forward_keep(i, j);
          break;
        case ComaDirection::kBackward:
          keep = backward_keep(i, j);
          break;
        case ComaDirection::kBoth:
          keep = forward_keep(i, j) && backward_keep(i, j);
          break;
      }
      if (keep) out.emplace_back(i, j);
    }
  }
  return out;
}

/// Per-table artifact: identifier tokens always; the instance strategy
/// adds capped value sets, text profiles, numeric stats, and numeric
/// fractions. Thesaurus-dependent name similarity happens at score time,
/// so the artifact needs no knowledge-base fingerprint.
struct ComaPrepared : PreparedTable {
  using PreparedTable::PreparedTable;
  std::vector<std::vector<std::string>> name_tokens;
  std::vector<std::unordered_set<std::string>> sets;
  std::vector<TextProfile> text;
  std::vector<NumericStats> nums;
  std::vector<double> numfrac;
};

}  // namespace

std::string ComaMatcher::PrepareKey() const {
  const bool instances = options_.strategy == ComaStrategy::kInstances;
  return "cap=" + std::to_string(options_.max_distinct_values) +
         ";instances=" + (instances ? "1" : "0");
}

Result<PreparedTablePtr> ComaMatcher::Prepare(
    const Table& table, const TableProfile* profile,
    const MatchContext& context) const {
  VALENTINE_RETURN_NOT_OK(context.Check("coma prepare"));
  auto prepared = std::make_shared<ComaPrepared>(&table, Name(), PrepareKey());
  const size_t n = table.num_columns();
  const bool served = profile != nullptr && profile->Matches(table);

  // Identifier tokens once per column (the name_token_edit / soundex
  // matchers used to retokenize per pair), served from the table profile
  // when one is attached — tokenization has no cap, so profile tokens
  // are always exact.
  prepared->name_tokens.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    prepared->name_tokens.push_back(
        served ? profile->column(i).name_tokens()
               : TokenizeIdentifier(table.column(i).name()));
  }

  if (options_.strategy == ComaStrategy::kInstances) {
    prepared->sets.resize(n);
    size_t idx = 0;
    for (const Column& c : table.columns()) {
      const ColumnProfile* cp = served ? &profile->column(idx) : nullptr;
      if (cp != nullptr &&
          cp->CapsEquivalent(options_.max_distinct_values,
                             profile->spec().set_cap)) {
        // The profile set was built from the same first-seen-order
        // prefix this matcher would cap to, so it is the same set.
        prepared->sets[idx] = cp->distinct_set();
        prepared->text.push_back(cp->text_profile());
        prepared->nums.push_back(cp->numeric_stats());
        prepared->numfrac.push_back(cp->numeric_fraction());
        ++idx;
        continue;
      }
      // Cap in first-seen row order, never by iterating the unordered
      // set: hash order would make the kept subset — and the Jaccard
      // scores built on it — nondeterministic across runs/platforms.
      std::vector<std::string> distinct = c.DistinctStrings();
      if (options_.max_distinct_values > 0 &&
          distinct.size() > options_.max_distinct_values) {
        distinct.resize(options_.max_distinct_values);
      }
      prepared->sets[idx] =
          std::unordered_set<std::string>(distinct.begin(), distinct.end());
      prepared->text.push_back(cp != nullptr ? cp->text_profile()
                                             : ComputeTextProfile(c));
      prepared->nums.push_back(cp != nullptr
                                   ? cp->numeric_stats()
                                   : ComputeNumericStats(c.NumericValues()));
      prepared->numfrac.push_back(cp != nullptr ? cp->numeric_fraction()
                                                : c.NumericFraction());
      ++idx;
    }
  }
  return PreparedTablePtr(std::move(prepared));
}

Result<MatchResult> ComaMatcher::Score(const PreparedTable& source,
                                       const PreparedTable& target,
                                       const MatchContext& context) const {
  const auto* src = dynamic_cast<const ComaPrepared*>(&source);
  const auto* tgt = dynamic_cast<const ComaPrepared*>(&target);
  if (src == nullptr || tgt == nullptr ||
      src->prepare_key() != PrepareKey() ||
      tgt->prepare_key() != PrepareKey()) {
    return MatchWithContext(source.table(), target.table(), context);
  }

  const Table& source_table = src->table();
  const Table& target_table = tgt->table();
  const size_t ns = source_table.num_columns();
  const size_t nt = target_table.num_columns();
  const bool instances = options_.strategy == ComaStrategy::kInstances;

  // Optional TF-IDF token matcher (whole-matrix computation over both
  // tables at once — inherently pair-level, so it stays in Score).
  std::vector<std::vector<double>> tfidf_sim;
  if (instances && options_.use_tfidf_tokens) {
    tfidf_sim = TfIdfColumnSimilarity(source_table, target_table,
                                      options_.max_distinct_values);
  }

  // Aggregated similarity matrix over all first-line matchers.
  std::vector<std::vector<double>> combined(ns, std::vector<double>(nt, 0.0));
  for (size_t i = 0; i < ns; ++i) {
    VALENTINE_RETURN_NOT_OK(context.Check("coma matcher library sweep"));
    const Column& a = source_table.column(i);
    for (size_t j = 0; j < nt; ++j) {
      const Column& b = target_table.column(j);
      std::vector<ComaComponentScore> scores = SchemaComponentScoresWithTokens(
          source_table.name(), a, src->name_tokens[i], target_table.name(), b,
          tgt->name_tokens[j]);
      if (instances) {
        scores.push_back({"value_overlap",
                          JaccardSimilarity(src->sets[i], tgt->sets[j]), 3.0});
        // Profile matcher: numeric columns compare moments, textual
        // columns compare character profiles.
        double prof_sim;
        if (src->numfrac[i] > 0.9 && tgt->numfrac[j] > 0.9) {
          prof_sim = NumericStatsSimilarity(src->nums[i], tgt->nums[j]);
        } else {
          prof_sim = TextProfileSimilarity(src->text[i], tgt->text[j]);
        }
        scores.push_back({"instance_profile", prof_sim, 1.5});
        if (options_.use_tfidf_tokens) {
          scores.push_back({"tfidf_tokens", tfidf_sim[i][j], 2.0});
        }
      }
      combined[i][j] = Aggregate(scores, options_.aggregation);
    }
  }

  MatchResult result;
  for (const auto& [i, j] : SelectPairs(combined, options_)) {
    result.Add({source_table.name(), source_table.column(i).name()},
               {target_table.name(), target_table.column(j).name()},
               combined[i][j]);
  }
  result.Sort();
  return result;
}

}  // namespace valentine
