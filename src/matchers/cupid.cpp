#include "matchers/cupid.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "text/stemmer.h"
#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace valentine {

namespace {

/// One normalized identifier token: the abbreviation-expanded surface
/// form (for thesaurus lookup — the thesaurus stores surface forms) and
/// its stem (for string similarity and plural folding).
struct Tok {
  std::string raw;
  std::string stem;
};

std::vector<Tok> NormalizeName(const std::string& name,
                               const Thesaurus& thesaurus) {
  std::vector<Tok> tokens;
  for (const std::string& t : TokenizeIdentifier(name)) {
    std::string raw = thesaurus.Expand(t);
    tokens.push_back({raw, StemToken(raw)});
  }
  return tokens;
}

/// The linguistic-similarity core over two normalized token lists:
/// thesaurus relatedness (raw or stemmed forms) dominates, Jaro-Winkler
/// on stems as fallback for unknown vocabulary. Callers handle the
/// empty-list case.
double LsimFromTokens(const std::vector<Tok>& ta, const std::vector<Tok>& tb,
                      const Thesaurus& thesaurus) {
  auto token_sim = [&](const Tok& x, const Tok& y) {
    double rel = std::max(thesaurus.Relatedness(x.raw, y.raw),
                          thesaurus.Relatedness(x.stem, y.stem));
    double jw = JaroWinklerSimilarity(x.stem, y.stem);
    return std::max(rel, jw);
  };
  auto one_way = [&](const std::vector<Tok>& xs, const std::vector<Tok>& ys) {
    double total = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) best = std::max(best, token_sim(x, y));
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  return 0.5 * (one_way(ta, tb) + one_way(tb, ta));
}

/// Per-table artifact: normalized name tokens for every column and for
/// the table name itself.
struct CupidPrepared : PreparedTable {
  using PreparedTable::PreparedTable;
  std::vector<std::vector<Tok>> column_tokens;
  std::vector<Tok> table_tokens;
};

}  // namespace

double CupidMatcher::TypeCompatibility(DataType a, DataType b) {
  if (a == b) return 1.0;
  if (TypesCompatible(a, b)) return 0.8;
  return 0.4;  // Cupid keeps a floor: incompatible types still may match.
}

double CupidMatcher::LinguisticSimilarity(const std::string& a,
                                          const std::string& b) const {
  std::string key = a + "\x1f" + b;
  {
    MutexLock lock(&cache_mutex_);
    if (auto it = lsim_cache_.find(key); it != lsim_cache_.end()) {
      return it->second;
    }
  }
  std::vector<Tok> ta = NormalizeName(a, *thesaurus_);
  std::vector<Tok> tb = NormalizeName(b, *thesaurus_);
  if (ta.empty() || tb.empty()) return 0.0;
  double sim = LsimFromTokens(ta, tb, *thesaurus_);
  {
    MutexLock lock(&cache_mutex_);
    lsim_cache_.emplace(std::move(key), sim);
  }
  return sim;
}

std::string CupidMatcher::PrepareKey() const {
  // Every TreeMatch constant is score-stage; the token artifact depends
  // only on the thesaurus content (abbreviation expansion).
  return "thes=" + std::to_string(thesaurus_->Fingerprint());
}

Result<PreparedTablePtr> CupidMatcher::Prepare(
    const Table& table, const TableProfile* profile,
    const MatchContext& context) const {
  (void)profile;  // name tokens are uncapped, nothing to serve
  VALENTINE_RETURN_NOT_OK(context.Check("cupid prepare"));
  auto prepared =
      std::make_shared<CupidPrepared>(&table, Name(), PrepareKey());
  prepared->table_tokens = NormalizeName(table.name(), *thesaurus_);
  prepared->column_tokens.reserve(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    prepared->column_tokens.push_back(
        NormalizeName(table.column(i).name(), *thesaurus_));
  }
  return PreparedTablePtr(std::move(prepared));
}

Result<MatchResult> CupidMatcher::Score(const PreparedTable& source,
                                        const PreparedTable& target,
                                        const MatchContext& context) const {
  const auto* src = dynamic_cast<const CupidPrepared*>(&source);
  const auto* tgt = dynamic_cast<const CupidPrepared*>(&target);
  if (src == nullptr || tgt == nullptr ||
      src->prepare_key() != PrepareKey() ||
      tgt->prepare_key() != PrepareKey()) {
    return MatchWithContext(source.table(), target.table(), context);
  }

  const Table& source_table = src->table();
  const Table& target_table = tgt->table();
  const size_t ns = src->column_tokens.size();
  const size_t nt = tgt->column_tokens.size();

  // Prepared-token variant of LinguisticSimilarity: same memo cache,
  // same key, same result — normalization is skipped, not changed.
  auto cached_lsim = [&](const std::string& name_a,
                         const std::vector<Tok>& ta,
                         const std::string& name_b,
                         const std::vector<Tok>& tb) {
    std::string key = name_a + "\x1f" + name_b;
    {
      MutexLock lock(&cache_mutex_);
      if (auto it = lsim_cache_.find(key); it != lsim_cache_.end()) {
        return it->second;
      }
    }
    if (ta.empty() || tb.empty()) return 0.0;
    double sim = LsimFromTokens(ta, tb, *thesaurus_);
    {
      MutexLock lock(&cache_mutex_);
      lsim_cache_.emplace(std::move(key), sim);
    }
    return sim;
  };

  // --- Linguistic matching over leaves (columns). ---
  // One check per matrix row keeps cancellation latency proportional to
  // a single row of thesaurus lookups.
  std::vector<std::vector<double>> lsim(ns, std::vector<double>(nt, 0.0));
  for (size_t i = 0; i < ns; ++i) {
    VALENTINE_RETURN_NOT_OK(context.Check("cupid linguistic matching"));
    for (size_t j = 0; j < nt; ++j) {
      lsim[i][j] = cached_lsim(source_table.column(i).name(),
                               src->column_tokens[i],
                               target_table.column(j).name(),
                               tgt->column_tokens[j]);
    }
  }

  // --- Structural matching (TreeMatch on a 2-level tree). ---
  // Initial leaf structural similarity: data-type compatibility.
  std::vector<std::vector<double>> ssim(ns, std::vector<double>(nt, 0.0));
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      ssim[i][j] = TypeCompatibility(source_table.column(i).type(),
                                     target_table.column(j).type());
    }
  }
  auto wsim_at = [&](size_t i, size_t j, double w_struct) {
    return w_struct * ssim[i][j] + (1.0 - w_struct) * lsim[i][j];
  };

  // Table-level structural similarity: fraction of leaves with a strong
  // link (wsim >= th_accept) among all leaves of both subtrees.
  auto table_ssim = [&] {
    size_t strong_src = 0;
    for (size_t i = 0; i < ns; ++i) {
      for (size_t j = 0; j < nt; ++j) {
        if (wsim_at(i, j, options_.leaf_w_struct) >= options_.th_accept) {
          ++strong_src;
          break;
        }
      }
    }
    size_t strong_tgt = 0;
    for (size_t j = 0; j < nt; ++j) {
      for (size_t i = 0; i < ns; ++i) {
        if (wsim_at(i, j, options_.leaf_w_struct) >= options_.th_accept) {
          ++strong_tgt;
          break;
        }
      }
    }
    return static_cast<double>(strong_src + strong_tgt) /
           static_cast<double>(ns + nt);
  };

  // Table-level linguistic similarity between the two table names.
  double table_lsim = cached_lsim(source_table.name(), src->table_tokens,
                                  target_table.name(), tgt->table_tokens);
  double parent_ssim = table_ssim();
  double parent_wsim =
      options_.w_struct * parent_ssim + (1.0 - options_.w_struct) * table_lsim;

  // Mutual reinforcement: if the parents match strongly, boost leaf
  // structural similarities; if weakly, penalize (original TreeMatch).
  double factor = 1.0;
  if (parent_wsim > options_.th_high) {
    factor = options_.c_inc;
  } else if (parent_wsim < options_.th_low) {
    factor = options_.c_dec;
  }
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      ssim[i][j] = std::min(1.0, ssim[i][j] * factor);
    }
  }

  MatchResult result;
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      double w = wsim_at(i, j, options_.leaf_w_struct);
      result.Add({source_table.name(), source_table.column(i).name()},
                 {target_table.name(), target_table.column(j).name()}, w);
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
