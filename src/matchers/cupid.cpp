#include "matchers/cupid.h"

#include <algorithm>

#include "text/stemmer.h"
#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace valentine {

double CupidMatcher::TypeCompatibility(DataType a, DataType b) {
  if (a == b) return 1.0;
  if (TypesCompatible(a, b)) return 0.8;
  return 0.4;  // Cupid keeps a floor: incompatible types still may match.
}

double CupidMatcher::LinguisticSimilarity(const std::string& a,
                                          const std::string& b) const {
  std::string key = a + "\x1f" + b;
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (auto it = lsim_cache_.find(key); it != lsim_cache_.end()) {
      return it->second;
    }
  }
  // Normalization: tokenize, expand abbreviations; keep both the raw
  // expanded token (for thesaurus lookup — the thesaurus stores surface
  // forms) and its stem (for string similarity and plural folding).
  struct Tok {
    std::string raw;
    std::string stem;
  };
  auto normalize = [&](const std::string& name) {
    std::vector<Tok> tokens;
    for (const std::string& t : TokenizeIdentifier(name)) {
      std::string raw = thesaurus_->Expand(t);
      tokens.push_back({raw, StemToken(raw)});
    }
    return tokens;
  };
  std::vector<Tok> ta = normalize(a);
  std::vector<Tok> tb = normalize(b);
  if (ta.empty() || tb.empty()) return 0.0;

  // Per-token similarity: thesaurus relatedness (raw or stemmed forms)
  // dominates, Jaro-Winkler on stems as fallback for unknown vocabulary.
  auto token_sim = [&](const Tok& x, const Tok& y) {
    double rel = std::max(thesaurus_->Relatedness(x.raw, y.raw),
                          thesaurus_->Relatedness(x.stem, y.stem));
    double jw = JaroWinklerSimilarity(x.stem, y.stem);
    return std::max(rel, jw);
  };
  auto one_way = [&](const std::vector<Tok>& xs, const std::vector<Tok>& ys) {
    double total = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) best = std::max(best, token_sim(x, y));
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  double sim = 0.5 * (one_way(ta, tb) + one_way(tb, ta));
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    lsim_cache_.emplace(std::move(key), sim);
  }
  return sim;
}

Result<MatchResult> CupidMatcher::MatchWithContext(
    const Table& source, const Table& target,
    const MatchContext& context) const {
  const size_t ns = source.num_columns();
  const size_t nt = target.num_columns();

  // --- Linguistic matching over leaves (columns). ---
  // The memoized traversal dominates runtime on wide schemas; one check
  // per matrix row keeps cancellation latency proportional to a single
  // row of thesaurus lookups.
  std::vector<std::vector<double>> lsim(ns, std::vector<double>(nt, 0.0));
  for (size_t i = 0; i < ns; ++i) {
    VALENTINE_RETURN_NOT_OK(context.Check("cupid linguistic matching"));
    for (size_t j = 0; j < nt; ++j) {
      lsim[i][j] = LinguisticSimilarity(source.column(i).name(),
                                        target.column(j).name());
    }
  }

  // --- Structural matching (TreeMatch on a 2-level tree). ---
  // Initial leaf structural similarity: data-type compatibility.
  std::vector<std::vector<double>> ssim(ns, std::vector<double>(nt, 0.0));
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      ssim[i][j] = TypeCompatibility(source.column(i).type(),
                                     target.column(j).type());
    }
  }
  auto wsim_at = [&](size_t i, size_t j, double w_struct) {
    return w_struct * ssim[i][j] + (1.0 - w_struct) * lsim[i][j];
  };

  // Table-level structural similarity: fraction of leaves with a strong
  // link (wsim >= th_accept) among all leaves of both subtrees.
  auto table_ssim = [&] {
    size_t strong_src = 0;
    for (size_t i = 0; i < ns; ++i) {
      for (size_t j = 0; j < nt; ++j) {
        if (wsim_at(i, j, options_.leaf_w_struct) >= options_.th_accept) {
          ++strong_src;
          break;
        }
      }
    }
    size_t strong_tgt = 0;
    for (size_t j = 0; j < nt; ++j) {
      for (size_t i = 0; i < ns; ++i) {
        if (wsim_at(i, j, options_.leaf_w_struct) >= options_.th_accept) {
          ++strong_tgt;
          break;
        }
      }
    }
    return static_cast<double>(strong_src + strong_tgt) /
           static_cast<double>(ns + nt);
  };

  // Table-level linguistic similarity between the two table names.
  double table_lsim = LinguisticSimilarity(source.name(), target.name());
  double parent_ssim = table_ssim();
  double parent_wsim =
      options_.w_struct * parent_ssim + (1.0 - options_.w_struct) * table_lsim;

  // Mutual reinforcement: if the parents match strongly, boost leaf
  // structural similarities; if weakly, penalize (original TreeMatch).
  double factor = 1.0;
  if (parent_wsim > options_.th_high) {
    factor = options_.c_inc;
  } else if (parent_wsim < options_.th_low) {
    factor = options_.c_dec;
  }
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      ssim[i][j] = std::min(1.0, ssim[i][j] * factor);
    }
  }

  MatchResult result;
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      double w = wsim_at(i, j, options_.leaf_w_struct);
      result.Add({source.name(), source.column(i).name()},
                 {target.name(), target.column(j).name()}, w);
    }
  }
  result.Sort();
  return result;
}

}  // namespace valentine
