#ifndef VALENTINE_MATCHERS_MATCHER_H_
#define VALENTINE_MATCHERS_MATCHER_H_

/// \file matcher.h
/// The ColumnMatcher interface every method implements, plus the matcher
/// taxonomy from the paper's Table I (match types × categories).

#include <memory>
#include <string>
#include <vector>

#include "core/table.h"
#include "matchers/match_result.h"

namespace valentine {

/// The six match-type capabilities of paper Table I.
enum class MatchType {
  kAttributeOverlap,
  kValueOverlap,
  kSemanticOverlap,
  kDataType,
  kDistribution,
  kEmbeddings,
};

/// Human-readable label of a match type (as printed in Table I).
const char* MatchTypeName(MatchType type);

/// Whether the method reads schema-level info, instance values, or both
/// (paper §VI classification).
enum class MatcherCategory {
  kSchemaBased,
  kInstanceBased,
  kHybrid,
};

const char* MatcherCategoryName(MatcherCategory category);

/// \brief Interface for schema matching methods.
///
/// A matcher scores column correspondences between a source and a target
/// table and returns them as a ranked list (never a thresholded 1-1 set —
/// selection is the caller's concern).
class ColumnMatcher {
 public:
  virtual ~ColumnMatcher() = default;

  /// Short method name, e.g. "Cupid".
  virtual std::string Name() const = 0;

  /// Schema-based / instance-based / hybrid.
  virtual MatcherCategory Category() const = 0;

  /// The Table I capability row for this method.
  virtual std::vector<MatchType> Capabilities() const = 0;

  /// Computes the ranked match list for the pair of tables. Computing a
  /// match is pure and (for some matchers) expensive; discarding the
  /// result is always a bug, hence [[nodiscard]].
  [[nodiscard]] virtual MatchResult Match(const Table& source,
                                          const Table& target) const = 0;
};

/// Convenience owning handle.
using MatcherPtr = std::unique_ptr<ColumnMatcher>;

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_MATCHER_H_
