#ifndef VALENTINE_MATCHERS_MATCHER_H_
#define VALENTINE_MATCHERS_MATCHER_H_

/// \file matcher.h
/// The ColumnMatcher interface every method implements, plus the matcher
/// taxonomy from the paper's Table I (match types × categories).

#include <memory>
#include <string>
#include <vector>

#include "core/deadline.h"
#include "core/status.h"
#include "core/table.h"
#include "matchers/match_result.h"
#include "matchers/prepared.h"

namespace valentine {

/// The six match-type capabilities of paper Table I.
enum class MatchType {
  kAttributeOverlap,
  kValueOverlap,
  kSemanticOverlap,
  kDataType,
  kDistribution,
  kEmbeddings,
};

/// Human-readable label of a match type (as printed in Table I).
const char* MatchTypeName(MatchType type);

/// Whether the method reads schema-level info, instance values, or both
/// (paper §VI classification).
enum class MatcherCategory {
  kSchemaBased,
  kInstanceBased,
  kHybrid,
};

const char* MatcherCategoryName(MatcherCategory category);

/// \brief Interface for schema matching methods.
///
/// A matcher scores column correspondences between a source and a target
/// table and returns them as a ranked list (never a thresholded 1-1 set —
/// selection is the caller's concern).
///
/// Non-virtual-interface shape: callers use Match(); implementations
/// override MatchWithContext(). The context threads a cooperative
/// deadline and cancellation token through the computation — iterative
/// matchers (Similarity Flooding fixpoints, EmbDI word2vec epochs, Cupid
/// memoized traversal, distribution-based EMD sweeps) check it at
/// iteration boundaries and return kDeadlineExceeded / kCancelled
/// instead of running unbounded.
///
/// Two-stage pipeline: matching factors into `Prepare(table) ->
/// PreparedTable` (per-table, pair-independent) and `Score(prepared,
/// prepared) -> MatchResult` (pair-dependent), with MatchWithContext as
/// their composition. The three virtuals have mutually-recursive
/// defaults — Prepare wraps the raw table, Score degrades to
/// MatchWithContext, MatchWithContext composes Prepare+Score — so a
/// subclass MUST override either MatchWithContext (monolithic matcher,
/// e.g. a decorator) or Score (pipelined matcher; usually Prepare too).
/// Overriding neither recurses forever. The seven paper families are
/// pipelined; Prepare+Score must be byte-identical to MatchWithContext
/// for any artifact built with the same PrepareKey().
class ColumnMatcher {
 public:
  virtual ~ColumnMatcher() = default;

  /// Short method name, e.g. "Cupid".
  virtual std::string Name() const = 0;

  /// Schema-based / instance-based / hybrid.
  virtual MatcherCategory Category() const = 0;

  /// The Table I capability row for this method.
  virtual std::vector<MatchType> Capabilities() const = 0;

  /// Computes the ranked match list for the pair of tables under an
  /// unbounded context. Computing a match is pure and (for some
  /// matchers) expensive; discarding the result is always a bug, hence
  /// [[nodiscard]]. Built-in matchers cannot fail without a deadline or
  /// token, so this overload stays infallible; a fault-injecting
  /// decorator that errors anyway yields an empty result here.
  [[nodiscard]] MatchResult Match(const Table& source,
                                  const Table& target) const;

  /// Budgeted/cancellable entry point: the ranked match list, or
  /// kDeadlineExceeded / kCancelled when the context fired mid-run.
  [[nodiscard]] Result<MatchResult> Match(const Table& source,
                                          const Table& target,
                                          const MatchContext& context) const {
    return MatchWithContext(source, target, context);
  }

  /// Encodes the option subset that affects Prepare's artifact (value
  /// caps, token/embedding dimensions, knowledge-base fingerprints —
  /// not score-stage thresholds). Two matcher instances with equal
  /// Name() and PrepareKey() build interchangeable artifacts, so a
  /// config grid that only sweeps score parameters shares one artifact
  /// per table. The empty default means "artifact depends on nothing
  /// but the table".
  virtual std::string PrepareKey() const { return ""; }

  /// Stage 1: builds this family's immutable per-table artifact.
  /// `profile` is an optional precomputed column profile for `table`
  /// (from stats::ProfileCache); passing one must not change the
  /// artifact's content, only the cost of building it (the PR 3 serving
  /// contract). The default wraps the table in a state-less artifact,
  /// which the default Score degrades to the monolithic path.
  [[nodiscard]] virtual Result<PreparedTablePtr> Prepare(
      const Table& table, const TableProfile* profile,
      const MatchContext& context) const;

  /// Stage 2: scores a prepared pair. Implementations accept only
  /// artifacts of their own dynamic type whose prepare_key() equals the
  /// current PrepareKey(), and fall back to re-preparing inline from
  /// `source.table()` / `target.table()` otherwise — a foreign or stale
  /// artifact costs time, never bytes. The default delegates to
  /// MatchWithContext on the underlying tables.
  [[nodiscard]] virtual Result<MatchResult> Score(
      const PreparedTable& source, const PreparedTable& target,
      const MatchContext& context) const;

  /// The monolithic hook: ranked matches for a raw table pair. Check
  /// `context` at iteration boundaries of any loop whose trip count
  /// depends on the data. The default composes Prepare (with the
  /// context's profiles) and Score; monolithic matchers override it
  /// directly.
  [[nodiscard]] virtual Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const;
};

/// Convenience owning handle.
using MatcherPtr = std::unique_ptr<ColumnMatcher>;

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_MATCHER_H_
