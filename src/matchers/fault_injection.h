#ifndef VALENTINE_MATCHERS_FAULT_INJECTION_H_
#define VALENTINE_MATCHERS_FAULT_INJECTION_H_

/// \file fault_injection.h
/// Deterministic fault injection for exercising the harness's
/// fault-tolerance machinery (retries, deadlines, quarantine, journal
/// resume). A FaultInjectingMatcher wraps any matcher and fails, hangs,
/// or degrades according to a seeded FaultPlan; every decision is a
/// pure function of (plan, experiment key, attempt number), so stress
/// runs reproduce bit-for-bit regardless of thread interleaving.

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "matchers/matcher.h"

namespace valentine {

/// What the decorator injects. Combinations compose: a plan with
/// fail_first = 2 and hang_ms = 5 hangs 5 ms on every call and fails
/// the first two attempts of each experiment.
struct FaultPlan {
  /// Fail this many initial attempts per experiment, then succeed
  /// ("flaky dependency that recovers").
  size_t fail_first = 0;
  /// Every attempt fails ("permanently broken configuration").
  bool always_fail = false;
  /// Code injected failures carry (kOk is coerced to kInternal).
  StatusCode code = StatusCode::kInternal;
  std::string message = "injected fault";
  /// Busy-wait this long before delegating ("hung computation"). The
  /// wait polls the MatchContext, so deadlines and cancellation cut it
  /// short — exactly the cooperative-interruption path under test.
  double hang_ms = 0.0;
  /// Independent per-attempt failure probability, derived from
  /// (seed, key, attempt) — deterministic across runs and threads.
  double fail_probability = 0.0;
  uint64_t seed = 7;
};

/// \brief Decorator injecting deterministic faults around any matcher.
///
/// Attempts are counted per experiment key — the context's trace_id
/// when the harness set one (the stable (family, pair, config) triple),
/// else the source/target table names. Counting by trace_id matters:
/// fabricated table names repeat across pairs, so name-keyed counters
/// would couple unrelated experiments and make fail-N-then-succeed
/// order-dependent under parallel execution.
class FaultInjectingMatcher : public ColumnMatcher {
 public:
  FaultInjectingMatcher(std::shared_ptr<const ColumnMatcher> inner,
                        FaultPlan plan);

  std::string Name() const override { return inner_->Name(); }
  MatcherCategory Category() const override { return inner_->Category(); }
  std::vector<MatchType> Capabilities() const override {
    return inner_->Capabilities();
  }
  [[nodiscard]] Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const override;

  /// Attempts observed so far for an experiment key (testing hook).
  size_t AttemptsFor(const std::string& key) const EXCLUDES(mutex_);

 private:
  // Both set in the constructor, immutable afterwards.
  std::shared_ptr<const ColumnMatcher> inner_;  // lint:allow(guarded-by-coverage)
  FaultPlan plan_;  // lint:allow(guarded-by-coverage)
  mutable Mutex mutex_{LockRank::kFaultInjection, "FaultInjectingMatcher"};
  mutable std::unordered_map<std::string, size_t> attempts_
      GUARDED_BY(mutex_);
};

}  // namespace valentine

#endif  // VALENTINE_MATCHERS_FAULT_INJECTION_H_
