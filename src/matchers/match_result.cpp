#include "matchers/match_result.h"

#include <algorithm>
#include <sstream>

namespace valentine {

void MatchResult::Sort() {
  std::sort(matches_.begin(), matches_.end(),
            [](const Match& a, const Match& b) {
              if (a.score != b.score) return a.score > b.score;
              if (!(a.source == b.source)) return a.source < b.source;
              return a.target < b.target;
            });
}

std::vector<Match> MatchResult::TopK(size_t k) const {
  std::vector<Match> out(matches_.begin(),
                         matches_.begin() +
                             static_cast<long>(std::min(k, matches_.size())));
  return out;
}

void MatchResult::FilterBelow(double threshold) {
  matches_.erase(std::remove_if(matches_.begin(), matches_.end(),
                                [&](const Match& m) {
                                  return m.score < threshold;
                                }),
                 matches_.end());
}

std::string MatchResult::ToString(size_t limit) const {
  std::ostringstream out;
  size_t n = std::min(limit, matches_.size());
  for (size_t i = 0; i < n; ++i) {
    const Match& m = matches_[i];
    out << m.source.ToString() << " -> " << m.target.ToString() << " : "
        << m.score << "\n";
  }
  if (matches_.size() > n) {
    out << "... (" << matches_.size() - n << " more)\n";
  }
  return out.str();
}

}  // namespace valentine
