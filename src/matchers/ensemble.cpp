#include "matchers/ensemble.h"

#include <algorithm>
#include <map>
#include <utility>

#include "matchers/coma.h"
#include "matchers/distribution_based.h"
#include "matchers/jaccard_levenshtein.h"

namespace valentine {

std::string EnsembleMatcher::Name() const {
  std::string name = "Ensemble(";
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) name += "+";
    name += members_[i]->Name();
  }
  name += ")";
  return name;
}

MatcherCategory EnsembleMatcher::Category() const {
  // Any mix of schema and instance members makes the ensemble hybrid.
  bool any_schema = false;
  bool any_instance = false;
  for (const auto& m : members_) {
    switch (m->Category()) {
      case MatcherCategory::kSchemaBased: any_schema = true; break;
      case MatcherCategory::kInstanceBased: any_instance = true; break;
      case MatcherCategory::kHybrid: return MatcherCategory::kHybrid;
    }
  }
  if (any_schema && any_instance) return MatcherCategory::kHybrid;
  return any_schema ? MatcherCategory::kSchemaBased
                    : MatcherCategory::kInstanceBased;
}

std::vector<MatchType> EnsembleMatcher::Capabilities() const {
  std::vector<MatchType> caps;
  for (const auto& m : members_) {
    for (MatchType t : m->Capabilities()) {
      if (std::find(caps.begin(), caps.end(), t) == caps.end()) {
        caps.push_back(t);
      }
    }
  }
  return caps;
}

namespace {

/// Per-table artifact: each member's artifact for the same table, in
/// member order. Built so an ensemble shares per-member prepare work
/// across pairs exactly like its members would standalone.
struct EnsemblePrepared : PreparedTable {
  using PreparedTable::PreparedTable;
  std::vector<PreparedTablePtr> members;
};

}  // namespace

std::string EnsembleMatcher::PrepareKey() const {
  // Fusion strategy and rrf_k are score-stage; the artifact depends on
  // the member lineup and each member's own prepare-relevant options.
  std::string key;
  for (const auto& m : members_) {
    key += m->Name() + "{" + m->PrepareKey() + "}";
  }
  return key;
}

Result<PreparedTablePtr> EnsembleMatcher::Prepare(
    const Table& table, const TableProfile* profile,
    const MatchContext& context) const {
  auto prepared =
      std::make_shared<EnsemblePrepared>(&table, Name(), PrepareKey());
  prepared->members.reserve(members_.size());
  for (const auto& member : members_) {
    Result<PreparedTablePtr> artifact =
        member->Prepare(table, profile, context);
    VALENTINE_RETURN_NOT_OK(artifact.status());
    prepared->members.push_back(std::move(*artifact));
  }
  return PreparedTablePtr(std::move(prepared));
}

Result<MatchResult> EnsembleMatcher::Score(const PreparedTable& source,
                                           const PreparedTable& target,
                                           const MatchContext& context) const {
  const auto* src = dynamic_cast<const EnsemblePrepared*>(&source);
  const auto* tgt = dynamic_cast<const EnsemblePrepared*>(&target);
  if (src == nullptr || tgt == nullptr ||
      src->prepare_key() != PrepareKey() ||
      tgt->prepare_key() != PrepareKey()) {
    return MatchWithContext(source.table(), target.table(), context);
  }

  using PairKey = std::pair<std::string, std::string>;
  struct Fused {
    ColumnRef source_ref;
    ColumnRef target_ref;
    double score = 0.0;
    size_t votes = 0;
  };
  std::map<PairKey, Fused> fused;

  for (size_t mi = 0; mi < members_.size(); ++mi) {
    // Members inherit the shared budget: the first one to exceed it
    // fails the whole ensemble (a partial fusion would silently rank
    // from fewer voters).
    Result<MatchResult> member_result = members_[mi]->Score(
        *src->members[mi], *tgt->members[mi], context);
    if (!member_result.ok()) return member_result.status();
    MatchResult ranked = std::move(member_result).ValueOrDie();
    for (size_t rank = 0; rank < ranked.size(); ++rank) {
      // "struct Match" disambiguates from the Match() member function.
      const struct Match& m = ranked[rank];
      Fused& f = fused[{m.source.column, m.target.column}];
      f.source_ref = m.source;
      f.target_ref = m.target;
      ++f.votes;
      switch (options_.fusion) {
        case FusionStrategy::kReciprocalRank:
          f.score += 1.0 / (options_.rrf_k + static_cast<double>(rank + 1));
          break;
        case FusionStrategy::kBorda:
          f.score += static_cast<double>(ranked.size() - rank);
          break;
        case FusionStrategy::kScoreAverage:
          f.score += m.score;
          break;
      }
    }
  }

  // Normalize so scores land in [0, 1] regardless of fusion strategy.
  double max_score = 0.0;
  for (const auto& [key, f] : fused) max_score = std::max(max_score, f.score);

  MatchResult result;
  for (const auto& [key, f] : fused) {
    double score = f.score;
    if (options_.fusion == FusionStrategy::kScoreAverage) {
      score /= static_cast<double>(members_.size());
    } else if (max_score > 0.0) {
      score /= max_score;
    }
    result.Add(f.source_ref, f.target_ref, score);
  }
  result.Sort();
  return result;
}

MatcherPtr MakeDefaultEnsemble(EnsembleOptions options) {
  std::vector<MatcherPtr> members;
  {
    ComaOptions o;
    o.strategy = ComaStrategy::kInstances;
    members.push_back(std::make_unique<ComaMatcher>(o));
  }
  members.push_back(std::make_unique<DistributionBasedMatcher>());
  {
    JaccardLevenshteinOptions o;
    o.max_distinct_values = 300;
    members.push_back(std::make_unique<JaccardLevenshteinMatcher>(o));
  }
  return std::make_unique<EnsembleMatcher>(std::move(members), options);
}

}  // namespace valentine
