#include "serve/admission.h"

namespace valentine {
namespace serve {

AdmissionQueue::AdmissionQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool AdmissionQueue::TryEnqueue(int fd, int64_t enqueue_ns) {
  {
    MutexLock lock(&mu_);
    if (closed_ || queue_.size() >= capacity_) {
      ++shed_total_;
      return false;
    }
    queue_.push_back(AdmittedConnection{fd, enqueue_ns});
    ++admitted_total_;
  }
  cv_.NotifyOne();
  return true;
}

std::optional<AdmittedConnection> AdmissionQueue::Dequeue() {
  MutexLock lock(&mu_);
  while (queue_.empty() && !closed_) {
    cv_.Wait(&mu_);
  }
  if (queue_.empty()) return std::nullopt;  // closed and drained
  AdmittedConnection admitted = queue_.front();
  queue_.pop_front();
  return admitted;
}

void AdmissionQueue::Close() {
  {
    MutexLock lock(&mu_);
    closed_ = true;
  }
  cv_.NotifyAll();
}

size_t AdmissionQueue::depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

bool AdmissionQueue::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

uint64_t AdmissionQueue::admitted_total() const {
  MutexLock lock(&mu_);
  return admitted_total_;
}

uint64_t AdmissionQueue::shed_total() const {
  MutexLock lock(&mu_);
  return shed_total_;
}

}  // namespace serve
}  // namespace valentine
