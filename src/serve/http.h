#ifndef VALENTINE_SERVE_HTTP_H_
#define VALENTINE_SERVE_HTTP_H_

/// \file http.h
/// From-scratch HTTP/1.1 message layer for the serving daemon: an
/// incremental, bounded request parser and a response writer. No
/// sockets here — the parser consumes byte chunks and the writer
/// produces a byte string, so every robustness property (oversized
/// rejection, torn-request detection, header limits) is unit-testable
/// without I/O.
///
/// Robustness contract:
///  * the parser never buffers more than `max_header_bytes` of headers
///    or `max_body_bytes` of body — a slow-loris or oversized client
///    costs bounded memory and gets a clean 431/413;
///  * bodies require an explicit Content-Length (chunked encoding is
///    rejected with 501 — a deliberate non-feature, not an oversight);
///  * any malformed byte sequence lands in a terminal kError state with
///    the HTTP status the connection should answer before closing.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace valentine {
namespace serve {

/// \brief One parsed request.
struct HttpRequest {
  std::string method;   ///< uppercase, e.g. "POST"
  std::string target;   ///< origin-form, e.g. "/v1/tables?x=1"
  std::string version;  ///< "HTTP/1.1"
  /// Headers in arrival order, names lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Path part of the target (before any '?').
  std::string Path() const;
  /// First value of a (lower-case) header name; empty when absent.
  std::string Header(const std::string& lower_name) const;
  /// True when the client asked to close the connection ("connection:
  /// close", or HTTP/1.0 without keep-alive).
  bool WantsClose() const;
};

/// \brief Parser limits; defaults are production-sane.
struct HttpLimits {
  size_t max_header_bytes = 16 * 1024;
  size_t max_body_bytes = 1024 * 1024;
};

/// \brief Incremental request parser (one request at a time; Reset()
/// between keep-alive requests).
class HttpRequestParser {
 public:
  enum class State {
    kHeaders,   ///< still accumulating the request line + headers
    kBody,      ///< headers done, reading Content-Length body bytes
    kComplete,  ///< request() is valid
    kError,     ///< terminal; error_status()/http_status() describe why
  };

  explicit HttpRequestParser(HttpLimits limits = {});

  /// Feeds `n` bytes; returns the number consumed (always `n` unless a
  /// request completed or errored mid-chunk — the remainder belongs to
  /// the next request of a pipelined client).
  size_t Consume(const char* data, size_t n);

  State state() const { return state_; }
  bool complete() const { return state_ == State::kComplete; }
  bool failed() const { return state_ == State::kError; }

  /// The parsed request; valid only when complete().
  const HttpRequest& request() const { return request_; }

  /// Why parsing failed (kParseError / kResourceExhausted / ...).
  const Status& error_status() const { return error_; }
  /// HTTP status code the connection should answer before closing
  /// (400, 413, 431, 501, 505); 0 while not failed.
  int http_status() const { return http_status_; }

  /// Clears all state for the next request on a keep-alive connection.
  void Reset();

 private:
  void Fail(int http_status, Status status);
  /// Parses the buffered request line + headers once "\r\n\r\n" is seen.
  void ParseHeaderBlock(size_t block_end);

  HttpLimits limits_;
  State state_ = State::kHeaders;
  std::string header_buf_;
  HttpRequest request_;
  size_t body_expected_ = 0;
  Status error_;
  int http_status_ = 0;
};

/// \brief One response to serialize.
struct HttpResponse {
  int status = 200;
  /// Extra headers in emission order (Content-Length, Connection, Date
  /// are managed by the writer/server, not listed here).
  std::vector<std::pair<std::string, std::string>> headers;
  std::string content_type = "application/json";
  std::string body;
};

/// Canonical reason phrase for the status codes the server emits
/// ("OK", "Service Unavailable", ...); "Unknown" otherwise.
const char* HttpReasonPhrase(int status);

/// Serializes a response (status line, headers, Content-Length, blank
/// line, body). `close_connection` controls the Connection header.
std::string SerializeResponse(const HttpResponse& response,
                              bool close_connection);

/// Maps a StatusCode onto the HTTP status the serving boundary answers:
/// InvalidArgument/ParseError/OutOfRange→400, NotFound→404,
/// ResourceExhausted→503, Cancelled→503, DeadlineExceeded→504,
/// everything else→500.
int HttpStatusForCode(StatusCode code);

/// The machine-readable JSON error envelope:
/// {"error":{"code":"<StatusCodeName>","http_status":N,"message":...}}.
/// `code` round-trips through StatusCodeFromName, so clients can map
/// envelopes back onto library status codes.
std::string JsonErrorEnvelope(const Status& status, int http_status);

/// Envelope response for a non-OK status (adds Retry-After for 503s
/// when `retry_after_s` > 0).
HttpResponse ErrorResponse(const Status& status, int retry_after_s = 0);

}  // namespace serve
}  // namespace valentine

#endif  // VALENTINE_SERVE_HTTP_H_
