#ifndef VALENTINE_SERVE_TELEMETRY_H_
#define VALENTINE_SERVE_TELEMETRY_H_

/// \file telemetry.h
/// Request-scoped serve observability: deterministic trace ids, the
/// `serve.request` span that parents every discovery/stage span, a
/// structured JSONL access log, and the ring buffer behind `/tracez`.
///
/// One ServeTelemetry instance is shared by the transport (HttpServer
/// times queue-wait and counts raw bytes) and the service
/// (DiscoveryService reports route, budget, and failure reason through
/// RequestObs, and renders `/statusz` + `/tracez` from here). Both
/// borrow it; the embedder (tools/serve, tests) owns it.
///
/// Determinism contract (extends DESIGN.md §10/§12): trace ids carry no
/// randomness — a request either brings its own via the
/// `x-valentine-trace` header or gets `serve/<n>` from a seeded
/// per-server counter. All timing fields flow through the injectable
/// Clock, so a single-threaded run under a non-advancing FakeClock
/// serializes a byte-identical access log on every run, and response
/// bytes never depend on whether telemetry is attached at all (the
/// registry/log/ring are strictly write-only side channels; the
/// byte-identity tests pin this).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "core/deadline.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/http.h"
#include "serve/json.h"

namespace valentine {
namespace serve {

class DiscoveryService;

/// Build identity surfaced on /statusz. The version bumps with the
/// repo's PR sequence, not with upstream releases.
inline constexpr const char* kServeBuildName = "valentine-serve";
inline constexpr const char* kServeBuildVersion = "0.10.0";

/// \brief Per-request observation bag threaded through
/// DiscoveryService::Handle.
///
/// The transport fills the identity fields before dispatch; the service
/// fills the routing/budget/outcome fields while handling. Plain data,
/// owned by the caller, no synchronization needed.
struct RequestObs {
  /// Trace id for this request (header-provided or derived); threaded
  /// into MatchContext so discovery/stage spans join the request trace.
  std::string trace_id;
  /// The serve.request span id; 0 when tracing is off. Becomes
  /// MatchContext::parent_span so the discovery "query" span nests
  /// under the request.
  uint64_t span_id = 0;

  /// Route label the service resolved ("joinable", "metrics", ...).
  std::string route = "unknown";
  /// Requested deadline budget after clamping; < 0 = no budget asked.
  double budget_ms = -1.0;
  /// Deadline budget left when the handler finished; < 0 = no budget.
  double deadline_remaining_ms = -1.0;
  /// StatusCodeName of a failed handler outcome ("" = none): the
  /// shed/cancel reason column of the access log.
  std::string error_code;
};

/// \brief One completed request, as logged and as served by /tracez.
struct RequestLogEntry {
  std::string trace_id;
  std::string method;
  std::string route;
  std::string path;
  int status = 0;
  uint64_t bytes_in = 0;   ///< raw request bytes consumed off the wire
  uint64_t bytes_out = 0;  ///< serialized response bytes
  double queue_wait_ms = 0.0;  ///< admission-queue wait (telemetry clock)
  double handler_ms = 0.0;     ///< service Handle() time (telemetry clock)
  double budget_ms = -1.0;             ///< < 0 = request asked no budget
  double deadline_remaining_ms = -1.0; ///< < 0 = no budget
  std::string error_code;  ///< shed/cancel reason ("" = none)
  int64_t start_ns = 0;    ///< handler start on the telemetry clock
  int64_t end_ns = 0;      ///< handler end on the telemetry clock
};

/// Canonical JSONL access-log line (no trailing newline): one sorted-key
/// JSON object per request. `budget_ms`/`deadline_remaining_ms` are
/// omitted when negative and `error` when empty, so unbudgeted
/// fake-clock runs contain no real-clock-dependent field at all.
std::string RenderAccessLogLine(const RequestLogEntry& entry);

/// The same object as a JsonValue (what /tracez embeds per request).
JsonValue RequestLogEntryJson(const RequestLogEntry& entry);

/// \brief Shared per-server request observability state.
///
/// Thread-safe: trace-id derivation is a single atomic, RecordRequest
/// appends under a leaf-ranked mutex (kServeTelemetry — above the serve
/// locks, below obs), and metric updates go through MetricsRegistry's
/// own synchronization.
class ServeTelemetry {
 public:
  struct Options {
    /// Borrowed sinks; any may be null (that aspect is then off).
    MetricsRegistry* metrics = nullptr;
    Tracer* tracer = nullptr;
    /// Timing source for queue-wait/handler measurements; nullptr =
    /// real steady clock. Tests inject a FakeClock for byte-stable logs.
    const Clock* clock = nullptr;
    /// Ring capacity of /tracez (last N completed requests).
    size_t trace_buffer_capacity = 64;
    /// First value of the derived trace-id counter: request n gets
    /// "serve/<seed + n>". A fixed seed makes single-threaded runs
    /// reproduce ids exactly.
    uint64_t trace_seed = 1;
    /// JSONL access-log sink; empty = no file. Truncated on open so a
    /// run's log is self-contained (and byte-comparable across runs).
    std::string access_log_path;
    /// Also retain every rendered line in memory (tests; unbounded —
    /// not for long-lived servers).
    bool keep_access_log_in_memory = false;
  };

  explicit ServeTelemetry(Options options);
  ~ServeTelemetry();

  ServeTelemetry(const ServeTelemetry&) = delete;
  ServeTelemetry& operator=(const ServeTelemetry&) = delete;

  /// Open status of the access-log sink (OK when no path configured).
  const Status& status() const { return status_; }

  const Clock& clock() const { return *clock_; }
  Tracer* tracer() const { return options_.tracer; }
  MetricsRegistry* metrics() const { return options_.metrics; }
  size_t trace_buffer_capacity() const { return capacity_; }

  /// Trace id for a request: the `x-valentine-trace` header value when
  /// non-empty (truncated to a sane bound), else the next derived id.
  std::string TraceIdFor(const std::string& header_value) EXCLUDES(mu_);

  /// Records a completed request: appends the access-log line (file
  /// and/or memory), pushes into the /tracez ring, and observes the
  /// latency / queue-wait / response-size histograms.
  void RecordRequest(const RequestLogEntry& entry) EXCLUDES(mu_);

  /// /tracez snapshot, oldest first.
  std::vector<RequestLogEntry> RecentRequests() const EXCLUDES(mu_);

  /// Requests recorded over this instance's lifetime.
  uint64_t requests_logged() const EXCLUDES(mu_);

  /// In-memory access log (lines joined with '\n', trailing newline),
  /// empty unless keep_access_log_in_memory.
  std::string AccessLogText() const EXCLUDES(mu_);

  /// Uptime on the telemetry clock since construction.
  double UptimeMs() const;

  /// Transport lifecycle state mirrored onto /statusz.
  struct ServerState {
    bool running = false;
    bool draining = false;
    size_t workers = 0;
    size_t queue_capacity = 0;
  };
  void PublishServerState(const ServerState& state) EXCLUDES(mu_);
  ServerState server_state() const EXCLUDES(mu_);

 private:
  Options options_;  // lint:allow(guarded-by-coverage) immutable after construction
  const Clock* clock_;  // lint:allow(guarded-by-coverage) immutable
  const size_t capacity_;  // lint:allow(guarded-by-coverage) immutable
  int64_t start_ns_ = 0;  // lint:allow(guarded-by-coverage) immutable after construction
  Status status_;  // lint:allow(guarded-by-coverage) immutable after construction
  std::atomic<uint64_t> next_trace_{0};

  mutable Mutex mu_{LockRank::kServeTelemetry, "ServeTelemetry"};
  std::FILE* log_file_ GUARDED_BY(mu_) = nullptr;
  std::string log_memory_ GUARDED_BY(mu_);
  std::deque<RequestLogEntry> ring_ GUARDED_BY(mu_);
  uint64_t logged_total_ GUARDED_BY(mu_) = 0;
  ServerState server_state_ GUARDED_BY(mu_);
};

/// Dispatches one request through `service` under full request
/// telemetry: derives the trace id, opens the `serve.request` span
/// (parenting any discovery spans via RequestObs), times the handler on
/// the telemetry clock, and — unless `entry_out` is non-null — records
/// the completed request with body-size byte counts.
///
/// Transports that know the real wire byte counts pass `entry_out`,
/// amend `bytes_in`/`bytes_out`, and call RecordRequest themselves.
/// With a null `telemetry` this degrades to a plain Handle() call.
HttpResponse HandleWithTelemetry(DiscoveryService* service,
                                 ServeTelemetry* telemetry,
                                 const HttpRequest& request,
                                 const CancellationToken* cancel,
                                 double queue_wait_ms = 0.0,
                                 RequestLogEntry* entry_out = nullptr);

}  // namespace serve
}  // namespace valentine

#endif  // VALENTINE_SERVE_TELEMETRY_H_
