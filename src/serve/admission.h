#ifndef VALENTINE_SERVE_ADMISSION_H_
#define VALENTINE_SERVE_ADMISSION_H_

/// \file admission.h
/// Bounded admission queue — the server's overload valve.
///
/// The acceptor thread offers every accepted connection to this queue;
/// worker threads drain it. When the queue is full the offer fails
/// *immediately* (no blocking, no timeout ambiguity) and the acceptor
/// sheds the connection with a 503 + Retry-After. That makes overload
/// behavior deterministic: with W busy workers and a queue bound of Q,
/// exactly the first Q further connections wait and every one after
/// that is shed — the contract the overload tests pin down.
///
/// Close() flips the queue into drain mode: new offers are refused
/// (shed), but already-admitted entries keep draining — an admitted
/// request is never dropped, it either completes or is cancelled by the
/// server's drain deadline. Dequeue returns nullopt only when the queue
/// is closed AND empty, which is the worker exit condition.

#include <cstdint>
#include <deque>
#include <optional>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace valentine {
namespace serve {

/// One admitted connection: the descriptor plus the telemetry-clock
/// instant it entered the queue, so the dequeuing worker can charge the
/// request its queue wait.
struct AdmittedConnection {
  int fd = -1;
  int64_t enqueue_ns = 0;
};

/// \brief Thread-safe bounded FIFO of accepted connection descriptors.
class AdmissionQueue {
 public:
  /// `capacity` = max connections waiting for a worker (>= 1; 0 is
  /// clamped to 1 — a queue that can hold nothing would shed even an
  /// idle server's first connection).
  explicit AdmissionQueue(size_t capacity);
  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits `fd` unless the queue is full or closed. Never blocks.
  /// False means the caller must shed the connection. `enqueue_ns` is
  /// carried to the dequeuer verbatim (0 when the caller doesn't time).
  bool TryEnqueue(int fd, int64_t enqueue_ns = 0) EXCLUDES(mu_);

  /// Blocks until an entry is available or the queue is closed and
  /// empty (nullopt — the worker should exit).
  std::optional<AdmittedConnection> Dequeue() EXCLUDES(mu_);

  /// Refuses all future enqueues and wakes every blocked Dequeue once
  /// the backlog drains. Idempotent.
  void Close() EXCLUDES(mu_);

  size_t depth() const EXCLUDES(mu_);
  bool closed() const EXCLUDES(mu_);

  /// Totals over the queue's lifetime (admitted excludes shed).
  uint64_t admitted_total() const EXCLUDES(mu_);
  uint64_t shed_total() const EXCLUDES(mu_);

 private:
  const size_t capacity_;  // lint:allow(guarded-by-coverage) immutable
  mutable Mutex mu_{LockRank::kServeAdmission, "AdmissionQueue"};
  CondVar cv_;  // lint:allow(guarded-by-coverage) internally synchronized
  std::deque<AdmittedConnection> queue_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
  uint64_t admitted_total_ GUARDED_BY(mu_) = 0;
  uint64_t shed_total_ GUARDED_BY(mu_) = 0;
};

}  // namespace serve
}  // namespace valentine

#endif  // VALENTINE_SERVE_ADMISSION_H_
