#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

namespace valentine {
namespace serve {

namespace {

/// Inverse of DataTypeName; nullopt for unknown names.
std::optional<DataType> DataTypeFromJsonName(const std::string& name) {
  static const std::pair<const char*, DataType> kNames[] = {
      {"null", DataType::kNull},       {"bool", DataType::kBool},
      {"int64", DataType::kInt64},     {"float64", DataType::kFloat64},
      {"string", DataType::kString},   {"date", DataType::kDate},
  };
  for (const auto& [n, t] : kNames) {
    if (name == n) return t;
  }
  return std::nullopt;
}

Result<Value> CellFromJson(const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      return Value::Null();
    case JsonValue::Type::kBool:
      return Value::Bool(v.bool_value());
    case JsonValue::Type::kNumber: {
      double d = v.number_value();
      // Integral doubles inside the exactly-representable range decode
      // as int64 so 1 round-trips as 1, not 1.0.
      if (std::fabs(d) <= 9.0e15 && d == std::floor(d)) {
        return Value::Int(static_cast<int64_t>(d));
      }
      return Value::Float(d);
    }
    case JsonValue::Type::kString:
      return Value::String(v.string_value());
    case JsonValue::Type::kArray:
    case JsonValue::Type::kObject:
      break;
  }
  return Status::InvalidArgument("column values must be JSON scalars");
}

DataType InferDeclaredType(const Column& column) {
  for (const Value& v : column.values()) {
    if (!v.is_null()) return v.kind();
  }
  return DataType::kString;
}

HttpResponse JsonResponse(int status, const JsonValue& body) {
  HttpResponse response;
  response.status = status;
  response.body = WriteJson(body);
  return response;
}

HttpResponse MethodNotAllowed(const std::string& method,
                              const std::string& path) {
  HttpResponse response;
  response.status = 405;
  response.body = JsonErrorEnvelope(
      Status::InvalidArgument("method " + method + " not allowed for " + path),
      405);
  return response;
}

}  // namespace

Result<Table> TableFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("table must be a JSON object");
  }
  const JsonValue* name = value.Find("name");
  if (name == nullptr || !name->is_string() || name->string_value().empty()) {
    return Status::InvalidArgument("table requires a non-empty string 'name'");
  }
  // The engine keys its column index as "<table>\x1f<column>"; a name
  // smuggling the separator could impersonate another table's keys.
  // Rejected here, at the wire boundary, so the client gets a clean 400
  // instead of an engine-internal error.
  if (name->string_value().find('\x1f') != std::string::npos) {
    return Status::InvalidArgument(
        "table name contains reserved character U+001F");
  }
  const JsonValue* columns = value.Find("columns");
  if (columns == nullptr || !columns->is_array()) {
    return Status::InvalidArgument("table requires a 'columns' array");
  }
  Table table(name->string_value());
  for (const JsonValue& col : columns->array_items()) {
    if (!col.is_object()) {
      return Status::InvalidArgument("each column must be a JSON object");
    }
    const JsonValue* col_name = col.Find("name");
    if (col_name == nullptr || !col_name->is_string() ||
        col_name->string_value().empty()) {
      return Status::InvalidArgument(
          "each column requires a non-empty string 'name'");
    }
    if (col_name->string_value().find('\x1f') != std::string::npos) {
      return Status::InvalidArgument(
          "column name contains reserved character U+001F");
    }
    const JsonValue* values = col.Find("values");
    if (values == nullptr || !values->is_array()) {
      return Status::InvalidArgument("column '" + col_name->string_value() +
                                     "' requires a 'values' array");
    }
    Column column(col_name->string_value(), DataType::kNull);
    column.Reserve(values->array_items().size());
    for (const JsonValue& cell : values->array_items()) {
      Result<Value> decoded = CellFromJson(cell);
      if (!decoded.ok()) {
        return Status::InvalidArgument("column '" + col_name->string_value() +
                                       "': " + decoded.status().message());
      }
      column.Append(std::move(decoded).ValueOrDie());
    }
    const JsonValue* type = col.Find("type");
    if (type != nullptr) {
      if (!type->is_string()) {
        return Status::InvalidArgument("column 'type' must be a string");
      }
      std::optional<DataType> declared =
          DataTypeFromJsonName(type->string_value());
      if (!declared.has_value()) {
        return Status::InvalidArgument("unknown column type '" +
                                       type->string_value() + "'");
      }
      column.set_type(*declared);
    } else {
      column.set_type(InferDeclaredType(column));
    }
    VALENTINE_RETURN_NOT_OK(table.AddColumn(std::move(column)));
  }
  return table;
}

std::string RenderDiscoveryResults(
    const std::string& query_table, const std::string& mode, size_t k,
    const std::vector<DiscoveryResult>& results,
    const DiscoveryExplain* explain) {
  JsonValue root = JsonValue::Object();
  root.Set("query", JsonValue::String(query_table));
  root.Set("mode", JsonValue::String(mode));
  root.Set("k", JsonValue::Number(static_cast<double>(k)));
  if (explain != nullptr) {
    JsonValue e = JsonValue::Object();
    e.Set("index", JsonValue::String(explain->index));
    e.Set("fallback", JsonValue::Bool(explain->fallback));
    if (explain->fallback) {
      e.Set("fallback_reason", JsonValue::String(explain->fallback_reason));
    }
    e.Set("repository_tables",
          JsonValue::Number(static_cast<double>(explain->repository_tables)));
    e.Set("retrieved",
          JsonValue::Number(static_cast<double>(explain->retrieved)));
    e.Set("enriched",
          JsonValue::Number(static_cast<double>(explain->enriched)));
    e.Set("profiles_attached",
          JsonValue::Number(static_cast<double>(explain->profiles_attached)));
    e.Set("reranked",
          JsonValue::Number(static_cast<double>(explain->reranked)));
    e.Set("survivors",
          JsonValue::Number(static_cast<double>(explain->survivors)));
    root.Set("explain", std::move(e));
  }
  JsonValue items = JsonValue::Array();
  for (const DiscoveryResult& r : results) {
    JsonValue item = JsonValue::Object();
    item.Set("table", JsonValue::String(r.table_name));
    item.Set("score", JsonValue::Number(r.score));
    JsonValue evidence = JsonValue::Array();
    for (const Match& m : r.evidence) {
      JsonValue e = JsonValue::Object();
      e.Set("source", JsonValue::String(m.source.ToString()));
      e.Set("target", JsonValue::String(m.target.ToString()));
      e.Set("score", JsonValue::Number(m.score));
      evidence.Append(std::move(e));
    }
    item.Set("evidence", std::move(evidence));
    items.Append(std::move(item));
  }
  root.Set("results", std::move(items));
  return WriteJson(root);
}

DiscoveryService::DiscoveryService(ServiceOptions options)
    : options_(std::move(options)) {
  MutexLock lock(&mu_);
  RepositoryOptions repo;
  repo.store = options_.store;
  repo.metrics = options_.metrics;
  repo.signature_size = options_.lsh.bands * options_.lsh.rows_per_band;
  repository_ = TableRepository(repo);
  // An empty repository cannot fail to build.
  engine_ = BuildEngine(repository_).ValueOrDie();
}

Result<std::shared_ptr<const DiscoveryEngine>> DiscoveryService::BuildEngine(
    TableRepository snapshot) const {
  DiscoveryOptions opt;
  if (options_.matcher_factory) opt.matcher = options_.matcher_factory();
  opt.lsh = options_.lsh;
  opt.min_containment = options_.min_containment;
  opt.union_evidence_columns = options_.union_evidence_columns;
  opt.store = options_.store;
  opt.joinable_path = options_.joinable_path;
  opt.unionable_path = options_.unionable_path;
  opt.clock = options_.clock;
  opt.tracer = options_.tracer;
  opt.metrics = options_.metrics;
  Result<std::unique_ptr<DiscoveryEngine>> engine =
      DiscoveryEngine::FromRepository(std::move(opt), std::move(snapshot));
  VALENTINE_RETURN_NOT_OK(engine.status());
  return std::shared_ptr<const DiscoveryEngine>(
      std::move(engine).ValueOrDie());
}

Status DiscoveryService::RegisterTable(Table table) {
  MutexLock lock(&mu_);
  // Validate-then-commit: register into a snapshot and build the
  // replacement engine first, so a rejected table (e.g. zero columns)
  // leaves the registry untouched. The snapshot shares every existing
  // entry — only the new table pays fingerprinting/sketching (or a
  // store lookup).
  TableRepository next = repository_;
  Result<std::shared_ptr<const RegisteredTable>> added =
      next.AddTable(std::move(table));
  VALENTINE_RETURN_NOT_OK(added.status());
  Result<std::shared_ptr<const DiscoveryEngine>> built =
      BuildEngine(next);
  if (!built.ok()) return built.status();
  repository_ = std::move(next);
  engine_ = std::move(built).ValueOrDie();
  if (options_.metrics != nullptr) {
    options_.metrics->GaugeFor("valentine_serve_tables")
        ->Set(static_cast<double>(repository_.size()));
  }
  return Status::OK();
}

Status DiscoveryService::UnregisterTable(const std::string& name) {
  MutexLock lock(&mu_);
  if (!repository_.Contains(name)) {
    return Status::NotFound("no table named '" + name + "'");
  }
  TableRepository next = repository_;
  VALENTINE_RETURN_NOT_OK(next.RemoveTable(name));
  Result<std::shared_ptr<const DiscoveryEngine>> built = BuildEngine(next);
  if (!built.ok()) return built.status();
  repository_ = std::move(next);
  engine_ = std::move(built).ValueOrDie();
  if (options_.metrics != nullptr) {
    options_.metrics->GaugeFor("valentine_serve_tables")
        ->Set(static_cast<double>(repository_.size()));
  }
  return Status::OK();
}

std::shared_ptr<const DiscoveryEngine> DiscoveryService::Snapshot() const {
  MutexLock lock(&mu_);
  return engine_;
}

size_t DiscoveryService::num_tables() const {
  MutexLock lock(&mu_);
  return repository_.size();
}

void DiscoveryService::CountRequest(const std::string& route,
                                    int http_status) {
  if (options_.metrics == nullptr) return;
  options_.metrics
      ->CounterFor("valentine_serve_requests_total",
                   {{"code", std::to_string(http_status)}, {"route", route}})
      ->Increment();
}

HttpResponse DiscoveryService::Handle(const HttpRequest& request,
                                      const CancellationToken* cancel) {
  const std::string path = request.Path();
  if (path == "/healthz") {
    if (request.method != "GET") return MethodNotAllowed(request.method, path);
    HttpResponse r = HandleHealth();
    CountRequest("healthz", r.status);
    return r;
  }
  if (path == "/metrics") {
    if (request.method != "GET") return MethodNotAllowed(request.method, path);
    // Counted BEFORE rendering so the exposition includes this request —
    // scrapes see a self-consistent requests_total.
    CountRequest("metrics", 200);
    return HandleMetrics();
  }
  if (path == "/v1/tables") {
    if (request.method != "POST") return MethodNotAllowed(request.method, path);
    HttpResponse r = HandleRegister(request);
    CountRequest("register", r.status);
    return r;
  }
  const std::string kTablePrefix = "/v1/tables/";
  if (path.compare(0, kTablePrefix.size(), kTablePrefix) == 0) {
    if (request.method != "DELETE") {
      return MethodNotAllowed(request.method, path);
    }
    HttpResponse r = HandleUnregister(path.substr(kTablePrefix.size()));
    CountRequest("unregister", r.status);
    return r;
  }
  if (path == "/v1/discovery/joinable" || path == "/v1/discovery/unionable") {
    if (request.method != "POST") return MethodNotAllowed(request.method, path);
    const std::string mode =
        path == "/v1/discovery/joinable" ? "joinable" : "unionable";
    HttpResponse r = HandleDiscovery(request, mode, cancel);
    CountRequest(mode, r.status);
    return r;
  }
  HttpResponse r = ErrorResponse(Status::NotFound("no route for " + path));
  CountRequest("unknown", r.status);
  return r;
}

HttpResponse DiscoveryService::HandleHealth() {
  JsonValue body = JsonValue::Object();
  body.Set("status", JsonValue::String("ok"));
  body.Set("tables", JsonValue::Number(static_cast<double>(num_tables())));
  return JsonResponse(200, body);
}

HttpResponse DiscoveryService::HandleMetrics() {
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4";
  if (options_.metrics != nullptr) {
    response.body = options_.metrics->RenderPrometheusText();
  }
  return response;
}

HttpResponse DiscoveryService::HandleRegister(const HttpRequest& request) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  Result<Table> table = TableFromJson(parsed.ValueOrDie());
  if (!table.ok()) return ErrorResponse(table.status());
  std::string name = table.ValueOrDie().name();
  Status registered = RegisterTable(std::move(table).ValueOrDie());
  if (!registered.ok()) return ErrorResponse(registered);
  JsonValue body = JsonValue::Object();
  body.Set("registered", JsonValue::String(name));
  body.Set("tables", JsonValue::Number(static_cast<double>(num_tables())));
  return JsonResponse(200, body);
}

HttpResponse DiscoveryService::HandleUnregister(const std::string& name) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return ErrorResponse(Status::NotFound("no table named '" + name + "'"));
  }
  Status removed = UnregisterTable(name);
  if (!removed.ok()) return ErrorResponse(removed);
  JsonValue body = JsonValue::Object();
  body.Set("unregistered", JsonValue::String(name));
  body.Set("tables", JsonValue::Number(static_cast<double>(num_tables())));
  return JsonResponse(200, body);
}

HttpResponse DiscoveryService::HandleDiscovery(const HttpRequest& request,
                                               const std::string& mode,
                                               const CancellationToken* cancel) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const JsonValue& body = parsed.ValueOrDie();
  if (!body.is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request body must be a JSON object"));
  }
  const JsonValue* table_json = body.Find("table");
  if (table_json == nullptr) {
    return ErrorResponse(Status::InvalidArgument("missing 'table'"));
  }
  Result<Table> table = TableFromJson(*table_json);
  if (!table.ok()) return ErrorResponse(table.status());

  size_t k = 10;
  if (const JsonValue* k_json = body.Find("k"); k_json != nullptr) {
    if (!k_json->is_number() || !(k_json->number_value() >= 1.0)) {
      return ErrorResponse(
          Status::InvalidArgument("'k' must be a number >= 1"));
    }
    double bounded = std::min(k_json->number_value(), 10000.0);
    k = static_cast<size_t>(bounded);
  }

  bool want_explain = false;
  if (const JsonValue* explain_json = body.Find("explain");
      explain_json != nullptr) {
    if (!explain_json->is_bool()) {
      return ErrorResponse(
          Status::InvalidArgument("'explain' must be a boolean"));
    }
    want_explain = explain_json->bool_value();
  }

  MatchContext ctx;
  ctx.cancel = cancel;
  if (const JsonValue* budget = body.Find("budget_ms"); budget != nullptr) {
    if (!budget->is_number()) {
      return ErrorResponse(
          Status::InvalidArgument("'budget_ms' must be a number"));
    }
    // Non-positive budgets become an already-expired deadline and fail
    // the query with kDeadlineExceeded before any scoring (the
    // contract tested at this boundary); oversized budgets clamp.
    double budget_ms = std::min(budget->number_value(), options_.max_budget_ms);
    ctx.deadline = Deadline::AfterMs(budget_ms);
  }

  std::shared_ptr<const DiscoveryEngine> engine = Snapshot();
  DiscoveryExplain explain;
  DiscoveryExplain* explain_out = want_explain ? &explain : nullptr;
  Result<std::vector<DiscoveryResult>> found =
      mode == "joinable"
          ? engine->FindJoinable(table.ValueOrDie(), k, ctx, explain_out)
          : engine->FindUnionable(table.ValueOrDie(), k, ctx, explain_out);
  if (!found.ok()) {
    // Cancellation means the server is draining: tell the client to
    // retry elsewhere shortly.
    return ErrorResponse(found.status(), /*retry_after_s=*/1);
  }
  HttpResponse response;
  response.status = 200;
  response.body = RenderDiscoveryResults(table.ValueOrDie().name(), mode, k,
                                         found.ValueOrDie(), explain_out);
  return response;
}

}  // namespace serve
}  // namespace valentine
