#include "serve/service.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

namespace valentine {
namespace serve {

namespace {

/// Inverse of DataTypeName; nullopt for unknown names.
std::optional<DataType> DataTypeFromJsonName(const std::string& name) {
  static const std::pair<const char*, DataType> kNames[] = {
      {"null", DataType::kNull},       {"bool", DataType::kBool},
      {"int64", DataType::kInt64},     {"float64", DataType::kFloat64},
      {"string", DataType::kString},   {"date", DataType::kDate},
  };
  for (const auto& [n, t] : kNames) {
    if (name == n) return t;
  }
  return std::nullopt;
}

Result<Value> CellFromJson(const JsonValue& v) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      return Value::Null();
    case JsonValue::Type::kBool:
      return Value::Bool(v.bool_value());
    case JsonValue::Type::kNumber: {
      double d = v.number_value();
      // Integral doubles inside the exactly-representable range decode
      // as int64 so 1 round-trips as 1, not 1.0.
      if (std::fabs(d) <= 9.0e15 && d == std::floor(d)) {
        return Value::Int(static_cast<int64_t>(d));
      }
      return Value::Float(d);
    }
    case JsonValue::Type::kString:
      return Value::String(v.string_value());
    case JsonValue::Type::kArray:
    case JsonValue::Type::kObject:
      break;
  }
  return Status::InvalidArgument("column values must be JSON scalars");
}

DataType InferDeclaredType(const Column& column) {
  for (const Value& v : column.values()) {
    if (!v.is_null()) return v.kind();
  }
  return DataType::kString;
}

HttpResponse JsonResponse(int status, const JsonValue& body) {
  HttpResponse response;
  response.status = status;
  response.body = WriteJson(body);
  return response;
}

HttpResponse MethodNotAllowed(const std::string& method,
                              const std::string& path) {
  HttpResponse response;
  response.status = 405;
  response.body = JsonErrorEnvelope(
      Status::InvalidArgument("method " + method + " not allowed for " + path),
      405);
  return response;
}

}  // namespace

Result<Table> TableFromJson(const JsonValue& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("table must be a JSON object");
  }
  const JsonValue* name = value.Find("name");
  if (name == nullptr || !name->is_string() || name->string_value().empty()) {
    return Status::InvalidArgument("table requires a non-empty string 'name'");
  }
  // The engine keys its column index as "<table>\x1f<column>"; a name
  // smuggling the separator could impersonate another table's keys.
  // Rejected here, at the wire boundary, so the client gets a clean 400
  // instead of an engine-internal error.
  if (name->string_value().find('\x1f') != std::string::npos) {
    return Status::InvalidArgument(
        "table name contains reserved character U+001F");
  }
  const JsonValue* columns = value.Find("columns");
  if (columns == nullptr || !columns->is_array()) {
    return Status::InvalidArgument("table requires a 'columns' array");
  }
  Table table(name->string_value());
  for (const JsonValue& col : columns->array_items()) {
    if (!col.is_object()) {
      return Status::InvalidArgument("each column must be a JSON object");
    }
    const JsonValue* col_name = col.Find("name");
    if (col_name == nullptr || !col_name->is_string() ||
        col_name->string_value().empty()) {
      return Status::InvalidArgument(
          "each column requires a non-empty string 'name'");
    }
    if (col_name->string_value().find('\x1f') != std::string::npos) {
      return Status::InvalidArgument(
          "column name contains reserved character U+001F");
    }
    const JsonValue* values = col.Find("values");
    if (values == nullptr || !values->is_array()) {
      return Status::InvalidArgument("column '" + col_name->string_value() +
                                     "' requires a 'values' array");
    }
    Column column(col_name->string_value(), DataType::kNull);
    column.Reserve(values->array_items().size());
    for (const JsonValue& cell : values->array_items()) {
      Result<Value> decoded = CellFromJson(cell);
      if (!decoded.ok()) {
        return Status::InvalidArgument("column '" + col_name->string_value() +
                                       "': " + decoded.status().message());
      }
      column.Append(std::move(decoded).ValueOrDie());
    }
    const JsonValue* type = col.Find("type");
    if (type != nullptr) {
      if (!type->is_string()) {
        return Status::InvalidArgument("column 'type' must be a string");
      }
      std::optional<DataType> declared =
          DataTypeFromJsonName(type->string_value());
      if (!declared.has_value()) {
        return Status::InvalidArgument("unknown column type '" +
                                       type->string_value() + "'");
      }
      column.set_type(*declared);
    } else {
      column.set_type(InferDeclaredType(column));
    }
    VALENTINE_RETURN_NOT_OK(table.AddColumn(std::move(column)));
  }
  return table;
}

std::string RenderDiscoveryResults(
    const std::string& query_table, const std::string& mode, size_t k,
    const std::vector<DiscoveryResult>& results,
    const DiscoveryExplain* explain) {
  JsonValue root = JsonValue::Object();
  root.Set("query", JsonValue::String(query_table));
  root.Set("mode", JsonValue::String(mode));
  root.Set("k", JsonValue::Number(static_cast<double>(k)));
  if (explain != nullptr) {
    JsonValue e = JsonValue::Object();
    e.Set("index", JsonValue::String(explain->index));
    e.Set("fallback", JsonValue::Bool(explain->fallback));
    if (explain->fallback) {
      e.Set("fallback_reason", JsonValue::String(explain->fallback_reason));
    }
    e.Set("repository_tables",
          JsonValue::Number(static_cast<double>(explain->repository_tables)));
    e.Set("retrieved",
          JsonValue::Number(static_cast<double>(explain->retrieved)));
    e.Set("enriched",
          JsonValue::Number(static_cast<double>(explain->enriched)));
    e.Set("profiles_attached",
          JsonValue::Number(static_cast<double>(explain->profiles_attached)));
    e.Set("reranked",
          JsonValue::Number(static_cast<double>(explain->reranked)));
    e.Set("survivors",
          JsonValue::Number(static_cast<double>(explain->survivors)));
    root.Set("explain", std::move(e));
  }
  JsonValue items = JsonValue::Array();
  for (const DiscoveryResult& r : results) {
    JsonValue item = JsonValue::Object();
    item.Set("table", JsonValue::String(r.table_name));
    item.Set("score", JsonValue::Number(r.score));
    JsonValue evidence = JsonValue::Array();
    for (const Match& m : r.evidence) {
      JsonValue e = JsonValue::Object();
      e.Set("source", JsonValue::String(m.source.ToString()));
      e.Set("target", JsonValue::String(m.target.ToString()));
      e.Set("score", JsonValue::Number(m.score));
      evidence.Append(std::move(e));
    }
    item.Set("evidence", std::move(evidence));
    items.Append(std::move(item));
  }
  root.Set("results", std::move(items));
  return WriteJson(root);
}

DiscoveryService::DiscoveryService(ServiceOptions options)
    : options_(std::move(options)) {
  MutexLock lock(&mu_);
  RepositoryOptions repo;
  repo.store = options_.store;
  repo.metrics = options_.metrics;
  repo.signature_size = options_.lsh.bands * options_.lsh.rows_per_band;
  repository_ = TableRepository(repo);
  // An empty repository cannot fail to build.
  engine_ = BuildEngine(repository_).ValueOrDie();
}

Result<std::shared_ptr<const DiscoveryEngine>> DiscoveryService::BuildEngine(
    TableRepository snapshot) const {
  DiscoveryOptions opt;
  if (options_.matcher_factory) opt.matcher = options_.matcher_factory();
  opt.lsh = options_.lsh;
  opt.min_containment = options_.min_containment;
  opt.union_evidence_columns = options_.union_evidence_columns;
  opt.store = options_.store;
  opt.joinable_path = options_.joinable_path;
  opt.unionable_path = options_.unionable_path;
  opt.clock = options_.clock;
  opt.tracer = options_.tracer;
  opt.metrics = options_.metrics;
  Result<std::unique_ptr<DiscoveryEngine>> engine =
      DiscoveryEngine::FromRepository(std::move(opt), std::move(snapshot));
  VALENTINE_RETURN_NOT_OK(engine.status());
  return std::shared_ptr<const DiscoveryEngine>(
      std::move(engine).ValueOrDie());
}

Status DiscoveryService::RegisterTable(Table table) {
  MutexLock lock(&mu_);
  // Validate-then-commit: register into a snapshot and build the
  // replacement engine first, so a rejected table (e.g. zero columns)
  // leaves the registry untouched. The snapshot shares every existing
  // entry — only the new table pays fingerprinting/sketching (or a
  // store lookup).
  TableRepository next = repository_;
  Result<std::shared_ptr<const RegisteredTable>> added =
      next.AddTable(std::move(table));
  VALENTINE_RETURN_NOT_OK(added.status());
  Result<std::shared_ptr<const DiscoveryEngine>> built =
      BuildEngine(next);
  if (!built.ok()) return built.status();
  repository_ = std::move(next);
  engine_ = std::move(built).ValueOrDie();
  if (options_.metrics != nullptr) {
    options_.metrics->GaugeFor("valentine_serve_tables")
        ->Set(static_cast<double>(repository_.size()));
  }
  return Status::OK();
}

Status DiscoveryService::UnregisterTable(const std::string& name) {
  MutexLock lock(&mu_);
  if (!repository_.Contains(name)) {
    return Status::NotFound("no table named '" + name + "'");
  }
  TableRepository next = repository_;
  VALENTINE_RETURN_NOT_OK(next.RemoveTable(name));
  Result<std::shared_ptr<const DiscoveryEngine>> built = BuildEngine(next);
  if (!built.ok()) return built.status();
  repository_ = std::move(next);
  engine_ = std::move(built).ValueOrDie();
  if (options_.metrics != nullptr) {
    options_.metrics->GaugeFor("valentine_serve_tables")
        ->Set(static_cast<double>(repository_.size()));
  }
  return Status::OK();
}

std::shared_ptr<const DiscoveryEngine> DiscoveryService::Snapshot() const {
  MutexLock lock(&mu_);
  return engine_;
}

size_t DiscoveryService::num_tables() const {
  MutexLock lock(&mu_);
  return repository_.size();
}

void DiscoveryService::CountRequest(const std::string& route,
                                    int http_status) {
  if (options_.metrics == nullptr) return;
  options_.metrics
      ->CounterFor("valentine_serve_requests_total",
                   {{"code", std::to_string(http_status)}, {"route", route}})
      ->Increment();
}

HttpResponse DiscoveryService::Handle(const HttpRequest& request,
                                      const CancellationToken* cancel,
                                      RequestObs* obs) {
  const std::string path = request.Path();
  // The route label is reported through `obs` even for rejected
  // methods, so the access log attributes every request to the route it
  // aimed at rather than a catch-all.
  auto route_is = [obs](const char* route) {
    if (obs != nullptr) obs->route = route;
  };
  if (path == "/healthz") {
    route_is("healthz");
    if (request.method != "GET") return MethodNotAllowed(request.method, path);
    HttpResponse r = HandleHealth();
    CountRequest("healthz", r.status);
    return r;
  }
  if (path == "/metrics") {
    route_is("metrics");
    if (request.method != "GET") return MethodNotAllowed(request.method, path);
    // Counted BEFORE rendering so the exposition includes this request —
    // scrapes see a self-consistent requests_total.
    CountRequest("metrics", 200);
    return HandleMetrics();
  }
  if (path == "/statusz") {
    route_is("statusz");
    if (request.method != "GET") return MethodNotAllowed(request.method, path);
    // Counted first for the same reason as /metrics: the rendered
    // per-route table includes this very request.
    CountRequest("statusz", 200);
    return HandleStatusz();
  }
  if (path == "/tracez") {
    route_is("tracez");
    if (request.method != "GET") return MethodNotAllowed(request.method, path);
    HttpResponse r = HandleTracez();
    CountRequest("tracez", r.status);
    return r;
  }
  if (path == "/v1/tables") {
    route_is("register");
    if (request.method != "POST") return MethodNotAllowed(request.method, path);
    HttpResponse r = HandleRegister(request);
    CountRequest("register", r.status);
    return r;
  }
  const std::string kTablePrefix = "/v1/tables/";
  if (path.compare(0, kTablePrefix.size(), kTablePrefix) == 0) {
    route_is("unregister");
    if (request.method != "DELETE") {
      return MethodNotAllowed(request.method, path);
    }
    HttpResponse r = HandleUnregister(path.substr(kTablePrefix.size()));
    CountRequest("unregister", r.status);
    return r;
  }
  if (path == "/v1/discovery/joinable" || path == "/v1/discovery/unionable") {
    const std::string mode =
        path == "/v1/discovery/joinable" ? "joinable" : "unionable";
    route_is(mode.c_str());
    if (request.method != "POST") return MethodNotAllowed(request.method, path);
    HttpResponse r = HandleDiscovery(request, mode, cancel, obs);
    CountRequest(mode, r.status);
    return r;
  }
  route_is("unknown");
  HttpResponse r = ErrorResponse(Status::NotFound("no route for " + path));
  CountRequest("unknown", r.status);
  return r;
}

HttpResponse DiscoveryService::HandleHealth() {
  JsonValue body = JsonValue::Object();
  body.Set("status", JsonValue::String("ok"));
  body.Set("tables", JsonValue::Number(static_cast<double>(num_tables())));
  return JsonResponse(200, body);
}

HttpResponse DiscoveryService::HandleMetrics() {
  HttpResponse response;
  response.status = 200;
  response.content_type = "text/plain; version=0.0.4";
  if (options_.metrics != nullptr) {
    response.body = options_.metrics->RenderPrometheusText();
  }
  return response;
}

HttpResponse DiscoveryService::HandleStatusz() {
  JsonValue body = JsonValue::Object();
  JsonValue build = JsonValue::Object();
  build.Set("name", JsonValue::String(kServeBuildName));
  build.Set("version", JsonValue::String(kServeBuildVersion));
  body.Set("build", std::move(build));
  body.Set("tables", JsonValue::Number(static_cast<double>(num_tables())));
  if (options_.telemetry != nullptr) {
    body.Set("uptime_ms", JsonValue::Number(options_.telemetry->UptimeMs()));
    body.Set("requests_logged",
             JsonValue::Number(static_cast<double>(
                 options_.telemetry->requests_logged())));
    ServeTelemetry::ServerState state = options_.telemetry->server_state();
    JsonValue server = JsonValue::Object();
    server.Set("running", JsonValue::Bool(state.running));
    server.Set("draining", JsonValue::Bool(state.draining));
    server.Set("workers",
               JsonValue::Number(static_cast<double>(state.workers)));
    server.Set("queue_capacity",
               JsonValue::Number(static_cast<double>(state.queue_capacity)));
    body.Set("server", std::move(server));
  }
  if (options_.metrics != nullptr) {
    JsonValue admission = JsonValue::Object();
    admission.Set("queue_depth",
                  JsonValue::Number(options_.metrics
                                        ->GaugeFor("valentine_serve_queue_depth")
                                        ->value()));
    admission.Set(
        "connections_total",
        JsonValue::Number(static_cast<double>(options_.metrics->CounterValue(
            "valentine_serve_connections_total"))));
    admission.Set(
        "shed_total",
        JsonValue::Number(static_cast<double>(
            options_.metrics->CounterValue("valentine_serve_shed_total"))));
    body.Set("admission", std::move(admission));
    // Per-route status-code counts, folded from the labelled
    // requests_total series. CounterSamples is sorted by (name, label
    // string), so the nested objects come out deterministic.
    JsonValue routes = JsonValue::Object();
    for (const MetricsRegistry::CounterSample& sample :
         options_.metrics->CounterSamples()) {
      if (sample.name != "valentine_serve_requests_total") continue;
      std::string code, route;
      for (const auto& [key, value] : sample.labels) {
        if (key == "code") code = value;
        if (key == "route") route = value;
      }
      if (route.empty()) continue;
      const JsonValue* existing = routes.Find(route);
      JsonValue per_route =
          existing != nullptr ? *existing : JsonValue::Object();
      per_route.Set(code.empty() ? "unknown" : code,
                    JsonValue::Number(static_cast<double>(sample.value)));
      routes.Set(route, std::move(per_route));
    }
    body.Set("routes", std::move(routes));
  }
  return JsonResponse(200, body);
}

HttpResponse DiscoveryService::HandleTracez() {
  JsonValue body = JsonValue::Object();
  size_t capacity = options_.telemetry != nullptr
                        ? options_.telemetry->trace_buffer_capacity()
                        : 0;
  body.Set("capacity", JsonValue::Number(static_cast<double>(capacity)));
  JsonValue requests = JsonValue::Array();
  if (options_.telemetry != nullptr) {
    for (const RequestLogEntry& entry :
         options_.telemetry->RecentRequests()) {
      requests.Append(RequestLogEntryJson(entry));
    }
  }
  body.Set("requests", std::move(requests));
  return JsonResponse(200, body);
}

HttpResponse DiscoveryService::HandleRegister(const HttpRequest& request) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  Result<Table> table = TableFromJson(parsed.ValueOrDie());
  if (!table.ok()) return ErrorResponse(table.status());
  std::string name = table.ValueOrDie().name();
  Status registered = RegisterTable(std::move(table).ValueOrDie());
  if (!registered.ok()) return ErrorResponse(registered);
  JsonValue body = JsonValue::Object();
  body.Set("registered", JsonValue::String(name));
  body.Set("tables", JsonValue::Number(static_cast<double>(num_tables())));
  return JsonResponse(200, body);
}

HttpResponse DiscoveryService::HandleUnregister(const std::string& name) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return ErrorResponse(Status::NotFound("no table named '" + name + "'"));
  }
  Status removed = UnregisterTable(name);
  if (!removed.ok()) return ErrorResponse(removed);
  JsonValue body = JsonValue::Object();
  body.Set("unregistered", JsonValue::String(name));
  body.Set("tables", JsonValue::Number(static_cast<double>(num_tables())));
  return JsonResponse(200, body);
}

HttpResponse DiscoveryService::HandleDiscovery(const HttpRequest& request,
                                               const std::string& mode,
                                               const CancellationToken* cancel,
                                               RequestObs* obs) {
  Result<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const JsonValue& body = parsed.ValueOrDie();
  if (!body.is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request body must be a JSON object"));
  }
  const JsonValue* table_json = body.Find("table");
  if (table_json == nullptr) {
    return ErrorResponse(Status::InvalidArgument("missing 'table'"));
  }
  Result<Table> table = TableFromJson(*table_json);
  if (!table.ok()) return ErrorResponse(table.status());

  size_t k = 10;
  if (const JsonValue* k_json = body.Find("k"); k_json != nullptr) {
    if (!k_json->is_number() || !(k_json->number_value() >= 1.0)) {
      return ErrorResponse(
          Status::InvalidArgument("'k' must be a number >= 1"));
    }
    double bounded = std::min(k_json->number_value(), 10000.0);
    k = static_cast<size_t>(bounded);
  }

  bool want_explain = false;
  if (const JsonValue* explain_json = body.Find("explain");
      explain_json != nullptr) {
    if (!explain_json->is_bool()) {
      return ErrorResponse(
          Status::InvalidArgument("'explain' must be a boolean"));
    }
    want_explain = explain_json->bool_value();
  }

  MatchContext ctx;
  ctx.cancel = cancel;
  if (obs != nullptr) {
    // Join the discovery spans to the request trace: the engine's
    // "query" span (and its retrieve/enrich/rerank stage spans) parent
    // onto the serve.request span through these two fields.
    ctx.trace_id = obs->trace_id;
    ctx.parent_span = obs->span_id;
  }
  if (const JsonValue* budget = body.Find("budget_ms"); budget != nullptr) {
    if (!budget->is_number()) {
      return ErrorResponse(
          Status::InvalidArgument("'budget_ms' must be a number"));
    }
    // Non-positive budgets become an already-expired deadline and fail
    // the query with kDeadlineExceeded before any scoring (the
    // contract tested at this boundary); oversized budgets clamp.
    double budget_ms = std::min(budget->number_value(), options_.max_budget_ms);
    ctx.deadline = Deadline::AfterMs(budget_ms);
    if (obs != nullptr) obs->budget_ms = std::max(budget_ms, 0.0);
  }

  std::shared_ptr<const DiscoveryEngine> engine = Snapshot();
  DiscoveryExplain explain;
  DiscoveryExplain* explain_out = want_explain ? &explain : nullptr;
  Result<std::vector<DiscoveryResult>> found =
      mode == "joinable"
          ? engine->FindJoinable(table.ValueOrDie(), k, ctx, explain_out)
          : engine->FindUnionable(table.ValueOrDie(), k, ctx, explain_out);
  if (obs != nullptr && !ctx.deadline.never_expires()) {
    obs->deadline_remaining_ms = ctx.deadline.remaining_ms();
  }
  if (!found.ok()) {
    if (obs != nullptr) {
      obs->error_code = StatusCodeName(found.status().code());
    }
    HttpResponse error =
        ErrorResponse(found.status(), options_.retry_after_s);
    if (error.status == 503 && options_.metrics != nullptr) {
      // Request-level sheds (drain cancellation, exhausted engine),
      // labelled by route + reason. The unlabelled series of the same
      // name stays the transport's accept-time shed ledger — that one
      // fires before any bytes are parsed, so it cannot know a route.
      options_.metrics
          ->CounterFor("valentine_serve_shed_total",
                       {{"reason", StatusCodeName(found.status().code())},
                        {"route", mode}})
          ->Increment();
    }
    return error;
  }
  HttpResponse response;
  response.status = 200;
  response.body = RenderDiscoveryResults(table.ValueOrDie().name(), mode, k,
                                         found.ValueOrDie(), explain_out);
  return response;
}

}  // namespace serve
}  // namespace valentine
