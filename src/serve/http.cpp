#include "serve/http.h"

#include <algorithm>
#include <cctype>

#include "serve/json.h"

namespace valentine {
namespace serve {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool IsTokenChar(char c) {
  // RFC 7230 token characters, the subset worth accepting in methods
  // and header names.
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  return std::string_view("!#$%&'*+-.^_`|~").find(c) !=
         std::string_view::npos;
}

}  // namespace

std::string HttpRequest::Path() const {
  size_t q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::string HttpRequest::Header(const std::string& lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return value;
  }
  return "";
}

bool HttpRequest::WantsClose() const {
  std::string conn = ToLower(Header("connection"));
  if (conn.find("close") != std::string::npos) return true;
  if (version == "HTTP/1.0" && conn.find("keep-alive") == std::string::npos) {
    return true;
  }
  return false;
}

HttpRequestParser::HttpRequestParser(HttpLimits limits)
    : limits_(limits) {}

void HttpRequestParser::Fail(int http_status, Status status) {
  state_ = State::kError;
  http_status_ = http_status;
  error_ = std::move(status);
}

size_t HttpRequestParser::Consume(const char* data, size_t n) {
  size_t consumed = 0;
  while (consumed < n && state_ != State::kComplete &&
         state_ != State::kError) {
    if (state_ == State::kHeaders) {
      // Append up to the header cap, scanning for the blank line.
      size_t take = std::min(n - consumed,
                             limits_.max_header_bytes + 4 -
                                 std::min(header_buf_.size(),
                                          limits_.max_header_bytes + 4));
      if (take == 0) {
        Fail(431, Status::ResourceExhausted(
                      "request headers exceed " +
                      std::to_string(limits_.max_header_bytes) + " bytes"));
        break;
      }
      size_t scan_from = header_buf_.size() >= 3 ? header_buf_.size() - 3 : 0;
      header_buf_.append(data + consumed, take);
      consumed += take;
      size_t end = header_buf_.find("\r\n\r\n", scan_from);
      if (end == std::string::npos) {
        if (header_buf_.size() > limits_.max_header_bytes) {
          Fail(431, Status::ResourceExhausted(
                        "request headers exceed " +
                        std::to_string(limits_.max_header_bytes) + " bytes"));
        }
        continue;
      }
      // Bytes past the header block belong to the body (or the next
      // pipelined request); give them back to the consume loop.
      size_t extra = header_buf_.size() - (end + 4);
      consumed -= extra;
      header_buf_.resize(end + 4);
      ParseHeaderBlock(end);
      continue;
    }
    // kBody.
    size_t want = body_expected_ - request_.body.size();
    size_t take = std::min(want, n - consumed);
    request_.body.append(data + consumed, take);
    consumed += take;
    if (request_.body.size() == body_expected_) state_ = State::kComplete;
  }
  return consumed;
}

void HttpRequestParser::ParseHeaderBlock(size_t block_end) {
  const std::string& buf = header_buf_;
  size_t line_end = buf.find("\r\n");
  if (line_end == std::string::npos || line_end == 0) {
    Fail(400, Status::ParseError("malformed request line"));
    return;
  }
  std::string request_line = buf.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    Fail(400, Status::ParseError("malformed request line"));
    return;
  }
  request_.method = request_line.substr(0, sp1);
  request_.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = request_line.substr(sp2 + 1);
  if (request_.method.empty() ||
      !std::all_of(request_.method.begin(), request_.method.end(),
                   IsTokenChar)) {
    Fail(400, Status::ParseError("malformed method"));
    return;
  }
  if (request_.target.empty() || request_.target[0] != '/') {
    Fail(400, Status::ParseError("target must be origin-form"));
    return;
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    Fail(505, Status::InvalidArgument("unsupported HTTP version '" +
                                      request_.version + "'"));
    return;
  }

  // Header fields.
  size_t pos = line_end + 2;
  while (pos < block_end) {
    size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > block_end) eol = block_end;
    std::string line = buf.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      Fail(400, Status::ParseError("malformed header field"));
      return;
    }
    std::string name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), IsTokenChar)) {
      Fail(400, Status::ParseError("malformed header name"));
      return;
    }
    request_.headers.emplace_back(ToLower(name), Trim(line.substr(colon + 1)));
  }

  // Body framing.
  std::string te = ToLower(request_.Header("transfer-encoding"));
  if (!te.empty() && te != "identity") {
    Fail(501, Status::InvalidArgument("transfer-encoding '" + te +
                                      "' not implemented"));
    return;
  }
  std::string cl = request_.Header("content-length");
  if (cl.empty()) {
    body_expected_ = 0;
    state_ = State::kComplete;
    return;
  }
  if (cl.empty() || cl.size() > 12 ||
      !std::all_of(cl.begin(), cl.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      })) {
    Fail(400, Status::ParseError("malformed content-length"));
    return;
  }
  uint64_t length = std::stoull(cl);
  if (length > limits_.max_body_bytes) {
    Fail(413, Status::ResourceExhausted(
                  "request body of " + cl + " bytes exceeds limit of " +
                  std::to_string(limits_.max_body_bytes)));
    return;
  }
  body_expected_ = static_cast<size_t>(length);
  request_.body.reserve(body_expected_);
  state_ = body_expected_ == 0 ? State::kComplete : State::kBody;
}

void HttpRequestParser::Reset() {
  state_ = State::kHeaders;
  header_buf_.clear();
  request_ = HttpRequest();
  body_expected_ = 0;
  error_ = Status::OK();
  http_status_ = 0;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response,
                              bool close_connection) {
  std::string out;
  out.reserve(128 + response.body.size());
  out.append("HTTP/1.1 ");
  out.append(std::to_string(response.status));
  out.push_back(' ');
  out.append(HttpReasonPhrase(response.status));
  out.append("\r\n");
  if (!response.content_type.empty()) {
    out.append("Content-Type: ");
    out.append(response.content_type);
    out.append("\r\n");
  }
  for (const auto& [name, value] : response.headers) {
    out.append(name);
    out.append(": ");
    out.append(value);
    out.append("\r\n");
  }
  out.append("Content-Length: ");
  out.append(std::to_string(response.body.size()));
  out.append("\r\n");
  out.append(close_connection ? "Connection: close\r\n"
                              : "Connection: keep-alive\r\n");
  out.append("\r\n");
  out.append(response.body);
  return out;
}

int HttpStatusForCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
      // Cancellation only happens server-side (drain); the client
      // should retry against a healthy instance.
      return 503;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kIOError:
    case StatusCode::kInternal:
      return 500;
  }
  return 500;
}

std::string JsonErrorEnvelope(const Status& status, int http_status) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::String(StatusCodeName(status.code())));
  error.Set("http_status", JsonValue::Number(http_status));
  error.Set("message", JsonValue::String(status.message()));
  JsonValue root = JsonValue::Object();
  root.Set("error", std::move(error));
  return WriteJson(root);
}

HttpResponse ErrorResponse(const Status& status, int retry_after_s) {
  HttpResponse response;
  response.status = HttpStatusForCode(status.code());
  response.body = JsonErrorEnvelope(status, response.status);
  if (response.status == 503 && retry_after_s > 0) {
    response.headers.emplace_back("Retry-After",
                                  std::to_string(retry_after_s));
  }
  return response;
}

}  // namespace serve
}  // namespace valentine
