#ifndef VALENTINE_SERVE_SERVER_H_
#define VALENTINE_SERVE_SERVER_H_

/// \file server.h
/// The HTTP/1.1 transport: blocking POSIX sockets, a fixed worker
/// pool, and the bounded admission queue in between.
///
/// Threading layout (all threads owned by HttpServer):
///   acceptor ── accept() ──► AdmissionQueue ──► worker × N
/// The acceptor never parses bytes; when the queue refuses a
/// connection it writes a pre-serialized 503 + Retry-After and closes
/// — shedding costs one send, not a worker. Workers own one
/// connection at a time end-to-end (read → parse → handle → write →
/// keep-alive loop).
///
/// Robustness contract:
///  * every connection socket carries SO_RCVTIMEO/SO_SNDTIMEO, so a
///    stalled peer costs a bounded wait, never a parked worker forever;
///    a connection that times out mid-request gets a 408 and is closed;
///  * parser failures (oversized, malformed, torn) answer with the
///    parser's HTTP status + JSON error envelope, then close;
///  * Shutdown(drain_ms) stops the acceptor, lets in-flight work finish
///    for up to `drain_ms`, then fires the drain CancellationToken so
///    cooperative engine queries abort with kCancelled (served as 503);
///    an admitted connection always receives *some* response.
///
/// The wallclock-time lint rule is relaxed for this file (see
/// tools/lint): request latency is measured against the real steady
/// clock because it times real socket I/O — no FakeClock can stand in.

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/deadline.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/thread_annotations.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/http.h"
#include "serve/service.h"
#include "serve/telemetry.h"

namespace valentine {
namespace serve {

/// Transport configuration.
struct ServerOptions {
  /// Bind address; loopback by default (this daemon has no auth story —
  /// exposing it beyond localhost is a deployment decision, not ours).
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read the outcome from port().
  uint16_t port = 0;
  size_t workers = 4;
  /// Admission queue bound: connections waiting for a worker beyond
  /// this are shed with 503 + Retry-After.
  size_t queue_capacity = 64;
  HttpLimits http_limits;
  /// Per-socket receive/send timeouts (slow-loris / stalled-peer bound).
  int read_timeout_ms = 5000;
  int write_timeout_ms = 5000;
  /// Keep-alive cap: requests served on one connection before close.
  size_t max_requests_per_connection = 100;
  /// Advertised in the Retry-After header of shed responses.
  int retry_after_s = 1;
  /// Borrowed; the transport publishes valentine_serve_shed_total,
  /// _connections_total, _inflight, _queue_depth, _request_ms here.
  MetricsRegistry* metrics = nullptr;
  /// Borrowed request-telemetry spine (trace ids, serve.request spans,
  /// JSONL access log, queue-wait timing, /statusz server state).
  /// Optional; when set it should be the same instance as
  /// ServiceOptions::telemetry so /statusz and /tracez see the
  /// transport's requests. Must outlive the server.
  ServeTelemetry* telemetry = nullptr;
};

/// \brief Blocking HTTP server over a DiscoveryService.
///
/// Lifecycle: construct → Start() → (serve) → Shutdown(drain_ms).
/// Start/Shutdown are not thread-safe against each other; everything
/// in between is. The destructor calls Shutdown with a short drain.
class HttpServer {
 public:
  /// `service` is borrowed and must outlive the server.
  HttpServer(DiscoveryService* service, ServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the acceptor + worker pool.
  Status Start();

  /// Stops accepting new connections and closes the admission queue
  /// (already-admitted connections keep draining). Idempotent.
  void BeginDrain();

  /// Full stop: BeginDrain, wait up to `drain_ms` for in-flight
  /// requests to finish, then cancel the rest cooperatively and join
  /// every thread. Safe to call more than once.
  void Shutdown(double drain_ms = 2000.0);

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Drain token threaded into every request's discovery context.
  const CancellationToken* drain_token() const { return &drain_cancel_; }

  /// Admission totals (mirrored into metrics; exposed for tests).
  uint64_t shed_total() const { return queue_.shed_total(); }
  uint64_t admitted_total() const { return queue_.admitted_total(); }
  size_t inflight() const EXCLUDES(mu_);

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Serves one admitted connection until close/keep-alive ends.
  /// `queue_wait_ms` is the admission wait, charged to the first
  /// request of the connection (keep-alive successors never queued).
  void ServeConnection(int fd, double queue_wait_ms);
  /// Mirrors lifecycle state onto the telemetry spine (no-op without
  /// one); /statusz renders it.
  void PublishServerState();
  /// Sends all of `bytes` (bounded by SO_SNDTIMEO); false on failure.
  bool SendAll(int fd, const std::string& bytes);
  void PublishQueueDepth();

  DiscoveryService* service_;  // lint:allow(guarded-by-coverage) immutable
  ServerOptions options_;  // lint:allow(guarded-by-coverage) immutable
  AdmissionQueue queue_;  // lint:allow(guarded-by-coverage) internally synchronized
  CancellationToken drain_cancel_;  // lint:allow(guarded-by-coverage) atomic
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<uint16_t> port_{0};
  int listen_fd_ = -1;  // lint:allow(guarded-by-coverage) set before threads start
  int wake_pipe_[2] = {-1, -1};  // lint:allow(guarded-by-coverage) set before threads start

  mutable Mutex mu_{LockRank::kServeServer, "HttpServer"};
  CondVar idle_cv_;  // lint:allow(guarded-by-coverage) internally synchronized
  size_t inflight_ GUARDED_BY(mu_) = 0;
  /// Sockets currently owned by workers. A worker removes its fd under
  /// mu_ *before* closing it, so Shutdown can safely ::shutdown() every
  /// member to yank stragglers out of blocked recv/send.
  std::set<int> open_fds_ GUARDED_BY(mu_);

  std::thread acceptor_;  // lint:allow(guarded-by-coverage) joined by Shutdown only
  std::vector<std::thread> workers_;  // lint:allow(guarded-by-coverage) joined by Shutdown only
};

}  // namespace serve
}  // namespace valentine

#endif  // VALENTINE_SERVE_SERVER_H_
