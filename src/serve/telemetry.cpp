#include "serve/telemetry.h"

#include <utility>

#include "serve/json.h"
#include "serve/service.h"

namespace valentine {
namespace serve {

namespace {

/// Header-provided trace ids are caller data: bound their length so a
/// hostile client cannot inflate every log line and span record. The
/// JSON writer escapes whatever bytes remain.
constexpr size_t kMaxTraceIdBytes = 128;

/// Response-size histogram bounds (bytes). The latency buckets are
/// ms-shaped; body sizes need their own scale.
const std::vector<double>& ResponseSizeBucketsBytes() {
  static const std::vector<double> kBounds = {256,    1024,    4096,   16384,
                                              65536,  262144,  1048576};
  return kBounds;
}

}  // namespace

std::string RenderAccessLogLine(const RequestLogEntry& entry) {
  return WriteJson(RequestLogEntryJson(entry));
}

JsonValue RequestLogEntryJson(const RequestLogEntry& entry) {
  JsonValue line = JsonValue::Object();
  line.Set("trace_id", JsonValue::String(entry.trace_id));
  line.Set("method", JsonValue::String(entry.method));
  line.Set("route", JsonValue::String(entry.route));
  line.Set("path", JsonValue::String(entry.path));
  line.Set("status", JsonValue::Number(static_cast<double>(entry.status)));
  line.Set("bytes_in",
           JsonValue::Number(static_cast<double>(entry.bytes_in)));
  line.Set("bytes_out",
           JsonValue::Number(static_cast<double>(entry.bytes_out)));
  line.Set("queue_wait_ms", JsonValue::Number(entry.queue_wait_ms));
  line.Set("handler_ms", JsonValue::Number(entry.handler_ms));
  line.Set("start_ns",
           JsonValue::Number(static_cast<double>(entry.start_ns)));
  line.Set("end_ns", JsonValue::Number(static_cast<double>(entry.end_ns)));
  // Budget columns only exist when the request asked for a deadline:
  // they are the only real-clock-derived fields, so unbudgeted
  // fake-clock runs stay fully deterministic.
  if (entry.budget_ms >= 0.0) {
    line.Set("budget_ms", JsonValue::Number(entry.budget_ms));
    line.Set("deadline_remaining_ms",
             JsonValue::Number(entry.deadline_remaining_ms));
  }
  if (!entry.error_code.empty()) {
    line.Set("error", JsonValue::String(entry.error_code));
  }
  return line;
}

ServeTelemetry::ServeTelemetry(Options options)
    : options_(std::move(options)),
      clock_(&ClockOrSteady(options_.clock)),
      capacity_(options_.trace_buffer_capacity == 0
                    ? 1
                    : options_.trace_buffer_capacity),
      next_trace_(options_.trace_seed) {
  start_ns_ = clock_->NowNanos();
  if (!options_.access_log_path.empty()) {
    MutexLock lock(&mu_);
    log_file_ = std::fopen(options_.access_log_path.c_str(), "wb");
    if (log_file_ == nullptr) {
      status_ = Status::IOError("cannot open access log '" +
                                options_.access_log_path + "'");
    }
  }
}

ServeTelemetry::~ServeTelemetry() {
  MutexLock lock(&mu_);
  if (log_file_ != nullptr) {
    std::fclose(log_file_);
    log_file_ = nullptr;
  }
}

std::string ServeTelemetry::TraceIdFor(const std::string& header_value) {
  if (!header_value.empty()) {
    return header_value.size() <= kMaxTraceIdBytes
               ? header_value
               : header_value.substr(0, kMaxTraceIdBytes);
  }
  uint64_t n = next_trace_.fetch_add(1, std::memory_order_relaxed);
  return "serve/" + std::to_string(n);
}

void ServeTelemetry::RecordRequest(const RequestLogEntry& entry) {
  if (options_.metrics != nullptr) {
    Histogram* latency = options_.metrics->HistogramFor(
        "valentine_serve_request_latency_ms", {{"route", entry.route}});
    if (latency != nullptr) latency->Observe(entry.handler_ms);
    Histogram* wait =
        options_.metrics->HistogramFor("valentine_serve_queue_wait_ms");
    if (wait != nullptr) wait->Observe(entry.queue_wait_ms);
    Histogram* size = options_.metrics->HistogramFor(
        "valentine_serve_response_bytes", {{"route", entry.route}},
        ResponseSizeBucketsBytes());
    if (size != nullptr) {
      size->Observe(static_cast<double>(entry.bytes_out));
    }
  }
  const std::string line = RenderAccessLogLine(entry);
  MutexLock lock(&mu_);
  ++logged_total_;
  if (log_file_ != nullptr) {
    std::fputs(line.c_str(), log_file_);
    std::fputc('\n', log_file_);
    // Flushed per line, like the campaign journal: a crash loses at
    // most the line being written.
    std::fflush(log_file_);
  }
  if (options_.keep_access_log_in_memory) {
    log_memory_ += line;
    log_memory_ += '\n';
  }
  ring_.push_back(entry);
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<RequestLogEntry> ServeTelemetry::RecentRequests() const {
  MutexLock lock(&mu_);
  return std::vector<RequestLogEntry>(ring_.begin(), ring_.end());
}

uint64_t ServeTelemetry::requests_logged() const {
  MutexLock lock(&mu_);
  return logged_total_;
}

std::string ServeTelemetry::AccessLogText() const {
  MutexLock lock(&mu_);
  return log_memory_;
}

double ServeTelemetry::UptimeMs() const {
  return ElapsedMs(start_ns_, clock_->NowNanos());
}

void ServeTelemetry::PublishServerState(const ServerState& state) {
  MutexLock lock(&mu_);
  server_state_ = state;
}

ServeTelemetry::ServerState ServeTelemetry::server_state() const {
  MutexLock lock(&mu_);
  return server_state_;
}

HttpResponse HandleWithTelemetry(DiscoveryService* service,
                                 ServeTelemetry* telemetry,
                                 const HttpRequest& request,
                                 const CancellationToken* cancel,
                                 double queue_wait_ms,
                                 RequestLogEntry* entry_out) {
  if (telemetry == nullptr) return service->Handle(request, cancel);

  RequestObs obs;
  obs.trace_id = telemetry->TraceIdFor(request.Header("x-valentine-trace"));
  // The serve.request span is the per-request trace root: the service
  // threads (trace_id, span_id) into MatchContext, so the discovery
  // "query" span and its retrieve/enrich/rerank stage spans all nest
  // under it — one joined tree from socket to kernel.
  SpanScope request_span(telemetry->tracer(), obs.trace_id, "request",
                         request.method + " " + request.Path());
  obs.span_id = request_span.id();

  const Clock& clock = telemetry->clock();
  int64_t start_ns = clock.NowNanos();
  HttpResponse response = service->Handle(request, cancel, &obs);
  int64_t end_ns = clock.NowNanos();

  request_span.Attr("route", obs.route);
  request_span.Attr("status", std::to_string(response.status));
  if (!obs.error_code.empty()) request_span.Attr("error", obs.error_code);
  request_span.End();

  RequestLogEntry entry;
  entry.trace_id = obs.trace_id;
  entry.method = request.method;
  entry.route = obs.route;
  entry.path = request.Path();
  entry.status = response.status;
  entry.bytes_in = request.body.size();
  entry.bytes_out = response.body.size();
  entry.queue_wait_ms = queue_wait_ms;
  entry.handler_ms = ElapsedMs(start_ns, end_ns);
  entry.budget_ms = obs.budget_ms;
  entry.deadline_remaining_ms = obs.deadline_remaining_ms;
  entry.error_code = obs.error_code;
  entry.start_ns = start_ns;
  entry.end_ns = end_ns;
  if (entry_out != nullptr) {
    *entry_out = std::move(entry);
  } else {
    telemetry->RecordRequest(entry);
  }
  return response;
}

}  // namespace serve
}  // namespace valentine
