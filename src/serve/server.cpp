#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace valentine {
namespace serve {

namespace {

/// Applies a millisecond timeout to SO_RCVTIMEO/SO_SNDTIMEO.
void SetSocketTimeout(int fd, int optname, int timeout_ms) {
  if (timeout_ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

}  // namespace

HttpServer::HttpServer(DiscoveryService* service, ServerOptions options)
    : service_(service),
      options_(std::move(options)),
      queue_(options_.queue_capacity) {}

HttpServer::~HttpServer() { Shutdown(/*drain_ms=*/500.0); }

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Internal("server already started");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket(): " + std::string(strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable bind address '" +
                                   options_.host + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    Status s = Status::IOError("bind(" + options_.host + ":" +
                               std::to_string(options_.port) +
                               "): " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (listen(listen_fd_, 128) != 0) {
    Status s = Status::IOError("listen(): " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &addr_len) == 0) {
    port_.store(ntohs(addr.sin_port), std::memory_order_release);
  }
  if (pipe(wake_pipe_) != 0) {
    Status s = Status::IOError("pipe(): " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  running_.store(true, std::memory_order_release);
  size_t workers = options_.workers == 0 ? 1 : options_.workers;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  PublishServerState();
  return Status::OK();
}

void HttpServer::PublishServerState() {
  if (options_.telemetry == nullptr) return;
  ServeTelemetry::ServerState state;
  state.running = running_.load(std::memory_order_acquire);
  state.draining = draining_.load(std::memory_order_acquire);
  state.workers = options_.workers == 0 ? 1 : options_.workers;
  state.queue_capacity = options_.queue_capacity;
  options_.telemetry->PublishServerState(state);
}

void HttpServer::PublishQueueDepth() {
  if (options_.metrics == nullptr) return;
  options_.metrics->GaugeFor("valentine_serve_queue_depth")
      ->Set(static_cast<double>(queue_.depth()));
}

void HttpServer::AcceptLoop() {
  // Pre-serialize the shed response: overload must not allocate per
  // shed beyond the send buffer.
  const std::string shed_bytes = SerializeResponse(
      ErrorResponse(
          Status::ResourceExhausted(
              "server overloaded: admission queue full"),
          options_.retry_after_s),
      /*close_connection=*/true);

  while (!draining_.load(std::memory_order_acquire)) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    int ready = poll(fds, 2, /*timeout=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // drain wake-up
    if ((fds[0].revents & POLLIN) == 0) continue;

    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.metrics != nullptr) {
      options_.metrics->CounterFor("valentine_serve_connections_total")
          ->Increment();
    }
    SetSocketTimeout(fd, SO_RCVTIMEO, options_.read_timeout_ms);
    SetSocketTimeout(fd, SO_SNDTIMEO, options_.write_timeout_ms);
    // Queue wait is timed on the telemetry clock (injectable) so
    // fake-clock runs log deterministic waits; it measures admission
    // latency, not socket I/O, so a Clock may legitimately stand in.
    int64_t enqueue_ns = options_.telemetry != nullptr
                             ? options_.telemetry->clock().NowNanos()
                             : 0;
    if (queue_.TryEnqueue(fd, enqueue_ns)) {
      PublishQueueDepth();
      continue;
    }
    // Shed: answer 503 + Retry-After inline and close. SO_SNDTIMEO is
    // already set, so a malicious zero-window peer cannot park the
    // acceptor.
    if (options_.metrics != nullptr) {
      options_.metrics->CounterFor("valentine_serve_shed_total")->Increment();
    }
    SendAll(fd, shed_bytes);
    close(fd);
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    std::optional<AdmittedConnection> admitted = queue_.Dequeue();
    if (!admitted.has_value()) return;  // queue closed and drained
    PublishQueueDepth();
    const int fd = admitted->fd;
    double queue_wait_ms = 0.0;
    if (options_.telemetry != nullptr) {
      queue_wait_ms = ElapsedMs(admitted->enqueue_ns,
                                options_.telemetry->clock().NowNanos());
    }
    {
      MutexLock lock(&mu_);
      ++inflight_;
      open_fds_.insert(fd);
      if (options_.metrics != nullptr) {
        options_.metrics->GaugeFor("valentine_serve_inflight")
            ->Set(static_cast<double>(inflight_));
      }
    }
    ServeConnection(fd, queue_wait_ms);
    {
      // Unregister before close(): Shutdown only ::shutdown()s fds
      // still in the set, so a closed (possibly reused) descriptor can
      // never be hit.
      MutexLock lock(&mu_);
      --inflight_;
      open_fds_.erase(fd);
      if (options_.metrics != nullptr) {
        options_.metrics->GaugeFor("valentine_serve_inflight")
            ->Set(static_cast<double>(inflight_));
      }
    }
    close(fd);
    idle_cv_.NotifyAll();
  }
}

void HttpServer::ServeConnection(int fd, double queue_wait_ms) {
  HttpRequestParser parser(options_.http_limits);
  std::string pending;  // bytes read past the current request
  char buf[8192];
  size_t served = 0;
  uint64_t request_bytes = 0;  // wire bytes consumed by the current request

  while (served < options_.max_requests_per_connection) {
    bool saw_bytes = !pending.empty();
    // Feed leftover pipelined bytes first, then the socket.
    if (!pending.empty()) {
      size_t used = parser.Consume(pending.data(), pending.size());
      pending.erase(0, used);
      request_bytes += used;
    }
    while (!parser.complete() && !parser.failed()) {
      ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        // Timeout or peer disconnect. A torn request (bytes arrived,
        // then silence) earns a 408 so the client learns why; an idle
        // keep-alive close is just a close.
        bool mid_request =
            saw_bytes || parser.state() != HttpRequestParser::State::kHeaders;
        if (mid_request && n < 0 &&
            (errno == EAGAIN || errno == EWOULDBLOCK)) {
          HttpResponse timeout;
          timeout.status = 408;
          timeout.body = JsonErrorEnvelope(
              Status::DeadlineExceeded("timed out reading request"), 408);
          SendAll(fd, SerializeResponse(timeout, /*close=*/true));
        }
        return;
      }
      saw_bytes = true;
      size_t used = parser.Consume(buf, static_cast<size_t>(n));
      if (used < static_cast<size_t>(n)) {
        pending.append(buf + used, static_cast<size_t>(n) - used);
      }
      request_bytes += used;
    }

    if (parser.failed()) {
      HttpResponse bad;
      bad.status = parser.http_status();
      bad.body = JsonErrorEnvelope(parser.error_status(), bad.status);
      SendAll(fd, SerializeResponse(bad, /*close=*/true));
      return;
    }

    const HttpRequest& request = parser.request();
    // Request latency is measured against the real steady clock: it
    // times socket+engine work of a live request, which no injectable
    // clock can witness. (The access log's handler_ms runs on the
    // telemetry clock instead — that one must be fake-clock stable.)
    auto started = std::chrono::steady_clock::now();
    RequestLogEntry entry;
    // Queue wait belongs to the connection's admission; charge it to
    // the first request only — keep-alive successors never queued.
    HttpResponse response = HandleWithTelemetry(
        service_, options_.telemetry, request, &drain_cancel_,
        served == 0 ? queue_wait_ms : 0.0,
        options_.telemetry != nullptr ? &entry : nullptr);
    if (options_.metrics != nullptr) {
      double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - started)
              .count();
      options_.metrics->HistogramFor("valentine_serve_request_ms")
          ->Observe(elapsed_ms);
    }
    ++served;
    bool close_after = request.WantsClose() ||
                       served >= options_.max_requests_per_connection ||
                       draining_.load(std::memory_order_acquire);
    const std::string wire = SerializeResponse(response, close_after);
    if (options_.telemetry != nullptr) {
      // Amend the transport-truth byte counts before logging: raw bytes
      // consumed off the wire in, serialized response (headers
      // included) out.
      entry.bytes_in = request_bytes;
      entry.bytes_out = wire.size();
      options_.telemetry->RecordRequest(entry);
    }
    request_bytes = 0;
    if (!SendAll(fd, wire)) return;
    if (close_after) return;
    parser.Reset();
  }
}

bool HttpServer::SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = send(fd, bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (n <= 0) return false;  // timeout, reset, or dead peer
    sent += static_cast<size_t>(n);
  }
  return true;
}

void HttpServer::BeginDrain() {
  if (!running_.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  // Refuse new admissions, then wake the acceptor out of poll().
  queue_.Close();
  char byte = 1;
  ssize_t ignored = write(wake_pipe_[1], &byte, 1);
  (void)ignored;
  PublishServerState();
}

void HttpServer::Shutdown(double drain_ms) {
  if (!running_.load(std::memory_order_acquire)) return;
  BeginDrain();
  if (acceptor_.joinable()) acceptor_.join();
  // No new connections can arrive now; give in-flight requests their
  // drain budget, then cut the stragglers off cooperatively.
  Deadline drain = Deadline::AfterMs(drain_ms);
  {
    MutexLock lock(&mu_);
    while (inflight_ > 0 && !drain.expired()) {
      idle_cv_.WaitFor(&mu_, std::chrono::milliseconds(10));
    }
    if (inflight_ > 0) {
      // Out of patience: cancel cooperative engine work. The cancelled
      // request still gets its 503 written, so give workers a short
      // grace to deliver it before yanking stragglers (idle keep-alive
      // reads, dead peers) out of blocked socket calls.
      drain_cancel_.Cancel();
      constexpr double kCancelGraceMs = 1000.0;
      Deadline grace = Deadline::AfterMs(kCancelGraceMs);
      while (inflight_ > 0 && !grace.expired()) {
        idle_cv_.WaitFor(&mu_, std::chrono::milliseconds(10));
      }
      for (int fd : open_fds_) shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_pipe_[0] >= 0) {
    close(wake_pipe_[0]);
    close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
  running_.store(false, std::memory_order_release);
}

size_t HttpServer::inflight() const {
  MutexLock lock(&mu_);
  return inflight_;
}

}  // namespace serve
}  // namespace valentine
