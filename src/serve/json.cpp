#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace valentine {
namespace serve {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  if (type_ != Type::kObject) return;
  object_[key] = std::move(value);
}

void JsonValue::Append(JsonValue value) {
  if (type_ != Type::kArray) return;
  array_.push_back(std::move(value));
}

namespace {

/// Recursive-descent parser over a bounded input. Depth is decremented
/// on every container so a pathological body cannot recurse past
/// max_depth frames.
class Parser {
 public:
  Parser(const std::string& text, size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Result<JsonValue> Run() {
    JsonValue v;
    Status st = ParseValue(max_depth_, &v);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at byte " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(const char* word) {
    size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(size_t depth, JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        VALENTINE_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      case 't':
        if (!Literal("true")) return Error("bad literal");
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        if (!Literal("false")) return Error("bad literal");
        *out = JsonValue::Bool(false);
        return Status::OK();
      case 'n':
        if (!Literal("null")) return Error("bad literal");
        *out = JsonValue::Null();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(size_t depth, JsonValue* out) {
    if (depth == 0) return Error("nesting too deep");
    if (!Consume('{')) return Error("expected '{'");
    *out = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      VALENTINE_RETURN_NOT_OK(ParseString(&key));
      if (!Consume(':')) return Error("expected ':'");
      JsonValue member;
      VALENTINE_RETURN_NOT_OK(ParseValue(depth - 1, &member));
      out->Set(key, std::move(member));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(size_t depth, JsonValue* out) {
    if (depth == 0) return Error("nesting too deep");
    if (!Consume('[')) return Error("expected '['");
    *out = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue element;
      VALENTINE_RETURN_NOT_OK(ParseValue(depth - 1, &element));
      out->Append(std::move(element));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(10 + h - 'a');
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(10 + h - 'A');
            } else {
              return Error("bad \\u escape");
            }
          }
          // UTF-8-encode the code point; surrogate pairs are rejected
          // (request payloads here are ASCII-centric table data, and a
          // lone surrogate must not round-trip silently).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escape unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    size_t int_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      digits = true;
    }
    // RFC 8259 forbids leading zeros ("01"); permissiveness here would
    // let two wire spellings decode to one value and break the
    // parse→write canonicalization the golden tests pin.
    if (pos_ - int_start > 1 && text_[int_start] == '0') {
      return Error("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        digits = true;
      }
    }
    if (digits && pos_ < text_.size() &&
        (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      bool exp_digits = false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        exp_digits = true;
      }
      if (!exp_digits) return Error("bad exponent");
    }
    if (!digits) return Error("expected value");
    double d = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    if (!std::isfinite(d)) return Error("number out of range");
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  const std::string& text_;
  const size_t max_depth_;
  size_t pos_ = 0;
};

void WriteValue(const JsonValue& v, std::string* out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      return;
    case JsonValue::Type::kBool:
      out->append(v.bool_value() ? "true" : "false");
      return;
    case JsonValue::Type::kNumber:
      out->append(JsonNumberToString(v.number_value()));
      return;
    case JsonValue::Type::kString:
      out->push_back('"');
      out->append(JsonEscapeString(v.string_value()));
      out->push_back('"');
      return;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.array_items()) {
        if (!first) out->push_back(',');
        first = false;
        WriteValue(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : v.object_items()) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        out->append(JsonEscapeString(key));
        out->append("\":");
        WriteValue(member, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

Result<JsonValue> ParseJson(const std::string& text, size_t max_depth) {
  return Parser(text, max_depth).Run();
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteValue(value, &out);
  return out;
}

std::string JsonEscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\b': out.append("\\b"); break;
      case '\f': out.append("\\f"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumberToString(double d) {
  if (std::fabs(d) < 1e15 && d == static_cast<int64_t>(d)) {
    return std::to_string(static_cast<int64_t>(d));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

}  // namespace serve
}  // namespace valentine
