#ifndef VALENTINE_SERVE_JSON_H_
#define VALENTINE_SERVE_JSON_H_

/// \file json.h
/// Minimal JSON value model, parser, and writer for the serving
/// boundary.
///
/// The harness already *emits* JSON (harness/json_export.*), but nothing
/// in the library *consumed* it before the HTTP server needed request
/// bodies. This parser is written for hostile input: recursion depth is
/// bounded (a few-KB body of '[' must not blow the worker stack), the
/// input size is already bounded upstream by the HTTP body limit, and
/// every malformed document yields kParseError instead of UB. Objects
/// keep sorted keys (std::map), so re-serialization is deterministic;
/// duplicate keys are last-wins, like most production parsers.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"

namespace valentine {
namespace serve {

/// \brief One JSON value (tagged union, tree-owned).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  std::vector<JsonValue>& array_items() { return array_; }
  const std::map<std::string, JsonValue>& object_items() const {
    return object_;
  }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Sets/overwrites an object member (no-op unless is_object()).
  void Set(const std::string& key, JsonValue value);
  /// Appends an array element (no-op unless is_array()).
  void Append(JsonValue value);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one complete JSON document (trailing garbage rejected).
/// `max_depth` bounds array/object nesting; exceeding it, or any syntax
/// error, yields kParseError with a byte offset in the message.
Result<JsonValue> ParseJson(const std::string& text, size_t max_depth = 64);

/// Serializes a value compactly (no whitespace). Object keys come out
/// sorted; doubles render with %.17g (integral values without a
/// fraction), matching the journal/export conventions so round-trips
/// are byte-stable.
std::string WriteJson(const JsonValue& value);

/// JSON string-literal escaping (shared with the writer): quotes,
/// backslash, and control characters as \u00XX.
std::string JsonEscapeString(const std::string& s);

/// Canonical rendering of a double for serving payloads: %.17g, with
/// integral values printed without an exponent or fraction.
std::string JsonNumberToString(double d);

}  // namespace serve
}  // namespace valentine

#endif  // VALENTINE_SERVE_JSON_H_
