#ifndef VALENTINE_SERVE_SERVICE_H_
#define VALENTINE_SERVE_SERVICE_H_

/// \file service.h
/// The HTTP-facing discovery service: request routing, JSON codecs, and
/// a copy-on-write table registry over DiscoveryEngine.
///
/// Concurrency model: DiscoveryEngine supports concurrent const queries
/// but AddTable is not safe against them, and the engine is
/// non-copyable. The service therefore keeps the authoritative tables
/// in a TableRepository and, on every mutation, clones it (a cheap
/// copy-on-write snapshot: entries are immutable and shared), applies
/// the delta to the clone, and builds a fresh engine over it via
/// DiscoveryEngine::FromRepository — re-banding existing sketches but
/// never re-fingerprinting, re-sketching, or touching the store for
/// tables already registered. The engine swaps in as a
/// `shared_ptr<const DiscoveryEngine>` snapshot: queries grab it under
/// a brief lock and then run entirely lock-free on an engine no
/// mutation will ever touch; in-flight queries on a replaced snapshot
/// keep it alive until they finish. Mutation cost is O(delta) artifact
/// work + O(repository) index re-banding — the right trade for a
/// read-dominated discovery workload.
///
/// Byte-identity contract: responses are rendered by the same
/// RenderDiscoveryResults used by the tests' direct-engine path, and
/// discovery rankings order by (score, name), so the ranking a client
/// sees over HTTP is byte-identical to calling DiscoveryEngine directly
/// on the same tables, independent of registration order.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/deadline.h"
#include "core/mutex.h"
#include "core/status.h"
#include "core/table.h"
#include "core/thread_annotations.h"
#include "discovery/discovery.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/json.h"
#include "serve/telemetry.h"

namespace valentine {
namespace serve {

/// Decodes a table from its JSON wire form:
///   {"name": "t", "columns": [{"name": "c", "type": "string"?,
///                              "values": [1, "a", null, true]}]}
/// `type` is optional (inferred from the first non-null cell, string
/// when all null). Cells must be JSON scalars; columns must be equal
/// length. All violations yield kInvalidArgument.
Result<Table> TableFromJson(const JsonValue& value);

/// Canonical JSON body for a discovery response. This is THE rendering
/// both the server and the byte-identity tests use: any drift between
/// served results and a direct DiscoveryEngine call shows up as a byte
/// diff, not a subtle float-formatting mismatch. When `explain` is
/// non-null (the request opted in) an "explain" object is appended with
/// per-stage candidate counts and the CandidateIndex that served the
/// query; the "results" bytes are identical either way.
std::string RenderDiscoveryResults(const std::string& query_table,
                                   const std::string& mode, size_t k,
                                   const std::vector<DiscoveryResult>& results,
                                   const DiscoveryExplain* explain = nullptr);

/// Configuration for DiscoveryService.
struct ServiceOptions {
  /// Produces the matcher for each rebuilt engine snapshot
  /// (DiscoveryOptions::matcher is owning and engines are rebuilt per
  /// mutation, so the service needs a factory, not an instance). Null
  /// uses the engine's built-in default (COMA-Instances).
  std::function<MatcherPtr()> matcher_factory;
  /// Passed through to every rebuilt engine.
  LshOptions lsh;
  double min_containment = 0.3;
  size_t union_evidence_columns = 3;
  /// Borrowed observability; /metrics renders this registry and the
  /// service bumps valentine_serve_requests_total{route,code} on it.
  /// Optional.
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  const Clock* clock = nullptr;
  /// Borrowed request-telemetry spine (trace ids, access log, /tracez
  /// ring, /statusz server state). Optional; must outlive the service.
  ServeTelemetry* telemetry = nullptr;
  /// Advertised in the Retry-After header of request-level 503s (a
  /// drained/cancelled discovery query). The transport-level shed 503
  /// has its own knob in ServerOptions.
  int retry_after_s = 1;
  /// Largest accepted `budget_ms` (requests asking for more are
  /// clamped, not rejected — a client cannot buy an unbounded request).
  double max_budget_ms = 60000.0;
  /// Optional persistent artifact store (borrowed; must outlive the
  /// service), consulted once per *newly registered* table — rebuilds
  /// share the already-loaded repository entries and never touch the
  /// store — and what lets a restarted process warm up from disk
  /// without rebuilding sketches or profiles.
  ArtifactStore* store = nullptr;
  /// Candidate front-end per query mode (see DiscoveryOptions).
  CandidatePath joinable_path = CandidatePath::kLsh;
  CandidatePath unionable_path = CandidatePath::kLsh;
};

/// \brief Routes HTTP requests onto a copy-on-write DiscoveryEngine.
///
/// Thread-safe: Handle/RegisterTable/UnregisterTable may be called from
/// any number of worker threads concurrently.
class DiscoveryService {
 public:
  explicit DiscoveryService(ServiceOptions options = {});

  DiscoveryService(const DiscoveryService&) = delete;
  DiscoveryService& operator=(const DiscoveryService&) = delete;

  /// Handles one parsed request and produces the full response.
  /// `cancel` is the server's drain token (nullptr when standalone); it
  /// is threaded into discovery queries so SIGTERM can cut in-flight
  /// work off cooperatively. `obs`, when non-null, carries the request
  /// trace identity in (threading discovery spans under the
  /// serve.request span) and routing/budget/outcome fields out — see
  /// RequestObs. Response bytes are identical with or without it.
  HttpResponse Handle(const HttpRequest& request,
                      const CancellationToken* cancel = nullptr,
                      RequestObs* obs = nullptr) EXCLUDES(mu_);

  /// Registers a table (validates first, commits only on success).
  Status RegisterTable(Table table) EXCLUDES(mu_);

  /// Removes a table by name; kNotFound when absent.
  Status UnregisterTable(const std::string& name) EXCLUDES(mu_);

  /// Current engine snapshot (never null; empty engine at startup).
  /// Queries on it stay valid across concurrent mutations.
  std::shared_ptr<const DiscoveryEngine> Snapshot() const EXCLUDES(mu_);

  size_t num_tables() const EXCLUDES(mu_);

 private:
  /// Builds an engine over a repository snapshot (shared entries, no
  /// artifact rebuilding). Fails if the snapshot cannot be re-indexed.
  Result<std::shared_ptr<const DiscoveryEngine>> BuildEngine(
      TableRepository snapshot) const;

  /// Routing helpers; each returns the complete response.
  HttpResponse HandleHealth() EXCLUDES(mu_);
  HttpResponse HandleMetrics();
  HttpResponse HandleStatusz() EXCLUDES(mu_);
  HttpResponse HandleTracez();
  HttpResponse HandleRegister(const HttpRequest& request) EXCLUDES(mu_);
  HttpResponse HandleUnregister(const std::string& name) EXCLUDES(mu_);
  HttpResponse HandleDiscovery(const HttpRequest& request,
                               const std::string& mode,
                               const CancellationToken* cancel,
                               RequestObs* obs) EXCLUDES(mu_);

  void CountRequest(const std::string& route, int http_status);

  ServiceOptions options_;  // lint:allow(guarded-by-coverage) immutable after construction
  mutable Mutex mu_{LockRank::kServeRegistry, "DiscoveryService"};
  /// Authoritative registry. Mutations clone it (cheap: entries are
  /// shared), mutate the clone, and swap; the live engine_ always wraps
  /// a snapshot equal to the current value.
  TableRepository repository_ GUARDED_BY(mu_);
  std::shared_ptr<const DiscoveryEngine> engine_ GUARDED_BY(mu_);
};

}  // namespace serve
}  // namespace valentine

#endif  // VALENTINE_SERVE_SERVICE_H_
