#include "fabrication/fabricator.h"

#include <algorithm>
#include <unordered_map>

#include "fabrication/noise.h"
#include "fabrication/splitter.h"

namespace valentine {

const char* ScenarioName(Scenario scenario) {
  switch (scenario) {
    case Scenario::kUnionable: return "Unionable";
    case Scenario::kViewUnionable: return "View-Unionable";
    case Scenario::kJoinable: return "Joinable";
    case Scenario::kSemanticallyJoinable: return "Semantically-Joinable";
  }
  return "Unknown";
}

Result<DatasetPair> FabricateDatasetPair(const Table& original,
                                         const FabricationOptions& options) {
  if (original.num_columns() < 2) {
    return Status::InvalidArgument("fabrication needs >= 2 columns, table " +
                                   original.Describe());
  }
  if (original.num_rows() == 0) {
    return Status::InvalidArgument("fabrication needs rows, table " +
                                   original.Describe());
  }

  Rng rng(options.seed);
  const size_t n_rows = original.num_rows();
  const size_t n_cols = original.num_columns();

  // --- Decide shard rows/columns per scenario. ---
  double row_overlap = options.row_overlap;
  double col_overlap = 1.0;
  bool split_vertically = false;
  bool split_horizontally = true;
  bool noisy_instances = options.noisy_instances;
  switch (options.scenario) {
    case Scenario::kUnionable:
      break;
    case Scenario::kViewUnionable:
      row_overlap = 0.0;  // defining property: no shared rows
      col_overlap = options.column_overlap;
      split_vertically = true;
      break;
    case Scenario::kJoinable:
      noisy_instances = false;  // "classical" join keeps instances verbatim
      col_overlap = options.column_overlap;
      split_vertically = true;
      split_horizontally = options.joinable_horizontal_variant;
      row_overlap = 0.5;
      break;
    case Scenario::kSemanticallyJoinable:
      noisy_instances = true;  // the definition of the scenario
      col_overlap = options.column_overlap;
      split_vertically = true;
      split_horizontally = options.joinable_horizontal_variant;
      row_overlap = 0.5;
      break;
  }

  HorizontalSplit hsplit;
  if (split_horizontally) {
    hsplit = SplitRowsWithOverlap(n_rows, row_overlap, &rng);
  } else {
    hsplit.rows_a.resize(n_rows);
    hsplit.rows_b.resize(n_rows);
    for (size_t i = 0; i < n_rows; ++i) {
      hsplit.rows_a[i] = i;
      hsplit.rows_b[i] = i;
    }
    hsplit.overlap_count = n_rows;
  }

  VerticalSplit vsplit;
  if (split_vertically) {
    vsplit = SplitColumnsWithOverlap(n_cols, col_overlap, &rng);
  } else {
    vsplit.cols_a.resize(n_cols);
    vsplit.cols_b.resize(n_cols);
    vsplit.shared.resize(n_cols);
    for (size_t i = 0; i < n_cols; ++i) {
      vsplit.cols_a[i] = i;
      vsplit.cols_b[i] = i;
      vsplit.shared[i] = i;
    }
  }

  DatasetPair pair;
  pair.scenario = options.scenario;
  pair.source = original.Project(vsplit.cols_a).TakeRows(hsplit.rows_a);
  pair.target = original.Project(vsplit.cols_b).TakeRows(hsplit.rows_b);
  pair.source.set_name(original.name() + "_src");
  pair.target.set_name(original.name() + "_tgt");

  // --- Instance noise on the target shard (perturbing one side keeps
  // the other as the clean reference, as in eTuner). ---
  if (noisy_instances) {
    InstanceNoiseOptions noise;
    AddInstanceNoise(&pair.target, noise, &rng);
  }

  // --- Schema noise on the target shard; ground truth tracks renames. ---
  std::unordered_map<std::string, std::string> rename;
  if (options.noisy_schema) {
    for (const auto& [old_name, new_name] :
         AddSchemaNoise(&pair.target, &rng)) {
      rename[old_name] = new_name;
    }
  }

  // --- Ground truth: every shared original column matches itself. ---
  for (size_t c : vsplit.shared) {
    const std::string& name = original.column(c).name();
    auto it = rename.find(name);
    pair.ground_truth.push_back(
        {name, it == rename.end() ? name : it->second});
  }

  pair.id = original.name() + "_" + ScenarioName(options.scenario) +
            (options.noisy_schema ? "_noisySchema" : "_verbatimSchema") +
            (noisy_instances ? "_noisyInst" : "_verbatimInst") + "_s" +
            std::to_string(options.seed);
  return pair;
}

}  // namespace valentine
