#include "fabrication/splitter.h"

#include <algorithm>
#include <cmath>

namespace valentine {

HorizontalSplit SplitRowsWithOverlap(size_t n, double overlap, Rng* rng) {
  HorizontalSplit split;
  if (n == 0) return split;
  overlap = std::clamp(overlap, 0.0, 1.0);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);

  size_t shared = static_cast<size_t>(std::llround(overlap * n));
  shared = std::min(shared, n);
  size_t rest = n - shared;
  size_t half = rest / 2;

  split.overlap_count = shared;
  split.rows_a.assign(order.begin(), order.begin() + shared);
  split.rows_b.assign(order.begin(), order.begin() + shared);
  for (size_t i = shared; i < shared + half; ++i) {
    split.rows_a.push_back(order[i]);
  }
  for (size_t i = shared + half; i < n; ++i) {
    split.rows_b.push_back(order[i]);
  }
  // Guarantee non-empty shards when possible.
  if (split.rows_a.empty() && !split.rows_b.empty()) {
    split.rows_a.push_back(split.rows_b.back());
  }
  if (split.rows_b.empty() && !split.rows_a.empty()) {
    split.rows_b.push_back(split.rows_a.back());
  }
  std::sort(split.rows_a.begin(), split.rows_a.end());
  std::sort(split.rows_b.begin(), split.rows_b.end());
  return split;
}

VerticalSplit SplitColumnsWithOverlap(size_t n, double overlap, Rng* rng) {
  VerticalSplit split;
  if (n == 0) return split;
  overlap = std::clamp(overlap, 0.0, 1.0);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng->Shuffle(&order);

  size_t shared = static_cast<size_t>(std::llround(overlap * n));
  shared = std::clamp<size_t>(shared, 1, n);
  split.shared.assign(order.begin(), order.begin() + shared);

  split.cols_a = split.shared;
  split.cols_b = split.shared;
  bool to_a = true;
  for (size_t i = shared; i < n; ++i) {
    if (to_a) {
      split.cols_a.push_back(order[i]);
    } else {
      split.cols_b.push_back(order[i]);
    }
    to_a = !to_a;
  }
  std::sort(split.cols_a.begin(), split.cols_a.end());
  std::sort(split.cols_b.begin(), split.cols_b.end());
  std::sort(split.shared.begin(), split.shared.end());
  return split;
}

}  // namespace valentine
