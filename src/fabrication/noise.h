#ifndef VALENTINE_FABRICATION_NOISE_H_
#define VALENTINE_FABRICATION_NOISE_H_

/// \file noise.h
/// Instance and schema noise injection (paper §IV). Instance noise:
/// keyboard-proximity typos for string cells, distribution-scaled
/// perturbation for numeric cells (the eTuner recipe). Schema noise: one
/// of the three name transformation rules — table-name prefix,
/// abbreviation, vowel dropping — applied per column.

#include "core/rng.h"
#include "core/table.h"

namespace valentine {

/// Controls instance-noise injection.
struct InstanceNoiseOptions {
  /// Fraction of cells perturbed per column.
  double cell_rate = 0.65;
  /// Per-character typo probability inside a perturbed string cell.
  double typo_rate = 0.22;
  /// Numeric cells are shifted by Gaussian noise with this multiple of
  /// the column's standard deviation.
  double numeric_sigma_scale = 0.4;
};

/// Perturbs a fraction of the column's cells in place. Numeric columns
/// are shifted relative to their own value distribution; string columns
/// receive typos.
void AddInstanceNoise(Column* column, const InstanceNoiseOptions& options,
                      Rng* rng);

/// Applies AddInstanceNoise to every column of the table.
void AddInstanceNoise(Table* table, const InstanceNoiseOptions& options,
                      Rng* rng);

/// Renames every column using a randomly chosen transformation rule
/// (prefix with table name / abbreviate / drop vowels). Returns the
/// mapping old name -> new name.
std::vector<std::pair<std::string, std::string>> AddSchemaNoise(Table* table,
                                                                Rng* rng);

}  // namespace valentine

#endif  // VALENTINE_FABRICATION_NOISE_H_
