#ifndef VALENTINE_FABRICATION_FABRICATOR_H_
#define VALENTINE_FABRICATION_FABRICATOR_H_

/// \file fabricator.h
/// Dataset-pair fabrication for the four relatedness scenarios of
/// paper §III/§IV: given one original table, produce a (source, target)
/// pair plus the column-correspondence ground truth.
///
///  * Unionable: horizontal split, varying row overlap, all columns on
///    both sides; every column pair corresponds.
///  * View-unionable: horizontal + vertical split, zero row overlap,
///    varying column overlap; shared columns correspond.
///  * Joinable: vertical split with varying column overlap (optionally a
///    50% horizontal split too); instances stay verbatim.
///  * Semantically-joinable: joinable + noisy instances, so an equality
///    join no longer reconstructs the original.
///
/// Independently, each pair may get noisy schemata (one side's column
/// names rewritten) and — where the scenario allows — noisy instances.

#include <string>
#include <vector>

#include "core/status.h"
#include "core/table.h"

namespace valentine {

/// The four dataset relatedness scenarios (paper Fig. 2).
enum class Scenario {
  kUnionable,
  kViewUnionable,
  kJoinable,
  kSemanticallyJoinable,
};

const char* ScenarioName(Scenario scenario);

/// Knobs of one fabrication run.
struct FabricationOptions {
  Scenario scenario = Scenario::kUnionable;
  /// Fraction of rows shared between the shards (unionable / joinable
  /// horizontal variant). Ignored for view-unionable (forced to 0).
  double row_overlap = 0.5;
  /// Fraction of columns shared (view-unionable / joinable).
  double column_overlap = 0.5;
  /// Also split joinable pairs horizontally at 50% row overlap.
  bool joinable_horizontal_variant = false;
  /// Rewrite one side's column names with the noise rules.
  bool noisy_schema = false;
  /// Perturb instances. Forced on for semantically-joinable, forced off
  /// for joinable (per §IV).
  bool noisy_instances = false;
  uint64_t seed = 1;
};

/// A correspondence in the ground truth (names as they appear in the
/// fabricated tables, i.e. after schema noise).
struct GroundTruthEntry {
  std::string source_column;
  std::string target_column;
};

/// A fabricated experiment input: two tables plus their ground truth.
struct DatasetPair {
  std::string id;  ///< human-readable pair identifier
  Scenario scenario = Scenario::kUnionable;
  Table source;
  Table target;
  std::vector<GroundTruthEntry> ground_truth;
};

/// Fabricates one dataset pair from an original table. Fails when the
/// original has fewer than 2 columns or no rows.
Result<DatasetPair> FabricateDatasetPair(const Table& original,
                                         const FabricationOptions& options);

}  // namespace valentine

#endif  // VALENTINE_FABRICATION_FABRICATOR_H_
