#ifndef VALENTINE_FABRICATION_SPLITTER_H_
#define VALENTINE_FABRICATION_SPLITTER_H_

/// \file splitter.h
/// Horizontal and vertical table splitting with controlled overlap — the
/// mechanical core of the eTuner-style fabrication (paper §IV, Fig. 3).

#include <vector>

#include "core/rng.h"

namespace valentine {

/// Row-index sets for two horizontal shards.
struct HorizontalSplit {
  std::vector<size_t> rows_a;
  std::vector<size_t> rows_b;
  size_t overlap_count = 0;
};

/// Splits n rows into two shards sharing `overlap` fraction of the total
/// rows; non-shared rows are divided evenly. overlap = 0 yields disjoint
/// shards; overlap = 1 makes both shards the whole table. Row order is
/// randomized but deterministic under the Rng.
HorizontalSplit SplitRowsWithOverlap(size_t n, double overlap, Rng* rng);

/// Column-index sets for two vertical shards.
struct VerticalSplit {
  std::vector<size_t> cols_a;
  std::vector<size_t> cols_b;
  std::vector<size_t> shared;  ///< columns present in both shards
};

/// Splits n columns into two shards sharing `overlap` fraction of them
/// (at least one shared column); the remaining columns alternate between
/// the shards. Original column order is preserved within each shard.
VerticalSplit SplitColumnsWithOverlap(size_t n, double overlap, Rng* rng);

}  // namespace valentine

#endif  // VALENTINE_FABRICATION_SPLITTER_H_
