#include "fabrication/noise.h"

#include <cmath>

#include "stats/descriptive.h"
#include "text/transforms.h"
#include "text/typo_model.h"

namespace valentine {

void AddInstanceNoise(Column* column, const InstanceNoiseOptions& options,
                      Rng* rng) {
  if (column->empty() || options.cell_rate <= 0.0) return;
  const bool numeric = column->NumericFraction() > 0.9;
  if (numeric) {
    NumericStats stats = ComputeNumericStats(column->NumericValues());
    double sigma = stats.stddev * options.numeric_sigma_scale;
    if (sigma <= 0.0) sigma = std::max(1.0, std::abs(stats.mean) * 0.05);
    for (size_t i = 0; i < column->size(); ++i) {
      Value& v = (*column)[i];
      if (v.is_null() || !rng->Bernoulli(options.cell_rate)) continue;
      auto d = v.TryFloat();
      if (!d) continue;
      double perturbed = *d + rng->Gaussian(0.0, sigma);
      if (v.kind() == DataType::kInt64) {
        v = Value::Int(static_cast<int64_t>(std::llround(perturbed)));
      } else {
        v = Value::Float(perturbed);
      }
    }
  } else {
    TypoModel typos(options.typo_rate);
    for (size_t i = 0; i < column->size(); ++i) {
      Value& v = (*column)[i];
      if (v.is_null() || !rng->Bernoulli(options.cell_rate)) continue;
      v = Value::String(typos.Perturb(v.AsString(), rng));
    }
  }
}

void AddInstanceNoise(Table* table, const InstanceNoiseOptions& options,
                      Rng* rng) {
  for (size_t c = 0; c < table->num_columns(); ++c) {
    AddInstanceNoise(&table->column(c), options, rng);
  }
}

std::vector<std::pair<std::string, std::string>> AddSchemaNoise(Table* table,
                                                                Rng* rng) {
  std::vector<std::pair<std::string, std::string>> mapping;
  std::unordered_set<std::string> used;
  for (size_t c = 0; c < table->num_columns(); ++c) {
    const std::string old_name = table->column(c).name();
    int rule = static_cast<int>(rng->Index(6));
    std::string new_name =
        ApplySchemaNoiseRule(old_name, table->name(), rule);
    // Keep names unique within the table (abbreviation can collide);
    // fall back to the always-unique prefix rule.
    if (new_name == old_name || used.count(new_name)) {
      new_name = PrefixWithTable(old_name, table->name());
    }
    while (used.count(new_name)) new_name += "_x";
    used.insert(new_name);
    (void)table->RenameColumn(c, new_name);
    mapping.emplace_back(old_name, new_name);
  }
  return mapping;
}

}  // namespace valentine
