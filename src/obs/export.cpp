#include "obs/export.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <set>

namespace valentine {

namespace {

/// Minimal JSON string escaping (obs must not depend on the harness'
/// json_export helpers — the dependency points the other way).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

/// Microseconds with fixed millinanosecond precision — Chrome's `ts`
/// unit. Fixed-format so output is byte-stable.
std::string MicrosFromNanos(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000 < 0 ? -(ns % 1000)
                                                     : ns % 1000));
  return buf;
}

/// Deterministic virtual tid per trace id: rank in the sorted trace-id
/// set, 1-based. Stable across runs, unlike OS thread ids.
std::map<std::string, int> VirtualTids(const std::vector<SpanRecord>& spans) {
  std::set<std::string> ids;
  for (const SpanRecord& span : spans) ids.insert(span.trace_id);
  std::map<std::string, int> tids;
  int next = 1;
  for (const std::string& id : ids) tids[id] = next++;
  return tids;
}

void AppendSpanArgs(const SpanRecord& span, std::string& out) {
  out += "\"trace_id\":\"" + JsonEscape(span.trace_id) + "\"";
  out += ",\"span_id\":\"" + std::to_string(span.span_id) + "\"";
  out += ",\"parent_id\":\"" + std::to_string(span.parent_id) + "\"";
  for (const auto& [key, value] : span.attributes) {
    out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
}

}  // namespace

std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::map<std::string, int> tids = VirtualTids(spans);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(span.name) + "\"";
    out += ",\"cat\":\"" + JsonEscape(span.kind) + "\"";
    out += ",\"ph\":\"X\"";
    out += ",\"ts\":" + MicrosFromNanos(span.start_ns);
    out += ",\"dur\":" + MicrosFromNanos(span.end_ns - span.start_ns);
    out += ",\"pid\":1";
    out += ",\"tid\":" + std::to_string(tids[span.trace_id]);
    out += ",\"args\":{";
    AppendSpanArgs(span, out);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string ToTraceJsonl(const std::vector<SpanRecord>& spans) {
  std::string out;
  for (const SpanRecord& span : spans) {
    out += "{\"trace_id\":\"" + JsonEscape(span.trace_id) + "\"";
    out += ",\"span_id\":\"" + std::to_string(span.span_id) + "\"";
    out += ",\"parent_id\":\"" + std::to_string(span.parent_id) + "\"";
    out += ",\"kind\":\"" + JsonEscape(span.kind) + "\"";
    out += ",\"name\":\"" + JsonEscape(span.name) + "\"";
    out += ",\"seq\":" + std::to_string(span.seq);
    out += ",\"start_ns\":" + std::to_string(span.start_ns);
    out += ",\"end_ns\":" + std::to_string(span.end_ns);
    out += ",\"attributes\":{";
    bool first = true;
    for (const auto& [key, value] : span.attributes) {
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "}}\n";
  }
  return out;
}

std::string ToMetricsJson(const MetricsRegistry& metrics) {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const MetricsRegistry::CounterSample& sample :
       metrics.CounterSamples()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(sample.name) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [key, value] : sample.labels) {
      if (!first_label) out += ",";
      first_label = false;
      out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
    }
    out += "},\"value\":" + std::to_string(sample.value) + "}";
  }
  out += "]}";
  return out;
}

Status WriteTextFile(const std::string& text, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  file.flush();
  if (!file.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace valentine
