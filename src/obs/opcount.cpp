#include "obs/opcount.h"

namespace valentine {
namespace opcount {

const char* OpName(Op op) {
  switch (op) {
    case Op::kLevenshteinCells:
      return "levenshtein_cells";
    case Op::kBagPrefilterHits:
      return "bag_prefilter_hits";
    case Op::kBagPrefilterMisses:
      return "bag_prefilter_misses";
    case Op::kMinHashHashes:
      return "minhash_hashes";
    case Op::kNGramEmissions:
      return "ngram_emissions";
    case Op::kEmdSweepIterations:
      return "emd_sweep_iterations";
  }
  return "unknown";
}

const std::array<Op, kNumOps>& AllOps() {
  static const std::array<Op, kNumOps> kAll = {
      Op::kLevenshteinCells,    Op::kBagPrefilterHits,
      Op::kBagPrefilterMisses,  Op::kMinHashHashes,
      Op::kNGramEmissions,      Op::kEmdSweepIterations,
  };
  return kAll;
}

}  // namespace opcount
}  // namespace valentine
