#ifndef VALENTINE_OBS_CLOCK_H_
#define VALENTINE_OBS_CLOCK_H_

/// \file clock.h
/// The sanctioned timing source for library code.
///
/// Table IV of the paper reports per-experiment runtimes, so the harness
/// measures time on every experiment — but raw `steady_clock::now()`
/// calls scattered through the library made every timing field
/// nondeterministic and forced tests to scrub `total_ms`/`runtime_ms`
/// before byte-comparing reports. A `Clock` is an injectable monotonic
/// timing source: production code reads the steady clock through it,
/// tests inject a `FakeClock` and get bit-reproducible timing fields —
/// no post-hoc field zeroing.
///
/// The lint rule `wallclock-time` (tools/lint/valentine_lint.py) forbids
/// direct `steady_clock::now()` reads in `src/` outside this directory
/// and `src/core/deadline.*`: deadlines deliberately stay on the real
/// steady clock (they protect wall-clock budgets even under a fake
/// timing source), while every *measurement* flows through a Clock.

#include <atomic>
#include <cstdint>

namespace valentine {

/// \brief Monotonic timing source. Implementations must be safe to read
/// from concurrent threads.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds on this clock's monotonic timeline. The epoch is
  /// arbitrary; only differences are meaningful.
  virtual int64_t NowNanos() const = 0;
};

/// Process-wide steady-clock-backed instance (never null, never freed).
const Clock* SteadyClockTimingSource();

/// The caller's clock when injected, the steady clock otherwise — the
/// one-liner every measurement site uses.
inline const Clock& ClockOrSteady(const Clock* clock) {
  return clock != nullptr ? *clock : *SteadyClockTimingSource();
}

/// Milliseconds between two NowNanos() readings of the same clock.
inline double ElapsedMs(int64_t start_ns, int64_t end_ns) {
  return static_cast<double>(end_ns - start_ns) / 1e6;
}

/// \brief Fully controllable clock for tests and reproducibility runs.
///
/// Time only moves when the owner advances it (or via the optional
/// fixed per-read step, which keeps sequential runs deterministic while
/// still producing non-zero durations). Thread-safe.
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t start_ns = 0, int64_t advance_per_read_ns = 0)
      : now_ns_(start_ns), advance_per_read_ns_(advance_per_read_ns) {}

  /// Returns the current fake time, then applies the per-read step.
  int64_t NowNanos() const override {
    return now_ns_.fetch_add(advance_per_read_ns_,
                             std::memory_order_relaxed);
  }

  void AdvanceNanos(int64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }

  void AdvanceMs(double delta_ms) {
    AdvanceNanos(static_cast<int64_t>(delta_ms * 1e6));
  }

 private:
  mutable std::atomic<int64_t> now_ns_;
  int64_t advance_per_read_ns_;
};

}  // namespace valentine

#endif  // VALENTINE_OBS_CLOCK_H_
