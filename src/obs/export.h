#ifndef VALENTINE_OBS_EXPORT_H_
#define VALENTINE_OBS_EXPORT_H_

/// \file export.h
/// Serializers for traces and metrics.
///
/// Two trace formats from the same `SpanRecord`s:
///  - Chrome trace-event JSON (`chrome://tracing` / Perfetto): complete
///    "X" events with microsecond timestamps. Thread ids are *virtual* —
///    each trace id gets a deterministic tid from its rank in the sorted
///    trace-id set — so the layout is stable across runs instead of
///    leaking OS thread ids.
///  - Compact JSONL: one object per span, sorted by (trace_id, seq).
///    Experiment spans carry the journal key as their trace_id, so this
///    file joins line-for-line with the crash-resume journal.
///
/// All serializers are pure functions of their input; under a FakeClock
/// their output is byte-reproducible (DESIGN.md §10).

#include <string>
#include <vector>

#include "core/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace valentine {

/// Chrome trace-event JSON ({"traceEvents":[...]}) from a span snapshot.
std::string ToChromeTraceJson(const std::vector<SpanRecord>& spans);

/// One JSON object per line, sorted by (trace_id, seq).
std::string ToTraceJsonl(const std::vector<SpanRecord>& spans);

/// Counter values as a JSON object (machine-readable companion to the
/// Prometheus text form, which also carries gauges and histograms).
std::string ToMetricsJson(const MetricsRegistry& metrics);

/// Writes `text` to `path`, creating/truncating it.
Status WriteTextFile(const std::string& text, const std::string& path);

}  // namespace valentine

#endif  // VALENTINE_OBS_EXPORT_H_
