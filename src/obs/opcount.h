#ifndef VALENTINE_OBS_OPCOUNT_H_
#define VALENTINE_OBS_OPCOUNT_H_

/// \file opcount.h
/// Zero-cost-when-disabled operation counters for the score-side hot
/// kernels (banded Levenshtein cells, bag-distance prefilter outcomes,
/// MinHash hash evaluations, n-gram emissions, EMD sweep iterations).
///
/// The counters exist so the SIMD/cache-layout work planned for the
/// kernels (ROADMAP item 2) has an *algorithmic* regression fence in
/// addition to wall-clock timings: a rewrite that silently visits more
/// DP cells or loses a prefilter shows up as an exact op-count diff in
/// `tools/perf_gate` even on noisy CI hardware, where ns/op alone would
/// need a wide tolerance band.
///
/// Enablement is compile-time only, so the release hot paths carry no
/// branches, loads, or atomics for this layer:
///   - debug builds (no NDEBUG): always enabled;
///   - release builds: disabled unless VALENTINE_OPCOUNT=1 (the CMake
///     option VALENTINE_OPCOUNT adds the definition; the CI perf-gate
///     job builds Release with it ON).
/// When disabled every function below is an empty inline that constant
/// folds away. Instrumented kernels accumulate into plain locals and
/// call Add() once per kernel invocation (never per cell), so even the
/// enabled configuration perturbs timings by at most one thread-local
/// add per call.
///
/// Counters are thread-local: kernels touch a plain (non-atomic)
/// per-thread array, so instrumentation can never introduce contention
/// or alter cross-thread timing. Aggregation across threads is the
/// caller's job — the harness snapshots deltas around each experiment
/// on the worker thread that ran it and folds them into the
/// MetricsRegistry (`valentine_opcount_total{family,op}`), which is the
/// sanctioned exclusion point from report byte-identity. Counting has
/// no effect on any score or ranking byte.

#include <array>
#include <cstdint>
#include <string>

#if !defined(NDEBUG) || (defined(VALENTINE_OPCOUNT) && VALENTINE_OPCOUNT)
#define VALENTINE_OPCOUNT_ENABLED 1
#else
#define VALENTINE_OPCOUNT_ENABLED 0
#endif

namespace valentine {
namespace opcount {

/// Counted operations. Order is the canonical export order; names come
/// from OpName() and are stable identifiers used in BENCH_kernels.json
/// and metric labels — do not renumber.
enum class Op : int {
  kLevenshteinCells = 0,   ///< DP cells visited (full + banded kernels)
  kBagPrefilterHits = 1,   ///< bag-distance gate pruned a pair
  kBagPrefilterMisses = 2, ///< bag-distance gate passed a pair through
  kMinHashHashes = 3,      ///< per-(value, slot) hash evaluations
  kNGramEmissions = 4,     ///< character n-grams emitted
  kEmdSweepIterations = 5, ///< merged-support positions swept
};

inline constexpr int kNumOps = 6;

/// True when this translation unit was built with counting compiled in.
inline constexpr bool kEnabled = (VALENTINE_OPCOUNT_ENABLED == 1);

/// Stable snake_case name for an op (metric label / JSON key).
const char* OpName(Op op);

/// All ops in canonical (enum) order, for iteration by exporters.
const std::array<Op, kNumOps>& AllOps();

/// Value snapshot of every counter, comparable and subtractable.
struct Snapshot {
  std::array<uint64_t, kNumOps> counts{};

  uint64_t value(Op op) const {
    return counts[static_cast<size_t>(static_cast<int>(op))];
  }
  /// Per-op difference `*this - since` (callers pair snapshots taken on
  /// the same thread, so counts are monotone between them).
  Snapshot DeltaSince(const Snapshot& since) const {
    Snapshot d;
    for (size_t i = 0; i < counts.size(); ++i) {
      d.counts[i] = counts[i] - since.counts[i];
    }
    return d;
  }
  bool AnyNonZero() const {
    for (uint64_t v : counts) {
      if (v != 0) return true;
    }
    return false;
  }
};

#if VALENTINE_OPCOUNT_ENABLED

namespace internal {
/// Plain thread-local slots; no atomics, no false sharing with other
/// threads. C++17 inline variable so the header stays self-contained.
inline thread_local std::array<uint64_t, kNumOps> tls_counts{};
}  // namespace internal

inline void Add(Op op, uint64_t n) {
  internal::tls_counts[static_cast<size_t>(static_cast<int>(op))] += n;
}

inline Snapshot ThreadSnapshot() {
  Snapshot s;
  s.counts = internal::tls_counts;
  return s;
}

inline void ResetThread() { internal::tls_counts.fill(0); }

#else  // !VALENTINE_OPCOUNT_ENABLED

inline void Add(Op, uint64_t) {}
inline Snapshot ThreadSnapshot() { return Snapshot{}; }
inline void ResetThread() {}

#endif  // VALENTINE_OPCOUNT_ENABLED

}  // namespace opcount
}  // namespace valentine

#endif  // VALENTINE_OBS_OPCOUNT_H_
