#ifndef VALENTINE_OBS_METRICS_H_
#define VALENTINE_OBS_METRICS_H_

/// \file metrics.h
/// Counters, gauges, and fixed-bucket histograms with Prometheus text
/// exposition.
///
/// Before this registry existed, operational counters grew ad-hoc: the
/// artifact-cache hit/miss/build stats rode on `CampaignReport` as
/// one-off fields and the failure taxonomy was re-aggregated with local
/// `std::map`s in every layer. The registry is the one place such
/// numbers live: the harness increments labelled series, the campaign's
/// canonical report is derived from it where the values are
/// deterministic (failure taxonomy), and everything interleaving-
/// dependent (cache hit/miss splits, runtime histograms) is exported
/// *only* here — the single exclusion point from the report
/// byte-identity contract.
///
/// Determinism: export paths never iterate an unordered container —
/// series live in a `std::map` keyed by (name, serialized labels), so
/// `RenderPrometheusText()` is byte-stable given equal counter values
/// (which a fake-clock single-threaded run guarantees).
///
/// Thread-safety: all methods are safe for concurrent callers; counter
/// and histogram updates are atomic after the series is created.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"

namespace valentine {

/// Label set of one series; sorted by key on registration.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram (Prometheus semantics: `le` upper
/// bounds, implicit +Inf, cumulative on export).
class Histogram {
 public:
  /// `bounds` must be strictly increasing; an implicit +Inf bucket is
  /// appended.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  /// Per-bucket (non-cumulative) counts, +Inf last.
  std::vector<uint64_t> bucket_counts() const;
  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Adds another histogram's observations; bounds must match.
  void MergeFrom(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets (milliseconds) for experiment runtimes.
const std::vector<double>& DefaultLatencyBucketsMs();

/// \brief Registry of named, labelled series.
///
/// Series handles returned by *For() are stable for the registry's
/// lifetime; hot paths cache the pointer and update lock-free. A name
/// must stick to one instrument kind (the kind of its first
/// registration wins; a mismatched re-registration returns the existing
/// series of that name only if kinds agree, nullptr otherwise).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* CounterFor(const std::string& name,
                      const MetricLabels& labels = {}) EXCLUDES(mu_);
  Gauge* GaugeFor(const std::string& name, const MetricLabels& labels = {})
      EXCLUDES(mu_);
  Histogram* HistogramFor(
      const std::string& name, const MetricLabels& labels = {},
      const std::vector<double>& bounds = DefaultLatencyBucketsMs())
      EXCLUDES(mu_);

  /// Optional `# HELP` text for a metric name.
  void SetHelp(const std::string& name, const std::string& help)
      EXCLUDES(mu_);

  /// Current value of a counter series; 0 when absent.
  uint64_t CounterValue(const std::string& name,
                        const MetricLabels& labels = {}) const EXCLUDES(mu_);

  struct CounterSample {
    std::string name;
    MetricLabels labels;  ///< sorted by key
    uint64_t value = 0;
  };
  /// All counter series, sorted by (name, serialized labels).
  std::vector<CounterSample> CounterSamples() const EXCLUDES(mu_);

  /// Adds `other`'s counters and histogram observations into this
  /// registry and overwrites gauges — campaign-scoped registries merge
  /// into a long-lived one this way. Snapshots `other` under its lock,
  /// then applies under ours: the two locks are never held together, so
  /// same-rank acquisition is legal and A.MergeFrom(B) cannot deadlock
  /// against a concurrent B.MergeFrom(A).
  void MergeFrom(const MetricsRegistry& other)
      EXCLUDES(mu_, other.mu_);

  /// Prometheus text exposition format, byte-deterministic given equal
  /// series values: metric names sorted, series sorted by label string,
  /// doubles rendered with %.17g.
  std::string RenderPrometheusText() const EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    Kind kind;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable Mutex mu_{LockRank::kMetrics, "MetricsRegistry"};
  /// name -> (serialized labels -> series). Ordered maps: export paths
  /// iterate them. The maps are guarded; the Counter/Gauge/Histogram
  /// objects they own are updated lock-free through stable pointers
  /// (atomics), which is exactly why hot paths may cache the handles.
  std::map<std::string, std::map<std::string, Series>> series_
      GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ GUARDED_BY(mu_);
};

}  // namespace valentine

#endif  // VALENTINE_OBS_METRICS_H_
