#include "obs/clock.h"

#include <chrono>

namespace valentine {

namespace {

class SteadyClock final : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

}  // namespace

const Clock* SteadyClockTimingSource() {
  static const SteadyClock* kInstance = new SteadyClock();
  return kInstance;
}

}  // namespace valentine
