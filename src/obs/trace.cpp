#include "obs/trace.h"

#include <algorithm>

namespace valentine {

uint64_t DeriveSpanId(const std::string& trace_id, uint64_t seq) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  constexpr uint64_t kPrime = 1099511628211ULL;
  for (unsigned char c : trace_id) {
    h ^= c;
    h *= kPrime;
  }
  h ^= 0x1f;  // separator: ("a",1) must differ from ("a1",<none>)
  h *= kPrime;
  for (int i = 0; i < 8; ++i) {
    h ^= (seq >> (8 * i)) & 0xFF;
    h *= kPrime;
  }
  return h == 0 ? 1 : h;  // 0 is the "no span" sentinel
}

uint64_t Tracer::StartSpan(const std::string& trace_id,
                           const std::string& kind, const std::string& name,
                           uint64_t parent_id) {
  int64_t now = clock_->NowNanos();
  MutexLock lock(&mu_);
  uint64_t seq = next_seq_[trace_id]++;
  SpanRecord span;
  span.trace_id = trace_id;
  span.seq = seq;
  span.span_id = DeriveSpanId(trace_id, seq);
  span.parent_id = parent_id;
  span.kind = kind;
  span.name = name;
  span.start_ns = now;
  span.end_ns = now;
  open_[span.span_id] = spans_.size();
  spans_.push_back(std::move(span));
  return spans_.back().span_id;
}

void Tracer::AddSpanAttribute(uint64_t span_id, const std::string& key,
                              const std::string& value) {
  if (span_id == 0) return;
  MutexLock lock(&mu_);
  auto it = open_.find(span_id);
  if (it == open_.end()) return;
  spans_[it->second].attributes.emplace_back(key, value);
}

void Tracer::EndSpan(uint64_t span_id) {
  if (span_id == 0) return;
  int64_t now = clock_->NowNanos();
  MutexLock lock(&mu_);
  auto it = open_.find(span_id);
  if (it == open_.end()) return;
  spans_[it->second].end_ns = now;
  open_.erase(it);
}

uint64_t Tracer::RecordEvent(
    const std::string& trace_id, const std::string& kind,
    const std::string& name, uint64_t parent_id,
    const std::vector<std::pair<std::string, std::string>>& attributes) {
  uint64_t id = StartSpan(trace_id, kind, name, parent_id);
  for (const auto& [key, value] : attributes) {
    AddSpanAttribute(id, key, value);
  }
  EndSpan(id);
  return id;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  {
    MutexLock lock(&mu_);
    out = spans_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              return a.seq < b.seq;
            });
  return out;
}

size_t Tracer::size() const {
  MutexLock lock(&mu_);
  return spans_.size();
}

}  // namespace valentine
