#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace valentine {

namespace {

/// Adds to an atomic double via CAS (fetch_add on atomic<double> is
/// C++20 but not universally implemented).
void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Prometheus HELP-text escaping: backslash and newline only (the
/// exposition format leaves double quotes raw on HELP lines, unlike
/// label values). Without this, a help string containing a newline
/// splits the line and corrupts the whole exposition.
std::string EscapeHelpText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Serialized form used both as the series map key and in exposition:
/// `{k1="v1",k2="v2"}`, empty string for no labels. Labels are already
/// sorted by key, so equal label sets serialize identically.
std::string SerializeLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Like SerializeLabels but with one extra label appended (for
/// histogram `le` buckets).
std::string SerializeLabelsWith(const MetricLabels& labels,
                                const std::string& extra_key,
                                const std::string& extra_value) {
  MetricLabels all = labels;
  all.emplace_back(extra_key, extra_value);
  return SerializeLabels(all);
}

MetricLabels SortedLabels(const MetricLabels& labels) {
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

/// Shortest decimal form that round-trips to the same double, so bucket
/// bounds render the way they were written (le="0.1", not
/// le="0.10000000000000001") while lossy shortening stays impossible.
std::string FormatDouble(double value) {
  char buf[64];
  // Integral values keep their plain form ("10", never "1e+01", no
  // fraction) — the %.*g probe below would otherwise pick the exponent
  // spelling as soon as it round-trips.
  if (std::floor(value) == value && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  for (int precision = 1; precision < 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  size_t bucket = bounds_.size();  // +Inf by default
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

void Histogram::MergeFrom(const Histogram& other) {
  if (other.bounds_ != bounds_) return;  // incompatible shapes: drop
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  AtomicAddDouble(sum_, other.sum());
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double>* kBuckets = new std::vector<double>{
      0.1, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000};
  return *kBuckets;
}

Counter* MetricsRegistry::CounterFor(const std::string& name,
                                     const MetricLabels& labels) {
  MetricLabels sorted = SortedLabels(labels);
  std::string key = SerializeLabels(sorted);
  MutexLock lock(&mu_);
  Series& series = series_[name][key];
  if (series.counter == nullptr) {
    if (series.gauge != nullptr || series.histogram != nullptr) return nullptr;
    series.kind = Kind::kCounter;
    series.labels = std::move(sorted);
    series.counter = std::make_unique<Counter>();
  }
  return series.counter.get();
}

Gauge* MetricsRegistry::GaugeFor(const std::string& name,
                                 const MetricLabels& labels) {
  MetricLabels sorted = SortedLabels(labels);
  std::string key = SerializeLabels(sorted);
  MutexLock lock(&mu_);
  Series& series = series_[name][key];
  if (series.gauge == nullptr) {
    if (series.counter != nullptr || series.histogram != nullptr) {
      return nullptr;
    }
    series.kind = Kind::kGauge;
    series.labels = std::move(sorted);
    series.gauge = std::make_unique<Gauge>();
  }
  return series.gauge.get();
}

Histogram* MetricsRegistry::HistogramFor(const std::string& name,
                                         const MetricLabels& labels,
                                         const std::vector<double>& bounds) {
  MetricLabels sorted = SortedLabels(labels);
  std::string key = SerializeLabels(sorted);
  MutexLock lock(&mu_);
  Series& series = series_[name][key];
  if (series.histogram == nullptr) {
    if (series.counter != nullptr || series.gauge != nullptr) return nullptr;
    series.kind = Kind::kHistogram;
    series.labels = std::move(sorted);
    series.histogram = std::make_unique<Histogram>(bounds);
  }
  return series.histogram.get();
}

void MetricsRegistry::SetHelp(const std::string& name,
                              const std::string& help) {
  MutexLock lock(&mu_);
  help_[name] = help;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const MetricLabels& labels) const {
  std::string key = SerializeLabels(SortedLabels(labels));
  MutexLock lock(&mu_);
  auto by_name = series_.find(name);
  if (by_name == series_.end()) return 0;
  auto it = by_name->second.find(key);
  if (it == by_name->second.end() || it->second.counter == nullptr) return 0;
  return it->second.counter->value();
}

std::vector<MetricsRegistry::CounterSample> MetricsRegistry::CounterSamples()
    const {
  std::vector<CounterSample> out;
  MutexLock lock(&mu_);
  for (const auto& [name, by_labels] : series_) {
    for (const auto& [key, series] : by_labels) {
      if (series.counter == nullptr) continue;
      out.push_back({name, series.labels, series.counter->value()});
    }
  }
  return out;  // series_ maps are ordered, so out is sorted already
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot `other` under its lock, then apply to this registry via the
  // public accessors (which take our lock). Never hold both locks.
  struct Snap {
    std::string name;
    Kind kind;
    MetricLabels labels;
    uint64_t counter_value = 0;
    double gauge_value = 0;
    const Histogram* histogram = nullptr;  // stable for other's lifetime
  };
  std::vector<Snap> snaps;
  std::vector<std::pair<std::string, std::string>> helps;
  {
    MutexLock lock(&other.mu_);
    for (const auto& [name, by_labels] : other.series_) {
      for (const auto& [key, series] : by_labels) {
        Snap snap;
        snap.name = name;
        snap.kind = series.kind;
        snap.labels = series.labels;
        if (series.counter != nullptr) {
          snap.counter_value = series.counter->value();
        } else if (series.gauge != nullptr) {
          snap.gauge_value = series.gauge->value();
        } else if (series.histogram != nullptr) {
          snap.histogram = series.histogram.get();
        }
        snaps.push_back(std::move(snap));
      }
    }
    helps.assign(other.help_.begin(), other.help_.end());
  }
  {
    MutexLock lock(&mu_);
    for (auto& [name, help] : helps) {
      if (help_.find(name) == help_.end()) help_[name] = std::move(help);
    }
  }
  for (const Snap& snap : snaps) {
    switch (snap.kind) {
      case Kind::kCounter: {
        Counter* c = CounterFor(snap.name, snap.labels);
        if (c != nullptr && snap.counter_value > 0) {
          c->Increment(snap.counter_value);
        }
        break;
      }
      case Kind::kGauge: {
        Gauge* g = GaugeFor(snap.name, snap.labels);
        if (g != nullptr) g->Set(snap.gauge_value);
        break;
      }
      case Kind::kHistogram: {
        if (snap.histogram == nullptr) break;
        Histogram* h =
            HistogramFor(snap.name, snap.labels, snap.histogram->bounds());
        if (h != nullptr) h->MergeFrom(*snap.histogram);
        break;
      }
    }
  }
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::string out;
  MutexLock lock(&mu_);
  for (const auto& [name, by_labels] : series_) {
    if (by_labels.empty()) continue;
    auto help_it = help_.find(name);
    if (help_it != help_.end()) {
      out += "# HELP " + name + " " + EscapeHelpText(help_it->second) + "\n";
    }
    switch (by_labels.begin()->second.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        break;
      case Kind::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        break;
    }
    for (const auto& [key, series] : by_labels) {
      if (series.counter != nullptr) {
        out += name + key + " " + std::to_string(series.counter->value()) +
               "\n";
      } else if (series.gauge != nullptr) {
        out += name + key + " " + FormatDouble(series.gauge->value()) + "\n";
      } else if (series.histogram != nullptr) {
        const Histogram& h = *series.histogram;
        std::vector<uint64_t> counts = h.bucket_counts();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds().size(); ++i) {
          cumulative += counts[i];
          out += name + "_bucket" +
                 SerializeLabelsWith(series.labels, "le",
                                     FormatDouble(h.bounds()[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        cumulative += counts[h.bounds().size()];
        out += name + "_bucket" +
               SerializeLabelsWith(series.labels, "le", "+Inf") + " " +
               std::to_string(cumulative) + "\n";
        out += name + "_sum" + key + " " + FormatDouble(h.sum()) + "\n";
        out += name + "_count" + key + " " + std::to_string(h.count()) + "\n";
      }
    }
  }
  return out;
}

}  // namespace valentine
