#ifndef VALENTINE_OBS_TRACE_H_
#define VALENTINE_OBS_TRACE_H_

/// \file trace.h
/// Deterministic span-based tracing.
///
/// A campaign is a tree of timed operations — campaign → family →
/// experiment → attempt → prepare/score, with cache builds and backoff
/// waits hanging off it — and per-stage visibility is what makes the
/// suite tunable (the paper's efficiency results are exactly such a
/// breakdown). A `Tracer` records that tree as `SpanRecord`s.
///
/// Determinism contract (DESIGN.md §10): span ids carry no randomness
/// and no addresses. Every span belongs to a trace (the harness uses
/// the experiment's journal key as its trace id, so traces join with
/// the crash-resume journal), gets the next per-trace sequence number,
/// and derives its id as FNV-1a(trace_id, seq). Two runs that perform
/// the same work produce the same ids; under a FakeClock the entire
/// serialized trace is byte-identical run to run (single-threaded —
/// with worker threads the *per-trace* spans are still deterministic,
/// but cache-build spans land on whichever thread lost the build race).
///
/// Thread-safety: all Tracer methods are safe for concurrent callers;
/// span timestamps come from the tracer's injected Clock.

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "core/thread_annotations.h"
#include "obs/clock.h"

namespace valentine {

/// One completed (or still-open) span.
struct SpanRecord {
  std::string trace_id;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root; may point into another trace
  std::string kind;        ///< taxonomy: "campaign", "experiment", ...
  std::string name;
  uint64_t seq = 0;        ///< per-trace sequence number (id source)
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  /// Insertion-ordered key/value annotations.
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Deterministic span id: FNV-1a over (trace_id, seq). Never 0.
uint64_t DeriveSpanId(const std::string& trace_id, uint64_t seq);

/// \brief Append-only span sink with deterministic ids.
class Tracer {
 public:
  /// `clock` is borrowed; nullptr = process steady clock.
  explicit Tracer(const Clock* clock = nullptr)
      : clock_(&ClockOrSteady(clock)) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span and returns its id (never 0).
  uint64_t StartSpan(const std::string& trace_id, const std::string& kind,
                     const std::string& name, uint64_t parent_id = 0)
      EXCLUDES(mu_);

  /// Annotates a still-open span; no-op once it ended (or for id 0).
  void AddSpanAttribute(uint64_t span_id, const std::string& key,
                        const std::string& value) EXCLUDES(mu_);

  /// Closes a span, stamping its end time. No-op for id 0 or unknown ids.
  void EndSpan(uint64_t span_id) EXCLUDES(mu_);

  /// Records a zero-duration point event as a closed span; returns its id.
  uint64_t RecordEvent(
      const std::string& trace_id, const std::string& kind,
      const std::string& name, uint64_t parent_id,
      const std::vector<std::pair<std::string, std::string>>& attributes = {})
      EXCLUDES(mu_);

  /// All spans recorded so far, sorted by (trace_id, seq) — an order
  /// independent of thread interleaving. Still-open spans are reported
  /// with end_ns = start_ns.
  std::vector<SpanRecord> Snapshot() const EXCLUDES(mu_);

  size_t size() const EXCLUDES(mu_);

  const Clock& clock() const { return *clock_; }

 private:
  const Clock* const clock_;  // lint:allow(guarded-by-coverage) immutable
  mutable Mutex mu_{LockRank::kTracer, "Tracer"};
  std::vector<SpanRecord> spans_ GUARDED_BY(mu_);
  /// Next sequence number per trace id (sorted map: deterministic and
  /// never iterated on an export path anyway).
  std::map<std::string, uint64_t> next_seq_ GUARDED_BY(mu_);
  /// Open span id -> index into spans_. Lookup only, never iterated.
  std::unordered_map<uint64_t, size_t> open_ GUARDED_BY(mu_);
};

/// \brief RAII span: starts on construction, ends on destruction.
///
/// Inert when constructed with a null tracer (id() == 0, every method a
/// no-op), so call sites thread observability through unconditionally.
class SpanScope {
 public:
  SpanScope() = default;
  SpanScope(Tracer* tracer, const std::string& trace_id,
            const std::string& kind, const std::string& name,
            uint64_t parent_id = 0)
      : tracer_(tracer),
        id_(tracer != nullptr
                ? tracer->StartSpan(trace_id, kind, name, parent_id)
                : 0) {}

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  SpanScope(SpanScope&& other) noexcept
      : tracer_(other.tracer_), id_(other.id_) {
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  SpanScope& operator=(SpanScope&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      id_ = other.id_;
      other.tracer_ = nullptr;
      other.id_ = 0;
    }
    return *this;
  }

  ~SpanScope() { End(); }

  /// The span id to parent children on (0 when inert).
  uint64_t id() const { return id_; }

  void Attr(const std::string& key, const std::string& value) {
    if (tracer_ != nullptr) tracer_->AddSpanAttribute(id_, key, value);
  }

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void End() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
    tracer_ = nullptr;
    id_ = 0;
  }

 private:
  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace valentine

#endif  // VALENTINE_OBS_TRACE_H_
