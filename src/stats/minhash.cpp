#include "stats/minhash.h"

#include <limits>

#include "obs/opcount.h"

namespace valentine {

namespace {
uint64_t Fnv1a64(const std::string& s, uint64_t seed) {
  uint64_t hash = 1469598103934665603ULL ^ (seed * 0x9e3779b97f4a7c15ULL);
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  // Final avalanche so per-seed hash families are well mixed.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdULL;
  hash ^= hash >> 33;
  return hash;
}
}  // namespace

MinHashSignature MinHashSignature::Build(
    const std::unordered_set<std::string>& set, size_t num_hashes) {
  MinHashSignature sig;
  sig.mins_.assign(num_hashes, std::numeric_limits<uint64_t>::max());
  sig.empty_set_ = set.empty();
  opcount::Add(opcount::Op::kMinHashHashes,
               static_cast<uint64_t>(set.size()) * num_hashes);
  // Per-slot min is commutative: any iteration order yields the same
  // signature.
  for (const std::string& s : set) {  // lint:allow(unordered-iteration)
    for (size_t h = 0; h < num_hashes; ++h) {
      uint64_t v = Fnv1a64(s, h);
      if (v < sig.mins_[h]) sig.mins_[h] = v;
    }
  }
  return sig;
}

MinHashSignature MinHashSignature::FromMins(std::vector<uint64_t> mins,
                                            bool empty_set) {
  MinHashSignature sig;
  sig.mins_ = std::move(mins);
  sig.empty_set_ = empty_set;
  return sig;
}

double MinHashSignature::EstimateJaccard(const MinHashSignature& other) const {
  if (empty_set_ && other.empty_set_) return 1.0;
  if (empty_set_ || other.empty_set_) return 0.0;
  if (mins_.size() != other.mins_.size() || mins_.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < mins_.size(); ++i) {
    if (mins_[i] == other.mins_[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(mins_.size());
}

}  // namespace valentine
