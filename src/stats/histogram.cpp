#include "stats/histogram.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>

namespace valentine {

QuantileHistogram QuantileHistogram::Build(std::vector<double> data,
                                           size_t num_bins) {
  QuantileHistogram h;
  if (data.empty() || num_bins == 0) return h;
  std::sort(data.begin(), data.end());
  h.min_ = data.front();
  h.max_ = data.back();
  const size_t n = data.size();
  const size_t bins = std::min(num_bins, n);
  h.centers_.reserve(bins);
  h.masses_.reserve(bins);
  for (size_t b = 0; b < bins; ++b) {
    size_t lo = b * n / bins;
    size_t hi = (b + 1) * n / bins;
    if (hi <= lo) continue;
    double sum = 0.0;
    for (size_t i = lo; i < hi; ++i) sum += data[i];
    h.centers_.push_back(sum / static_cast<double>(hi - lo));
    h.masses_.push_back(static_cast<double>(hi - lo) /
                        static_cast<double>(n));
  }
  return h;
}

namespace {
uint64_t Fnv1a(const std::string& s) {
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}
}  // namespace

namespace {
/// Recognizes "YYYY-MM-DD" (optionally followed by a time suffix) and
/// returns its ordinal position on the timeline; dates are a numeric
/// domain for distribution comparison, not opaque strings.
bool ParseIsoDatePrefix(const std::string& s, double* out) {
  if (s.size() < 10) return false;
  auto digit = [&](size_t i) {
    return s[i] >= '0' && s[i] <= '9';
  };
  if (!(digit(0) && digit(1) && digit(2) && digit(3) && s[4] == '-' &&
        digit(5) && digit(6) && s[7] == '-' && digit(8) && digit(9))) {
    return false;
  }
  if (s.size() > 10 && s[10] != ' ' && s[10] != 'T') return false;
  int year = (s[0] - '0') * 1000 + (s[1] - '0') * 100 + (s[2] - '0') * 10 +
             (s[3] - '0');
  int month = (s[5] - '0') * 10 + (s[6] - '0');
  int day = (s[8] - '0') * 10 + (s[9] - '0');
  *out = year * 372.0 + (month - 1) * 31.0 + (day - 1);
  return true;
}
}  // namespace

double ValueToPoint(const std::string& value) {
  if (!value.empty()) {
    double date_point;
    if (ParseIsoDatePrefix(value, &date_point)) return date_point;
    const char* begin = value.c_str();
    char* end = nullptr;
    double d = std::strtod(begin, &end);
    if (end == begin + value.size()) return d;
  }
  // Non-numeric: deterministic point in [0, 1e6).
  return static_cast<double>(Fnv1a(value) % 1000000ULL);
}

std::vector<double> ValuesToPoints(const std::vector<std::string>& values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (const auto& v : values) out.push_back(ValueToPoint(v));
  return out;
}

}  // namespace valentine
