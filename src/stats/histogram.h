#ifndef VALENTINE_STATS_HISTOGRAM_H_
#define VALENTINE_STATS_HISTOGRAM_H_

/// \file histogram.h
/// Quantile histograms over column value sets, as used by the
/// distribution-based matcher (Zhang et al., SIGMOD 2011). Values are
/// mapped to a numeric domain — numbers directly, strings via a ranking
/// hash — then summarized into equi-depth bins whose boundaries and
/// masses feed the Earth Mover's Distance.

#include <string>
#include <vector>

namespace valentine {

/// \brief An equi-depth (quantile) histogram over doubles.
class QuantileHistogram {
 public:
  /// Builds a histogram with at most `num_bins` bins over the data
  /// (fewer bins when there are fewer distinct values). Empty data yields
  /// an empty histogram.
  static QuantileHistogram Build(std::vector<double> data, size_t num_bins);

  size_t num_bins() const { return centers_.size(); }
  bool empty() const { return centers_.empty(); }

  /// Representative value (mean) of bin i.
  double center(size_t i) const { return centers_[i]; }
  /// Probability mass of bin i; masses sum to 1.
  double mass(size_t i) const { return masses_[i]; }

  const std::vector<double>& centers() const { return centers_; }
  const std::vector<double>& masses() const { return masses_; }

  /// Min/max of the underlying data (0 for empty histograms).
  double min_value() const { return min_; }
  double max_value() const { return max_; }

 private:
  /// Reconstruction path for the persistent discovery store
  /// (src/io/artifact_store.*).
  friend class DiscoveryArtifactCodec;

  std::vector<double> centers_;
  std::vector<double> masses_;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stable numeric surrogate for an arbitrary textual value: numeric
/// strings map to their value; other strings map to a deterministic hash
/// folded into a bounded range, so identical strings always land on the
/// same point of the domain (set overlap drives EMD on string columns).
double ValueToPoint(const std::string& value);

/// Maps a column's textual values to points (see ValueToPoint).
std::vector<double> ValuesToPoints(const std::vector<std::string>& values);

}  // namespace valentine

#endif  // VALENTINE_STATS_HISTOGRAM_H_
