#include "stats/column_profile.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace valentine {

namespace {

/// min(cap, full) with cap 0 meaning "unlimited".
size_t EffectiveCap(size_t cap, size_t full) {
  return (cap == 0 || cap > full) ? full : cap;
}

}  // namespace

ColumnProfile ColumnProfile::Build(const Column& column,
                                   const ProfileSpec& spec) {
  ColumnProfile p;
  p.spec_ = spec;

  // One pass over the rows yields the first-seen-order distinct list —
  // the same list every matcher's inline extraction starts from — and
  // every capped artifact is a prefix of it.
  p.distinct_ = column.DistinctStrings();
  p.full_distinct_count_ = p.distinct_.size();

  const size_t set_len = EffectiveCap(spec.set_cap, p.full_distinct_count_);
  p.distinct_set_.reserve(set_len);
  for (size_t i = 0; i < set_len; ++i) p.distinct_set_.insert(p.distinct_[i]);

  const size_t hist_len =
      EffectiveCap(spec.histogram_cap, p.full_distinct_count_);
  std::vector<std::string> hist_vals(p.distinct_.begin(),
                                     p.distinct_.begin() + hist_len);
  p.histogram_ =
      QuantileHistogram::Build(ValuesToPoints(hist_vals), spec.num_bins);

  p.minhash_ = MinHashSignature::Build(p.distinct_set_, spec.minhash_hashes);

  p.text_profile_ = ComputeTextProfile(column);
  p.numeric_stats_ = ComputeNumericStats(column.NumericValues());
  p.numeric_fraction_ = column.NumericFraction();
  p.name_tokens_ = TokenizeIdentifier(column.name());

  if (spec.build_value_ngrams) {
    for (size_t i = 0; i < set_len; ++i) {
      for (auto& g : CharNGrams(p.distinct_[i], spec.ngram_n)) {
        p.value_ngrams_.insert(std::move(g));
      }
    }
  }

  if (spec.distinct_cap != 0 && p.distinct_.size() > spec.distinct_cap) {
    p.distinct_.resize(spec.distinct_cap);
  }
  return p;
}

bool ColumnProfile::CanServeDistinctPrefix(size_t cap) const {
  return EffectiveCap(cap, full_distinct_count_) <= distinct_.size();
}

bool ColumnProfile::CapsEquivalent(size_t cap, size_t artifact_cap) const {
  return EffectiveCap(cap, full_distinct_count_) ==
         EffectiveCap(artifact_cap, full_distinct_count_);
}

size_t ColumnProfile::DistinctPrefixLength(size_t cap) const {
  return std::min(EffectiveCap(cap, full_distinct_count_), distinct_.size());
}

bool ProfileSpecsEqual(const ProfileSpec& a, const ProfileSpec& b) {
  return a.distinct_cap == b.distinct_cap && a.set_cap == b.set_cap &&
         a.histogram_cap == b.histogram_cap && a.num_bins == b.num_bins &&
         a.minhash_hashes == b.minhash_hashes && a.ngram_n == b.ngram_n &&
         a.build_value_ngrams == b.build_value_ngrams;
}

TableProfile TableProfile::Build(const Table& table, const ProfileSpec& spec) {
  TableProfile tp;
  tp.spec_ = spec;
  tp.columns_.reserve(table.num_columns());
  for (const Column& c : table.columns()) {
    tp.columns_.push_back(ColumnProfile::Build(c, spec));
  }
  return tp;
}

std::shared_ptr<const TableProfile> ProfileCache::GetOrBuild(
    const Table& table) {
  {
    MutexLock lock(&mutex_);
    auto it = map_.find(&table);
    if (it != map_.end()) return it->second;
  }
  // Build outside the lock: profiles are pure functions of the table, so
  // a racing duplicate build wastes work but cannot diverge.
  auto built = std::make_shared<const TableProfile>(
      TableProfile::Build(table, spec_));
  MutexLock lock(&mutex_);
  auto [it, inserted] = map_.emplace(&table, std::move(built));
  return it->second;
}

std::shared_ptr<const TableProfile> ProfileCache::GetOrBuild(
    const Table& table, Tracer* tracer, const std::string& trace_id,
    uint64_t parent_span, MetricsRegistry* metrics) {
  std::shared_ptr<const TableProfile> hit;
  {
    MutexLock lock(&mutex_);
    auto it = map_.find(&table);
    if (it != map_.end()) hit = it->second;
  }
  if (hit != nullptr) {
    // Counter bump deliberately outside the critical section: the
    // registry takes its own lock, and cache locks stay leaf-level —
    // no lock is ever acquired while a cache mutex is held (DESIGN.md
    // §11 lock-rank table).
    if (metrics != nullptr) {
      metrics->CounterFor("valentine_profile_cache_hits_total")->Increment();
    }
    return hit;
  }
  SpanScope build_span(tracer, trace_id, "cache-build",
                       "profile/" + table.name(), parent_span);
  build_span.Attr("cache", "profile");
  std::shared_ptr<const TableProfile> result = GetOrBuild(table);
  if (metrics != nullptr) {
    metrics->CounterFor("valentine_profile_cache_builds_total")->Increment();
  }
  return result;
}

size_t ProfileCache::size() const {
  MutexLock lock(&mutex_);
  return map_.size();
}

}  // namespace valentine
