#include "stats/descriptive.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace valentine {

NumericStats ComputeNumericStats(std::vector<double> data) {
  NumericStats s;
  s.count = data.size();
  if (data.empty()) return s;
  double sum = 0.0;
  for (double d : data) sum += d;
  s.mean = sum / static_cast<double>(data.size());
  double var = 0.0;
  for (double d : data) var += (d - s.mean) * (d - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(data.size()));
  std::sort(data.begin(), data.end());
  s.min = data.front();
  s.max = data.back();
  size_t mid = data.size() / 2;
  s.median = (data.size() % 2 == 1)
                 ? data[mid]
                 : 0.5 * (data[mid - 1] + data[mid]);
  return s;
}

TextProfile ComputeTextProfile(const Column& column) {
  TextProfile p;
  size_t total_chars = 0;
  size_t digits = 0;
  size_t alphas = 0;
  size_t spaces = 0;
  std::vector<double> lengths;
  std::unordered_set<std::string> distinct;
  for (const Value& v : column.values()) {
    if (v.is_null()) continue;
    std::string s = v.AsString();
    ++p.count;
    lengths.push_back(static_cast<double>(s.size()));
    total_chars += s.size();
    for (unsigned char c : s) {
      if (std::isdigit(c)) ++digits;
      else if (std::isalpha(c)) ++alphas;
      else if (std::isspace(c)) ++spaces;
    }
    distinct.insert(std::move(s));
  }
  if (p.count == 0) return p;
  NumericStats len_stats = ComputeNumericStats(std::move(lengths));
  p.mean_length = len_stats.mean;
  p.stddev_length = len_stats.stddev;
  if (total_chars > 0) {
    p.digit_fraction = static_cast<double>(digits) / total_chars;
    p.alpha_fraction = static_cast<double>(alphas) / total_chars;
    p.space_fraction = static_cast<double>(spaces) / total_chars;
  }
  p.distinct_ratio = static_cast<double>(distinct.size()) /
                     static_cast<double>(p.count);
  return p;
}

namespace {
/// 1 - |a-b| / max(|a|,|b|,eps), clamped to [0,1].
double InverseRelativeDiff(double a, double b) {
  double denom = std::max({std::abs(a), std::abs(b), 1e-9});
  double sim = 1.0 - std::abs(a - b) / denom;
  return std::clamp(sim, 0.0, 1.0);
}
}  // namespace

double NumericStatsSimilarity(const NumericStats& a, const NumericStats& b) {
  if (a.count == 0 || b.count == 0) return 0.0;
  double sim = 0.0;
  sim += InverseRelativeDiff(a.mean, b.mean);
  sim += InverseRelativeDiff(a.stddev, b.stddev);
  sim += InverseRelativeDiff(a.max - a.min, b.max - b.min);
  sim += InverseRelativeDiff(a.median, b.median);
  return sim / 4.0;
}

double TextProfileSimilarity(const TextProfile& a, const TextProfile& b) {
  if (a.count == 0 || b.count == 0) return 0.0;
  double sim = 0.0;
  sim += InverseRelativeDiff(a.mean_length, b.mean_length);
  sim += 1.0 - std::abs(a.digit_fraction - b.digit_fraction);
  sim += 1.0 - std::abs(a.alpha_fraction - b.alpha_fraction);
  sim += 1.0 - std::abs(a.space_fraction - b.space_fraction);
  sim += 1.0 - std::abs(a.distinct_ratio - b.distinct_ratio);
  return sim / 5.0;
}

}  // namespace valentine
