#ifndef VALENTINE_STATS_EMD_H_
#define VALENTINE_STATS_EMD_H_

/// \file emd.h
/// Earth Mover's Distance between 1-D distributions. For distributions on
/// the real line with equal total mass, EMD has a closed form: the L1
/// distance between the CDFs integrated over the merged support. This is
/// exactly what the distribution-based matcher needs — no general LP
/// solver is required in this step (the ILP appears only in its final
/// cluster-selection step).

#include <vector>

#include "stats/histogram.h"

namespace valentine {

/// A weighted point mass.
struct MassPoint {
  double position;
  double mass;
};

/// EMD between two discrete 1-D distributions with equal total mass
/// (each is normalized internally). Returns 0 for two empty inputs and
/// +inf-like large value when exactly one is empty.
double EmdPointMasses(std::vector<MassPoint> a, std::vector<MassPoint> b);

/// EMD between two quantile histograms, computed on a domain normalized
/// to [0, 1] by the joint min/max so columns with different scales remain
/// comparable (mirrors the matcher's normalization).
double EmdBetweenHistograms(const QuantileHistogram& a,
                            const QuantileHistogram& b);

}  // namespace valentine

#endif  // VALENTINE_STATS_EMD_H_
