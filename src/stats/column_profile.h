#ifndef VALENTINE_STATS_COLUMN_PROFILE_H_
#define VALENTINE_STATS_COLUMN_PROFILE_H_

/// \file column_profile.h
/// Shared, immutable per-column profiles.
///
/// Table IV of the paper shows instance-based matcher cost growing with
/// value counts, and every instance-based matcher in this repo used to
/// re-derive the same per-column artifacts (distinct values, value sets,
/// quantile histograms, MinHash sketches, text/numeric statistics) from
/// scratch inside each Match call — once per grid configuration, per
/// family, per campaign. A ColumnProfile computes each artifact once per
/// column; the harness threads profiles through MatchContext so every
/// configuration of every family reuses them.
///
/// Contracts (DESIGN.md §8):
///  * Profiles are immutable after Build and safe to share across
///    threads without synchronization.
///  * Every artifact is computed exactly as the matchers would compute
///    it inline (same first-seen-order capping, same hash functions),
///    so consuming a profile is byte-identical to not consuming one.
///    Matchers verify cap/parameter compatibility via CanServe* before
///    consuming and fall back to inline extraction otherwise.
///  * ProfileCache borrows its tables: a cached profile is keyed by the
///    Table's address, so the cache must not outlive the suite whose
///    tables it profiles.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/mutex.h"
#include "core/table.h"
#include "core/thread_annotations.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/minhash.h"

namespace valentine {

class Tracer;           // obs/trace.h
class MetricsRegistry;  // obs/metrics.h

/// Parameters the derived artifacts are built with. Defaults mirror the
/// default options of the consuming matchers (COMA / SemProp value-set
/// caps, DistributionBased histogram resolution, SemProp MinHash width),
/// so profiles serve the paper-grid configurations out of the box.
struct ProfileSpec {
  /// Cap on the stored distinct-value list (0 = keep all). Keeping all
  /// lets the profile serve any prefix cap a matcher asks for.
  size_t distinct_cap = 0;
  /// Cap applied when building the distinct-value set and MinHash
  /// sketch (matches ComaOptions::max_distinct_values and
  /// SemPropOptions::max_values).
  size_t set_cap = 1000;
  /// Cap applied when building the quantile histogram (matches
  /// DistributionBasedOptions::max_values).
  size_t histogram_cap = 5000;
  /// Histogram resolution (matches DistributionBasedOptions::num_bins).
  size_t num_bins = 32;
  /// MinHash permutations (matches SemPropOptions::minhash_hashes).
  size_t minhash_hashes = 128;
  /// Character n-gram length for the optional value n-gram set.
  size_t ngram_n = 3;
  /// Value n-gram sets are an opt-in artifact: nothing on the default
  /// match path consumes them yet, so default builds skip the cost.
  bool build_value_ngrams = false;
};

/// \brief All per-column artifacts the instance-based matchers share.
class ColumnProfile {
 public:
  /// Profiles one column under the spec. Pure function of (column, spec).
  static ColumnProfile Build(const Column& column, const ProfileSpec& spec);

  /// Distinct textual values in first-seen row order, capped at
  /// spec.distinct_cap (0 = complete).
  const std::vector<std::string>& distinct() const { return distinct_; }
  /// Number of distinct values before the storage cap was applied.
  size_t full_distinct_count() const { return full_distinct_count_; }

  /// Distinct values as a set, built from the first spec.set_cap
  /// distinct values.
  const std::unordered_set<std::string>& distinct_set() const {
    return distinct_set_;
  }

  /// Equi-depth histogram over the first spec.histogram_cap distinct
  /// values (via ValuesToPoints), spec.num_bins bins.
  const QuantileHistogram& histogram() const { return histogram_; }

  /// MinHash sketch of distinct_set(), spec.minhash_hashes permutations.
  const MinHashSignature& minhash() const { return minhash_; }

  /// Character/length profile of all non-null cells.
  const TextProfile& text_profile() const { return text_profile_; }
  /// Moments of all numeric-parseable cells.
  const NumericStats& numeric_stats() const { return numeric_stats_; }
  /// Fraction of non-null cells that parse as numbers.
  double numeric_fraction() const { return numeric_fraction_; }

  /// Identifier tokens of the column name (lower-cased, split on
  /// case/separator boundaries).
  const std::vector<std::string>& name_tokens() const { return name_tokens_; }

  /// Union of padded character n-grams over the first spec.set_cap
  /// distinct values; empty unless spec.build_value_ngrams.
  const std::unordered_set<std::string>& value_ngrams() const {
    return value_ngrams_;
  }

  /// True when a matcher that caps distinct values at `cap` (0 =
  /// unlimited) can take its list as a prefix of distinct(): the prefix
  /// is exactly what Column::DistinctStrings() + resize(cap) yields.
  bool CanServeDistinctPrefix(size_t cap) const;

  /// True when a matcher capping at `cap` would build exactly the value
  /// list an artifact built with `artifact_cap` was derived from — the
  /// condition under which the cached set / histogram / MinHash sketch
  /// is bit-compatible with inline extraction.
  bool CapsEquivalent(size_t cap, size_t artifact_cap) const;

  /// The first min(cap, size) distinct values (cap 0 = all). Returns a
  /// view-like pair (pointer to distinct(), length) — callers that need
  /// a real vector copy the prefix.
  size_t DistinctPrefixLength(size_t cap) const;

  const ProfileSpec& spec() const { return spec_; }

 private:
  /// The persistent discovery store (src/io/artifact_store.*) needs to
  /// reconstruct profiles field-by-field from their canonical
  /// serialization; the codec is the single sanctioned backdoor.
  friend class DiscoveryArtifactCodec;

  std::vector<std::string> distinct_;
  size_t full_distinct_count_ = 0;
  std::unordered_set<std::string> distinct_set_;
  QuantileHistogram histogram_;
  MinHashSignature minhash_;
  TextProfile text_profile_;
  NumericStats numeric_stats_;
  double numeric_fraction_ = 0.0;
  std::vector<std::string> name_tokens_;
  std::unordered_set<std::string> value_ngrams_;
  ProfileSpec spec_;
};

/// \brief The profiles of every column of one table, plus the spec they
/// were built under. Immutable after Build.
class TableProfile {
 public:
  static TableProfile Build(const Table& table, const ProfileSpec& spec = {});

  size_t num_columns() const { return columns_.size(); }
  const ColumnProfile& column(size_t i) const { return columns_[i]; }
  const ProfileSpec& spec() const { return spec_; }

  /// Sanity guard for matchers: a profile only serves a table with the
  /// same column count (the harness keys profiles by table identity, so
  /// this only fails on caller error).
  bool Matches(const Table& table) const {
    return columns_.size() == table.num_columns();
  }

 private:
  friend class DiscoveryArtifactCodec;  ///< see ColumnProfile

  std::vector<ColumnProfile> columns_;
  ProfileSpec spec_;
};

/// Field-wise equality of two specs — the compatibility gate the
/// persistent store uses before serving a stored profile in place of a
/// fresh Build (a profile only substitutes for one built under an
/// identical spec).
bool ProfileSpecsEqual(const ProfileSpec& a, const ProfileSpec& b);

/// \brief Thread-safe build-once cache of TableProfiles, keyed by table
/// identity (address). Borrowed tables must outlive the cache; the
/// harness scopes one cache to one campaign/suite run.
class ProfileCache {
 public:
  explicit ProfileCache(ProfileSpec spec = {}) : spec_(spec) {}
  ProfileCache(const ProfileCache&) = delete;
  ProfileCache& operator=(const ProfileCache&) = delete;

  /// Returns the cached profile for the table, building it on first
  /// request. Concurrent callers for the same table may race to build;
  /// the first insert wins and Build is deterministic, so either result
  /// is identical.
  std::shared_ptr<const TableProfile> GetOrBuild(const Table& table)
      EXCLUDES(mutex_);

  /// Observable variant: on a build (cache miss) emits a "cache-build"
  /// span (attr cache="profile") under `parent_span` in `trace_id`, and
  /// bumps valentine_profile_cache_{hits,builds}_total. All obs
  /// arguments may be null; results are identical either way.
  std::shared_ptr<const TableProfile> GetOrBuild(const Table& table,
                                                 Tracer* tracer,
                                                 const std::string& trace_id,
                                                 uint64_t parent_span,
                                                 MetricsRegistry* metrics)
      EXCLUDES(mutex_);

  const ProfileSpec& spec() const { return spec_; }
  size_t size() const EXCLUDES(mutex_);

 private:
  const ProfileSpec spec_;  // lint:allow(guarded-by-coverage) immutable
  mutable Mutex mutex_{LockRank::kProfileCache, "ProfileCache"};
  std::unordered_map<const Table*, std::shared_ptr<const TableProfile>> map_
      GUARDED_BY(mutex_);
};

}  // namespace valentine

#endif  // VALENTINE_STATS_COLUMN_PROFILE_H_
