#include "stats/emd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/opcount.h"

namespace valentine {

double EmdPointMasses(std::vector<MassPoint> a, std::vector<MassPoint> b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return std::numeric_limits<double>::max();

  auto normalize = [](std::vector<MassPoint>* pts) {
    double total = 0.0;
    for (const auto& p : *pts) total += p.mass;
    if (total > 0.0) {
      for (auto& p : *pts) p.mass /= total;
    }
    std::sort(pts->begin(), pts->end(),
              [](const MassPoint& x, const MassPoint& y) {
                return x.position < y.position;
              });
  };
  normalize(&a);
  normalize(&b);

  // Sweep the merged support accumulating signed surplus; EMD is the
  // integral of |surplus| over position gaps.
  size_t i = 0;
  size_t j = 0;
  double surplus = 0.0;
  double emd = 0.0;
  double prev_pos = 0.0;
  bool first = true;
  uint64_t sweep_iters = 0;
  while (i < a.size() || j < b.size()) {
    ++sweep_iters;
    double pos;
    if (j >= b.size() || (i < a.size() && a[i].position <= b[j].position)) {
      pos = a[i].position;
    } else {
      pos = b[j].position;
    }
    if (!first) emd += std::abs(surplus) * (pos - prev_pos);
    first = false;
    prev_pos = pos;
    while (i < a.size() && a[i].position == pos) surplus += a[i++].mass;
    while (j < b.size() && b[j].position == pos) surplus -= b[j++].mass;
  }
  opcount::Add(opcount::Op::kEmdSweepIterations, sweep_iters);
  return emd;
}

double EmdBetweenHistograms(const QuantileHistogram& a,
                            const QuantileHistogram& b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return std::numeric_limits<double>::max();
  double lo = std::min(a.min_value(), b.min_value());
  double hi = std::max(a.max_value(), b.max_value());
  double span = hi - lo;
  if (span <= 0.0) span = 1.0;
  auto to_points = [&](const QuantileHistogram& h) {
    std::vector<MassPoint> pts;
    pts.reserve(h.num_bins());
    for (size_t i = 0; i < h.num_bins(); ++i) {
      pts.push_back({(h.center(i) - lo) / span, h.mass(i)});
    }
    return pts;
  };
  return EmdPointMasses(to_points(a), to_points(b));
}

}  // namespace valentine
