#ifndef VALENTINE_STATS_DESCRIPTIVE_H_
#define VALENTINE_STATS_DESCRIPTIVE_H_

/// \file descriptive.h
/// Descriptive statistics over columns. COMA's statistics matcher and the
/// instance-feature comparisons use these profiles: numeric moments for
/// number-like columns and length/character-class profiles for text.

#include <string>
#include <vector>

#include "core/column.h"

namespace valentine {

/// Summary of a numeric sample.
struct NumericStats {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes moments and order statistics of a sample.
NumericStats ComputeNumericStats(std::vector<double> data);

/// Character-level profile of a textual column.
struct TextProfile {
  size_t count = 0;
  double mean_length = 0.0;
  double stddev_length = 0.0;
  double digit_fraction = 0.0;   ///< fraction of characters that are digits
  double alpha_fraction = 0.0;   ///< fraction that are letters
  double space_fraction = 0.0;   ///< fraction that are whitespace
  double distinct_ratio = 0.0;   ///< distinct values / values
};

/// Profiles the non-null cells of a column as text.
TextProfile ComputeTextProfile(const Column& column);

/// Similarity in [0,1] of two numeric profiles (inverse normalized
/// difference of mean/stddev/range).
double NumericStatsSimilarity(const NumericStats& a, const NumericStats& b);

/// Similarity in [0,1] of two text profiles.
double TextProfileSimilarity(const TextProfile& a, const TextProfile& b);

}  // namespace valentine

#endif  // VALENTINE_STATS_DESCRIPTIVE_H_
