#ifndef VALENTINE_STATS_MINHASH_H_
#define VALENTINE_STATS_MINHASH_H_

/// \file minhash.h
/// MinHash signatures for fast Jaccard estimation over value sets.
/// SemProp's syntactic matcher filters column pairs by estimated set
/// overlap (its `minh.threshold` parameter) before the semantic stage.

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace valentine {

/// \brief A fixed-width MinHash signature of a string set.
class MinHashSignature {
 public:
  /// Builds a signature with `num_hashes` permutations (seeded
  /// deterministically from the permutation index).
  static MinHashSignature Build(const std::unordered_set<std::string>& set,
                                size_t num_hashes = 128);

  /// Reconstructs a signature from its raw slots (the persistent-store
  /// load path). `empty_set` must be the flag the original Build
  /// recorded: an empty set leaves every slot at the UINT64_MAX
  /// sentinel, and consumers (Jaccard estimation, LSH banding) must be
  /// able to distinguish "empty domain" from a pathological singleton
  /// that genuinely hashed to the sentinel everywhere.
  static MinHashSignature FromMins(std::vector<uint64_t> mins,
                                   bool empty_set);

  /// Estimated Jaccard similarity: fraction of agreeing slots.
  double EstimateJaccard(const MinHashSignature& other) const;

  size_t size() const { return mins_.size(); }
  bool empty_set() const { return empty_set_; }

  /// Raw per-permutation minima (used by LSH banding).
  const std::vector<uint64_t>& mins() const { return mins_; }

 private:
  std::vector<uint64_t> mins_;
  bool empty_set_ = true;
};

}  // namespace valentine

#endif  // VALENTINE_STATS_MINHASH_H_
