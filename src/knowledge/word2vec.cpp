#include "knowledge/word2vec.h"

#include <algorithm>
#include <cmath>

namespace valentine {

Word2Vec::Word2Vec(Word2VecOptions options) : options_(std::move(options)) {}

void Word2Vec::BuildVocab(
    const std::vector<std::vector<std::string>>& sentences) {
  std::unordered_map<std::string, size_t> raw_counts;
  for (const auto& sentence : sentences) {
    for (const auto& word : sentence) ++raw_counts[word];
  }
  // Assign word ids in first-appearance corpus order, not hash order:
  // ids seed the unigram table and every trained vector, so hash-order
  // assignment would make results platform-dependent.
  for (const auto& sentence : sentences) {
    for (const auto& word : sentence) {
      if (raw_counts[word] < options_.min_count) continue;
      if (vocab_.emplace(word, index_to_word_.size()).second) {
        index_to_word_.push_back(word);
        counts_.push_back(raw_counts[word]);
      }
    }
  }
  // Unigram table with the standard 3/4-power smoothing.
  const size_t table_size = std::max<size_t>(vocab_.size() * 16, 1024);
  unigram_table_.clear();
  unigram_table_.reserve(table_size);
  double total = 0.0;
  for (size_t c : counts_) total += std::pow(static_cast<double>(c), 0.75);
  if (total <= 0.0 || vocab_.empty()) return;
  size_t word = 0;
  double cum = std::pow(static_cast<double>(counts_[0]), 0.75) / total;
  for (size_t i = 0; i < table_size; ++i) {
    unigram_table_.push_back(word);
    if (static_cast<double>(i + 1) / table_size > cum &&
        word + 1 < vocab_.size()) {
      ++word;
      cum += std::pow(static_cast<double>(counts_[word]), 0.75) / total;
    }
  }
}

void Word2Vec::InitWeights() {
  Rng rng(options_.seed);
  const size_t dim = options_.dimensions;
  in_weights_.assign(vocab_.size(), Embedding(dim, 0.0f));
  out_weights_.assign(vocab_.size(), Embedding(dim, 0.0f));
  for (auto& row : in_weights_) {
    for (float& v : row) {
      v = static_cast<float>((rng.UniformDouble() - 0.5) / dim);
    }
  }
}

namespace {
double Sigmoid(double x) {
  if (x > 8.0) return 1.0;
  if (x < -8.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}
}  // namespace

void Word2Vec::TrainPair(size_t center, size_t context, double lr, Rng* rng) {
  const size_t dim = options_.dimensions;
  Embedding& v_in = in_weights_[center];
  std::vector<float> grad_in(dim, 0.0f);

  auto update = [&](size_t target, double label) {
    Embedding& v_out = out_weights_[target];
    double dot = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      dot += static_cast<double>(v_in[i]) * v_out[i];
    }
    double g = (label - Sigmoid(dot)) * lr;
    for (size_t i = 0; i < dim; ++i) {
      grad_in[i] += static_cast<float>(g * v_out[i]);
      v_out[i] += static_cast<float>(g * v_in[i]);
    }
  };

  update(context, 1.0);
  for (size_t k = 0; k < options_.negative_samples; ++k) {
    size_t neg = unigram_table_[rng->Index(unigram_table_.size())];
    if (neg == context) continue;
    update(neg, 0.0);
  }
  for (size_t i = 0; i < dim; ++i) v_in[i] += grad_in[i];
}

void Word2Vec::Train(const std::vector<std::vector<std::string>>& sentences) {
  // A default-constructed context never expires, so this cannot fail.
  (void)TrainWithContext(sentences, MatchContext());
}

Status Word2Vec::TrainWithContext(
    const std::vector<std::vector<std::string>>& sentences,
    const MatchContext& context) {
  BuildVocab(sentences);
  if (vocab_.empty() || unigram_table_.empty()) return Status::OK();
  InitWeights();
  Rng rng(options_.seed ^ 0xabcdef12345ULL);

  size_t total_tokens = 0;
  for (const auto& s : sentences) total_tokens += s.size();
  const size_t total_steps =
      std::max<size_t>(1, total_tokens * options_.epochs);
  size_t step = 0;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const auto& sentence : sentences) {
      VALENTINE_RETURN_NOT_OK(context.Check("word2vec epoch"));
      // Map to vocab ids once per sentence.
      std::vector<size_t> ids;
      ids.reserve(sentence.size());
      for (const auto& w : sentence) {
        auto it = vocab_.find(w);
        if (it != vocab_.end()) ids.push_back(it->second);
      }
      for (size_t pos = 0; pos < ids.size(); ++pos) {
        double progress = static_cast<double>(step++) / total_steps;
        double lr = std::max(options_.min_learning_rate,
                             options_.learning_rate * (1.0 - progress));
        size_t window = 1 + rng.Index(options_.window);
        size_t lo = (pos > window) ? pos - window : 0;
        size_t hi = std::min(ids.size(), pos + window + 1);
        for (size_t c = lo; c < hi; ++c) {
          if (c == pos) continue;
          TrainPair(ids[pos], ids[c], lr, &rng);
        }
      }
    }
  }
  return Status::OK();
}

const Embedding* Word2Vec::Vector(const std::string& word) const {
  auto it = vocab_.find(word);
  if (it == vocab_.end()) return nullptr;
  return &in_weights_[it->second];
}

}  // namespace valentine
