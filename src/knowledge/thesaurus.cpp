#include "knowledge/thesaurus.h"

#include <algorithm>
#include <utility>

#include "text/tokenizer.h"

namespace valentine {

void Thesaurus::AddSynonymSet(const std::vector<std::string>& words) {
  // Merge with an existing set if any member is already known.
  size_t target = sets_.size();
  for (const auto& w : words) {
    auto it = word_to_set_.find(w);
    if (it != word_to_set_.end()) {
      target = it->second;
      break;
    }
  }
  if (target == sets_.size()) sets_.emplace_back();
  for (const auto& w : words) {
    std::string lw = ToLower(w);
    if (!word_to_set_.count(lw)) {
      word_to_set_[lw] = target;
      sets_[target].push_back(lw);
    }
  }
}

void Thesaurus::AddHypernym(const std::string& word,
                            const std::string& parent) {
  hypernym_[ToLower(word)] = ToLower(parent);
}

void Thesaurus::AddAbbreviation(const std::string& abbrev,
                                const std::string& expansion) {
  abbreviations_[ToLower(abbrev)] = ToLower(expansion);
}

bool Thesaurus::AreSynonyms(const std::string& a, const std::string& b) const {
  if (a == b) return true;
  auto ia = word_to_set_.find(a);
  auto ib = word_to_set_.find(b);
  return ia != word_to_set_.end() && ib != word_to_set_.end() &&
         ia->second == ib->second;
}

std::string Thesaurus::Expand(const std::string& token) const {
  auto it = abbreviations_.find(token);
  return it == abbreviations_.end() ? token : it->second;
}

double Thesaurus::Relatedness(const std::string& a,
                              const std::string& b) const {
  if (AreSynonyms(a, b)) return 1.0;
  auto parent_of = [this](const std::string& w) -> const std::string* {
    auto it = hypernym_.find(w);
    return it == hypernym_.end() ? nullptr : &it->second;
  };
  const std::string* pa = parent_of(a);
  const std::string* pb = parent_of(b);
  if (pa && AreSynonyms(*pa, b)) return 0.8;
  if (pb && AreSynonyms(a, *pb)) return 0.8;
  if (pa && pb && AreSynonyms(*pa, *pb)) return 0.8;
  return 0.0;
}

std::vector<std::string> Thesaurus::Synonyms(const std::string& word) const {
  auto it = word_to_set_.find(word);
  if (it == word_to_set_.end()) return {};
  return sets_[it->second];
}

uint64_t Thesaurus::Fingerprint() const {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xFF;  // terminator so concatenated fields cannot alias
    h *= 1099511628211ULL;
  };
  for (const auto& set : sets_) {
    for (const std::string& w : set) mix(w);
    mix(";");
  }
  // The maps are iterated only to collect entries, which are sorted
  // before hashing — the fingerprint is independent of hash order.
  std::vector<std::pair<std::string, std::string>> entries;
  for (const auto& [k, v] : hypernym_) {  // lint:allow(unordered-iteration)
    entries.emplace_back("h:" + k, v);
  }
  for (const auto& [k, v] :
       abbreviations_) {  // lint:allow(unordered-iteration)
    entries.emplace_back("a:" + k, v);
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& [k, v] : entries) {
    mix(k);
    mix(v);
  }
  return h;
}

const Thesaurus& Thesaurus::Default() {
  static const Thesaurus* kDefault = [] {
    auto* t = new Thesaurus();
    // Synonym sets covering the generators' schema vocabulary.
    t->AddSynonymSet({"client", "customer", "buyer", "patron"});
    t->AddSynonymSet({"id", "identifier", "key", "code"});
    t->AddSynonymSet({"name", "title", "label"});
    t->AddSynonymSet({"surname", "lastname", "familyname"});
    t->AddSynonymSet({"firstname", "forename", "givenname"});
    t->AddSynonymSet({"phone", "telephone", "tel", "mobile"});
    t->AddSynonymSet({"address", "location", "residence"});
    t->AddSynonymSet({"country", "nation", "cntr"});
    t->AddSynonymSet({"city", "town", "municipality"});
    t->AddSynonymSet({"state", "province", "region"});
    t->AddSynonymSet({"zip", "postcode", "postalcode"});
    t->AddSynonymSet({"income", "earnings", "salary", "wage"});
    t->AddSynonymSet({"wealth", "networth", "assets"});
    t->AddSynonymSet({"gender", "sex"});
    t->AddSynonymSet({"age", "years"});
    t->AddSynonymSet({"birthdate", "birthday", "dob", "born"});
    t->AddSynonymSet({"spouse", "partner", "husband", "wife"});
    t->AddSynonymSet({"child", "kid", "offspring"});
    t->AddSynonymSet({"parent", "guardian"});
    t->AddSynonymSet({"employer", "company", "firm", "organization"});
    t->AddSynonymSet({"job", "occupation", "profession", "position"});
    t->AddSynonymSet({"marital", "marriage"});
    t->AddSynonymSet({"car", "vehicle", "automobile"});
    t->AddSynonymSet({"credit", "loan"});
    t->AddSynonymSet({"rating", "score", "grade"});
    t->AddSynonymSet({"owner", "holder", "proprietor"});
    t->AddSynonymSet({"team", "squad", "group", "crew"});
    t->AddSynonymSet({"task", "ticket", "item", "workitem"});
    t->AddSynonymSet({"sprint", "iteration", "cycle"});
    t->AddSynonymSet({"epic", "theme", "initiative"});
    t->AddSynonymSet({"manager", "supervisor", "lead", "boss"});
    t->AddSynonymSet({"department", "division", "unit", "dept"});
    t->AddSynonymSet({"application", "app", "software", "program"});
    t->AddSynonymSet({"hardware", "machine", "server", "host"});
    t->AddSynonymSet({"date", "day", "time"});
    t->AddSynonymSet({"start", "begin", "open"});
    t->AddSynonymSet({"end", "finish", "close", "complete"});
    t->AddSynonymSet({"status", "stage", "phase"});
    t->AddSynonymSet({"description", "summary", "text", "comment"});
    t->AddSynonymSet({"assay", "experiment", "test", "trial"});
    t->AddSynonymSet({"organism", "species"});
    t->AddSynonymSet({"compound", "molecule", "chemical", "substance"});
    t->AddSynonymSet({"target", "goal", "objective"});
    t->AddSynonymSet({"dose", "dosage", "amount", "quantity"});
    t->AddSynonymSet({"cell", "tissue"});
    t->AddSynonymSet({"journal", "publication", "source"});
    t->AddSynonymSet({"singer", "artist", "musician", "performer"});
    t->AddSynonymSet({"song", "track", "single", "record"});
    t->AddSynonymSet({"album", "release", "lp"});
    t->AddSynonymSet({"genre", "style", "category", "type", "kind"});
    t->AddSynonymSet({"movie", "film", "picture"});
    t->AddSynonymSet({"actor", "cast", "star"});
    t->AddSynonymSet({"director", "filmmaker"});
    t->AddSynonymSet({"restaurant", "eatery", "diner"});
    t->AddSynonymSet({"price", "cost", "fee", "charge"});
    t->AddSynonymSet({"beer", "brew", "ale"});
    t->AddSynonymSet({"brewery", "brewer"});
    t->AddSynonymSet({"book", "novel", "publication"});
    t->AddSynonymSet({"author", "writer"});
    t->AddSynonymSet({"year", "yr"});
    t->AddSynonymSet({"rank", "ranking", "place"});
    t->AddSynonymSet({"permit", "license", "licence"});
    t->AddSynonymSet({"issued", "granted"});
    t->AddSynonymSet({"value", "amount", "figure"});
    t->AddSynonymSet({"contractor", "builder", "vendor"});
    t->AddSynonymSet({"ward", "district", "borough"});
    t->AddSynonymSet({"fee", "charge", "levy"});
    t->AddSynonymSet({"units", "count", "number", "num"});

    // Hypernyms (is-a) for mild relatedness.
    t->AddHypernym("city", "address");
    t->AddHypernym("state", "address");
    t->AddHypernym("country", "address");
    t->AddHypernym("zip", "address");
    t->AddHypernym("street", "address");
    t->AddHypernym("salary", "income");
    t->AddHypernym("firstname", "name");
    t->AddHypernym("surname", "name");
    t->AddHypernym("spouse", "relative");
    t->AddHypernym("parent", "relative");
    t->AddHypernym("child", "relative");
    t->AddHypernym("song", "work");
    t->AddHypernym("album", "work");
    t->AddHypernym("movie", "work");
    t->AddHypernym("book", "work");
    t->AddHypernym("singer", "person");
    t->AddHypernym("actor", "person");
    t->AddHypernym("author", "person");
    t->AddHypernym("manager", "person");
    t->AddHypernym("owner", "person");

    // Abbreviations seen in fabricated and generated schemata.
    t->AddAbbreviation("addr", "address");
    t->AddAbbreviation("tel", "telephone");
    t->AddAbbreviation("num", "number");
    t->AddAbbreviation("no", "number");
    t->AddAbbreviation("qty", "quantity");
    t->AddAbbreviation("amt", "amount");
    t->AddAbbreviation("dob", "birthdate");
    t->AddAbbreviation("cntr", "country");
    t->AddAbbreviation("ctry", "country");
    t->AddAbbreviation("st", "state");
    t->AddAbbreviation("dept", "department");
    t->AddAbbreviation("org", "organization");
    t->AddAbbreviation("mgr", "manager");
    t->AddAbbreviation("desc", "description");
    t->AddAbbreviation("descr", "description");
    t->AddAbbreviation("app", "application");
    t->AddAbbreviation("hw", "hardware");
    t->AddAbbreviation("sw", "software");
    t->AddAbbreviation("id", "identifier");
    t->AddAbbreviation("yr", "year");
    t->AddAbbreviation("fname", "firstname");
    t->AddAbbreviation("lname", "lastname");
    t->AddAbbreviation("cust", "customer");
    t->AddAbbreviation("acct", "account");
    t->AddAbbreviation("bal", "balance");
    return t;
  }();
  return *kDefault;
}

}  // namespace valentine
