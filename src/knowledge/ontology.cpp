#include "knowledge/ontology.h"

#include <algorithm>

namespace valentine {

size_t Ontology::AddClass(std::string name, std::vector<std::string> labels) {
  classes_.push_back({std::move(name), std::move(labels), std::nullopt});
  return classes_.size() - 1;
}

size_t Ontology::AddSubclass(size_t parent, std::string name,
                             std::vector<std::string> labels) {
  classes_.push_back({std::move(name), std::move(labels), parent});
  return classes_.size() - 1;
}

std::vector<size_t> Ontology::AncestorsOf(size_t i) const {
  std::vector<size_t> chain{i};
  while (classes_[chain.back()].parent) {
    chain.push_back(*classes_[chain.back()].parent);
  }
  return chain;
}

std::optional<size_t> Ontology::HierarchyDistance(size_t a, size_t b) const {
  if (a == b) return 0;
  auto ca = AncestorsOf(a);
  auto cb = AncestorsOf(b);
  for (size_t i = 0; i < ca.size(); ++i) {
    auto it = std::find(cb.begin(), cb.end(), ca[i]);
    if (it != cb.end()) {
      return i + static_cast<size_t>(it - cb.begin());
    }
  }
  return std::nullopt;
}

uint64_t Ontology::Fingerprint() const {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xFF;  // terminator so concatenated fields cannot alias
    h *= 1099511628211ULL;
  };
  for (const OntologyClass& c : classes_) {
    mix(c.name);
    for (const std::string& label : c.labels) mix(label);
    mix(c.parent ? std::to_string(*c.parent) : "-");
  }
  return h;
}

std::vector<std::pair<size_t, std::string>> Ontology::AllLabels() const {
  std::vector<std::pair<size_t, std::string>> out;
  for (size_t i = 0; i < classes_.size(); ++i) {
    for (const auto& label : classes_[i].labels) {
      out.emplace_back(i, label);
    }
  }
  return out;
}

}  // namespace valentine
