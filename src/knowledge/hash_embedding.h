#ifndef VALENTINE_KNOWLEDGE_HASH_EMBEDDING_H_
#define VALENTINE_KNOWLEDGE_HASH_EMBEDDING_H_

/// \file hash_embedding.h
/// Deterministic character-n-gram hash embeddings — the suite's stand-in
/// for pre-trained word vectors (word2vec / GloVe / fastText).
///
/// Each word is the normalized sum of pseudo-random unit vectors hashed
/// from its character trigrams plus the whole word (fastText-style).
/// Orthographically similar words land near each other; semantically
/// related but orthographically different words do not — which is exactly
/// the failure mode the paper observed for SemProp's pre-trained vectors
/// on domain-specific data (DESIGN.md §3).

#include <string>
#include <vector>

namespace valentine {

/// Dense embedding vector.
using Embedding = std::vector<float>;

/// Cosine similarity of two equal-dimension vectors (0 for zero vectors).
double CosineSimilarity(const Embedding& a, const Embedding& b);

/// \brief Deterministic n-gram hashing embedder.
class HashEmbedder {
 public:
  /// \param dim embedding dimensionality.
  /// \param seed stream seed, so distinct "pre-trained models" differ.
  explicit HashEmbedder(size_t dim = 64, uint64_t seed = 7);

  size_t dim() const { return dim_; }

  /// Embeds a single word (empty word -> zero vector).
  Embedding EmbedWord(const std::string& word) const;

  /// Embeds text as the mean of its tokens' word vectors.
  Embedding EmbedText(const std::string& text) const;

 private:
  void AddHashedVector(const std::string& feature, Embedding* out) const;

  size_t dim_;
  uint64_t seed_;
};

}  // namespace valentine

#endif  // VALENTINE_KNOWLEDGE_HASH_EMBEDDING_H_
