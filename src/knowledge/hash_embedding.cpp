#include "knowledge/hash_embedding.h"

#include <cmath>

#include "text/string_similarity.h"
#include "text/tokenizer.h"

namespace valentine {

double CosineSimilarity(const Embedding& a, const Embedding& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

HashEmbedder::HashEmbedder(size_t dim, uint64_t seed)
    : dim_(dim), seed_(seed) {}

namespace {
uint64_t Mix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashFeature(const std::string& s, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix(h);
}
}  // namespace

void HashEmbedder::AddHashedVector(const std::string& feature,
                                   Embedding* out) const {
  uint64_t state = HashFeature(feature, seed_);
  for (size_t i = 0; i < dim_; ++i) {
    state = Mix(state + 0x9e3779b97f4a7c15ULL);
    // Map to roughly N(0,1) by summing two uniforms (triangular ~ ok).
    double u = static_cast<double>(state >> 11) * 0x1.0p-53;
    (*out)[i] += static_cast<float>(2.0 * u - 1.0);
  }
}

Embedding HashEmbedder::EmbedWord(const std::string& word) const {
  Embedding out(dim_, 0.0f);
  if (word.empty()) return out;
  std::string lower = ToLower(word);
  AddHashedVector("w:" + lower, &out);
  for (const std::string& gram : CharNGrams(lower, 3)) {
    AddHashedVector("g:" + gram, &out);
  }
  // L2-normalize.
  double norm = 0.0;
  for (float v : out) norm += static_cast<double>(v) * v;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (float& v : out) v = static_cast<float>(v / norm);
  }
  return out;
}

Embedding HashEmbedder::EmbedText(const std::string& text) const {
  Embedding out(dim_, 0.0f);
  auto tokens = TokenizeText(text);
  if (tokens.empty()) return out;
  for (const auto& tok : tokens) {
    Embedding w = EmbedWord(tok);
    for (size_t i = 0; i < dim_; ++i) out[i] += w[i];
  }
  for (float& v : out) v /= static_cast<float>(tokens.size());
  return out;
}

}  // namespace valentine
