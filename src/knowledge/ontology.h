#ifndef VALENTINE_KNOWLEDGE_ONTOLOGY_H_
#define VALENTINE_KNOWLEDGE_ONTOLOGY_H_

/// \file ontology.h
/// Domain ontology model: a class hierarchy where each class carries a
/// set of textual labels. SemProp links attribute/table names to ontology
/// classes (via embeddings) and then relates attributes linked to the
/// same or nearby classes.
///
/// Substitution note (DESIGN.md §3): the paper ran SemProp against the
/// EFO ontology shipped with ChEMBL; the ChEMBL dataset generator here
/// fabricates an EFO-like ontology covering its column semantics.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace valentine {

/// \brief One ontology class: a name, surface labels, and a parent.
struct OntologyClass {
  std::string name;                 ///< canonical class name
  std::vector<std::string> labels;  ///< surface forms / synonym labels
  std::optional<size_t> parent;     ///< index of parent class, if any
};

/// \brief A small class hierarchy with label search.
class Ontology {
 public:
  /// Adds a root class; returns its index.
  size_t AddClass(std::string name, std::vector<std::string> labels);

  /// Adds a subclass of `parent`; returns its index.
  size_t AddSubclass(size_t parent, std::string name,
                     std::vector<std::string> labels);

  size_t num_classes() const { return classes_.size(); }
  const OntologyClass& cls(size_t i) const { return classes_[i]; }
  const std::vector<OntologyClass>& classes() const { return classes_; }

  /// Number of edges on the path between two classes through their
  /// lowest common ancestor; nullopt when they are in different trees.
  std::optional<size_t> HierarchyDistance(size_t a, size_t b) const;

  /// All labels of all classes, as (class index, label) pairs.
  std::vector<std::pair<size_t, std::string>> AllLabels() const;

  /// Deterministic content hash (FNV-1a over classes, labels, and
  /// parent edges, in insertion order). Two ontologies with equal
  /// fingerprints link names identically, so matcher PrepareKeys embed
  /// this to keep per-table artifacts keyed by knowledge-base content.
  uint64_t Fingerprint() const;

 private:
  std::vector<size_t> AncestorsOf(size_t i) const;
  std::vector<OntologyClass> classes_;
};

}  // namespace valentine

#endif  // VALENTINE_KNOWLEDGE_ONTOLOGY_H_
