#ifndef VALENTINE_KNOWLEDGE_THESAURUS_H_
#define VALENTINE_KNOWLEDGE_THESAURUS_H_

/// \file thesaurus.h
/// A compact thesaurus: synonym sets, a hypernym (is-a) hierarchy, and an
/// abbreviation dictionary.
///
/// Substitution note (DESIGN.md §3): the original Cupid/COMA runs used
/// WordNet via NLTK. We embed a curated vocabulary that covers the schema
/// vocabulary of this suite's dataset generators, which exercises the
/// same lookup / expansion / relatedness code paths.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace valentine {

/// \brief Synonyms + hypernyms + abbreviations with similarity scoring.
class Thesaurus {
 public:
  Thesaurus() = default;

  /// The built-in thesaurus covering the suite's generator vocabulary.
  static const Thesaurus& Default();

  /// Registers a set of mutually synonymous (lowercase) words.
  void AddSynonymSet(const std::vector<std::string>& words);

  /// Registers `word IS-A parent` (both lowercase).
  void AddHypernym(const std::string& word, const std::string& parent);

  /// Registers an abbreviation expansion, e.g. "addr" -> "address".
  void AddAbbreviation(const std::string& abbrev,
                       const std::string& expansion);

  /// True when the two words share a synonym set (or are equal).
  bool AreSynonyms(const std::string& a, const std::string& b) const;

  /// Expands a token if it is a known abbreviation, else returns it.
  std::string Expand(const std::string& token) const;

  /// Lexical relatedness in [0,1]: 1 for equal/synonyms, 0.8 for direct
  /// hypernym/hyponym or shared parent, 0 otherwise.
  double Relatedness(const std::string& a, const std::string& b) const;

  /// All synonyms of a word, including itself (empty when unknown).
  std::vector<std::string> Synonyms(const std::string& word) const;

  size_t num_synonym_sets() const { return sets_.size(); }

  /// Deterministic content hash (synonym sets in insertion order;
  /// hypernym and abbreviation entries sorted before hashing). Matcher
  /// PrepareKeys embed this so artifacts derived through thesaurus
  /// lookups stay keyed by knowledge-base content.
  uint64_t Fingerprint() const;

 private:
  std::vector<std::vector<std::string>> sets_;
  std::unordered_map<std::string, size_t> word_to_set_;
  std::unordered_map<std::string, std::string> hypernym_;
  std::unordered_map<std::string, std::string> abbreviations_;
};

}  // namespace valentine

#endif  // VALENTINE_KNOWLEDGE_THESAURUS_H_
