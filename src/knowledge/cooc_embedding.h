#ifndef VALENTINE_KNOWLEDGE_COOC_EMBEDDING_H_
#define VALENTINE_KNOWLEDGE_COOC_EMBEDDING_H_

/// \file cooc_embedding.h
/// Count-based embeddings: positive pointwise mutual information (PPMI)
/// over windowed co-occurrence counts, projected to a fixed dimension
/// with a deterministic random projection. The GloVe-family alternative
/// to the skip-gram trainer — paper Table II pins EmbDI's "train.
/// algorithm" to word2vec; this implements the other branch so the
/// choice can be ablated (bench_ablation_matchers).

#include <string>
#include <unordered_map>
#include <vector>

#include "knowledge/hash_embedding.h"  // Embedding alias

namespace valentine {

/// PPMI trainer hyperparameters.
struct CoocOptions {
  size_t dimensions = 64;
  size_t window = 3;
  /// Context-distribution smoothing exponent (0.75 as in word2vec's
  /// negative sampling; softens PMI's bias toward rare contexts).
  double smoothing = 0.75;
  size_t min_count = 1;
  uint64_t seed = 29;
};

/// \brief PPMI + random-projection embedding model.
class CoocEmbedding {
 public:
  explicit CoocEmbedding(CoocOptions options = {});

  /// Counts co-occurrences over the corpus and builds the vectors.
  void Train(const std::vector<std::vector<std::string>>& sentences);

  /// Vector of a word; nullptr when out of vocabulary.
  const Embedding* Vector(const std::string& word) const;

  size_t vocab_size() const { return vectors_.size(); }

 private:
  CoocOptions options_;
  std::unordered_map<std::string, Embedding> vectors_;
};

}  // namespace valentine

#endif  // VALENTINE_KNOWLEDGE_COOC_EMBEDDING_H_
