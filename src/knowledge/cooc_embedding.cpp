#include "knowledge/cooc_embedding.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace valentine {

namespace {
uint64_t Mix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashWord(const std::string& s, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return Mix(h);
}
}  // namespace

CoocEmbedding::CoocEmbedding(CoocOptions options)
    : options_(std::move(options)) {}

void CoocEmbedding::Train(
    const std::vector<std::vector<std::string>>& sentences) {
  // --- Vocabulary + windowed co-occurrence counts. ---
  std::unordered_map<std::string, size_t> word_ids;
  std::vector<std::string> words;
  std::vector<double> word_counts;
  auto id_of = [&](const std::string& w) {
    auto it = word_ids.find(w);
    if (it != word_ids.end()) return it->second;
    size_t id = words.size();
    word_ids.emplace(w, id);
    words.push_back(w);
    word_counts.push_back(0.0);
    return id;
  };

  // pair (center, context) -> count; contexts are symmetric.
  std::unordered_map<uint64_t, double> pair_counts;
  double total_pairs = 0.0;
  for (const auto& sentence : sentences) {
    std::vector<size_t> ids;
    ids.reserve(sentence.size());
    for (const auto& w : sentence) ids.push_back(id_of(w));
    for (size_t i = 0; i < ids.size(); ++i) {
      word_counts[ids[i]] += 1.0;
      size_t lo = (i > options_.window) ? i - options_.window : 0;
      size_t hi = std::min(ids.size(), i + options_.window + 1);
      for (size_t j = lo; j < hi; ++j) {
        if (j == i) continue;
        pair_counts[(static_cast<uint64_t>(ids[i]) << 32) | ids[j]] += 1.0;
        total_pairs += 1.0;
      }
    }
  }
  if (total_pairs <= 0.0) return;

  // Smoothed context distribution.
  double smoothed_total = 0.0;
  std::vector<double> smoothed(word_counts.size());
  for (size_t c = 0; c < word_counts.size(); ++c) {
    smoothed[c] = std::pow(word_counts[c], options_.smoothing);
    smoothed_total += smoothed[c];
  }
  double total_words = 0.0;
  for (double wc : word_counts) total_words += wc;

  // --- PPMI-weighted random projection. ---
  const size_t dim = options_.dimensions;
  std::vector<Embedding> vecs(words.size(), Embedding(dim, 0.0f));
  auto context_sign = [&](size_t context, size_t d) {
    uint64_t h = Mix(HashWord(words[context], options_.seed) +
                     0x9e3779b97f4a7c15ULL * (d + 1));
    return (h & 1) ? 1.0f : -1.0f;
  };
  // Accumulation order matters: the += below sums floats, which is not
  // associative, so hash-order iteration would make the vectors (and
  // every score derived from them) platform-dependent. Sort by key.
  std::vector<std::pair<uint64_t, double>> sorted_pairs(
      pair_counts.begin(),  // lint:allow(unordered-iteration) sorted below
      pair_counts.end());
  std::sort(sorted_pairs.begin(), sorted_pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, count] : sorted_pairs) {
    size_t center = static_cast<size_t>(key >> 32);
    size_t context = static_cast<size_t>(key & 0xffffffffULL);
    double p_pair = count / total_pairs;
    double p_center = word_counts[center] / total_words;
    double p_context = smoothed[context] / smoothed_total;
    double pmi = std::log(p_pair / (p_center * p_context));
    if (pmi <= 0.0) continue;  // positive PMI only
    Embedding& v = vecs[center];
    for (size_t d = 0; d < dim; ++d) {
      v[d] += static_cast<float>(pmi) * context_sign(context, d);
    }
  }

  // Normalize and publish (dropping words rarer than min_count).
  for (size_t wid = 0; wid < words.size(); ++wid) {
    if (word_counts[wid] < static_cast<double>(options_.min_count)) continue;
    Embedding& v = vecs[wid];
    double norm = 0.0;
    for (float x : v) norm += static_cast<double>(x) * x;
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (float& x : v) x = static_cast<float>(x / norm);
    }
    vectors_.emplace(words[wid], std::move(v));
  }
}

const Embedding* CoocEmbedding::Vector(const std::string& word) const {
  auto it = vectors_.find(word);
  return it == vectors_.end() ? nullptr : &it->second;
}

}  // namespace valentine
