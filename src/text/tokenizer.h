#ifndef VALENTINE_TEXT_TOKENIZER_H_
#define VALENTINE_TEXT_TOKENIZER_H_

/// \file tokenizer.h
/// Identifier and value tokenization. Schema-based matchers (Cupid, COMA)
/// normalize attribute names into token lists: split on underscores,
/// hyphens, whitespace, digit boundaries, and camelCase humps, then
/// lowercase.

#include <string>
#include <vector>

namespace valentine {

/// Lowercases ASCII characters in place-copy.
std::string ToLower(const std::string& s);

/// Splits an identifier like "custAddressLine_1" into
/// {"cust", "address", "line", "1"}.
std::vector<std::string> TokenizeIdentifier(const std::string& name);

/// Splits free text on non-alphanumeric runs and lowercases.
std::vector<std::string> TokenizeText(const std::string& text);

/// Joins tokens with the given separator.
std::string JoinTokens(const std::vector<std::string>& tokens,
                       const std::string& sep = " ");

}  // namespace valentine

#endif  // VALENTINE_TEXT_TOKENIZER_H_
