#ifndef VALENTINE_TEXT_NORMALIZER_H_
#define VALENTINE_TEXT_NORMALIZER_H_

/// \file normalizer.h
/// Value canonicalization for semantic joins. The semantically-joinable
/// scenario (paper §III-B) is exactly the case where instances encode
/// the same fact differently ("1956-03-12" vs "March 12, 1956",
/// "https://www.x.com" vs "x.com", reordered multi-value lists). This
/// module provides deterministic canonical forms, and a matcher wrapper
/// that normalizes both tables before delegating — the ablation bench
/// shows how much of the semantic-join gap plain normalization recovers.

#include <memory>
#include <string>

#include "matchers/matcher.h"

namespace valentine {

/// Which canonicalizations to apply.
struct NormalizeOptions {
  bool casefold = true;          ///< lowercase ASCII
  bool collapse_whitespace = true;
  bool strip_punctuation = true; ///< drop .,;:!?'" (keeps - / @)
  bool normalize_dates = true;   ///< "March 12, 1956" -> "1956-03-12"
  bool strip_url_decoration = true;  ///< scheme + "www." prefixes
  bool sort_list_values = true;  ///< "; "-separated lists sorted
  /// Sort the whitespace-separated tokens of the value — a bag-of-words
  /// canonical form that unifies "Presley, Elvis" with "Elvis Presley".
  /// Off by default (it is aggressive); the semantic-join ablation
  /// enables it.
  bool sort_tokens = false;
};

/// Canonicalizes one value.
std::string NormalizeValue(const std::string& value,
                           const NormalizeOptions& options = {});

/// Returns a copy of the table with every string cell normalized.
Table NormalizeTable(const Table& table,
                     const NormalizeOptions& options = {});

/// \brief Decorator: normalizes both tables, then runs the inner matcher.
class NormalizingMatcher : public ColumnMatcher {
 public:
  NormalizingMatcher(MatcherPtr inner, NormalizeOptions options = {})
      : inner_(std::move(inner)), options_(options) {}

  std::string Name() const override {
    return "Normalized(" + inner_->Name() + ")";
  }
  MatcherCategory Category() const override { return inner_->Category(); }
  std::vector<MatchType> Capabilities() const override {
    return inner_->Capabilities();
  }
  [[nodiscard]] Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const override {
    VALENTINE_RETURN_NOT_OK(context.Check("value normalization"));
    return inner_->Match(NormalizeTable(source, options_),
                         NormalizeTable(target, options_), context);
  }

 private:
  MatcherPtr inner_;
  NormalizeOptions options_;
};

}  // namespace valentine

#endif  // VALENTINE_TEXT_NORMALIZER_H_
