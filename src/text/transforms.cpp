#include "text/transforms.h"

#include <cctype>

#include "text/tokenizer.h"

namespace valentine {

std::string PrefixWithTable(const std::string& column_name,
                            const std::string& table_name) {
  return table_name + "_" + column_name;
}

std::string AbbreviateName(const std::string& name, size_t keep) {
  // Real-world abbreviations concatenate: "address_line1" -> "addlin1".
  // The missing separators are a large part of what makes abbreviated
  // schemata hard for token-based matchers.
  auto tokens = TokenizeIdentifier(name);
  std::string out;
  for (const std::string& t : tokens) {
    out += t.size() <= keep ? t : t.substr(0, keep);
  }
  return out.empty() ? name : out;
}

std::string DropVowels(const std::string& name) {
  auto tokens = TokenizeIdentifier(name);
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += "_";
    const std::string& t = tokens[i];
    for (size_t j = 0; j < t.size(); ++j) {
      char c = t[j];
      bool vowel = c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
      if (j == 0 || !vowel || std::isdigit(static_cast<unsigned char>(c))) {
        out.push_back(c);
      }
    }
  }
  return out.empty() ? name : out;
}

std::string ApplySchemaNoiseRule(const std::string& column_name,
                                 const std::string& table_name,
                                 int rule_index) {
  switch (rule_index % 6) {
    case 0: return PrefixWithTable(column_name, table_name);
    case 1: return AbbreviateName(column_name);
    case 2: return DropVowels(column_name);
    // Composed rules: the paper applies "a combination of three
    // transformation rules".
    case 3:
      return PrefixWithTable(AbbreviateName(column_name), table_name);
    case 4:
      return PrefixWithTable(DropVowels(column_name), table_name);
    default:
      return AbbreviateName(DropVowels(column_name));
  }
}

}  // namespace valentine
