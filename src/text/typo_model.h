#ifndef VALENTINE_TEXT_TYPO_MODEL_H_
#define VALENTINE_TEXT_TYPO_MODEL_H_

/// \file typo_model.h
/// Keyboard-proximity typo injection (paper Section IV, "Noise in Data"):
/// string instances are perturbed with random typos where substituted
/// characters are drawn from QWERTY-adjacent keys, plus occasional
/// transpositions, drops, and duplications — the same perturbation family
/// eTuner uses.

#include <string>

#include "core/rng.h"

namespace valentine {

/// \brief Injects realistic typos into strings.
class TypoModel {
 public:
  /// \param typo_rate probability that any given character position
  ///   receives a typo (0 disables).
  explicit TypoModel(double typo_rate = 0.1) : typo_rate_(typo_rate) {}

  /// Returns a perturbed copy of `s` (possibly unchanged for short or
  /// lucky inputs). Deterministic given the Rng state.
  std::string Perturb(const std::string& s, Rng* rng) const;

  /// QWERTY neighbours of a lowercase letter or digit ("" if unknown).
  static std::string KeyboardNeighbors(char c);

 private:
  double typo_rate_;
};

}  // namespace valentine

#endif  // VALENTINE_TEXT_TYPO_MODEL_H_
