#include "text/tfidf.h"

#include <cmath>

#include "text/tokenizer.h"

namespace valentine {

size_t TfIdfModel::AddDocument(const std::vector<std::string>& tokens) {
  std::unordered_map<std::string, double> counts;
  for (const auto& t : tokens) counts[t] += 1.0;
  // Keyed increments are commutative over iteration order.
  for (const auto& [term, count] : counts) {  // lint:allow(unordered-iteration)
    document_frequency_[term] += 1.0;
  }
  term_counts_.push_back(std::move(counts));
  finalized_ = false;
  return term_counts_.size() - 1;
}

void TfIdfModel::Finalize() { finalized_ = true; }

TfIdfVector TfIdfModel::VectorOf(size_t index) const {
  TfIdfVector out;
  if (index >= term_counts_.size()) return out;
  const auto& counts = term_counts_[index];
  double total = 0.0;
  // Iteration order of one map instance is a deterministic function of
  // its insertion sequence, so these sums reproduce run-to-run; sorting
  // first would perturb the float accumulation order and change scores.
  for (const auto& [term, count] : counts) total += count;  // lint:allow(unordered-iteration)
  if (total <= 0.0) return out;
  const double n_docs = static_cast<double>(term_counts_.size());
  for (const auto& [term, count] : counts) {  // lint:allow(unordered-iteration)
    double tf = count / total;
    double df = document_frequency_.at(term);
    double idf = std::log((n_docs + 1.0) / (df + 1.0)) + 1.0;
    out[term] = tf * idf;
  }
  return out;
}

double TfIdfModel::Cosine(const TfIdfVector& a, const TfIdfVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  const TfIdfVector& small = (a.size() <= b.size()) ? a : b;
  const TfIdfVector& large = (a.size() <= b.size()) ? b : a;
  double dot = 0.0;
  for (const auto& [term, weight] : small) {
    auto it = large.find(term);
    if (it != large.end()) dot += weight * it->second;
  }
  if (dot <= 0.0) return 0.0;
  double na = 0.0;
  for (const auto& [term, weight] : a) na += weight * weight;
  double nb = 0.0;
  for (const auto& [term, weight] : b) nb += weight * weight;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

std::vector<std::string> ColumnTokens(const Column& column,
                                      size_t max_values) {
  std::vector<std::string> tokens;
  size_t taken = 0;
  for (const Value& v : column.values()) {
    if (v.is_null()) continue;
    if (max_values > 0 && taken >= max_values) break;
    ++taken;
    for (auto& t : TokenizeText(v.AsString())) {
      tokens.push_back(std::move(t));
    }
  }
  return tokens;
}

std::vector<std::vector<double>> TfIdfColumnSimilarity(
    const Table& source, const Table& target, size_t max_values) {
  TfIdfModel model;
  for (const Column& c : source.columns()) {
    model.AddDocument(ColumnTokens(c, max_values));
  }
  for (const Column& c : target.columns()) {
    model.AddDocument(ColumnTokens(c, max_values));
  }
  model.Finalize();

  const size_t ns = source.num_columns();
  const size_t nt = target.num_columns();
  std::vector<TfIdfVector> src_vecs(ns), tgt_vecs(nt);
  for (size_t i = 0; i < ns; ++i) src_vecs[i] = model.VectorOf(i);
  for (size_t j = 0; j < nt; ++j) tgt_vecs[j] = model.VectorOf(ns + j);

  std::vector<std::vector<double>> sim(ns, std::vector<double>(nt, 0.0));
  for (size_t i = 0; i < ns; ++i) {
    for (size_t j = 0; j < nt; ++j) {
      sim[i][j] = TfIdfModel::Cosine(src_vecs[i], tgt_vecs[j]);
    }
  }
  return sim;
}

}  // namespace valentine
