#ifndef VALENTINE_TEXT_TRANSFORMS_H_
#define VALENTINE_TEXT_TRANSFORMS_H_

/// \file transforms.h
/// Schema-noise transformation rules from the paper (Section IV):
/// (i) prefix column names with the table name, (ii) abbreviate, and
/// (iii) drop vowels. The fabricator composes these to produce "noisy
/// schemata" variants of split tables.

#include <string>

namespace valentine {

/// "name" + table "clients" -> "clients_name".
std::string PrefixWithTable(const std::string& column_name,
                            const std::string& table_name);

/// Abbreviates each token to its first `keep` characters:
/// "address_line" -> "addr_lin" (keep=4 -> "addr_line"? no: per-token).
std::string AbbreviateName(const std::string& name, size_t keep = 3);

/// Removes vowels except leading characters of each token:
/// "customer_age" -> "cstmr_g" (leading vowel of a token is kept).
std::string DropVowels(const std::string& name);

/// Applies the composed "noisy schema" rule used by the fabricator for a
/// given column: rule index selects among prefix / abbreviate / vowels.
std::string ApplySchemaNoiseRule(const std::string& column_name,
                                 const std::string& table_name,
                                 int rule_index);

}  // namespace valentine

#endif  // VALENTINE_TEXT_TRANSFORMS_H_
