#ifndef VALENTINE_TEXT_TFIDF_H_
#define VALENTINE_TEXT_TFIDF_H_

/// \file tfidf.h
/// TF-IDF token vectors over column contents. Treating each column as a
/// document over its value tokens gives an instance matcher that is
/// robust to value-level noise (typos change few tokens) and discounts
/// tokens that appear in every column — another first-line matcher in
/// the COMA style (its instance extension used comparable content
/// features).

#include <string>
#include <unordered_map>
#include <vector>

#include "core/table.h"

namespace valentine {

/// Sparse token-weight vector of one document (column).
using TfIdfVector = std::unordered_map<std::string, double>;

/// \brief A TF-IDF model over a corpus of "documents".
class TfIdfModel {
 public:
  /// Adds one document (bag of tokens); returns its index.
  size_t AddDocument(const std::vector<std::string>& tokens);

  /// Finalizes IDF weights; call after all documents are added.
  void Finalize();

  size_t num_documents() const { return term_counts_.size(); }

  /// The TF-IDF vector of document `index` (Finalize() required).
  TfIdfVector VectorOf(size_t index) const;

  /// Cosine similarity of two sparse vectors.
  static double Cosine(const TfIdfVector& a, const TfIdfVector& b);

 private:
  std::vector<std::unordered_map<std::string, double>> term_counts_;
  std::unordered_map<std::string, double> document_frequency_;
  bool finalized_ = false;
};

/// Tokenizes a column's non-null values (lowercased word tokens).
std::vector<std::string> ColumnTokens(const Column& column,
                                      size_t max_values = 1000);

/// Convenience: TF-IDF cosine between every column pair of two tables,
/// with the IDF corpus being the union of both tables' columns.
/// Result[i][j] is the similarity of source column i and target column j.
std::vector<std::vector<double>> TfIdfColumnSimilarity(
    const Table& source, const Table& target, size_t max_values = 1000);

}  // namespace valentine

#endif  // VALENTINE_TEXT_TFIDF_H_
