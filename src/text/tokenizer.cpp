#include "text/tokenizer.h"

#include <cctype>

namespace valentine {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> TokenizeIdentifier(const std::string& name) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(ToLower(cur));
      cur.clear();
    }
  };
  for (size_t i = 0; i < name.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(name[i]);
    if (!std::isalnum(c)) {
      flush();
      continue;
    }
    if (!cur.empty()) {
      unsigned char prev = static_cast<unsigned char>(cur.back());
      bool digit_boundary = std::isdigit(c) != std::isdigit(prev);
      bool hump = std::isupper(c) && std::islower(prev);
      // "HTTPServer" -> "http", "server": upper run followed by lower.
      bool acronym_end = std::islower(c) && std::isupper(prev) &&
                         cur.size() > 1 &&
                         std::isupper(static_cast<unsigned char>(
                             cur[cur.size() - 2]));
      if (digit_boundary || hump) {
        flush();
      } else if (acronym_end) {
        char last = cur.back();
        cur.pop_back();
        flush();
        cur.push_back(last);
      }
    }
    cur.push_back(static_cast<char>(c));
  }
  flush();
  return tokens;
}

std::vector<std::string> TokenizeText(const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

std::string JoinTokens(const std::vector<std::string>& tokens,
                       const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += sep;
    out += tokens[i];
  }
  return out;
}

}  // namespace valentine
