#include "text/typo_model.h"

#include <cctype>
#include <unordered_map>

namespace valentine {

std::string TypoModel::KeyboardNeighbors(char c) {
  static const std::unordered_map<char, std::string> kNeighbors = {
      {'q', "wa"},    {'w', "qes"},   {'e', "wrd"},  {'r', "etf"},
      {'t', "ryg"},   {'y', "tuh"},   {'u', "yij"},  {'i', "uok"},
      {'o', "ipl"},   {'p', "ol"},    {'a', "qsz"},  {'s', "awdx"},
      {'d', "sefc"},  {'f', "drgv"},  {'g', "fthb"}, {'h', "gyjn"},
      {'j', "hukm"},  {'k', "jil"},   {'l', "kop"},  {'z', "asx"},
      {'x', "zsdc"},  {'c', "xdfv"},  {'v', "cfgb"}, {'b', "vghn"},
      {'n', "bhjm"},  {'m', "njk"},   {'0', "9"},    {'1', "2"},
      {'2', "13"},    {'3', "24"},    {'4', "35"},   {'5', "46"},
      {'6', "57"},    {'7', "68"},    {'8', "79"},   {'9', "80"},
  };
  auto it = kNeighbors.find(static_cast<char>(
      std::tolower(static_cast<unsigned char>(c))));
  return it == kNeighbors.end() ? std::string() : it->second;
}

std::string TypoModel::Perturb(const std::string& s, Rng* rng) const {
  if (s.empty() || typo_rate_ <= 0.0) return s;
  std::string out;
  out.reserve(s.size() + 2);
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (!rng->Bernoulli(typo_rate_)) {
      out.push_back(c);
      continue;
    }
    switch (rng->Index(4)) {
      case 0: {  // Substitute with a keyboard neighbour.
        std::string neighbors = KeyboardNeighbors(c);
        if (neighbors.empty()) {
          out.push_back(c);
        } else {
          char repl = neighbors[rng->Index(neighbors.size())];
          bool upper = std::isupper(static_cast<unsigned char>(c)) != 0;
          out.push_back(upper ? static_cast<char>(std::toupper(
                                    static_cast<unsigned char>(repl)))
                              : repl);
        }
        break;
      }
      case 1:  // Drop the character.
        break;
      case 2:  // Duplicate it.
        out.push_back(c);
        out.push_back(c);
        break;
      default:  // Transpose with the next character.
        if (i + 1 < s.size()) {
          out.push_back(s[i + 1]);
          out.push_back(c);
          ++i;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  // Never return an empty perturbation of a non-empty string.
  if (out.empty()) out.push_back(s[0]);
  return out;
}

}  // namespace valentine
