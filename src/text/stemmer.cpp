#include "text/stemmer.h"

namespace valentine {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

/// True if the stem (after removing `drop` chars) still contains a vowel.
bool StemHasVowel(const std::string& s, size_t drop) {
  for (size_t i = 0; i + drop < s.size(); ++i) {
    if (IsVowel(s[i])) return true;
  }
  return false;
}

}  // namespace

std::string StemToken(const std::string& token) {
  if (token.size() <= 3) return token;
  std::string s = token;

  // Step 1a: plurals.
  if (EndsWith(s, "sses")) {
    s.resize(s.size() - 2);
  } else if (EndsWith(s, "ies")) {
    s.resize(s.size() - 3);
    s += "y";
  } else if (EndsWith(s, "ss")) {
    // keep
  } else if (EndsWith(s, "s") && s.size() > 3) {
    s.resize(s.size() - 1);
  }

  // Step 1b: -ed / -ing.
  if (EndsWith(s, "ing") && s.size() > 5 && StemHasVowel(s, 3)) {
    s.resize(s.size() - 3);
    if (!s.empty() && s.size() >= 2 && s[s.size() - 1] == s[s.size() - 2] &&
        !IsVowel(s.back())) {
      s.resize(s.size() - 1);  // running -> run
    }
  } else if (EndsWith(s, "ed") && s.size() > 4 && StemHasVowel(s, 2)) {
    s.resize(s.size() - 2);
    if (s.size() >= 2 && s[s.size() - 1] == s[s.size() - 2] &&
        !IsVowel(s.back())) {
      s.resize(s.size() - 1);  // stopped -> stop
    }
  }

  // Derivational endings common in schema vocabulary.
  struct Rule {
    const char* suffix;
    const char* replacement;
    size_t min_len;
  };
  static const Rule kRules[] = {
      {"ization", "ize", 9}, {"ational", "ate", 9}, {"fulness", "ful", 9},
      {"iveness", "ive", 9}, {"ation", "ate", 7},   {"alism", "al", 7},
      {"ment", "", 7},       {"ness", "", 7},       {"tion", "t", 6},
  };
  for (const Rule& rule : kRules) {
    std::string suffix = rule.suffix;
    if (s.size() >= rule.min_len && EndsWith(s, suffix)) {
      s.resize(s.size() - suffix.size());
      s += rule.replacement;
      break;
    }
  }
  return s;
}

std::vector<std::string> StemTokens(const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(StemToken(t));
  return out;
}

}  // namespace valentine
