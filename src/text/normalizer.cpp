#include "text/normalizer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <vector>

namespace valentine {

namespace {

const char* kMonths[] = {"january",   "february", "march",    "april",
                         "may",       "june",     "july",     "august",
                         "september", "october",  "november", "december"};

/// Recognizes "March 12, 1956" (case-insensitive, comma optional) and
/// rewrites it to "1956-03-12". Returns false when not a long-form date.
bool TryNormalizeLongDate(const std::string& lower, std::string* out) {
  size_t month = 0;
  size_t month_len = 0;
  for (size_t m = 0; m < 12; ++m) {
    size_t len = std::string(kMonths[m]).size();
    if (lower.compare(0, len, kMonths[m]) == 0) {
      month = m + 1;
      month_len = len;
      break;
    }
  }
  if (month == 0) return false;
  size_t i = month_len;
  while (i < lower.size() && lower[i] == ' ') ++i;
  size_t day = 0;
  size_t day_digits = 0;
  while (i < lower.size() && std::isdigit(static_cast<unsigned char>(lower[i]))) {
    day = day * 10 + static_cast<size_t>(lower[i] - '0');
    ++i;
    ++day_digits;
  }
  if (day_digits == 0 || day == 0 || day > 31) return false;
  if (i < lower.size() && lower[i] == ',') ++i;
  while (i < lower.size() && lower[i] == ' ') ++i;
  size_t year = 0;
  size_t year_digits = 0;
  while (i < lower.size() && std::isdigit(static_cast<unsigned char>(lower[i]))) {
    year = year * 10 + static_cast<size_t>(lower[i] - '0');
    ++i;
    ++year_digits;
  }
  if (year_digits != 4 || i != lower.size()) return false;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04zu-%02zu-%02zu", year, month, day);
  *out = buf;
  return true;
}

std::string StripUrlDecoration(const std::string& s) {
  std::string out = s;
  for (const char* prefix : {"https://", "http://"}) {
    size_t len = std::string(prefix).size();
    if (out.compare(0, len, prefix) == 0) {
      out = out.substr(len);
      break;
    }
  }
  if (out.compare(0, 4, "www.") == 0) out = out.substr(4);
  if (!out.empty() && out.back() == '/') out.pop_back();
  return out;
}

std::string SortListValue(const std::string& s) {
  if (s.find("; ") == std::string::npos) return s;
  std::vector<std::string> parts;
  size_t pos = 0;
  while (true) {
    size_t sep = s.find("; ", pos);
    if (sep == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, sep - pos));
    pos = sep + 2;
  }
  std::sort(parts.begin(), parts.end());
  std::string joined;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) joined += "; ";
    joined += parts[i];
  }
  return joined;
}

}  // namespace

std::string NormalizeValue(const std::string& value,
                           const NormalizeOptions& options) {
  std::string s = value;
  if (options.sort_list_values) s = SortListValue(s);
  if (options.casefold) {
    for (char& c : s) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  if (options.strip_url_decoration) s = StripUrlDecoration(s);
  if (options.normalize_dates) {
    std::string date;
    if (TryNormalizeLongDate(s, &date)) return date;
  }
  if (options.strip_punctuation) {
    std::string kept;
    kept.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '.': case ',': case ';': case ':': case '!': case '?':
        case '\'': case '"': case '(': case ')':
          break;
        default:
          kept.push_back(c);
      }
    }
    s = std::move(kept);
  }
  if (options.collapse_whitespace) {
    std::string collapsed;
    collapsed.reserve(s.size());
    bool in_space = false;
    for (char c : s) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        in_space = true;
        continue;
      }
      if (in_space && !collapsed.empty()) collapsed.push_back(' ');
      in_space = false;
      collapsed.push_back(c);
    }
    s = std::move(collapsed);
  }
  if (options.sort_tokens && s.find(' ') != std::string::npos) {
    std::vector<std::string> tokens;
    size_t pos = 0;
    while (pos < s.size()) {
      size_t sep = s.find(' ', pos);
      if (sep == std::string::npos) sep = s.size();
      if (sep > pos) tokens.push_back(s.substr(pos, sep - pos));
      pos = sep + 1;
    }
    std::sort(tokens.begin(), tokens.end());
    std::string joined;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (i > 0) joined += " ";
      joined += tokens[i];
    }
    s = std::move(joined);
  }
  return s;
}

Table NormalizeTable(const Table& table, const NormalizeOptions& options) {
  Table out(table.name());
  for (const Column& c : table.columns()) {
    Column normalized(c.name(), c.type());
    normalized.Reserve(c.size());
    for (const Value& v : c.values()) {
      if (v.is_null() || v.kind() != DataType::kString) {
        normalized.Append(v);
      } else {
        normalized.Append(
            Value::String(NormalizeValue(v.string_value(), options)));
      }
    }
    (void)out.AddColumn(std::move(normalized));
  }
  return out;
}

}  // namespace valentine
