#ifndef VALENTINE_TEXT_STEMMER_H_
#define VALENTINE_TEXT_STEMMER_H_

/// \file stemmer.h
/// A light English suffix-stripping stemmer (Porter-style steps 1a/1b/
/// derivational endings). Cupid and COMA stem name tokens before
/// thesaurus lookup so "addresses" matches "address" and "owning"
/// matches "own".

#include <string>
#include <vector>

namespace valentine {

/// Stems one lowercase token.
std::string StemToken(const std::string& token);

/// Stems each token of a list.
std::vector<std::string> StemTokens(const std::vector<std::string>& tokens);

}  // namespace valentine

#endif  // VALENTINE_TEXT_STEMMER_H_
