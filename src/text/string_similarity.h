#ifndef VALENTINE_TEXT_STRING_SIMILARITY_H_
#define VALENTINE_TEXT_STRING_SIMILARITY_H_

/// \file string_similarity.h
/// String distance/similarity measures used across the matchers:
/// Levenshtein (Similarity Flooding init, Jaccard-Levenshtein baseline),
/// trigram similarity (COMA name matcher), Jaro-Winkler (Cupid linguistic
/// matching), and set-overlap measures.

#include <string>
#include <unordered_set>
#include <vector>

namespace valentine {

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(const std::string& a, const std::string& b);

/// Banded (Ukkonen) Levenshtein with early exit: returns the exact edit
/// distance when it is <= max_dist, and some value > max_dist otherwise
/// (callers must treat any return above max_dist as "too far", not as
/// the true distance). Runs in O(max_dist * min_len) against the full
/// DP's O(len_a * len_b) and allocates nothing on the steady state.
size_t LevenshteinWithin(const std::string& a, const std::string& b,
                         size_t max_dist);

/// 1 - distance / max(len); 1.0 for two empty strings.
double LevenshteinSimilarity(const std::string& a, const std::string& b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(const std::string& a, const std::string& b);

/// Jaro-Winkler with standard prefix scaling (p = 0.1, max prefix 4).
double JaroWinklerSimilarity(const std::string& a, const std::string& b);

/// Character n-grams of a string (padded with '#' at both ends as COMA
/// does, so short names still produce grams). n == 0 yields no grams.
std::vector<std::string> CharNGrams(const std::string& s, size_t n);

/// Dice coefficient over character trigram multiset intersection.
double TrigramSimilarity(const std::string& a, const std::string& b);

/// Jaccard similarity of two string sets: |A ∩ B| / |A ∪ B|; 1.0 when
/// both are empty.
double JaccardSimilarity(const std::unordered_set<std::string>& a,
                         const std::unordered_set<std::string>& b);

/// Containment of a in b: |A ∩ B| / |A|; 0.0 when a is empty.
double Containment(const std::unordered_set<std::string>& a,
                   const std::unordered_set<std::string>& b);

/// Edit-distance kernel used by FuzzyJaccard's leftover pairing stage.
/// Both kernels produce identical scores (the banded one converts the
/// normalized threshold to a rounding-safe integer bound and reuses the
/// exact distance for the original floating-point accept test); kNaive
/// exists as the reference implementation and the bench A/B baseline.
enum class LevenshteinKernel {
  kBanded,  ///< LevenshteinWithin: Ukkonen band + early exit (default)
  kNaive,   ///< full-matrix LevenshteinDistance
};

/// Fuzzy Jaccard: values match when normalized Levenshtein distance
/// (distance / max len) is at most `max_distance`. This is the core of
/// the paper's Jaccard-Levenshtein baseline; exact matches are resolved
/// via hashing and only leftovers pay the quadratic comparison. Greedy
/// pairing consumes both leftover lists in first-seen input order, so
/// the score is a pure function of the input sequences (never of hash
/// iteration order).
double FuzzyJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b, double max_distance);

/// FuzzyJaccard with an explicit edit-distance kernel.
double FuzzyJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b, double max_distance,
                    LevenshteinKernel kernel);

/// Length of the longest common substring.
size_t LongestCommonSubstring(const std::string& a, const std::string& b);

/// American Soundex code of a word ("Robert" -> "R163"); empty input
/// yields "0000". Classic phonetic matcher from COMA's name library.
std::string Soundex(const std::string& word);

/// 1.0 when the Soundex codes agree, else 0.0 (with a 0.5 credit for a
/// shared leading letter + first digit).
double SoundexSimilarity(const std::string& a, const std::string& b);

/// Monge-Elkan-style best-match average of `sim` over token lists, made
/// symmetric by averaging both directions. Used by Cupid's linguistic
/// matcher over name tokens.
double BestMatchAverage(const std::vector<std::string>& a,
                        const std::vector<std::string>& b,
                        double (*sim)(const std::string&,
                                      const std::string&));

}  // namespace valentine

#endif  // VALENTINE_TEXT_STRING_SIMILARITY_H_
