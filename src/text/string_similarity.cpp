#include "text/string_similarity.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "obs/opcount.h"

namespace valentine {

namespace {

/// True when the bag (character-multiset) distance between a and b
/// provably exceeds `bound`. Bag distance — max(#chars of a unmatched in
/// b, #chars of b unmatched in a), counting multiplicity — is a lower
/// bound on Levenshtein distance: a deletion removes one unmatched char
/// of a, an insertion one of b, a substitution one of each, so each edit
/// reduces either count by at most 1. Costs O(|a|+|b|) with no DP and no
/// allocation, which makes it a profitable gate in front of the banded
/// kernel where most candidate pairs are far apart.
bool BagDistanceExceeds(const std::string& a, const std::string& b,
                        size_t bound) {
  // a/b here are std::strings; the lint keys on same-named set parameters
  // elsewhere in this file. Counting is commutative over order anyway.
  thread_local std::array<int, 256> counts{};  // invariant: all zero between calls
  for (unsigned char c : a) ++counts[c];  // lint:allow(unordered-iteration)
  for (unsigned char c : b) --counts[c];  // lint:allow(unordered-iteration)
  size_t surplus_a = 0;  // chars of a with no partner in b
  size_t surplus_b = 0;  // chars of b with no partner in a
  for (unsigned char c : a) {  // lint:allow(unordered-iteration)
    int v = counts[c];
    if (v > 0) surplus_a += static_cast<size_t>(v);
    counts[c] = 0;
  }
  for (unsigned char c : b) {  // lint:allow(unordered-iteration)
    int v = counts[c];
    if (v < 0) surplus_b += static_cast<size_t>(-v);
    counts[c] = 0;
  }
  return std::max(surplus_a, surplus_b) > bound;
}

}  // namespace

size_t LevenshteinDistance(const std::string& a, const std::string& b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  const size_t n = b.size();
  opcount::Add(opcount::Op::kLevenshteinCells, a.size() * n);
  std::vector<size_t> prev(n + 1), cur(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= n; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

size_t LevenshteinWithin(const std::string& a, const std::string& b,
                         size_t max_dist) {
  const size_t too_far = max_dist + 1;
  // Trim the common prefix and suffix: edits never pay for them, and
  // matcher value lists share formats (ids, codes, dates), so this
  // often shrinks the DP to a fraction of the strings.
  size_t lo = 0;
  size_t ea = a.size();
  size_t eb = b.size();
  while (lo < ea && lo < eb && a[lo] == b[lo]) ++lo;
  while (ea > lo && eb > lo && a[ea - 1] == b[eb - 1]) {
    --ea;
    --eb;
  }
  const size_t la = ea - lo;
  const size_t lb = eb - lo;
  // The distance is at least the length difference.
  if (la > lb + max_dist || lb > la + max_dist) return too_far;
  if (la == 0) return lb;
  if (lb == 0) return la;
  const char* sa = a.data() + lo;
  const char* sb = b.data() + lo;

  // Two-row DP restricted to the diagonal band |i - j| <= max_dist.
  // Cells outside the band hold `too_far`, which acts as infinity: band
  // values never exceed too_far + 1, so additions cannot overflow.
  thread_local std::vector<size_t> prev_row;
  thread_local std::vector<size_t> cur_row;
  prev_row.resize(lb + 1);
  cur_row.resize(lb + 1);
  const size_t first_hi = std::min(lb, max_dist);
  for (size_t j = 0; j <= first_hi; ++j) prev_row[j] = j;
  if (first_hi < lb) prev_row[first_hi + 1] = too_far;

  // Band cells visited, flushed to the op counter at every exit. A
  // plain local keeps the inner loop free of thread-local traffic.
  uint64_t cells = 0;
  for (size_t i = 1; i <= la; ++i) {
    const size_t band_lo = (i > max_dist) ? i - max_dist : 1;
    const size_t band_hi = std::min(lb, i + max_dist);
    cells += band_hi - band_lo + 1;
    cur_row[band_lo - 1] = (band_lo == 1) ? i : too_far;
    size_t row_min = cur_row[band_lo - 1];
    const char ca = sa[i - 1];
    for (size_t j = band_lo; j <= band_hi; ++j) {
      size_t cost = (ca == sb[j - 1]) ? 0 : 1;
      size_t d = std::min({prev_row[j] + 1, cur_row[j - 1] + 1,
                           prev_row[j - 1] + cost});
      cur_row[j] = d;
      row_min = std::min(row_min, d);
    }
    // The next row reads one cell past this row's band; keep it infinite
    // so values from earlier calls or rows never leak in.
    if (band_hi < lb) cur_row[band_hi + 1] = too_far;
    // Early exit: edit distance is non-decreasing along the DP rows, so
    // once the whole band exceeds the budget the answer must too.
    if (row_min > max_dist) {
      opcount::Add(opcount::Op::kLevenshteinCells, cells);
      return too_far;
    }
    std::swap(prev_row, cur_row);
  }
  opcount::Add(opcount::Op::kLevenshteinCells, cells);
  const size_t d = prev_row[lb];
  return d <= max_dist ? d : too_far;
}

double LevenshteinSimilarity(const std::string& a, const std::string& b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(max_len);
}

double JaroSimilarity(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t la = a.size();
  const size_t lb = b.size();
  const size_t match_window =
      std::max<size_t>(1, std::max(la, lb) / 2) - 1;
  std::vector<bool> a_matched(la, false), b_matched(lb, false);
  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = (i > match_window) ? i - match_window : 0;
    size_t hi = std::min(lb, i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double m = static_cast<double>(matches);
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(const std::string& a, const std::string& b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

std::vector<std::string> CharNGrams(const std::string& s, size_t n) {
  // n == 0 has no sensible gram decomposition — and n - 1 below would
  // underflow to SIZE_MAX and attempt a giant pad allocation.
  if (n == 0) return {};
  std::string padded(n - 1, '#');
  padded += s;
  padded.append(n - 1, '#');
  std::vector<std::string> grams;
  if (padded.size() < n) return grams;
  grams.reserve(padded.size() - n + 1);
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, n));
  }
  opcount::Add(opcount::Op::kNGramEmissions, grams.size());
  return grams;
}

double TrigramSimilarity(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  auto ga = CharNGrams(a, 3);
  auto gb = CharNGrams(b, 3);
  if (ga.empty() || gb.empty()) return 0.0;
  std::unordered_map<std::string, size_t> counts;
  for (const auto& g : ga) ++counts[g];
  size_t common = 0;
  for (const auto& g : gb) {
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++common;
    }
  }
  return 2.0 * common / static_cast<double>(ga.size() + gb.size());
}

double JaccardSimilarity(const std::unordered_set<std::string>& a,
                         const std::unordered_set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = (a.size() <= b.size()) ? a : b;
  const auto& large = (a.size() <= b.size()) ? b : a;
  size_t inter = 0;
  for (const auto& s : small) {
    if (large.count(s)) ++inter;
  }
  return static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size() - inter);
}

double Containment(const std::unordered_set<std::string>& a,
                   const std::unordered_set<std::string>& b) {
  if (a.empty()) return 0.0;
  size_t inter = 0;
  // Membership counting is commutative over iteration order.
  for (const auto& s : a) {  // lint:allow(unordered-iteration)
    if (b.count(s)) ++inter;
  }
  return static_cast<double>(inter) / static_cast<double>(a.size());
}

double FuzzyJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b, double max_distance) {
  return FuzzyJaccard(a, b, max_distance, LevenshteinKernel::kBanded);
}

double FuzzyJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b, double max_distance,
                    LevenshteinKernel kernel) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Resolve exact matches cheaply first; pair off leftovers fuzzily.
  // `a` and `b` are the input vectors here (the set-overload parameters
  // of the same names are what the lint heuristic keys on); iteration
  // follows input order by construction.
  std::unordered_map<std::string, size_t> b_counts;
  for (const auto& s : b) ++b_counts[s];  // lint:allow(unordered-iteration)
  std::vector<std::string> a_left;
  size_t matched = 0;
  for (const auto& s : a) {  // lint:allow(unordered-iteration)
    auto it = b_counts.find(s);
    if (it != b_counts.end() && it->second > 0) {
      --it->second;
      ++matched;
    } else {
      a_left.push_back(s);
    }
  }
  // Replay b against the leftover multiplicities so b_left comes out in
  // first-seen input order. Greedy pairing below is order-sensitive:
  // emitting leftovers by iterating b_counts would tie scores (and the
  // Recall@GT built on them) to hash iteration order, which varies
  // across standard libraries.
  std::vector<std::string> b_left;
  for (const auto& s : b) {  // lint:allow(unordered-iteration)
    auto it = b_counts.find(s);
    if (it != b_counts.end() && it->second > 0) {
      --it->second;
      b_left.push_back(s);
    }
  }
  std::vector<bool> b_used(b_left.size(), false);
  if (max_distance > 0.0) {
    for (const auto& s : a_left) {
      for (size_t j = 0; j < b_left.size(); ++j) {
        if (b_used[j]) continue;
        size_t max_len = std::max(s.size(), b_left[j].size());
        if (max_len == 0) continue;
        // Length prefilter: the edit distance is at least the length
        // difference, so such pairs can never clear the threshold.
        size_t min_len = std::min(s.size(), b_left[j].size());
        if (static_cast<double>(max_len - min_len) >
            max_distance * static_cast<double>(max_len)) {
          continue;
        }
        size_t dist;
        if (kernel == LevenshteinKernel::kBanded) {
          // floor(max_distance * max_len) + 1 over-covers every distance
          // the floating-point accept test below could admit (float
          // rounding can only misplace the product by far less than 1),
          // so bounding the DP there never changes a score — it only
          // lets hopeless pairs exit early.
          size_t bound = static_cast<size_t>(
                             max_distance * static_cast<double>(max_len)) +
                         1;
          // Bag distance never exceeds the true distance, so a pair it
          // rejects could never have passed the accept test below.
          if (BagDistanceExceeds(s, b_left[j], bound)) {
            opcount::Add(opcount::Op::kBagPrefilterHits, 1);
            continue;
          }
          opcount::Add(opcount::Op::kBagPrefilterMisses, 1);
          dist = LevenshteinWithin(s, b_left[j], bound);
          if (dist > bound) continue;
        } else {
          dist = LevenshteinDistance(s, b_left[j]);
        }
        double norm = static_cast<double>(dist) /
                      static_cast<double>(max_len);
        if (norm <= max_distance) {
          b_used[j] = true;
          ++matched;
          break;
        }
      }
    }
  }
  size_t uni = a.size() + b.size() - matched;
  if (uni == 0) return 1.0;
  return static_cast<double>(matched) / static_cast<double>(uni);
}

size_t LongestCommonSubstring(const std::string& a, const std::string& b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<size_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  size_t best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return best;
}

std::string Soundex(const std::string& word) {
  auto code_of = [](char c) -> char {
    switch (c) {
      case 'b': case 'f': case 'p': case 'v': return '1';
      case 'c': case 'g': case 'j': case 'k': case 'q': case 's':
      case 'x': case 'z': return '2';
      case 'd': case 't': return '3';
      case 'l': return '4';
      case 'm': case 'n': return '5';
      case 'r': return '6';
      default: return '0';  // vowels + h/w/y drop
    }
  };
  std::string letters;
  for (char raw : word) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalpha(c)) {
      letters.push_back(static_cast<char>(std::tolower(c)));
    }
  }
  if (letters.empty()) return "0000";
  std::string out(1, static_cast<char>(std::toupper(
                         static_cast<unsigned char>(letters[0]))));
  char prev_code = code_of(letters[0]);
  for (size_t i = 1; i < letters.size() && out.size() < 4; ++i) {
    char c = letters[i];
    char code = code_of(c);
    // 'h' and 'w' are transparent: they do not reset the previous code.
    if (c == 'h' || c == 'w') continue;
    if (code != '0' && code != prev_code) out.push_back(code);
    prev_code = code;
  }
  while (out.size() < 4) out.push_back('0');
  return out;
}

double SoundexSimilarity(const std::string& a, const std::string& b) {
  std::string sa = Soundex(a);
  std::string sb = Soundex(b);
  if (sa == sb) return 1.0;
  if (sa[0] == sb[0] && sa[1] == sb[1]) return 0.5;
  return 0.0;
}

double BestMatchAverage(const std::vector<std::string>& a,
                        const std::vector<std::string>& b,
                        double (*sim)(const std::string&,
                                      const std::string&)) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  auto one_way = [&](const std::vector<std::string>& xs,
                     const std::vector<std::string>& ys) {
    double total = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) best = std::max(best, sim(x, y));
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  return 0.5 * (one_way(a, b) + one_way(b, a));
}

}  // namespace valentine
