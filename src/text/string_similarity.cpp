#include "text/string_similarity.h"

#include <algorithm>
#include <unordered_map>

namespace valentine {

size_t LevenshteinDistance(const std::string& a, const std::string& b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  const size_t n = b.size();
  std::vector<size_t> prev(n + 1), cur(n + 1);
  for (size_t j = 0; j <= n; ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= n; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double LevenshteinSimilarity(const std::string& a, const std::string& b) {
  size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(max_len);
}

double JaroSimilarity(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t la = a.size();
  const size_t lb = b.size();
  const size_t match_window =
      std::max<size_t>(1, std::max(la, lb) / 2) - 1;
  std::vector<bool> a_matched(la, false), b_matched(lb, false);
  size_t matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = (i > match_window) ? i - match_window : 0;
    size_t hi = std::min(lb, i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  double m = static_cast<double>(matches);
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(const std::string& a, const std::string& b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

std::vector<std::string> CharNGrams(const std::string& s, size_t n) {
  std::string padded(n - 1, '#');
  padded += s;
  padded.append(n - 1, '#');
  std::vector<std::string> grams;
  if (padded.size() < n) return grams;
  grams.reserve(padded.size() - n + 1);
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, n));
  }
  return grams;
}

double TrigramSimilarity(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  auto ga = CharNGrams(a, 3);
  auto gb = CharNGrams(b, 3);
  if (ga.empty() || gb.empty()) return 0.0;
  std::unordered_map<std::string, size_t> counts;
  for (const auto& g : ga) ++counts[g];
  size_t common = 0;
  for (const auto& g : gb) {
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++common;
    }
  }
  return 2.0 * common / static_cast<double>(ga.size() + gb.size());
}

double JaccardSimilarity(const std::unordered_set<std::string>& a,
                         const std::unordered_set<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = (a.size() <= b.size()) ? a : b;
  const auto& large = (a.size() <= b.size()) ? b : a;
  size_t inter = 0;
  for (const auto& s : small) {
    if (large.count(s)) ++inter;
  }
  return static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size() - inter);
}

double Containment(const std::unordered_set<std::string>& a,
                   const std::unordered_set<std::string>& b) {
  if (a.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& s : a) {
    if (b.count(s)) ++inter;
  }
  return static_cast<double>(inter) / static_cast<double>(a.size());
}

double FuzzyJaccard(const std::vector<std::string>& a,
                    const std::vector<std::string>& b, double max_distance) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  // Resolve exact matches cheaply first; pair off leftovers fuzzily.
  std::unordered_map<std::string, size_t> b_counts;
  for (const auto& s : b) ++b_counts[s];
  std::vector<std::string> a_left;
  size_t matched = 0;
  for (const auto& s : a) {
    auto it = b_counts.find(s);
    if (it != b_counts.end() && it->second > 0) {
      --it->second;
      ++matched;
    } else {
      a_left.push_back(s);
    }
  }
  std::vector<std::string> b_left;
  for (const auto& [s, count] : b_counts) {
    for (size_t i = 0; i < count; ++i) b_left.push_back(s);
  }
  std::vector<bool> b_used(b_left.size(), false);
  if (max_distance > 0.0) {
    for (const auto& s : a_left) {
      for (size_t j = 0; j < b_left.size(); ++j) {
        if (b_used[j]) continue;
        size_t max_len = std::max(s.size(), b_left[j].size());
        if (max_len == 0) continue;
        // Length prefilter: the edit distance is at least the length
        // difference, so such pairs can never clear the threshold.
        size_t min_len = std::min(s.size(), b_left[j].size());
        if (static_cast<double>(max_len - min_len) >
            max_distance * static_cast<double>(max_len)) {
          continue;
        }
        double norm = static_cast<double>(
                          LevenshteinDistance(s, b_left[j])) /
                      static_cast<double>(max_len);
        if (norm <= max_distance) {
          b_used[j] = true;
          ++matched;
          break;
        }
      }
    }
  }
  size_t uni = a.size() + b.size() - matched;
  if (uni == 0) return 1.0;
  return static_cast<double>(matched) / static_cast<double>(uni);
}

size_t LongestCommonSubstring(const std::string& a, const std::string& b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<size_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  size_t best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return best;
}

std::string Soundex(const std::string& word) {
  auto code_of = [](char c) -> char {
    switch (c) {
      case 'b': case 'f': case 'p': case 'v': return '1';
      case 'c': case 'g': case 'j': case 'k': case 'q': case 's':
      case 'x': case 'z': return '2';
      case 'd': case 't': return '3';
      case 'l': return '4';
      case 'm': case 'n': return '5';
      case 'r': return '6';
      default: return '0';  // vowels + h/w/y drop
    }
  };
  std::string letters;
  for (char raw : word) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalpha(c)) {
      letters.push_back(static_cast<char>(std::tolower(c)));
    }
  }
  if (letters.empty()) return "0000";
  std::string out(1, static_cast<char>(std::toupper(
                         static_cast<unsigned char>(letters[0]))));
  char prev_code = code_of(letters[0]);
  for (size_t i = 1; i < letters.size() && out.size() < 4; ++i) {
    char c = letters[i];
    char code = code_of(c);
    // 'h' and 'w' are transparent: they do not reset the previous code.
    if (c == 'h' || c == 'w') continue;
    if (code != '0' && code != prev_code) out.push_back(code);
    prev_code = code;
  }
  while (out.size() < 4) out.push_back('0');
  return out;
}

double SoundexSimilarity(const std::string& a, const std::string& b) {
  std::string sa = Soundex(a);
  std::string sb = Soundex(b);
  if (sa == sb) return 1.0;
  if (sa[0] == sb[0] && sa[1] == sb[1]) return 0.5;
  return 0.0;
}

double BestMatchAverage(const std::vector<std::string>& a,
                        const std::vector<std::string>& b,
                        double (*sim)(const std::string&,
                                      const std::string&)) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  auto one_way = [&](const std::vector<std::string>& xs,
                     const std::vector<std::string>& ys) {
    double total = 0.0;
    for (const auto& x : xs) {
      double best = 0.0;
      for (const auto& y : ys) best = std::max(best, sim(x, y));
      total += best;
    }
    return total / static_cast<double>(xs.size());
  };
  return 0.5 * (one_way(a, b) + one_way(b, a));
}

}  // namespace valentine
