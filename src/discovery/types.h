#ifndef VALENTINE_DISCOVERY_TYPES_H_
#define VALENTINE_DISCOVERY_TYPES_H_

/// \file types.h
/// Shared value types of the staged discovery pipeline. A discovery
/// query flows Retrieve → Enrich → Rerank (DESIGN.md §14):
///
///   Retrieve  a CandidateIndex nominates candidate table names
///             (RetrievedCandidates) — cheap, recall-oriented;
///   Enrich    an Enricher joins the nominations back to the
///             repository's per-table metadata (profiles, name tokens,
///             canon forms) as a typed CandidateSet;
///   Rerank    a Reranker scores every enriched candidate and the
///             orchestrator sorts/truncates to the top-k.
///
/// These types carry no behavior so every stage interface can depend on
/// them without depending on each other.

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "matchers/match_result.h"

namespace valentine {

struct RegisteredTable;  // repository.h

/// Which table-level relation a query asks for.
enum class DiscoveryMode {
  kJoinable,
  kUnionable,
};

/// "joinable" / "unionable" — the spelling used in metrics labels,
/// span attributes, and the serve wire format.
const char* DiscoveryModeName(DiscoveryMode mode);

/// One discovered table with its evidence.
struct DiscoveryResult {
  std::string table_name;
  double score = 0.0;          ///< table-level relatedness
  std::vector<Match> evidence; ///< the column matches behind the score
};

/// Stage-1 output: the candidate table names a CandidateIndex nominated
/// for a query, plus provenance for observability.
struct RetrievedCandidates {
  /// Names of nominated repository tables (sorted, deduplicated).
  std::set<std::string> tables;
  /// CandidateIndex::Name() of the index that served the query.
  std::string index;
  /// True when the configured index could not see the query (e.g. every
  /// query column sketched empty) and degraded to nominating the whole
  /// repository instead of silently returning nothing.
  bool fallback = false;
  /// Machine-readable cause, non-empty iff `fallback` (metric label).
  std::string fallback_reason;
};

/// One retrieved candidate joined back to its repository entry. The
/// entry pointer borrows from the TableRepository the candidate was
/// enriched against and stays valid for the lifetime of that
/// repository's entry (entries are immutable and shared).
struct EnrichedCandidate {
  size_t repository_index = 0;
  const RegisteredTable* entry = nullptr;
};

/// Stage-2 output: enriched candidates in repository registration
/// order — the deterministic scoring order the reranker walks.
struct CandidateSet {
  std::vector<EnrichedCandidate> candidates;
  /// How many candidates carry a store-loaded ColumnProfile set.
  size_t profiles_attached = 0;
};

/// Per-stage accounting for one Find* call, surfaced through the serve
/// layer's opt-in `explain` response field. Purely observational: the
/// ranked results are byte-identical whether or not it is requested.
struct DiscoveryExplain {
  std::string index;              ///< CandidateIndex that served stage 1
  bool fallback = false;          ///< stage 1 degraded to exhaustive
  std::string fallback_reason;    ///< non-empty iff fallback
  size_t repository_tables = 0;   ///< repository size at query time
  size_t retrieved = 0;           ///< stage-1 nominations
  size_t enriched = 0;            ///< stage-2 candidates entering rerank
  size_t profiles_attached = 0;   ///< of which carried stored profiles
  size_t reranked = 0;            ///< stage-3 candidates actually scored
  size_t survivors = 0;           ///< results returned after top-k
};

}  // namespace valentine

#endif  // VALENTINE_DISCOVERY_TYPES_H_
