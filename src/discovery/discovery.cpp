#include "discovery/discovery.h"

#include <algorithm>
#include <map>
#include <set>

#include "matchers/coma.h"
#include "text/tokenizer.h"

namespace valentine {

namespace {

constexpr char kKeySeparator = '\x1f';

/// A stored artifact substitutes for a fresh build only when it
/// describes this exact table shape at this signature width (content
/// fingerprints collide across renames: the fingerprint hashes the
/// table name too, so a mismatch here means a foreign or stale file).
bool ArtifactServesTable(const TableDiscoveryArtifact& artifact,
                         const Table& table, size_t signature_size) {
  if (artifact.signature_size != signature_size) return false;
  if (artifact.columns.size() != table.num_columns()) return false;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    if (artifact.columns[i].name != table.column(i).name()) return false;
  }
  if (artifact.has_profiles &&
      artifact.profiles.size() != artifact.columns.size()) {
    return false;
  }
  return true;
}

}  // namespace

DiscoveryEngine::DiscoveryEngine(DiscoveryOptions options)
    : options_(std::move(options)), column_index_(options_.lsh) {}

DiscoveryEngine::~DiscoveryEngine() = default;

const ColumnMatcher& DiscoveryEngine::matcher() const {
  if (options_.matcher) return *options_.matcher;
  static const ComaMatcher* kDefault = [] {
    ComaOptions opt;
    opt.strategy = ComaStrategy::kInstances;
    return new ComaMatcher(opt);
  }();
  return *kDefault;
}

Status DiscoveryEngine::ValidateTable(const Table& table) const {
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("table '" + table.name() +
                                   "' has no columns");
  }
  if (table.name().find(kKeySeparator) != std::string::npos) {
    return Status::InvalidArgument(
        "table name contains reserved separator \\x1f");
  }
  for (const Table& existing : tables_) {
    if (existing.name() == table.name()) {
      return Status::InvalidArgument("duplicate table name '" +
                                     table.name() + "'");
    }
  }
  std::set<std::string> seen_columns;
  for (const Column& c : table.columns()) {
    if (c.name().find(kKeySeparator) != std::string::npos) {
      return Status::InvalidArgument(
          "column name contains reserved separator \\x1f (table '" +
          table.name() + "')");
    }
    if (!seen_columns.insert(c.name()).second) {
      return Status::InvalidArgument("duplicate column name '" + c.name() +
                                     "' in table '" + table.name() + "'");
    }
  }
  return Status::OK();
}

Status DiscoveryEngine::AddTable(Table table) {
  // Validate-then-commit: nothing below can fail on a valid table, so a
  // rejected registration leaves no partial index state behind.
  VALENTINE_RETURN_NOT_OK(ValidateTable(table));

  const size_t signature_size = column_index_.signature_size();
  std::shared_ptr<const TableDiscoveryArtifact> artifact;
  if (options_.store != nullptr) {
    const uint64_t fingerprint = TableContentFingerprint(table);
    auto loaded = options_.store->Get(fingerprint);
    if (loaded.ok() &&
        ArtifactServesTable(**loaded, table, signature_size)) {
      artifact = *loaded;
      if (options_.metrics != nullptr) {
        options_.metrics
            ->CounterFor("valentine_discovery_store_total",
                         {{"event", "hit"}})
            ->Increment();
      }
    } else {
      artifact = std::make_shared<const TableDiscoveryArtifact>(
          BuildDiscoveryArtifact(table, signature_size,
                                 /*with_profiles=*/true, ProfileSpec{}));
      Status persisted = options_.store->Put(artifact);
      // A failed persist degrades to in-memory registration: queries
      // stay correct, only the next cold start pays the rebuild.
      if (options_.metrics != nullptr) {
        options_.metrics
            ->CounterFor("valentine_discovery_store_total",
                         {{"event", persisted.ok() ? "build" : "put-error"}})
            ->Increment();
      }
    }
  }

  if (artifact != nullptr) {
    for (const ColumnDiscoveryArtifact& c : artifact->columns) {
      VALENTINE_RETURN_NOT_OK(column_index_.AddSketch(
          table.name() + kKeySeparator + c.name, c.sketch));
    }
  } else {
    for (const Column& c : table.columns()) {
      VALENTINE_RETURN_NOT_OK(column_index_.Add(
          table.name() + kKeySeparator + c.name(), c.DistinctStringSet()));
    }
  }

  // Store-loaded profiles only substitute for fresh builds under an
  // identical spec; otherwise the matcher pipeline builds inline.
  std::shared_ptr<const TableProfile> profile;
  if (artifact != nullptr && artifact->has_profiles &&
      ProfileSpecsEqual(artifact->profile_spec, ProfileSpec{})) {
    profile = TableProfileFromArtifact(*artifact);
  }

  for (const Column& c : table.columns()) {
    for (const std::string& token : TokenizeIdentifier(c.name())) {
      name_token_tables_[token].insert(table.name());
    }
  }

  tables_.push_back(std::move(table));
  table_profiles_.push_back(std::move(profile));
  // Growing the vector may relocate every table; cached artifacts
  // borrow that storage, so they must be rebuilt on next query.
  artifacts_.Clear();
  return Status::OK();
}

Status DiscoveryEngine::RemoveTable(const std::string& name) {
  size_t index = tables_.size();
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name() == name) {
      index = i;
      break;
    }
  }
  if (index == tables_.size()) {
    return Status::NotFound("no table '" + name + "'");
  }
  const Table& table = tables_[index];
  for (const Column& c : table.columns()) {
    VALENTINE_RETURN_NOT_OK(
        column_index_.Remove(name + kKeySeparator + c.name()));
  }
  for (const Column& c : table.columns()) {
    for (const std::string& token : TokenizeIdentifier(c.name())) {
      auto it = name_token_tables_.find(token);
      if (it == name_token_tables_.end()) continue;
      it->second.erase(name);
      if (it->second.empty()) name_token_tables_.erase(it);
    }
  }
  tables_.erase(tables_.begin() + static_cast<ptrdiff_t>(index));
  table_profiles_.erase(table_profiles_.begin() +
                        static_cast<ptrdiff_t>(index));
  // Erasing shifts every subsequent table; cached artifacts borrow that
  // storage (same invalidation rule as AddTable).
  artifacts_.Clear();
  return Status::OK();
}

std::set<std::string> DiscoveryEngine::UnionCandidates(
    const Table& query) const {
  std::set<std::string> names;
  for (const Column& c : query.columns()) {
    // Slot-level probing (the recall end of the S-curve): unionable
    // columns share values but rarely whole domains, so Jaccard
    // banding's ~0.7 threshold would miss most of them.
    for (const std::string& key :
         column_index_.ContainmentCandidates(c.DistinctStringSet())) {
      names.insert(key.substr(0, key.find(kKeySeparator)));
    }
    if (options_.union_name_candidates) {
      for (const std::string& token : TokenizeIdentifier(c.name())) {
        auto it = name_token_tables_.find(token);
        if (it == name_token_tables_.end()) continue;
        names.insert(it->second.begin(), it->second.end());
      }
    }
  }
  return names;
}

MatchContext DiscoveryEngine::ObsContext(const MatchContext& base,
                                         const std::string& trace_id,
                                         uint64_t parent_span) const {
  MatchContext context;
  context.deadline = base.deadline;
  context.cancel = base.cancel;
  context.source_profile = base.source_profile;
  context.target_profile = base.target_profile;
  context.trace_id = trace_id;
  context.clock = base.clock != nullptr ? base.clock : options_.clock;
  context.tracer = options_.tracer;
  context.parent_span = parent_span;
  return context;
}

Result<MatchResult> DiscoveryEngine::ScoreAgainstRepository(
    const PreparedTable* prepared_query, const Table& query,
    const Table& candidate, const TableProfile* candidate_profile,
    const MatchContext& base, const std::string& trace_id,
    uint64_t parent_span) const {
  if (prepared_query != nullptr) {
    PreparedTablePtr prepared_candidate = artifacts_.GetOrPrepare(
        matcher(), candidate, candidate_profile,
        ObsContext(base, trace_id, parent_span));
    if (prepared_candidate != nullptr) {
      SpanScope score_span(options_.tracer, trace_id, "score",
                           candidate.name(), parent_span);
      score_span.Attr("path", "prepared");
      Result<MatchResult> scored =
          matcher().Score(*prepared_query, *prepared_candidate,
                          ObsContext(base, trace_id, score_span.id()));
      if (scored.ok()) return scored;
      // The request's budget/cancellation aborts the whole query; any
      // other error (only possible via an injected decorator) degrades
      // to the empty result, exactly like the infallible Match overload.
      if (scored.status().code() == StatusCode::kDeadlineExceeded ||
          scored.status().code() == StatusCode::kCancelled) {
        return scored.status();
      }
      return MatchResult();
    }
    // A failed artifact build under a fired context must abort, not
    // silently fall back to the slower monolithic path.
    Status checked = base.Check("discovery/prepare");
    if (!checked.ok()) return checked;
  }
  SpanScope score_span(options_.tracer, trace_id, "score", candidate.name(),
                       parent_span);
  score_span.Attr("path", "monolithic");
  Result<MatchResult> matched = matcher().Match(
      query, candidate, ObsContext(base, trace_id, score_span.id()));
  if (matched.ok()) return matched;
  if (matched.status().code() == StatusCode::kDeadlineExceeded ||
      matched.status().code() == StatusCode::kCancelled) {
    return matched.status();
  }
  return MatchResult();
}

std::vector<DiscoveryResult> DiscoveryEngine::FindJoinable(
    const Table& query, size_t k) const {
  // An unbounded context cannot fail (built-in matchers are infallible
  // without a deadline/token), so ValueOrDie is safe here.
  return FindJoinable(query, k, MatchContext()).ValueOrDie();
}

std::vector<DiscoveryResult> DiscoveryEngine::FindUnionable(
    const Table& query, size_t k) const {
  return FindUnionable(query, k, MatchContext()).ValueOrDie();
}

Result<std::vector<DiscoveryResult>> DiscoveryEngine::FindJoinable(
    const Table& query, size_t k, const MatchContext& ctx) const {
  const std::string trace_id =
      ctx.trace_id.empty() ? "discovery/" + query.name() : ctx.trace_id;
  SpanScope query_span(options_.tracer, trace_id, "query", query.name(),
                       ctx.parent_span);
  query_span.Attr("mode", "joinable");
  query_span.Attr("k", std::to_string(k));
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_queries_total",
                     {{"mode", "joinable"}})
        ->Increment();
  }
  // Fail fast: a request that arrives with its budget already spent (or
  // cancelled) must do zero candidate work.
  VALENTINE_RETURN_NOT_OK(ctx.Check("discovery/joinable/start"));
  // Nominate candidate tables: for every query column, probe the
  // containment index and credit the owning table. The exhaustive path
  // nominates everything (the A/B reference).
  std::set<std::string> candidate_tables;
  if (options_.joinable_path == CandidatePath::kExhaustive) {
    for (const Table& t : tables_) candidate_tables.insert(t.name());
  } else {
    for (const Column& c : query.columns()) {
      auto hits = column_index_.QueryContainment(c.DistinctStringSet(),
                                                 options_.min_containment);
      for (const auto& [key, containment] : hits) {
        candidate_tables.insert(key.substr(0, key.find(kKeySeparator)));
      }
    }
  }

  // Prepare the query once; every candidate scores against it. The
  // query is caller-owned and transient, so its artifact is built
  // inline rather than cached.
  Result<PreparedTablePtr> prepared_query = matcher().Prepare(
      query, /*profile=*/nullptr, ObsContext(ctx, trace_id, query_span.id()));

  // Verify candidates with the matcher; table score = best column match.
  std::vector<DiscoveryResult> results;
  size_t scored_count = 0;
  for (size_t ti = 0; ti < tables_.size(); ++ti) {
    const Table& t = tables_[ti];
    if (!candidate_tables.count(t.name())) continue;
    VALENTINE_RETURN_NOT_OK(ctx.Check("discovery/joinable/candidate"));
    Result<MatchResult> scored = ScoreAgainstRepository(
        prepared_query.ok() ? prepared_query->get() : nullptr, query, t,
        table_profiles_[ti].get(), ctx, trace_id, query_span.id());
    if (!scored.ok()) return scored.status();
    ++scored_count;
    MatchResult ranked = std::move(scored).ValueOrDie();
    DiscoveryResult r;
    r.table_name = t.name();
    if (!ranked.empty()) {
      r.score = ranked[0].score;
      r.evidence = ranked.TopK(3);
    }
    results.push_back(std::move(r));
  }
  query_span.Attr("candidates_scored", std::to_string(scored_count));
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_candidates_scored_total",
                     {{"mode", "joinable"}})
        ->Increment(scored_count);
  }
  std::sort(results.begin(), results.end(),
            [](const DiscoveryResult& a, const DiscoveryResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.table_name < b.table_name;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

Result<std::vector<DiscoveryResult>> DiscoveryEngine::FindUnionable(
    const Table& query, size_t k, const MatchContext& ctx) const {
  const std::string trace_id =
      ctx.trace_id.empty() ? "discovery/" + query.name() : ctx.trace_id;
  SpanScope query_span(options_.tracer, trace_id, "query", query.name(),
                       ctx.parent_span);
  query_span.Attr("mode", "unionable");
  query_span.Attr("k", std::to_string(k));
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_queries_total",
                     {{"mode", "unionable"}})
        ->Increment();
  }
  VALENTINE_RETURN_NOT_OK(ctx.Check("discovery/unionable/start"));
  // Candidate nomination: unionable tables share value domains (LSH
  // containment probes) or column vocabulary (name-token postings);
  // the exhaustive path scores everything.
  const bool exhaustive =
      options_.unionable_path == CandidatePath::kExhaustive;
  std::set<std::string> candidate_tables;
  if (!exhaustive) candidate_tables = UnionCandidates(query);
  Result<PreparedTablePtr> prepared_query = matcher().Prepare(
      query, /*profile=*/nullptr, ObsContext(ctx, trace_id, query_span.id()));
  std::vector<DiscoveryResult> results;
  size_t scored_count = 0;
  for (size_t ti = 0; ti < tables_.size(); ++ti) {
    const Table& t = tables_[ti];
    if (!exhaustive && !candidate_tables.count(t.name())) continue;
    VALENTINE_RETURN_NOT_OK(ctx.Check("discovery/unionable/candidate"));
    Result<MatchResult> scored = ScoreAgainstRepository(
        prepared_query.ok() ? prepared_query->get() : nullptr, query, t,
        table_profiles_[ti].get(), ctx, trace_id, query_span.id());
    if (!scored.ok()) return scored.status();
    ++scored_count;
    MatchResult ranked = std::move(scored).ValueOrDie();
    // Union score: mean of the best per-query-column matches, over the
    // strongest `union_evidence_columns` columns.
    std::map<std::string, Match> best_per_column;
    for (const Match& m : ranked.matches()) {
      auto it = best_per_column.find(m.source.column);
      if (it == best_per_column.end() || m.score > it->second.score) {
        best_per_column[m.source.column] = m;
      }
    }
    std::vector<Match> bests;
    bests.reserve(best_per_column.size());
    for (auto& [col, m] : best_per_column) bests.push_back(m);
    std::sort(bests.begin(), bests.end(),
              [](const Match& a, const Match& b) { return a.score > b.score; });
    size_t evidence_n =
        std::min<size_t>(options_.union_evidence_columns, bests.size());
    DiscoveryResult r;
    r.table_name = t.name();
    if (evidence_n > 0) {
      double total = 0.0;
      for (size_t i = 0; i < evidence_n; ++i) {
        total += bests[i].score;
        r.evidence.push_back(bests[i]);
      }
      // Penalize arity mismatch: unionable relations must align fully.
      double arity = static_cast<double>(
                         std::min(query.num_columns(), t.num_columns())) /
                     static_cast<double>(
                         std::max(query.num_columns(), t.num_columns()));
      r.score = (total / static_cast<double>(evidence_n)) * arity;
    }
    results.push_back(std::move(r));
  }
  query_span.Attr("candidates_scored", std::to_string(scored_count));
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_candidates_scored_total",
                     {{"mode", "unionable"}})
        ->Increment(scored_count);
  }
  std::sort(results.begin(), results.end(),
            [](const DiscoveryResult& a, const DiscoveryResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.table_name < b.table_name;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace valentine
