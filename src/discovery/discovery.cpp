#include "discovery/discovery.h"

#include <algorithm>
#include <map>
#include <set>

#include "matchers/coma.h"

namespace valentine {

DiscoveryEngine::DiscoveryEngine(DiscoveryOptions options)
    : options_(std::move(options)), column_index_(options_.lsh) {}

DiscoveryEngine::~DiscoveryEngine() = default;

const ColumnMatcher& DiscoveryEngine::matcher() const {
  if (options_.matcher) return *options_.matcher;
  static const ComaMatcher* kDefault = [] {
    ComaOptions opt;
    opt.strategy = ComaStrategy::kInstances;
    return new ComaMatcher(opt);
  }();
  return *kDefault;
}

Status DiscoveryEngine::AddTable(Table table) {
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("table '" + table.name() +
                                   "' has no columns");
  }
  for (const Table& existing : tables_) {
    if (existing.name() == table.name()) {
      return Status::InvalidArgument("duplicate table name '" +
                                     table.name() + "'");
    }
  }
  for (const Column& c : table.columns()) {
    column_index_.Add(table.name() + "\x1f" + c.name(),
                      c.DistinctStringSet());
  }
  tables_.push_back(std::move(table));
  // Growing the vector may relocate every table; cached artifacts
  // borrow that storage, so they must be rebuilt on next query.
  artifacts_.Clear();
  return Status::OK();
}

MatchContext DiscoveryEngine::ObsContext(const MatchContext& base,
                                         const std::string& trace_id,
                                         uint64_t parent_span) const {
  MatchContext context;
  context.deadline = base.deadline;
  context.cancel = base.cancel;
  context.source_profile = base.source_profile;
  context.target_profile = base.target_profile;
  context.trace_id = trace_id;
  context.clock = base.clock != nullptr ? base.clock : options_.clock;
  context.tracer = options_.tracer;
  context.parent_span = parent_span;
  return context;
}

Result<MatchResult> DiscoveryEngine::ScoreAgainstRepository(
    const PreparedTable* prepared_query, const Table& query,
    const Table& candidate, const MatchContext& base,
    const std::string& trace_id, uint64_t parent_span) const {
  if (prepared_query != nullptr) {
    PreparedTablePtr prepared_candidate = artifacts_.GetOrPrepare(
        matcher(), candidate, /*profile=*/nullptr,
        ObsContext(base, trace_id, parent_span));
    if (prepared_candidate != nullptr) {
      SpanScope score_span(options_.tracer, trace_id, "score",
                           candidate.name(), parent_span);
      score_span.Attr("path", "prepared");
      Result<MatchResult> scored =
          matcher().Score(*prepared_query, *prepared_candidate,
                          ObsContext(base, trace_id, score_span.id()));
      if (scored.ok()) return scored;
      // The request's budget/cancellation aborts the whole query; any
      // other error (only possible via an injected decorator) degrades
      // to the empty result, exactly like the infallible Match overload.
      if (scored.status().code() == StatusCode::kDeadlineExceeded ||
          scored.status().code() == StatusCode::kCancelled) {
        return scored.status();
      }
      return MatchResult();
    }
    // A failed artifact build under a fired context must abort, not
    // silently fall back to the slower monolithic path.
    Status checked = base.Check("discovery/prepare");
    if (!checked.ok()) return checked;
  }
  SpanScope score_span(options_.tracer, trace_id, "score", candidate.name(),
                       parent_span);
  score_span.Attr("path", "monolithic");
  Result<MatchResult> matched = matcher().Match(
      query, candidate, ObsContext(base, trace_id, score_span.id()));
  if (matched.ok()) return matched;
  if (matched.status().code() == StatusCode::kDeadlineExceeded ||
      matched.status().code() == StatusCode::kCancelled) {
    return matched.status();
  }
  return MatchResult();
}

std::vector<DiscoveryResult> DiscoveryEngine::FindJoinable(
    const Table& query, size_t k) const {
  // An unbounded context cannot fail (built-in matchers are infallible
  // without a deadline/token), so ValueOrDie is safe here.
  return FindJoinable(query, k, MatchContext()).ValueOrDie();
}

std::vector<DiscoveryResult> DiscoveryEngine::FindUnionable(
    const Table& query, size_t k) const {
  return FindUnionable(query, k, MatchContext()).ValueOrDie();
}

Result<std::vector<DiscoveryResult>> DiscoveryEngine::FindJoinable(
    const Table& query, size_t k, const MatchContext& ctx) const {
  const std::string trace_id =
      ctx.trace_id.empty() ? "discovery/" + query.name() : ctx.trace_id;
  SpanScope query_span(options_.tracer, trace_id, "query", query.name(),
                       ctx.parent_span);
  query_span.Attr("mode", "joinable");
  query_span.Attr("k", std::to_string(k));
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_queries_total",
                     {{"mode", "joinable"}})
        ->Increment();
  }
  // Fail fast: a request that arrives with its budget already spent (or
  // cancelled) must do zero candidate work.
  VALENTINE_RETURN_NOT_OK(ctx.Check("discovery/joinable/start"));
  // Nominate candidate tables: for every query column, probe the
  // containment index and credit the owning table.
  std::set<std::string> candidate_tables;
  for (const Column& c : query.columns()) {
    auto hits = column_index_.QueryContainment(c.DistinctStringSet(),
                                               options_.min_containment);
    for (const auto& [key, containment] : hits) {
      candidate_tables.insert(key.substr(0, key.find('\x1f')));
    }
  }

  // Prepare the query once; every candidate scores against it. The
  // query is caller-owned and transient, so its artifact is built
  // inline rather than cached.
  Result<PreparedTablePtr> prepared_query = matcher().Prepare(
      query, /*profile=*/nullptr, ObsContext(ctx, trace_id, query_span.id()));

  // Verify candidates with the matcher; table score = best column match.
  std::vector<DiscoveryResult> results;
  for (const Table& t : tables_) {
    if (!candidate_tables.count(t.name())) continue;
    VALENTINE_RETURN_NOT_OK(ctx.Check("discovery/joinable/candidate"));
    Result<MatchResult> scored = ScoreAgainstRepository(
        prepared_query.ok() ? prepared_query->get() : nullptr, query, t,
        ctx, trace_id, query_span.id());
    if (!scored.ok()) return scored.status();
    MatchResult ranked = std::move(scored).ValueOrDie();
    DiscoveryResult r;
    r.table_name = t.name();
    if (!ranked.empty()) {
      r.score = ranked[0].score;
      r.evidence = ranked.TopK(3);
    }
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const DiscoveryResult& a, const DiscoveryResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.table_name < b.table_name;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

Result<std::vector<DiscoveryResult>> DiscoveryEngine::FindUnionable(
    const Table& query, size_t k, const MatchContext& ctx) const {
  const std::string trace_id =
      ctx.trace_id.empty() ? "discovery/" + query.name() : ctx.trace_id;
  SpanScope query_span(options_.tracer, trace_id, "query", query.name(),
                       ctx.parent_span);
  query_span.Attr("mode", "unionable");
  query_span.Attr("k", std::to_string(k));
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_queries_total",
                     {{"mode", "unionable"}})
        ->Increment();
  }
  VALENTINE_RETURN_NOT_OK(ctx.Check("discovery/unionable/start"));
  Result<PreparedTablePtr> prepared_query = matcher().Prepare(
      query, /*profile=*/nullptr, ObsContext(ctx, trace_id, query_span.id()));
  std::vector<DiscoveryResult> results;
  for (const Table& t : tables_) {
    VALENTINE_RETURN_NOT_OK(ctx.Check("discovery/unionable/candidate"));
    Result<MatchResult> scored = ScoreAgainstRepository(
        prepared_query.ok() ? prepared_query->get() : nullptr, query, t,
        ctx, trace_id, query_span.id());
    if (!scored.ok()) return scored.status();
    MatchResult ranked = std::move(scored).ValueOrDie();
    // Union score: mean of the best per-query-column matches, over the
    // strongest `union_evidence_columns` columns.
    std::map<std::string, Match> best_per_column;
    for (const Match& m : ranked.matches()) {
      auto it = best_per_column.find(m.source.column);
      if (it == best_per_column.end() || m.score > it->second.score) {
        best_per_column[m.source.column] = m;
      }
    }
    std::vector<Match> bests;
    bests.reserve(best_per_column.size());
    for (auto& [col, m] : best_per_column) bests.push_back(m);
    std::sort(bests.begin(), bests.end(),
              [](const Match& a, const Match& b) { return a.score > b.score; });
    size_t evidence_n =
        std::min<size_t>(options_.union_evidence_columns, bests.size());
    DiscoveryResult r;
    r.table_name = t.name();
    if (evidence_n > 0) {
      double total = 0.0;
      for (size_t i = 0; i < evidence_n; ++i) {
        total += bests[i].score;
        r.evidence.push_back(bests[i]);
      }
      // Penalize arity mismatch: unionable relations must align fully.
      double arity = static_cast<double>(
                         std::min(query.num_columns(), t.num_columns())) /
                     static_cast<double>(
                         std::max(query.num_columns(), t.num_columns()));
      r.score = (total / static_cast<double>(evidence_n)) * arity;
    }
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const DiscoveryResult& a, const DiscoveryResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.table_name < b.table_name;
            });
  if (results.size() > k) results.resize(k);
  return results;
}

}  // namespace valentine
