#include "discovery/discovery.h"

#include <algorithm>
#include <utility>

#include "matchers/coma.h"

namespace valentine {

namespace {

LshCandidateIndex::Options LshIndexOptions(const DiscoveryOptions& options) {
  LshCandidateIndex::Options out;
  out.lsh = options.lsh;
  out.min_containment = options.min_containment;
  out.union_name_candidates = options.union_name_candidates;
  return out;
}

RepositoryOptions RepositoryOptionsFor(const DiscoveryOptions& options,
                                       size_t signature_size) {
  RepositoryOptions out;
  out.store = options.store;
  out.metrics = options.metrics;
  out.signature_size = signature_size;
  return out;
}

}  // namespace

const char* DiscoveryModeName(DiscoveryMode mode) {
  switch (mode) {
    case DiscoveryMode::kJoinable:
      return "joinable";
    case DiscoveryMode::kUnionable:
      return "unionable";
  }
  return "unknown";
}

DiscoveryEngine::DiscoveryEngine(DiscoveryOptions options)
    : options_(std::move(options)),
      repository_(RepositoryOptionsFor(
          options_, options_.lsh.bands * options_.lsh.rows_per_band)),
      lsh_index_(LshIndexOptions(options_)) {
  if (options_.reranker == nullptr) {
    ExactReranker::Options exact;
    exact.union_evidence_columns = options_.union_evidence_columns;
    default_reranker_ = std::make_unique<ExactReranker>(&matcher(), exact);
  }
}

DiscoveryEngine::~DiscoveryEngine() = default;

Result<std::unique_ptr<DiscoveryEngine>> DiscoveryEngine::FromRepository(
    DiscoveryOptions options, TableRepository repository) {
  auto engine = std::make_unique<DiscoveryEngine>(std::move(options));
  engine->repository_ = std::move(repository);
  // Re-band every entry's already-built sketches: cheap re-indexing,
  // no fingerprinting, no store IO, no value re-sketching.
  for (size_t i = 0; i < engine->repository_.size(); ++i) {
    VALENTINE_RETURN_NOT_OK(engine->lsh_index_.Add(engine->repository_.entry(i)));
  }
  return engine;
}

const ColumnMatcher& DiscoveryEngine::matcher() const {
  if (options_.matcher) return *options_.matcher;
  static const ComaMatcher* kDefault = [] {
    ComaOptions opt;
    opt.strategy = ComaStrategy::kInstances;
    return new ComaMatcher(opt);
  }();
  return *kDefault;
}

const Reranker& DiscoveryEngine::reranker() const {
  return options_.reranker != nullptr ? *options_.reranker
                                      : *default_reranker_;
}

Reranker& DiscoveryEngine::reranker() {
  return options_.reranker != nullptr ? *options_.reranker
                                      : *default_reranker_;
}

const CandidateIndex& DiscoveryEngine::IndexFor(DiscoveryMode mode) const {
  const CandidatePath path = mode == DiscoveryMode::kJoinable
                                 ? options_.joinable_path
                                 : options_.unionable_path;
  if (path == CandidatePath::kExhaustive) return exhaustive_index_;
  return lsh_index_;
}

Status DiscoveryEngine::AddTable(Table table) {
  auto entry = repository_.AddTable(std::move(table));
  VALENTINE_RETURN_NOT_OK(entry.status());
  VALENTINE_RETURN_NOT_OK(lsh_index_.Add(**entry));
  // Cached prepared artifacts may borrow repository state; mutations
  // drop them (rebuilt lazily on the next query).
  reranker().OnRepositoryChanged();
  return Status::OK();
}

Status DiscoveryEngine::RemoveTable(const std::string& name) {
  std::shared_ptr<const RegisteredTable> entry = repository_.Find(name);
  if (entry == nullptr) {
    return Status::NotFound("no table '" + name + "'");
  }
  VALENTINE_RETURN_NOT_OK(lsh_index_.Remove(*entry));
  VALENTINE_RETURN_NOT_OK(repository_.RemoveTable(name));
  reranker().OnRepositoryChanged();
  return Status::OK();
}

std::vector<DiscoveryResult> DiscoveryEngine::FindJoinable(
    const Table& query, size_t k) const {
  // An unbounded context cannot fail (built-in matchers are infallible
  // without a deadline/token), so ValueOrDie is safe here.
  return FindJoinable(query, k, MatchContext()).ValueOrDie();
}

std::vector<DiscoveryResult> DiscoveryEngine::FindUnionable(
    const Table& query, size_t k) const {
  return FindUnionable(query, k, MatchContext()).ValueOrDie();
}

Result<std::vector<DiscoveryResult>> DiscoveryEngine::FindJoinable(
    const Table& query, size_t k, const MatchContext& ctx,
    DiscoveryExplain* explain) const {
  return Find(DiscoveryMode::kJoinable, query, k, ctx, explain);
}

Result<std::vector<DiscoveryResult>> DiscoveryEngine::FindUnionable(
    const Table& query, size_t k, const MatchContext& ctx,
    DiscoveryExplain* explain) const {
  return Find(DiscoveryMode::kUnionable, query, k, ctx, explain);
}

Result<std::vector<DiscoveryResult>> DiscoveryEngine::Find(
    DiscoveryMode mode, const Table& query, size_t k, const MatchContext& ctx,
    DiscoveryExplain* explain) const {
  const char* mode_name = DiscoveryModeName(mode);
  const std::string trace_id =
      ctx.trace_id.empty() ? "discovery/" + query.name() : ctx.trace_id;
  SpanScope query_span(options_.tracer, trace_id, "query", query.name(),
                       ctx.parent_span);
  query_span.Attr("mode", mode_name);
  query_span.Attr("k", std::to_string(k));
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_queries_total",
                     {{"mode", mode_name}})
        ->Increment();
  }
  // Fail fast: a request that arrives with its budget already spent (or
  // cancelled) must do zero candidate work.
  VALENTINE_RETURN_NOT_OK(ctx.Check(mode == DiscoveryMode::kJoinable
                                        ? "discovery/joinable/start"
                                        : "discovery/unionable/start"));

  // Stage 1 — Retrieve: nominate candidate table names.
  RetrievedCandidates retrieved;
  {
    SpanScope stage(options_.tracer, trace_id, "stage", "discovery.retrieve",
                    query_span.id());
    retrieved = IndexFor(mode).Retrieve(query, mode, repository_);
    stage.Attr("index", retrieved.index);
    stage.Attr("candidates", std::to_string(retrieved.tables.size()));
    if (retrieved.fallback) stage.Attr("fallback", retrieved.fallback_reason);
  }
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_stage_candidates_total",
                     {{"mode", mode_name}, {"stage", "retrieve"}})
        ->Increment(retrieved.tables.size());
    if (retrieved.fallback) {
      options_.metrics
          ->CounterFor("valentine_discovery_fallback_total",
                       {{"mode", mode_name},
                        {"reason", retrieved.fallback_reason}})
          ->Increment();
    }
  }

  // Stage 2 — Enrich: join nominations to repository metadata.
  CandidateSet candidates;
  {
    SpanScope stage(options_.tracer, trace_id, "stage", "discovery.enrich",
                    query_span.id());
    candidates = enricher_.Enrich(retrieved, repository_);
    stage.Attr("candidates", std::to_string(candidates.candidates.size()));
    stage.Attr("profiles_attached",
               std::to_string(candidates.profiles_attached));
  }
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_stage_candidates_total",
                     {{"mode", mode_name}, {"stage", "enrich"}})
        ->Increment(candidates.candidates.size());
  }

  // Stage 3 — Rerank: verify and score every candidate.
  Result<std::vector<DiscoveryResult>> reranked = [&] {
    SpanScope stage(options_.tracer, trace_id, "stage", "discovery.rerank",
                    query_span.id());
    stage.Attr("reranker", reranker().Name());
    RerankContext rctx;
    rctx.base = &ctx;
    rctx.trace_id = trace_id;
    rctx.parent_span = stage.id();
    rctx.clock = options_.clock;
    rctx.tracer = options_.tracer;
    rctx.metrics = options_.metrics;
    return reranker().Rerank(query, mode, candidates, rctx);
  }();
  if (!reranked.ok()) return reranked.status();
  std::vector<DiscoveryResult> results = std::move(reranked).ValueOrDie();

  const size_t scored_count = results.size();
  query_span.Attr("candidates_scored", std::to_string(scored_count));
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_candidates_scored_total",
                     {{"mode", mode_name}})
        ->Increment(scored_count);
    options_.metrics
        ->CounterFor("valentine_discovery_stage_candidates_total",
                     {{"mode", mode_name}, {"stage", "rerank"}})
        ->Increment(scored_count);
  }
  std::sort(results.begin(), results.end(),
            [](const DiscoveryResult& a, const DiscoveryResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.table_name < b.table_name;
            });
  if (results.size() > k) results.resize(k);
  if (options_.metrics != nullptr) {
    options_.metrics
        ->CounterFor("valentine_discovery_survivors_total",
                     {{"mode", mode_name}})
        ->Increment(results.size());
  }
  if (explain != nullptr) {
    explain->index = retrieved.index;
    explain->fallback = retrieved.fallback;
    explain->fallback_reason = retrieved.fallback_reason;
    explain->repository_tables = repository_.size();
    explain->retrieved = retrieved.tables.size();
    explain->enriched = candidates.candidates.size();
    explain->profiles_attached = candidates.profiles_attached;
    explain->reranked = scored_count;
    explain->survivors = results.size();
  }
  return results;
}

}  // namespace valentine
