#include "discovery/repository.h"

#include <set>
#include <utility>

#include "matchers/artifact_cache.h"
#include "scaling/lazo.h"
#include "text/normalizer.h"
#include "text/tokenizer.h"

namespace valentine {

namespace {

/// Reserved byte the candidate indexes key columns with
/// ("<table>\x1f<column>"); an embedded separator would let one table's
/// keys impersonate another's.
constexpr char kKeySeparator = '\x1f';

/// A stored artifact substitutes for a fresh build only when it
/// describes this exact table shape at this signature width (content
/// fingerprints collide across renames: the fingerprint hashes the
/// table name too, so a mismatch here means a foreign or stale file).
bool ArtifactServesTable(const TableDiscoveryArtifact& artifact,
                         const Table& table, size_t signature_size) {
  if (artifact.signature_size != signature_size) return false;
  if (artifact.columns.size() != table.num_columns()) return false;
  for (size_t i = 0; i < table.num_columns(); ++i) {
    if (artifact.columns[i].name != table.column(i).name()) return false;
  }
  if (artifact.has_profiles &&
      artifact.profiles.size() != artifact.columns.size()) {
    return false;
  }
  return true;
}

}  // namespace

TableRepository::TableRepository(RepositoryOptions options)
    : options_(options) {}

Status TableRepository::Validate(const Table& table) const {
  if (table.num_columns() == 0) {
    return Status::InvalidArgument("table '" + table.name() +
                                   "' has no columns");
  }
  if (table.name().find(kKeySeparator) != std::string::npos) {
    return Status::InvalidArgument(
        "table name contains reserved separator \\x1f");
  }
  if (index_by_name_.count(table.name()) != 0) {
    return Status::InvalidArgument("duplicate table name '" + table.name() +
                                   "'");
  }
  std::set<std::string> seen_columns;
  for (const Column& c : table.columns()) {
    if (c.name().find(kKeySeparator) != std::string::npos) {
      return Status::InvalidArgument(
          "column name contains reserved separator \\x1f (table '" +
          table.name() + "')");
    }
    if (!seen_columns.insert(c.name()).second) {
      return Status::InvalidArgument("duplicate column name '" + c.name() +
                                     "' in table '" + table.name() + "'");
    }
  }
  return Status::OK();
}

Result<std::shared_ptr<const RegisteredTable>> TableRepository::AddTable(
    Table table) {
  // Validate-then-commit: nothing below can fail on a valid table, so a
  // rejected registration leaves no partial state behind.
  VALENTINE_RETURN_NOT_OK(Validate(table));

  const size_t signature_size = options_.signature_size;
  std::shared_ptr<const TableDiscoveryArtifact> artifact;
  if (options_.store != nullptr) {
    const uint64_t fingerprint = TableContentFingerprint(table);
    auto loaded = options_.store->Get(fingerprint);
    if (loaded.ok() &&
        ArtifactServesTable(**loaded, table, signature_size)) {
      artifact = *loaded;
      if (options_.metrics != nullptr) {
        options_.metrics
            ->CounterFor("valentine_discovery_store_total",
                         {{"event", "hit"}})
            ->Increment();
      }
    } else {
      artifact = std::make_shared<const TableDiscoveryArtifact>(
          BuildDiscoveryArtifact(table, signature_size,
                                 /*with_profiles=*/true, ProfileSpec{}));
      Status persisted = options_.store->Put(artifact);
      // A failed persist degrades to in-memory registration: queries
      // stay correct, only the next cold start pays the rebuild.
      if (options_.metrics != nullptr) {
        options_.metrics
            ->CounterFor("valentine_discovery_store_total",
                         {{"event", persisted.ok() ? "build" : "put-error"}})
            ->Increment();
      }
    }
  } else {
    // No store: sketch-only artifact, built inline. Skipping the content
    // fingerprint keeps in-memory registration as cheap as it was before
    // the store existed; LazoSketch::Build here is byte-identical to the
    // sketch LshIndex::Add would have built from the same value set.
    auto built = std::make_shared<TableDiscoveryArtifact>();
    built->table_name = table.name();
    built->signature_size = signature_size;
    built->columns.reserve(table.num_columns());
    for (const Column& c : table.columns()) {
      ColumnDiscoveryArtifact column;
      column.name = c.name();
      column.sketch = LazoSketch::Build(c.DistinctStringSet(), signature_size);
      built->columns.push_back(std::move(column));
    }
    artifact = std::move(built);
  }

  // Store-loaded profiles only substitute for fresh builds under an
  // identical spec; otherwise the matcher pipeline builds inline.
  std::shared_ptr<const TableProfile> profile;
  if (artifact->has_profiles &&
      ProfileSpecsEqual(artifact->profile_spec, ProfileSpec{})) {
    profile = TableProfileFromArtifact(*artifact);
  }

  auto entry = std::make_shared<RegisteredTable>();
  entry->artifact = std::move(artifact);
  entry->profile = std::move(profile);
  entry->name_tokens.reserve(table.num_columns());
  entry->canon_names.reserve(table.num_columns());
  for (const Column& c : table.columns()) {
    entry->name_tokens.push_back(TokenizeIdentifier(c.name()));
    entry->canon_names.push_back(NormalizeValue(c.name()));
  }
  entry->table = std::move(table);

  index_by_name_[entry->table.name()] = entries_.size();
  entries_.push_back(entry);
  return std::shared_ptr<const RegisteredTable>(std::move(entry));
}

Status TableRepository::RemoveTable(const std::string& name) {
  auto it = index_by_name_.find(name);
  if (it == index_by_name_.end()) {
    return Status::NotFound("no table '" + name + "'");
  }
  const size_t index = it->second;
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(index));
  index_by_name_.erase(it);
  // Erasing shifts every subsequent entry's position.
  for (auto& [other, i] : index_by_name_) {
    if (i > index) --i;
  }
  return Status::OK();
}

std::shared_ptr<const RegisteredTable> TableRepository::Find(
    const std::string& name) const {
  auto it = index_by_name_.find(name);
  if (it == index_by_name_.end()) return nullptr;
  return entries_[it->second];
}

}  // namespace valentine
