#include "discovery/enrich.h"

namespace valentine {

CandidateSet Enricher::Enrich(const RetrievedCandidates& retrieved,
                              const TableRepository& repository) const {
  CandidateSet out;
  out.candidates.reserve(retrieved.tables.size());
  for (size_t i = 0; i < repository.size(); ++i) {
    const RegisteredTable& entry = repository.entry(i);
    if (retrieved.tables.count(entry.table.name()) == 0) continue;
    EnrichedCandidate candidate;
    candidate.repository_index = i;
    candidate.entry = &entry;
    out.candidates.push_back(candidate);
    if (entry.profile != nullptr) ++out.profiles_attached;
  }
  return out;
}

}  // namespace valentine
