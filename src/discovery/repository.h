#ifndef VALENTINE_DISCOVERY_REPOSITORY_H_
#define VALENTINE_DISCOVERY_REPOSITORY_H_

/// \file repository.h
/// TableRepository — the state-owning layer of the staged discovery
/// pipeline (DESIGN.md §14). It owns the registered tables and
/// everything derived from them at registration time: per-column Lazo
/// sketches (as a TableDiscoveryArtifact), store-loaded ColumnProfiles,
/// identifier name tokens, and normalizer canon forms. The ArtifactStore
/// load/put path lives here: with a store attached, AddTable resolves
/// artifacts by table content fingerprint (skipping the sketch/profile
/// build entirely on a hit) and persists freshly built ones
/// write-through.
///
/// Snapshot semantics: entries are immutable `shared_ptr<const
/// RegisteredTable>`s, so copying a TableRepository is a cheap
/// copy-on-write snapshot — the copy shares every entry, and mutating
/// either side never touches the other. This is what makes the serving
/// layer's per-mutation registry rebuild O(1 new table) instead of
/// O(repository): a rebuild clones the repository, registers only the
/// delta, and re-indexes existing sketches without re-fingerprinting,
/// re-sketching, or touching the store.
///
/// Thread-safety: const access is safe concurrently; AddTable /
/// RemoveTable must not race any other call on the same instance
/// (distinct snapshots are independent).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/table.h"
#include "io/artifact_store.h"
#include "obs/metrics.h"
#include "stats/column_profile.h"

namespace valentine {

/// One registered table with everything the pipeline derives from it.
/// Immutable after construction; shared across repository snapshots and
/// the engines built over them.
struct RegisteredTable {
  Table table;
  /// Per-column sketches (always present; `has_profiles`/fingerprint
  /// only when the artifact came from or went to a store).
  std::shared_ptr<const TableDiscoveryArtifact> artifact;
  /// Store-loaded profiles under a matching ProfileSpec; nullptr when
  /// no store is attached or the stored spec is incompatible.
  std::shared_ptr<const TableProfile> profile;
  /// Enrichment metadata, computed once here so queries never re-derive
  /// it: per-column identifier tokens and normalizer canon forms.
  std::vector<std::vector<std::string>> name_tokens;  ///< per column
  std::vector<std::string> canon_names;               ///< per column
};

/// Repository configuration. All pointers are borrowed and optional.
struct RepositoryOptions {
  /// Persistent artifact store consulted/updated by AddTable.
  ArtifactStore* store = nullptr;
  /// Sink for valentine_discovery_store_total{event} accounting.
  MetricsRegistry* metrics = nullptr;
  /// MinHash signature width sketches are built at (must equal the
  /// candidate index's signature_size()).
  size_t signature_size = 128;
};

/// \brief Owns registered tables and their derived artifacts.
class TableRepository {
 public:
  explicit TableRepository(RepositoryOptions options = {});

  /// Copying is a cheap snapshot: entries are shared, mutations on
  /// either copy never affect the other.
  TableRepository(const TableRepository&) = default;
  TableRepository& operator=(const TableRepository&) = default;
  TableRepository(TableRepository&&) = default;
  TableRepository& operator=(TableRepository&&) = default;

  /// Registers a table: validates (duplicate table name, empty table,
  /// duplicate column names, reserved '\x1f' separator in any name),
  /// resolves or builds its artifact, derives enrichment metadata, and
  /// appends the entry. Returns the new immutable entry.
  Result<std::shared_ptr<const RegisteredTable>> AddTable(Table table);

  /// Unregisters a table; kNotFound when absent. A persistent store
  /// keeps its artifact (keyed by content, re-adding stays free).
  Status RemoveTable(const std::string& name);

  size_t size() const { return entries_.size(); }
  bool Contains(const std::string& name) const {
    return index_by_name_.count(name) != 0;
  }

  /// Entry at registration position `i` (< size()).
  const RegisteredTable& entry(size_t i) const { return *entries_[i]; }

  /// Shared handle to the entry named `name`; nullptr when absent.
  std::shared_ptr<const RegisteredTable> Find(const std::string& name) const;

 private:
  Status Validate(const Table& table) const;

  RepositoryOptions options_;
  /// Registration order; each entry immutable and shared.
  std::vector<std::shared_ptr<const RegisteredTable>> entries_;
  /// Table name -> index into entries_ (ordered: deterministic).
  std::map<std::string, size_t> index_by_name_;
};

}  // namespace valentine

#endif  // VALENTINE_DISCOVERY_REPOSITORY_H_
