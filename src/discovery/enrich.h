#ifndef VALENTINE_DISCOVERY_ENRICH_H_
#define VALENTINE_DISCOVERY_ENRICH_H_

/// \file enrich.h
/// Stage 2 of the staged discovery pipeline (DESIGN.md §14): metadata
/// enrichment. The Enricher joins stage 1's nominated table *names*
/// back to their TableRepository entries, so stage 3 reranks typed
/// candidates carrying everything derived at registration time —
/// store-loaded ColumnProfiles, identifier name tokens, and normalizer
/// canon forms — instead of re-deriving any of it per query.

#include "discovery/repository.h"
#include "discovery/types.h"

namespace valentine {

/// \brief Joins retrieved candidate names to repository entries.
///
/// Stateless and const-safe for concurrent queries.
class Enricher {
 public:
  /// Returns the candidates in repository registration order — the
  /// deterministic scoring order the reranker walks (and the order the
  /// pre-split engine scored in). Names not present in the repository
  /// (a nomination that raced a removal) are dropped, never invented.
  CandidateSet Enrich(const RetrievedCandidates& retrieved,
                      const TableRepository& repository) const;
};

}  // namespace valentine

#endif  // VALENTINE_DISCOVERY_ENRICH_H_
