#include "discovery/rerank.h"

#include <algorithm>
#include <map>
#include <utility>

#include "discovery/repository.h"

namespace valentine {

ExactReranker::ExactReranker(const ColumnMatcher* matcher, Options options)
    : matcher_(matcher), options_(options) {}

MatchContext ExactReranker::ObsContext(const RerankContext& rctx,
                                       uint64_t parent_span) const {
  const MatchContext& base = *rctx.base;
  MatchContext context;
  context.deadline = base.deadline;
  context.cancel = base.cancel;
  context.source_profile = base.source_profile;
  context.target_profile = base.target_profile;
  context.trace_id = rctx.trace_id;
  context.clock = base.clock != nullptr ? base.clock : rctx.clock;
  context.tracer = rctx.tracer;
  context.parent_span = parent_span;
  return context;
}

Result<MatchResult> ExactReranker::ScoreCandidate(
    const PreparedTable* prepared_query, const Table& query,
    const RegisteredTable& candidate, const RerankContext& rctx) const {
  const Table& table = candidate.table;
  if (prepared_query != nullptr) {
    PreparedTablePtr prepared_candidate = artifacts_.GetOrPrepare(
        *matcher_, table, candidate.profile.get(),
        ObsContext(rctx, rctx.parent_span));
    if (prepared_candidate != nullptr) {
      SpanScope score_span(rctx.tracer, rctx.trace_id, "score", table.name(),
                           rctx.parent_span);
      score_span.Attr("path", "prepared");
      Result<MatchResult> scored =
          matcher_->Score(*prepared_query, *prepared_candidate,
                          ObsContext(rctx, score_span.id()));
      if (scored.ok()) return scored;
      // The request's budget/cancellation aborts the whole query; any
      // other error (only possible via an injected decorator) degrades
      // to the empty result, exactly like the infallible Match overload.
      if (scored.status().code() == StatusCode::kDeadlineExceeded ||
          scored.status().code() == StatusCode::kCancelled) {
        return scored.status();
      }
      return MatchResult();
    }
    // A failed artifact build under a fired context must abort, not
    // silently fall back to the slower monolithic path.
    Status checked = rctx.base->Check("discovery/prepare");
    if (!checked.ok()) return checked;
  }
  SpanScope score_span(rctx.tracer, rctx.trace_id, "score", table.name(),
                       rctx.parent_span);
  score_span.Attr("path", "monolithic");
  Result<MatchResult> matched =
      matcher_->Match(query, table, ObsContext(rctx, score_span.id()));
  if (matched.ok()) return matched;
  if (matched.status().code() == StatusCode::kDeadlineExceeded ||
      matched.status().code() == StatusCode::kCancelled) {
    return matched.status();
  }
  return MatchResult();
}

Result<std::vector<DiscoveryResult>> ExactReranker::Rerank(
    const Table& query, DiscoveryMode mode, const CandidateSet& candidates,
    const RerankContext& rctx) const {
  // Prepare the query once; every candidate scores against it. The
  // query is caller-owned and transient, so its artifact is built
  // inline rather than cached.
  Result<PreparedTablePtr> prepared_query = matcher_->Prepare(
      query, /*profile=*/nullptr, ObsContext(rctx, rctx.parent_span));

  const char* checkpoint = mode == DiscoveryMode::kJoinable
                               ? "discovery/joinable/candidate"
                               : "discovery/unionable/candidate";
  std::vector<DiscoveryResult> results;
  results.reserve(candidates.candidates.size());
  for (const EnrichedCandidate& candidate : candidates.candidates) {
    VALENTINE_RETURN_NOT_OK(rctx.base->Check(checkpoint));
    Result<MatchResult> scored = ScoreCandidate(
        prepared_query.ok() ? prepared_query->get() : nullptr, query,
        *candidate.entry, rctx);
    if (!scored.ok()) return scored.status();
    MatchResult ranked = std::move(scored).ValueOrDie();
    const Table& t = candidate.entry->table;
    DiscoveryResult r;
    r.table_name = t.name();
    if (mode == DiscoveryMode::kJoinable) {
      // Table score = best verified column match.
      if (!ranked.empty()) {
        r.score = ranked[0].score;
        r.evidence = ranked.TopK(3);
      }
    } else {
      // Union score: mean of the best per-query-column matches, over
      // the strongest `union_evidence_columns` columns.
      std::map<std::string, Match> best_per_column;
      for (const Match& m : ranked.matches()) {
        auto it = best_per_column.find(m.source.column);
        if (it == best_per_column.end() || m.score > it->second.score) {
          best_per_column[m.source.column] = m;
        }
      }
      std::vector<Match> bests;
      bests.reserve(best_per_column.size());
      for (auto& [col, m] : best_per_column) bests.push_back(m);
      std::sort(bests.begin(), bests.end(), [](const Match& a,
                                               const Match& b) {
        return a.score > b.score;
      });
      size_t evidence_n =
          std::min<size_t>(options_.union_evidence_columns, bests.size());
      if (evidence_n > 0) {
        double total = 0.0;
        for (size_t i = 0; i < evidence_n; ++i) {
          total += bests[i].score;
          r.evidence.push_back(bests[i]);
        }
        // Penalize arity mismatch: unionable relations must align fully.
        double arity = static_cast<double>(
                           std::min(query.num_columns(), t.num_columns())) /
                       static_cast<double>(
                           std::max(query.num_columns(), t.num_columns()));
        r.score = (total / static_cast<double>(evidence_n)) * arity;
      }
    }
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace valentine
