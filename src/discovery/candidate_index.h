#ifndef VALENTINE_DISCOVERY_CANDIDATE_INDEX_H_
#define VALENTINE_DISCOVERY_CANDIDATE_INDEX_H_

/// \file candidate_index.h
/// Stage 1 of the staged discovery pipeline (DESIGN.md §14): candidate
/// nomination. A CandidateIndex maintains whatever per-table postings it
/// needs (fed Add/Remove as the repository mutates) and, per query,
/// nominates the table names worth scoring. Nomination is recall-biased
/// and never affects result *bytes* — every nominated candidate is
/// verified and scored by the Reranker — only which tables pay that
/// scoring cost.
///
/// Contract shared by all implementations (tested in
/// tests/discovery_candidate_index_test.cpp):
///  * Retrieve never nominates a name outside the repository, and never
///    duplicates (RetrievedCandidates::tables is a set).
///  * After Remove(entry), that table is never nominated again; after a
///    re-Add it is nominated as if fresh.
///  * A degraded query (the index cannot see it at all — e.g. every
///    query column sketches empty) sets `fallback` + `fallback_reason`
///    and nominates the whole repository rather than silently returning
///    nothing; the engine surfaces the event through
///    valentine_discovery_fallback_total.

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/status.h"
#include "core/table.h"
#include "discovery/repository.h"
#include "discovery/types.h"
#include "scaling/lsh_index.h"

namespace valentine {

/// \brief Nominates candidate tables for a discovery query.
///
/// Thread-safety: Retrieve on a const index is safe concurrently;
/// Add/Remove must not race any other call.
class CandidateIndex {
 public:
  virtual ~CandidateIndex() = default;

  /// Implementation name, surfaced in explain output ("lsh",
  /// "exhaustive", ...).
  virtual std::string Name() const = 0;

  /// Indexes a newly registered table's postings.
  [[nodiscard]] virtual Status Add(const RegisteredTable& entry) = 0;

  /// Erases a removed table's postings.
  [[nodiscard]] virtual Status Remove(const RegisteredTable& entry) = 0;

  /// Nominates candidate table names for `query` under `mode`.
  virtual RetrievedCandidates Retrieve(
      const Table& query, DiscoveryMode mode,
      const TableRepository& repository) const = 0;
};

/// \brief MinHash-LSH nomination: joinable queries probe per-column
/// containment (LSH Ensemble style), unionable queries combine
/// slot-level containment candidates with column-name token postings.
/// Scoring cost is bounded by the candidates actually nominated, not
/// the repository size.
class LshCandidateIndex : public CandidateIndex {
 public:
  struct Options {
    LshOptions lsh;
    /// Minimum estimated containment for a query column to nominate a
    /// candidate in joinable mode.
    double min_containment = 0.3;
    /// In unionable mode, also nominate tables sharing a column-name
    /// token with the query, so value-disjoint but schema-aligned
    /// tables (which the value-based index cannot see) stay reachable.
    bool union_name_candidates = true;
  };

  explicit LshCandidateIndex(Options options);

  std::string Name() const override { return "lsh"; }

  /// MinHash signature width this index bands at; repository sketches
  /// must be built at the same width or Add fails.
  size_t signature_size() const { return index_.signature_size(); }

  [[nodiscard]] Status Add(const RegisteredTable& entry) override;
  [[nodiscard]] Status Remove(const RegisteredTable& entry) override;

  RetrievedCandidates Retrieve(const Table& query, DiscoveryMode mode,
                               const TableRepository& repository)
      const override;

 private:
  Options options_;
  LshIndex index_;  ///< keys are "<table>\x1f<column>"
  /// Column-name token -> names of tables owning such a column; the
  /// value-blind half of unionable nomination. Ordered containers keep
  /// iteration deterministic.
  std::map<std::string, std::set<std::string>> name_token_tables_;
};

/// \brief Reference nomination: every repository table. Maintains no
/// postings; the A/B baseline LSH nomination is checked against
/// (bench/bench_repository.cpp), and the right choice for tiny
/// repositories where pruning buys nothing.
class ExhaustiveCandidateIndex : public CandidateIndex {
 public:
  std::string Name() const override { return "exhaustive"; }

  [[nodiscard]] Status Add(const RegisteredTable& entry) override;
  [[nodiscard]] Status Remove(const RegisteredTable& entry) override;

  RetrievedCandidates Retrieve(const Table& query, DiscoveryMode mode,
                               const TableRepository& repository)
      const override;
};

}  // namespace valentine

#endif  // VALENTINE_DISCOVERY_CANDIDATE_INDEX_H_
