#ifndef VALENTINE_DISCOVERY_RERANK_H_
#define VALENTINE_DISCOVERY_RERANK_H_

/// \file rerank.h
/// Stage 3 of the staged discovery pipeline (DESIGN.md §14): scoring.
/// A Reranker turns the enriched CandidateSet into per-table
/// DiscoveryResults; the engine then sorts and truncates to the top-k.
/// The default ExactReranker is the pre-split Prepare/Score path moved
/// behind the interface — byte-identical results — and the interface is
/// the seam ROADMAP item 3's trainable scorer plugs into.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/table.h"
#include "discovery/types.h"
#include "matchers/artifact_cache.h"
#include "matchers/matcher.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace valentine {

/// Per-query plumbing handed to Rerank: the caller's MatchContext
/// (deadline/cancellation/profiles) plus the engine's observability
/// sinks. All pointers are borrowed for the duration of the call.
struct RerankContext {
  /// The request's MatchContext (never null inside Rerank).
  const MatchContext* base = nullptr;
  /// Trace id of the enclosing query and the stage span to parent
  /// per-candidate spans under.
  std::string trace_id;
  uint64_t parent_span = 0;
  /// Engine-level observability (all optional).
  const Clock* clock = nullptr;
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// \brief Scores enriched candidates into DiscoveryResults.
///
/// Contract: returns one DiscoveryResult per candidate, in candidate
/// (= repository registration) order, without sorting or truncating —
/// ranking is the orchestrator's job. Deadline/cancellation failures
/// propagate as errors; the engine aborts the query.
///
/// Thread-safety: Rerank on a const reranker must be safe for
/// concurrent callers (any internal caching internally synchronized);
/// OnRepositoryChanged must not race Rerank.
class Reranker {
 public:
  virtual ~Reranker() = default;

  /// Implementation name, e.g. "exact".
  virtual std::string Name() const = 0;

  [[nodiscard]] virtual Result<std::vector<DiscoveryResult>> Rerank(
      const Table& query, DiscoveryMode mode, const CandidateSet& candidates,
      const RerankContext& rctx) const = 0;

  /// Repository mutation hook: drop any cached per-table state.
  virtual void OnRepositoryChanged() {}
};

/// \brief The exact matcher-backed reranker: prepares the query once,
/// scores it against cached per-repository-table artifacts —
/// O(prepare + N·score) instead of the monolithic O(N·(prepare +
/// score)) — and aggregates column matches into table scores (best
/// column match for joinable; mean of the best per-column matches with
/// an arity penalty for unionable, §III-A).
class ExactReranker : public Reranker {
 public:
  struct Options {
    /// How many column matches contribute to a table's union score.
    size_t union_evidence_columns = 3;
  };

  /// `matcher` is borrowed and must outlive the reranker.
  explicit ExactReranker(const ColumnMatcher* matcher, Options options);

  std::string Name() const override { return "exact"; }

  [[nodiscard]] Result<std::vector<DiscoveryResult>> Rerank(
      const Table& query, DiscoveryMode mode, const CandidateSet& candidates,
      const RerankContext& rctx) const override;

  /// Cached artifacts borrow repository table storage; a mutation drops
  /// them (rebuilt lazily on the next query).
  void OnRepositoryChanged() override { artifacts_.Clear(); }

 private:
  /// A MatchContext carrying `rctx`'s observability plumbing plus the
  /// caller's deadline/cancellation/profiles.
  MatchContext ObsContext(const RerankContext& rctx,
                          uint64_t parent_span) const;

  /// Scores the query against one repository table: the prepared fast
  /// path when both artifacts resolved, the monolithic matcher
  /// otherwise. Deadline/cancellation failures propagate (the caller
  /// aborts the query); any other matcher error — only possible via an
  /// injected decorator — degrades to the empty result, mirroring the
  /// infallible Match overload.
  Result<MatchResult> ScoreCandidate(const PreparedTable* prepared_query,
                                     const Table& query,
                                     const RegisteredTable& candidate,
                                     const RerankContext& rctx) const;

  const ColumnMatcher* matcher_;
  Options options_;
  /// Per-repository-table prepared artifacts, built lazily by Rerank
  /// calls and shared across them. Mutable because caching is not
  /// observable through results; its internal mutex is what makes
  /// concurrent const queries safe.
  mutable ArtifactCache artifacts_;
};

}  // namespace valentine

#endif  // VALENTINE_DISCOVERY_RERANK_H_
