#include "discovery/candidate_index.h"

#include <unordered_set>
#include <utility>

#include "text/tokenizer.h"

namespace valentine {

namespace {

constexpr char kKeySeparator = '\x1f';

std::string ColumnKey(const std::string& table, const std::string& column) {
  return table + kKeySeparator + column;
}

std::string TableOfKey(const std::string& key) {
  return key.substr(0, key.find(kKeySeparator));
}

/// Degraded nomination: the whole repository, flagged. Used when the
/// index cannot see the query at all — the caller counts the event in
/// valentine_discovery_fallback_total instead of dropping the fact.
RetrievedCandidates FallbackToExhaustive(const TableRepository& repository,
                                         const std::string& index_name,
                                         const std::string& reason) {
  RetrievedCandidates out;
  out.index = index_name;
  out.fallback = true;
  out.fallback_reason = reason;
  for (size_t i = 0; i < repository.size(); ++i) {
    out.tables.insert(repository.entry(i).table.name());
  }
  return out;
}

}  // namespace

LshCandidateIndex::LshCandidateIndex(Options options)
    : options_(options), index_(options_.lsh) {}

Status LshCandidateIndex::Add(const RegisteredTable& entry) {
  const std::string& table_name = entry.table.name();
  for (const ColumnDiscoveryArtifact& c : entry.artifact->columns) {
    VALENTINE_RETURN_NOT_OK(
        index_.AddSketch(ColumnKey(table_name, c.name), c.sketch));
  }
  for (const std::vector<std::string>& tokens : entry.name_tokens) {
    for (const std::string& token : tokens) {
      name_token_tables_[token].insert(table_name);
    }
  }
  return Status::OK();
}

Status LshCandidateIndex::Remove(const RegisteredTable& entry) {
  const std::string& table_name = entry.table.name();
  for (const Column& c : entry.table.columns()) {
    VALENTINE_RETURN_NOT_OK(index_.Remove(ColumnKey(table_name, c.name())));
  }
  for (const std::vector<std::string>& tokens : entry.name_tokens) {
    for (const std::string& token : tokens) {
      auto it = name_token_tables_.find(token);
      if (it == name_token_tables_.end()) continue;
      it->second.erase(table_name);
      if (it->second.empty()) name_token_tables_.erase(it);
    }
  }
  return Status::OK();
}

RetrievedCandidates LshCandidateIndex::Retrieve(
    const Table& query, DiscoveryMode mode,
    const TableRepository& repository) const {
  RetrievedCandidates out;
  out.index = Name();
  // Empty value sets never band (scaling/lsh_index.h), so a query whose
  // every column sketches empty is invisible to this index. For value
  // channels that is a degraded query, not an empty answer.
  bool any_nonempty_column = false;
  if (mode == DiscoveryMode::kJoinable) {
    for (const Column& c : query.columns()) {
      const std::unordered_set<std::string> values = c.DistinctStringSet();
      if (!values.empty()) any_nonempty_column = true;
      auto hits = index_.QueryContainment(values, options_.min_containment);
      for (const auto& [key, containment] : hits) {
        out.tables.insert(TableOfKey(key));
      }
    }
    if (!any_nonempty_column) {
      return FallbackToExhaustive(repository, Name(), "empty-query-columns");
    }
    return out;
  }
  for (size_t ci = 0; ci < query.num_columns(); ++ci) {
    const Column& c = query.column(ci);
    const std::unordered_set<std::string> values = c.DistinctStringSet();
    if (!values.empty()) any_nonempty_column = true;
    // Slot-level probing (the recall end of the S-curve): unionable
    // columns share values but rarely whole domains, so Jaccard
    // banding's ~0.7 threshold would miss most of them.
    for (const std::string& key : index_.ContainmentCandidates(values)) {
      out.tables.insert(TableOfKey(key));
    }
    if (options_.union_name_candidates) {
      for (const std::string& token : TokenizeIdentifier(c.name())) {
        auto it = name_token_tables_.find(token);
        if (it == name_token_tables_.end()) continue;
        out.tables.insert(it->second.begin(), it->second.end());
      }
    }
  }
  // With name postings active the query is never value-blind *and*
  // name-blind at once, so only the pure-value configuration degrades.
  if (!any_nonempty_column && !options_.union_name_candidates) {
    return FallbackToExhaustive(repository, Name(), "empty-query-columns");
  }
  return out;
}

Status ExhaustiveCandidateIndex::Add(const RegisteredTable& entry) {
  (void)entry;
  return Status::OK();
}

Status ExhaustiveCandidateIndex::Remove(const RegisteredTable& entry) {
  (void)entry;
  return Status::OK();
}

RetrievedCandidates ExhaustiveCandidateIndex::Retrieve(
    const Table& query, DiscoveryMode mode,
    const TableRepository& repository) const {
  (void)query;
  (void)mode;
  RetrievedCandidates out;
  out.index = Name();
  for (size_t i = 0; i < repository.size(); ++i) {
    out.tables.insert(repository.entry(i).table.name());
  }
  return out;
}

}  // namespace valentine
