#ifndef VALENTINE_DISCOVERY_DISCOVERY_H_
#define VALENTINE_DISCOVERY_DISCOVERY_H_

/// \file discovery.h
/// Dataset discovery on top of the matchers — the consuming use case the
/// paper targets (§II-B: "Valentine as a Discovery Component"). A
/// DiscoveryEngine holds a repository of tables; given a query table it
/// returns ranked *tables*:
///
///  * FindJoinable — tables containing at least one column whose value
///    domain overlaps/contains a query column (candidate pruning through
///    the MinHash-LSH index, verification through a column matcher);
///  * FindUnionable — tables whose schema aligns column-for-column with
///    the query (scored by the mean of the best per-column matches).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/table.h"
#include "matchers/artifact_cache.h"
#include "matchers/matcher.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scaling/lsh_index.h"

namespace valentine {

/// One discovered table with its evidence.
struct DiscoveryResult {
  std::string table_name;
  double score = 0.0;          ///< table-level relatedness
  std::vector<Match> evidence; ///< the column matches behind the score
};

/// Engine configuration.
struct DiscoveryOptions {
  /// Column matcher used to verify/score candidate tables. When null, a
  /// default COMA-Instances matcher is used.
  MatcherPtr matcher;
  /// LSH settings for the joinability candidate index.
  LshOptions lsh;
  /// Minimum estimated containment for a query column to nominate a
  /// candidate table in FindJoinable.
  double min_containment = 0.3;
  /// How many column matches contribute to a table's union score.
  size_t union_evidence_columns = 3;
  /// Observability (obs/), all optional and borrowed: each Find* call
  /// emits a "query" span (trace id "discovery/<query table>") with the
  /// candidate scoring and artifact builds nested under it, and bumps
  /// valentine_discovery_queries_total{mode}. Results are byte-identical
  /// with or without them.
  const Clock* clock = nullptr;
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// \brief A searchable repository of tables.
///
/// Query cost model: a Find* call prepares the query table once and
/// scores it against per-repository-table artifacts that are built on
/// first use and cached across calls — O(prepare + N·score) instead of
/// the monolithic O(N·(prepare + score)). Results are byte-identical to
/// the monolithic path (the matcher pipeline contract).
///
/// Thread-safety: concurrent FindJoinable/FindUnionable calls on a
/// const engine are safe (the artifact cache is internally
/// synchronized, the matcher is const). AddTable mutates the
/// repository and must not run concurrently with any other call.
class DiscoveryEngine {
 public:
  explicit DiscoveryEngine(DiscoveryOptions options = {});
  ~DiscoveryEngine();

  DiscoveryEngine(const DiscoveryEngine&) = delete;
  DiscoveryEngine& operator=(const DiscoveryEngine&) = delete;

  /// Registers a table; fails on duplicate names or empty tables.
  Status AddTable(Table table);

  size_t num_tables() const { return tables_.size(); }
  const std::vector<Table>& tables() const { return tables_; }

  /// Top-k tables joinable with the query: candidate tables are
  /// nominated by per-column LSH containment probes, then verified and
  /// scored with the matcher (score = best verified column match).
  std::vector<DiscoveryResult> FindJoinable(const Table& query,
                                            size_t k) const;

  /// Top-k unionable tables: every repository table is scored by the
  /// mean of its `union_evidence_columns` best column matches against
  /// the query (schema-alignment semantics, §III-A).
  std::vector<DiscoveryResult> FindUnionable(const Table& query,
                                             size_t k) const;

  /// Budgeted/cancellable variants — the serving boundary's entry
  /// points. `ctx` threads a per-request Deadline and CancellationToken
  /// into every candidate's Prepare/Score; the query fails fast with
  /// kDeadlineExceeded/kCancelled (checked once before any work starts
  /// — a request arriving with a spent budget does zero scoring — and
  /// again between candidates). When ctx carries a trace id it replaces
  /// the engine's default "discovery/<table>" id, so serving spans
  /// parent correctly. An unbounded default-constructed ctx returns
  /// byte-identical results to the infallible overloads.
  Result<std::vector<DiscoveryResult>> FindJoinable(
      const Table& query, size_t k, const MatchContext& ctx) const;
  Result<std::vector<DiscoveryResult>> FindUnionable(
      const Table& query, size_t k, const MatchContext& ctx) const;

 private:
  const ColumnMatcher& matcher() const;

  /// Scores the query against one repository table: the prepared fast
  /// path when both artifacts resolved, the monolithic matcher
  /// otherwise. Deadline/cancellation failures propagate (the caller
  /// aborts the query); any other matcher error — only possible via an
  /// injected decorator — degrades to the empty result, mirroring the
  /// infallible Match overload.
  Result<MatchResult> ScoreAgainstRepository(
      const PreparedTable* prepared_query, const Table& query,
      const Table& candidate, const MatchContext& base,
      const std::string& trace_id, uint64_t parent_span) const;

  /// A MatchContext carrying this engine's observability plumbing plus
  /// `base`'s deadline/cancellation/profiles.
  MatchContext ObsContext(const MatchContext& base,
                          const std::string& trace_id,
                          uint64_t parent_span) const;

  DiscoveryOptions options_;
  std::vector<Table> tables_;
  LshIndex column_index_;  ///< keys are "<table>\x1f<column>"
  /// Per-repository-table prepared artifacts, built lazily by Find*
  /// calls and shared across them. Mutable because caching is not
  /// observable through results; its internal mutex is what makes
  /// concurrent const queries safe. Invalidated by AddTable (artifacts
  /// borrow table storage, which may move when the repository grows).
  mutable ArtifactCache artifacts_;
};

}  // namespace valentine

#endif  // VALENTINE_DISCOVERY_DISCOVERY_H_
