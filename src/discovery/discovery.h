#ifndef VALENTINE_DISCOVERY_DISCOVERY_H_
#define VALENTINE_DISCOVERY_DISCOVERY_H_

/// \file discovery.h
/// Dataset discovery on top of the matchers — the consuming use case the
/// paper targets (§II-B: "Valentine as a Discovery Component"). A
/// DiscoveryEngine holds a repository of tables; given a query table it
/// returns ranked *tables*:
///
///  * FindJoinable — tables containing at least one column whose value
///    domain overlaps/contains a query column (candidate pruning through
///    the MinHash-LSH index, verification through a column matcher);
///  * FindUnionable — tables whose schema aligns column-for-column with
///    the query (scored by the mean of the best per-column matches).

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/table.h"
#include "io/artifact_store.h"
#include "matchers/artifact_cache.h"
#include "matchers/matcher.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scaling/lsh_index.h"
#include "stats/column_profile.h"

namespace valentine {

/// One discovered table with its evidence.
struct DiscoveryResult {
  std::string table_name;
  double score = 0.0;          ///< table-level relatedness
  std::vector<Match> evidence; ///< the column matches behind the score
};

/// How a Find* call nominates candidate tables before the matcher
/// verifies and scores them.
enum class CandidatePath {
  /// Nominate through the LSH index (and, for unionable queries, the
  /// column-name token postings): scoring cost is bounded by the
  /// candidates actually nominated, not the repository size.
  kLsh,
  /// Score every repository table. The reference path the LSH path is
  /// A/B-checked against (bench/bench_repository.cpp); also the right
  /// choice for tiny repositories where candidate pruning buys nothing.
  kExhaustive,
};

/// Engine configuration.
struct DiscoveryOptions {
  /// Column matcher used to verify/score candidate tables. When null, a
  /// default COMA-Instances matcher is used.
  MatcherPtr matcher;
  /// LSH settings for the joinability candidate index.
  LshOptions lsh;
  /// Minimum estimated containment for a query column to nominate a
  /// candidate table in FindJoinable.
  double min_containment = 0.3;
  /// How many column matches contribute to a table's union score.
  size_t union_evidence_columns = 3;
  /// Candidate front-end per query mode. Both default to the LSH index;
  /// kExhaustive restores the score-everything reference behaviour.
  CandidatePath joinable_path = CandidatePath::kLsh;
  CandidatePath unionable_path = CandidatePath::kLsh;
  /// On the LSH unionable path, also nominate tables that share a
  /// column-name token with the query. Value-disjoint but
  /// schema-aligned tables (the unionable case the value-based index
  /// cannot see) stay reachable.
  bool union_name_candidates = true;
  /// Optional persistent artifact store (borrowed; must outlive the
  /// engine). When set, AddTable first consults the store by table
  /// content fingerprint — a hit skips the sketch and profile builds
  /// entirely — and persists freshly built artifacts write-through, so
  /// the next process (or the next copy-on-write registry snapshot)
  /// registers the same table without rebuilding anything.
  ArtifactStore* store = nullptr;
  /// Observability (obs/), all optional and borrowed: each Find* call
  /// emits a "query" span (trace id "discovery/<query table>") with the
  /// candidate scoring and artifact builds nested under it, and bumps
  /// valentine_discovery_queries_total{mode}. Results are byte-identical
  /// with or without them.
  const Clock* clock = nullptr;
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// \brief A searchable repository of tables.
///
/// Query cost model: a Find* call prepares the query table once and
/// scores it against per-repository-table artifacts that are built on
/// first use and cached across calls — O(prepare + N·score) instead of
/// the monolithic O(N·(prepare + score)). Results are byte-identical to
/// the monolithic path (the matcher pipeline contract).
///
/// Thread-safety: concurrent FindJoinable/FindUnionable calls on a
/// const engine are safe (the artifact cache is internally
/// synchronized, the matcher is const). AddTable/RemoveTable mutate
/// the repository and must not run concurrently with any other call.
class DiscoveryEngine {
 public:
  explicit DiscoveryEngine(DiscoveryOptions options = {});
  ~DiscoveryEngine();

  DiscoveryEngine(const DiscoveryEngine&) = delete;
  DiscoveryEngine& operator=(const DiscoveryEngine&) = delete;

  /// Registers a table. Fails on duplicate table names, empty tables,
  /// duplicate column names within the table, and names (table or
  /// column) containing the reserved key separator '\x1f' — the engine
  /// keys its column index as "<table>\x1f<column>", so an embedded
  /// separator would let one table's keys impersonate another's.
  /// With a store attached, sketches/profiles are loaded by content
  /// fingerprint when possible and persisted when built fresh.
  Status AddTable(Table table);

  /// Unregisters a table and erases its index postings; kNotFound when
  /// absent. The persistent store keeps its artifact (it is keyed by
  /// content, not by registration, and re-adding should stay free).
  Status RemoveTable(const std::string& name);

  size_t num_tables() const { return tables_.size(); }
  const std::vector<Table>& tables() const { return tables_; }

  /// Top-k tables joinable with the query: candidate tables are
  /// nominated by per-column LSH containment probes, then verified and
  /// scored with the matcher (score = best verified column match).
  std::vector<DiscoveryResult> FindJoinable(const Table& query,
                                            size_t k) const;

  /// Top-k unionable tables, scored by the mean of each candidate's
  /// `union_evidence_columns` best column matches against the query
  /// (schema-alignment semantics, §III-A). Candidates come from the
  /// LSH index + name-token postings by default; with
  /// unionable_path = kExhaustive every repository table is scored.
  std::vector<DiscoveryResult> FindUnionable(const Table& query,
                                             size_t k) const;

  /// Budgeted/cancellable variants — the serving boundary's entry
  /// points. `ctx` threads a per-request Deadline and CancellationToken
  /// into every candidate's Prepare/Score; the query fails fast with
  /// kDeadlineExceeded/kCancelled (checked once before any work starts
  /// — a request arriving with a spent budget does zero scoring — and
  /// again between candidates). When ctx carries a trace id it replaces
  /// the engine's default "discovery/<table>" id, so serving spans
  /// parent correctly. An unbounded default-constructed ctx returns
  /// byte-identical results to the infallible overloads.
  Result<std::vector<DiscoveryResult>> FindJoinable(
      const Table& query, size_t k, const MatchContext& ctx) const;
  Result<std::vector<DiscoveryResult>> FindUnionable(
      const Table& query, size_t k, const MatchContext& ctx) const;

 private:
  const ColumnMatcher& matcher() const;

  /// Registration-time validation (see AddTable).
  Status ValidateTable(const Table& table) const;

  /// Candidate table names for a unionable query: per-column
  /// containment probes plus (optionally) column-name token postings.
  std::set<std::string> UnionCandidates(const Table& query) const;

  /// Scores the query against one repository table: the prepared fast
  /// path when both artifacts resolved, the monolithic matcher
  /// otherwise. `candidate_profile` (nullable) is the store-loaded
  /// profile backing the candidate's Prepare. Deadline/cancellation
  /// failures propagate (the caller aborts the query); any other
  /// matcher error — only possible via an injected decorator —
  /// degrades to the empty result, mirroring the infallible Match
  /// overload.
  Result<MatchResult> ScoreAgainstRepository(
      const PreparedTable* prepared_query, const Table& query,
      const Table& candidate, const TableProfile* candidate_profile,
      const MatchContext& base, const std::string& trace_id,
      uint64_t parent_span) const;

  /// A MatchContext carrying this engine's observability plumbing plus
  /// `base`'s deadline/cancellation/profiles.
  MatchContext ObsContext(const MatchContext& base,
                          const std::string& trace_id,
                          uint64_t parent_span) const;

  DiscoveryOptions options_;
  std::vector<Table> tables_;
  LshIndex column_index_;  ///< keys are "<table>\x1f<column>"
  /// Store-loaded per-table profiles, parallel to tables_ (nullptr when
  /// no store is attached or the stored spec is incompatible). Profiles
  /// own their data, so they survive tables_ relocation.
  std::vector<std::shared_ptr<const TableProfile>> table_profiles_;
  /// Column-name token -> names of tables owning such a column; the
  /// value-blind half of unionable candidate nomination. Ordered
  /// containers keep iteration deterministic.
  std::map<std::string, std::set<std::string>> name_token_tables_;
  /// Per-repository-table prepared artifacts, built lazily by Find*
  /// calls and shared across them. Mutable because caching is not
  /// observable through results; its internal mutex is what makes
  /// concurrent const queries safe. Invalidated by AddTable (artifacts
  /// borrow table storage, which may move when the repository grows).
  mutable ArtifactCache artifacts_;
};

}  // namespace valentine

#endif  // VALENTINE_DISCOVERY_DISCOVERY_H_
