#ifndef VALENTINE_DISCOVERY_DISCOVERY_H_
#define VALENTINE_DISCOVERY_DISCOVERY_H_

/// \file discovery.h
/// Dataset discovery on top of the matchers — the consuming use case the
/// paper targets (§II-B: "Valentine as a Discovery Component"). A
/// DiscoveryEngine orchestrates the staged pipeline of DESIGN.md §14
/// over a TableRepository:
///
///   Retrieve  a CandidateIndex nominates candidate tables
///             (discovery/candidate_index.h);
///   Enrich    the Enricher joins nominations to repository metadata
///             (discovery/enrich.h);
///   Rerank    a Reranker verifies and scores every candidate
///             (discovery/rerank.h);
///
/// then sorts and truncates to the top-k. Given a query table it
/// returns ranked *tables*:
///
///  * FindJoinable — tables containing at least one column whose value
///    domain overlaps/contains a query column (candidate pruning through
///    the MinHash-LSH index, verification through a column matcher);
///  * FindUnionable — tables whose schema aligns column-for-column with
///    the query (scored by the mean of the best per-column matches).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/table.h"
#include "discovery/candidate_index.h"
#include "discovery/enrich.h"
#include "discovery/repository.h"
#include "discovery/rerank.h"
#include "discovery/types.h"
#include "io/artifact_store.h"
#include "matchers/matcher.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scaling/lsh_index.h"

namespace valentine {

/// How a Find* call nominates candidate tables before the reranker
/// verifies and scores them.
enum class CandidatePath {
  /// Nominate through the LSH index (and, for unionable queries, the
  /// column-name token postings): scoring cost is bounded by the
  /// candidates actually nominated, not the repository size.
  kLsh,
  /// Score every repository table. The reference path the LSH path is
  /// A/B-checked against (bench/bench_repository.cpp); also the right
  /// choice for tiny repositories where candidate pruning buys nothing.
  kExhaustive,
};

/// Engine configuration.
struct DiscoveryOptions {
  /// Column matcher used to verify/score candidate tables. When null, a
  /// default COMA-Instances matcher is used.
  MatcherPtr matcher;
  /// LSH settings for the joinability candidate index.
  LshOptions lsh;
  /// Minimum estimated containment for a query column to nominate a
  /// candidate table in FindJoinable.
  double min_containment = 0.3;
  /// How many column matches contribute to a table's union score.
  size_t union_evidence_columns = 3;
  /// Candidate front-end per query mode. Both default to the LSH index;
  /// kExhaustive restores the score-everything reference behaviour.
  CandidatePath joinable_path = CandidatePath::kLsh;
  CandidatePath unionable_path = CandidatePath::kLsh;
  /// On the LSH unionable path, also nominate tables that share a
  /// column-name token with the query. Value-disjoint but
  /// schema-aligned tables (the unionable case the value-based index
  /// cannot see) stay reachable.
  bool union_name_candidates = true;
  /// Scoring stage override (discovery/rerank.h). When null, the exact
  /// Prepare/Score reranker over `matcher` is used — the seam ROADMAP
  /// item 3's trainable scorer plugs into.
  std::unique_ptr<Reranker> reranker;
  /// Optional persistent artifact store (borrowed; must outlive the
  /// engine). When set, AddTable first consults the store by table
  /// content fingerprint — a hit skips the sketch and profile builds
  /// entirely — and persists freshly built artifacts write-through, so
  /// the next process (or the next copy-on-write registry snapshot)
  /// registers the same table without rebuilding anything.
  ArtifactStore* store = nullptr;
  /// Observability (obs/), all optional and borrowed: each Find* call
  /// emits a "query" span (trace id "discovery/<query table>") with
  /// per-stage "stage" spans (discovery.retrieve / discovery.enrich /
  /// discovery.rerank) and the candidate scoring nested under it, and
  /// bumps valentine_discovery_queries_total{mode} plus the per-stage
  /// candidate/survivor/fallback counters. Results are byte-identical
  /// with or without them.
  const Clock* clock = nullptr;
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
};

/// \brief A searchable repository of tables.
///
/// Query cost model: a Find* call prepares the query table once and
/// scores it against per-repository-table artifacts that are built on
/// first use and cached across calls — O(prepare + N·score) instead of
/// the monolithic O(N·(prepare + score)). Results are byte-identical to
/// the monolithic path (the matcher pipeline contract).
///
/// Thread-safety: concurrent FindJoinable/FindUnionable calls on a
/// const engine are safe (the reranker's artifact cache is internally
/// synchronized, the matcher is const). AddTable/RemoveTable mutate
/// the repository and must not run concurrently with any other call.
class DiscoveryEngine {
 public:
  explicit DiscoveryEngine(DiscoveryOptions options = {});
  ~DiscoveryEngine();

  DiscoveryEngine(const DiscoveryEngine&) = delete;
  DiscoveryEngine& operator=(const DiscoveryEngine&) = delete;

  /// Builds an engine over an existing repository snapshot: every entry
  /// is re-indexed from its already-built sketches (no fingerprinting,
  /// no store IO, no value re-sketching). The serving layer's
  /// copy-on-write rebuild path. Fails when the snapshot's sketches
  /// disagree with `options.lsh`'s signature width.
  static Result<std::unique_ptr<DiscoveryEngine>> FromRepository(
      DiscoveryOptions options, TableRepository repository);

  /// Registers a table. Fails on duplicate table names, empty tables,
  /// duplicate column names within the table, and names (table or
  /// column) containing the reserved key separator '\x1f' — the engine
  /// keys its column index as "<table>\x1f<column>", so an embedded
  /// separator would let one table's keys impersonate another's.
  /// With a store attached, sketches/profiles are loaded by content
  /// fingerprint when possible and persisted when built fresh.
  Status AddTable(Table table);

  /// Unregisters a table and erases its index postings; kNotFound when
  /// absent. The persistent store keeps its artifact (it is keyed by
  /// content, not by registration, and re-adding should stay free).
  Status RemoveTable(const std::string& name);

  size_t num_tables() const { return repository_.size(); }

  /// The repository this engine queries over. Copying it is a cheap
  /// snapshot (see discovery/repository.h).
  const TableRepository& repository() const { return repository_; }

  /// Top-k tables joinable with the query: candidate tables are
  /// nominated by per-column LSH containment probes, then verified and
  /// scored with the matcher (score = best verified column match).
  std::vector<DiscoveryResult> FindJoinable(const Table& query,
                                            size_t k) const;

  /// Top-k unionable tables, scored by the mean of each candidate's
  /// `union_evidence_columns` best column matches against the query
  /// (schema-alignment semantics, §III-A). Candidates come from the
  /// LSH index + name-token postings by default; with
  /// unionable_path = kExhaustive every repository table is scored.
  std::vector<DiscoveryResult> FindUnionable(const Table& query,
                                             size_t k) const;

  /// Budgeted/cancellable variants — the serving boundary's entry
  /// points. `ctx` threads a per-request Deadline and CancellationToken
  /// into every candidate's Prepare/Score; the query fails fast with
  /// kDeadlineExceeded/kCancelled (checked once before any work starts
  /// — a request arriving with a spent budget does zero scoring — and
  /// again between candidates). When ctx carries a trace id it replaces
  /// the engine's default "discovery/<table>" id, so serving spans
  /// parent correctly. An unbounded default-constructed ctx returns
  /// byte-identical results to the infallible overloads.
  ///
  /// `explain` (optional out-param) receives per-stage accounting —
  /// which index served, candidate counts per stage, fallback state —
  /// without changing result bytes.
  Result<std::vector<DiscoveryResult>> FindJoinable(
      const Table& query, size_t k, const MatchContext& ctx,
      DiscoveryExplain* explain = nullptr) const;
  Result<std::vector<DiscoveryResult>> FindUnionable(
      const Table& query, size_t k, const MatchContext& ctx,
      DiscoveryExplain* explain = nullptr) const;

 private:
  const ColumnMatcher& matcher() const;
  const Reranker& reranker() const;
  Reranker& reranker();
  const CandidateIndex& IndexFor(DiscoveryMode mode) const;

  /// The staged pipeline shared by both modes: Retrieve → Enrich →
  /// Rerank, then sort and truncate to the top-k.
  Result<std::vector<DiscoveryResult>> Find(DiscoveryMode mode,
                                            const Table& query, size_t k,
                                            const MatchContext& ctx,
                                            DiscoveryExplain* explain) const;

  DiscoveryOptions options_;
  TableRepository repository_;
  LshCandidateIndex lsh_index_;
  ExhaustiveCandidateIndex exhaustive_index_;
  Enricher enricher_;
  /// Default reranker when options_.reranker is null (constructed over
  /// matcher()).
  std::unique_ptr<Reranker> default_reranker_;
};

}  // namespace valentine

#endif  // VALENTINE_DISCOVERY_DISCOVERY_H_
