#ifndef VALENTINE_GRAPH_DIGRAPH_H_
#define VALENTINE_GRAPH_DIGRAPH_H_

/// \file digraph.h
/// A labeled directed multigraph. Two matchers are built on this:
/// Similarity Flooding turns each schema into a graph and floods
/// similarity over a pairwise-connectivity product graph, and EmbDI walks
/// a record/attribute/value graph to generate training sentences.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace valentine {

/// Node handle within a Digraph.
using NodeId = size_t;

/// \brief Directed multigraph with string-labeled nodes and edges.
class Digraph {
 public:
  /// Adds a node with a payload string and a kind tag; returns its id.
  NodeId AddNode(std::string name, std::string kind = "");

  /// Adds or reuses the node with this exact (name, kind).
  NodeId GetOrAddNode(const std::string& name, const std::string& kind = "");

  /// Adds a labeled directed edge.
  void AddEdge(NodeId from, NodeId to, std::string label);

  size_t num_nodes() const { return names_.size(); }
  size_t num_edges() const { return edge_count_; }

  const std::string& name(NodeId id) const { return names_[id]; }
  const std::string& kind(NodeId id) const { return kinds_[id]; }

  /// Outgoing edges of a node as (label, target) pairs.
  struct Edge {
    std::string label;
    NodeId target;
  };
  const std::vector<Edge>& OutEdges(NodeId id) const { return out_[id]; }
  const std::vector<Edge>& InEdges(NodeId id) const { return in_[id]; }

  /// All neighbours regardless of direction or label (for random walks).
  std::vector<NodeId> Neighbors(NodeId id) const;

  /// Count of outgoing edges of a node carrying a given label.
  size_t OutDegreeWithLabel(NodeId id, const std::string& label) const;
  size_t InDegreeWithLabel(NodeId id, const std::string& label) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::string> kinds_;
  std::vector<std::vector<Edge>> out_;
  std::vector<std::vector<Edge>> in_;
  std::unordered_map<std::string, NodeId> index_;
  size_t edge_count_ = 0;
};

}  // namespace valentine

#endif  // VALENTINE_GRAPH_DIGRAPH_H_
