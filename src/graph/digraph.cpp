#include "graph/digraph.h"

namespace valentine {

NodeId Digraph::AddNode(std::string name, std::string kind) {
  NodeId id = names_.size();
  names_.push_back(std::move(name));
  kinds_.push_back(std::move(kind));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

NodeId Digraph::GetOrAddNode(const std::string& name,
                             const std::string& kind) {
  std::string key = kind + "\x1f" + name;
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  NodeId id = AddNode(name, kind);
  index_.emplace(std::move(key), id);
  return id;
}

void Digraph::AddEdge(NodeId from, NodeId to, std::string label) {
  out_[from].push_back({label, to});
  in_[to].push_back({std::move(label), from});
  ++edge_count_;
}

std::vector<NodeId> Digraph::Neighbors(NodeId id) const {
  std::vector<NodeId> out;
  out.reserve(out_[id].size() + in_[id].size());
  for (const Edge& e : out_[id]) out.push_back(e.target);
  for (const Edge& e : in_[id]) out.push_back(e.target);
  return out;
}

size_t Digraph::OutDegreeWithLabel(NodeId id, const std::string& label) const {
  size_t n = 0;
  for (const Edge& e : out_[id]) {
    if (e.label == label) ++n;
  }
  return n;
}

size_t Digraph::InDegreeWithLabel(NodeId id, const std::string& label) const {
  size_t n = 0;
  for (const Edge& e : in_[id]) {
    if (e.label == label) ++n;
  }
  return n;
}

}  // namespace valentine
