#include "core/rng.h"

#include <cmath>
#include <numbers>

namespace valentine {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t DeterministicSeed(const std::string& key) {
  // FNV-1a, 64-bit: stable across platforms and standard libraries.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0ULL - bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(range));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<size_t> Rng::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  Shuffle(&all);
  all.resize(k);
  return all;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace valentine
