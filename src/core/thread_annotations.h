#ifndef VALENTINE_CORE_THREAD_ANNOTATIONS_H_
#define VALENTINE_CORE_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Clang thread-safety (capability) analysis macros.
///
/// The locking discipline of the shared-state subsystems (ArtifactCache,
/// ProfileCache, MetricsRegistry, Tracer, OutcomeJournal, Cupid's memo
/// cache, fault-injection counters) used to be enforced only dynamically
/// — TSan runs and race-stress soaks. These macros make it a
/// compile-time proof: every mutex-guarded member is declared
/// GUARDED_BY its mutex, every locking function declares what it
/// ACQUIREs/RELEASEs/REQUIRES, and the `clang-thread-safety` preset
/// builds with `-Wthread-safety -Werror=thread-safety`, so an
/// unsynchronized access to guarded state fails the build instead of
/// waiting for a lucky interleaving.
///
/// On compilers without the attribute (GCC, MSVC) every macro expands
/// to nothing; annotated code is portable by construction
/// (tests/core_thread_annotations_test.cpp is the compile-test proving
/// the expansion is clean on both toolchains). Reference:
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define VALENTINE_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef VALENTINE_THREAD_ANNOTATION_
#define VALENTINE_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (lockable): valentine::Mutex.
#define CAPABILITY(x) VALENTINE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime equals a critical section:
/// valentine::MutexLock.
#define SCOPED_CAPABILITY VALENTINE_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability;
/// reads require the capability held (shared or exclusive), writes
/// require it exclusive.
#define GUARDED_BY(x) VALENTINE_THREAD_ANNOTATION_(guarded_by(x))

/// Like GUARDED_BY, for the data a pointer/smart-pointer member points
/// at (the pointer itself stays unguarded).
#define PT_GUARDED_BY(x) VALENTINE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that the annotated function acquires the capability and
/// holds it on return (Mutex::Lock, MutexLock's constructor).
#define ACQUIRE(...) \
  VALENTINE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  VALENTINE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Declares that the annotated function releases the capability
/// (Mutex::Unlock, MutexLock's destructor).
#define RELEASE(...) \
  VALENTINE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  VALENTINE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Declares that callers must hold the capability (exclusively) before
/// calling the annotated function, which does not release it.
#define REQUIRES(...) \
  VALENTINE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  VALENTINE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the capability — the annotated
/// function acquires it itself (every public method of the guarded
/// subsystems; this is what turns a recursive re-lock into a compile
/// error).
#define EXCLUDES(...) VALENTINE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Annotates a try-lock: acquires the capability iff the returned value
/// equals the first argument.
#define TRY_ACQUIRE(...) \
  VALENTINE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Asserts at runtime that the capability is held (no-op assertion for
/// the analysis; the analyzer then assumes it).
#define ASSERT_CAPABILITY(x) \
  VALENTINE_THREAD_ANNOTATION_(assert_capability(x))

/// Declares that a function returns a reference to the capability
/// guarding its result.
#define RETURN_CAPABILITY(x) VALENTINE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with
/// a comment explaining why the discipline cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  VALENTINE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // VALENTINE_CORE_THREAD_ANNOTATIONS_H_
