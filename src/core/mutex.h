#ifndef VALENTINE_CORE_MUTEX_H_
#define VALENTINE_CORE_MUTEX_H_

/// \file mutex.h
/// The annotated mutex the whole library locks with.
///
/// valentine::Mutex wraps std::mutex with two layers of discipline the
/// raw type cannot carry:
///
///  1. Clang capability annotations (thread_annotations.h): the class
///     is a CAPABILITY, Lock/Unlock are ACQUIRE/RELEASE, so members
///     declared GUARDED_BY(mu_) are compile-time-proven to be touched
///     only under the lock (`clang-thread-safety` preset,
///     `-Wthread-safety -Werror=thread-safety`).
///  2. A debug-build lock-rank registry (lock_rank.h): every Mutex has
///     a fixed per-subsystem rank, and acquisitions that invert the
///     global order — or re-enter a held mutex — are reported at the
///     exact offending call, on any toolchain. Release builds compile
///     the checks out.
///
/// Library code must not use std::mutex / std::lock_guard directly
/// (enforced by the `naked-mutex` lint rule); this header is the one
/// sanctioned home of the raw primitives.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/lock_rank.h"
#include "core/thread_annotations.h"

/// Rank/self-deadlock checking is on wherever NDEBUG is off — debug and
/// sanitizer builds (the Sanitize build type deliberately leaves NDEBUG
/// unset). Define VALENTINE_FORCE_LOCK_RANK_CHECKS to keep the checks
/// in an optimized build (e.g. a soak binary).
#if !defined(NDEBUG) || defined(VALENTINE_FORCE_LOCK_RANK_CHECKS)
#define VALENTINE_LOCK_RANK_CHECKS_ENABLED 1
#else
#define VALENTINE_LOCK_RANK_CHECKS_ENABLED 0
#endif

namespace valentine {

/// \brief Annotated, rank-checked exclusive mutex.
class CAPABILITY("mutex") Mutex {
 public:
  /// `name` is for violation diagnostics only and must outlive the
  /// mutex (string literals do).
  explicit Mutex(LockRank rank = LockRank::kUnranked,
                 const char* name = "Mutex")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if VALENTINE_LOCK_RANK_CHECKS_ENABLED
    LockRankTracker::CheckAcquire(this, rank_, name_);
#endif
    mu_.lock();
#if VALENTINE_LOCK_RANK_CHECKS_ENABLED
    LockRankTracker::Acquired(this, rank_, name_);
#endif
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if VALENTINE_LOCK_RANK_CHECKS_ENABLED
    LockRankTracker::Released(this);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
#if VALENTINE_LOCK_RANK_CHECKS_ENABLED
    // A failed try-lock is legal at any rank, but a try-lock on a mutex
    // this thread already holds is UB on std::mutex — check first.
    LockRankTracker::CheckAcquire(this, rank_, name_);
#endif
    bool acquired = mu_.try_lock();
#if VALENTINE_LOCK_RANK_CHECKS_ENABLED
    if (acquired) LockRankTracker::Acquired(this, rank_, name_);
#endif
    return acquired;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// \brief RAII critical section over a valentine::Mutex — the drop-in
/// replacement for std::lock_guard (enforced by the naked-mutex lint
/// rule). SCOPED_CAPABILITY lets the Clang analysis treat the guard's
/// lifetime as the held region.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// \brief Condition variable paired with valentine::Mutex — the one
/// sanctioned blocking-wait primitive in library code (the naked-mutex
/// lint rule bans raw std::condition_variable outside this header).
///
/// Waits release the mutex through its annotated Unlock and reacquire
/// through Lock, so the lock-rank registry stays consistent across the
/// sleep. The capability analysis cannot model a wait's
/// release-and-reacquire, so the wait methods REQUIRE the mutex and
/// opt their bodies out of the analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu` and blocks until notified (spurious
  /// wakeups possible — always wait in a predicate loop), then
  /// reacquires `*mu` before returning.
  void Wait(Mutex* mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    LockAdapter adapter{mu};
    cv_.wait(adapter);
  }

  /// Like Wait, but returns false if `timeout` elapsed without a
  /// notification (the mutex is reacquired either way).
  bool WaitFor(Mutex* mu, std::chrono::nanoseconds timeout) REQUIRES(mu)
      NO_THREAD_SAFETY_ANALYSIS {
    LockAdapter adapter{mu};
    return cv_.wait_for(adapter, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// BasicLockable view of a valentine::Mutex for std::condition_
  /// variable_any; routes through Lock/Unlock so the rank tracker sees
  /// the release/reacquire pair.
  struct LockAdapter {
    Mutex* mu;
    void lock() NO_THREAD_SAFETY_ANALYSIS { mu->Lock(); }
    void unlock() NO_THREAD_SAFETY_ANALYSIS { mu->Unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace valentine

#endif  // VALENTINE_CORE_MUTEX_H_
