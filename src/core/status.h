#ifndef VALENTINE_CORE_STATUS_H_
#define VALENTINE_CORE_STATUS_H_

/// \file status.h
/// Error-handling primitives in the Arrow/RocksDB idiom.
///
/// Library code never throws across module boundaries; fallible operations
/// return a Status (or a Result<T> when they also produce a value).

#include <optional>
#include <string>
#include <utility>

namespace valentine {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIOError,
  kParseError,
  kInternal,
  kDeadlineExceeded,    ///< a steady-clock time budget ran out
  kCancelled,           ///< a CancellationToken fired
  kResourceExhausted,   ///< a bounded resource (memory, quota) ran dry
};

/// Stable machine-readable name of a code ("DeadlineExceeded", ...).
/// This is the spelling serialized into journals and JSON reports, so
/// failure taxonomies are greppable; it must never change for existing
/// codes.
const char* StatusCodeName(StatusCode code);

/// Inverse of StatusCodeName; std::nullopt for unknown spellings.
std::optional<StatusCode> StatusCodeFromName(const std::string& name);

/// \brief Outcome of a fallible operation: OK, or an error code + message.
///
/// Cheap to copy in the OK case (no allocation). Use the static factories:
///
///     if (rows == 0) return Status::InvalidArgument("table has no rows");
///
/// [[nodiscard]] on the class makes every discarded Status return a
/// compiler warning (fatal under -Werror=unused-result, which the build
/// enables); discard deliberately with a commented (void) cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an OK status explicitly.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// Generic factory for code-driven construction (journal replay, fault
  /// plans). kOk yields an OK status and drops the message.
  static Status WithCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  /// True when the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// Human-readable error description; empty for OK.
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>" for logging.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief A value or an error: the return type of fallible producers.
///
///     Result<Table> r = CsvReader::ReadFile(path);
///     if (!r.ok()) return r.status();
///     Table t = std::move(r).ValueOrDie();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the value; undefined behaviour if !ok().
  const T& ValueOrDie() const& { return *value_; }
  T&& ValueOrDie() && { return std::move(*value_); }
  const T& operator*() const& { return *value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define VALENTINE_RETURN_NOT_OK(expr)       \
  do {                                      \
    ::valentine::Status _st = (expr);       \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace valentine

#endif  // VALENTINE_CORE_STATUS_H_
