#include "core/value.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace valentine {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull: return "null";
    case DataType::kBool: return "bool";
    case DataType::kInt64: return "int64";
    case DataType::kFloat64: return "float64";
    case DataType::kString: return "string";
    case DataType::kDate: return "date";
  }
  return "unknown";
}

bool TypesCompatible(DataType a, DataType b) {
  if (a == b) return true;
  if (a == DataType::kNull || b == DataType::kNull) return true;
  auto numeric = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kFloat64 ||
           t == DataType::kBool;
  };
  if (numeric(a) && numeric(b)) return true;
  auto textual = [](DataType t) {
    return t == DataType::kString || t == DataType::kDate;
  };
  return textual(a) && textual(b);
}

DataType Value::kind() const {
  switch (repr_.index()) {
    case 0: return DataType::kNull;
    case 1: return DataType::kBool;
    case 2: return DataType::kInt64;
    case 3: return DataType::kFloat64;
    default: return DataType::kString;
  }
}

std::string Value::AsString() const {
  switch (repr_.index()) {
    case 0: return "";
    case 1: return std::get<bool>(repr_) ? "true" : "false";
    case 2: return std::to_string(std::get<int64_t>(repr_));
    case 3: {
      double d = std::get<double>(repr_);
      std::array<char, 32> buf;
      auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
      (void)ec;
      return std::string(buf.data(), ptr);
    }
    default: return std::get<std::string>(repr_);
  }
}

std::optional<double> Value::TryFloat() const {
  switch (repr_.index()) {
    case 0: return std::nullopt;
    case 1: return std::get<bool>(repr_) ? 1.0 : 0.0;
    case 2: return static_cast<double>(std::get<int64_t>(repr_));
    case 3: return std::get<double>(repr_);
    default: {
      const std::string& s = std::get<std::string>(repr_);
      if (s.empty()) return std::nullopt;
      const char* begin = s.c_str();
      char* end = nullptr;
      double d = std::strtod(begin, &end);
      if (end == begin) return std::nullopt;
      // Require the whole string (modulo trailing spaces) to be numeric.
      while (*end != '\0') {
        if (!std::isspace(static_cast<unsigned char>(*end))) {
          return std::nullopt;
        }
        ++end;
      }
      return d;
    }
  }
}

namespace {
bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

bool ParseFloat(const std::string& s, double* out) {
  if (s.empty()) return false;
  const char* begin = s.c_str();
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  return end == begin + s.size();
}
}  // namespace

Value ParseCell(const std::string& text) {
  if (text.empty()) return Value::Null();
  // Zero-padded numerics ("007", "00142") are identifiers, not numbers:
  // parsing them as ints would lose the padding on round trip.
  size_t digits_start = (text[0] == '-' || text[0] == '+') ? 1 : 0;
  if (text.size() > digits_start + 1 && text[digits_start] == '0' &&
      std::isdigit(static_cast<unsigned char>(text[digits_start + 1]))) {
    return Value::String(text);
  }
  int64_t i;
  if (ParseInt(text, &i)) return Value::Int(i);
  double d;
  if (ParseFloat(text, &d)) return Value::Float(d);
  if (text == "true" || text == "TRUE" || text == "True") {
    return Value::Bool(true);
  }
  if (text == "false" || text == "FALSE" || text == "False") {
    return Value::Bool(false);
  }
  return Value::String(text);
}

DataType InferType(const std::string& text) {
  return ParseCell(text).kind();
}

}  // namespace valentine
