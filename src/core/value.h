#ifndef VALENTINE_CORE_VALUE_H_
#define VALENTINE_CORE_VALUE_H_

/// \file value.h
/// Dynamically-typed cell values.
///
/// Tables hold heterogeneous tabular data (CSV-like), so cells are a small
/// tagged union. Matchers mostly consume values through AsString() (set
/// semantics) or TryFloat() (distributional semantics), both of which are
/// total over every kind.

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace valentine {

/// Logical type of a column (declared) or a value (actual).
enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kFloat64,
  kString,
  kDate,  ///< Calendar date; stored canonically as "YYYY-MM-DD".
};

/// Lower-case name for a data type, e.g. "int64".
const char* DataTypeName(DataType type);

/// True when two declared types are close enough to union/join across
/// (e.g. int64 and float64, or string and date).
bool TypesCompatible(DataType a, DataType b);

/// \brief A single cell: null, bool, int64, float64, or string.
///
/// Dates are strings at the value level; the column's declared type marks
/// them as dates.
class Value {
 public:
  /// Constructs a null value.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int(int64_t i) { return Value(Repr(i)); }
  static Value Float(double d) { return Value(Repr(d)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }

  /// Actual kind of this cell (kDate never appears here; see class docs).
  DataType kind() const;

  bool is_null() const { return repr_.index() == 0; }

  /// Canonical textual rendering; empty string for null. Floats render
  /// with shortest round-trip formatting so equal values compare equal.
  std::string AsString() const;

  /// Numeric interpretation: bools as 0/1, ints and floats directly,
  /// strings parsed if fully numeric; nullopt otherwise.
  std::optional<double> TryFloat() const;

  /// Underlying accessors; only valid for the matching kind.
  bool bool_value() const { return std::get<bool>(repr_); }
  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double float_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }

  bool operator==(const Value& other) const { return repr_ == other.repr_; }

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

/// Parses a textual cell into the most specific Value (int, then float,
/// then bool literals "true"/"false", else string; empty -> null).
Value ParseCell(const std::string& text);

/// Infers the declared type for a column of parsed values: the narrowest
/// DataType covering all non-null cells (kString if mixed).
DataType InferType(const std::string& text);

}  // namespace valentine

#endif  // VALENTINE_CORE_VALUE_H_
