#ifndef VALENTINE_CORE_DEADLINE_H_
#define VALENTINE_CORE_DEADLINE_H_

/// \file deadline.h
/// Cooperative time budgets and cancellation.
///
/// The paper ran ~75K grid-searched experiments as batch jobs; at that
/// scale one hung fixpoint or pathological word2vec config must not
/// stall a campaign. Long-running library code (matcher hot loops,
/// embedding training) periodically calls MatchContext::Check() and
/// returns kDeadlineExceeded / kCancelled cleanly instead of running
/// unbounded. Deadlines are steady-clock only — wall-clock time
/// (std::chrono::system_clock) can jump under NTP and is banned from
/// library code by tools/lint/valentine_lint.py.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "core/status.h"

namespace valentine {

/// \brief A fixed point on the steady clock by which work must finish.
///
/// Default-constructed deadlines never expire, so a MatchContext can be
/// threaded through unconditionally with zero overhead semantics for
/// unbudgeted runs. Cheap to copy.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  /// Never expires (explicit spelling).
  static Deadline Never() { return Deadline(); }

  /// Expires `budget` from now. Non-positive budgets produce an
  /// already-expired deadline (see AlreadyExpired) instead of doing
  /// clock arithmetic: `now() + budget` with a large negative budget
  /// overflows the time_point (UB that can wrap into the far future and
  /// silently disable the deadline), and a zero budget would leave
  /// expiry racing the clock's first tick. A request that arrives with
  /// no budget left must fail deterministically before any work starts.
  static Deadline After(std::chrono::nanoseconds budget) {
    if (budget <= std::chrono::nanoseconds::zero()) return AlreadyExpired();
    return Deadline(std::chrono::steady_clock::now() + budget);
  }

  /// Expires `budget_ms` milliseconds from now. Non-positive (and NaN)
  /// budgets produce an already-expired deadline; sub-nanosecond
  /// positive budgets round down to zero and are treated the same.
  static Deadline AfterMs(double budget_ms) {
    if (!(budget_ms > 0.0)) return AlreadyExpired();
    constexpr double kMaxMs = 9.0e12;  // ~104 days; caps the ns cast
    double clamped = budget_ms < kMaxMs ? budget_ms : kMaxMs;
    return After(std::chrono::nanoseconds(
        static_cast<int64_t>(clamped * 1e6)));
  }

  /// A deadline that has already passed: expired() is true from
  /// construction onward, independent of clock reads or their
  /// granularity.
  static Deadline AlreadyExpired() {
    return Deadline(std::chrono::steady_clock::time_point::min());
  }

  bool never_expires() const { return !at_.has_value(); }

  /// True once the steady clock has passed the deadline.
  bool expired() const {
    return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
  }

  /// Remaining budget in milliseconds; +infinity when never_expires(),
  /// clamped at 0 once expired.
  double remaining_ms() const;

 private:
  explicit Deadline(std::chrono::steady_clock::time_point at) : at_(at) {}

  std::optional<std::chrono::steady_clock::time_point> at_;
};

/// \brief Thread-safe cooperative cancellation flag.
///
/// The owner (harness, embedder, signal handler) calls Cancel(); workers
/// observe it through MatchContext::Check(). Cancellation is sticky and
/// idempotent. Not copyable — share by pointer.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

class TableProfile;  // stats/column_profile.h
class Clock;         // obs/clock.h
class Tracer;        // obs/trace.h

/// \brief Per-call execution context threaded through ColumnMatcher::Match.
///
/// Carries the time budget, an optional cancellation token, and a stable
/// trace id (the harness sets it to the (family, pair, config) experiment
/// key) that fault-injection decorators key their deterministic plans on.
/// Default-constructed contexts never expire and are never cancelled, so
/// legacy call sites lose nothing.
struct MatchContext {
  Deadline deadline;
  const CancellationToken* cancel = nullptr;
  /// Stable experiment identifier, independent of scheduling order.
  std::string trace_id;
  /// Precomputed column profiles of the two tables being matched
  /// (stats/column_profile.h), or nullptr when the caller has none.
  /// Borrowed; must outlive the Match call. Matchers that consume a
  /// profile verify artifact compatibility (caps, bins, hash counts)
  /// and fall back to inline extraction otherwise, so a profiled call
  /// returns byte-identical results to an unprofiled one.
  const TableProfile* source_profile = nullptr;
  const TableProfile* target_profile = nullptr;
  /// Injectable timing source for *measurements* (obs/clock.h); nullptr
  /// = process steady clock. Deadlines above stay on the real steady
  /// clock regardless — a fake clock must not disable time budgets.
  const Clock* clock = nullptr;
  /// Span sink (obs/trace.h); nullptr = tracing off. `parent_span` is
  /// the enclosing span id (0 = root) under which callees nest their
  /// spans using `trace_id` as the trace key.
  Tracer* tracer = nullptr;
  uint64_t parent_span = 0;

  /// kCancelled when the token fired, kDeadlineExceeded when the budget
  /// ran out, OK otherwise. `where` names the checkpoint for the error
  /// message (messages stay wall-clock-free so reports are byte-stable).
  Status Check(const char* where = "") const;
};

}  // namespace valentine

#endif  // VALENTINE_CORE_DEADLINE_H_
