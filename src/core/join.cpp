#include "core/join.h"

#include <unordered_map>

namespace valentine {

Result<Table> HashJoin(const Table& left, const std::string& left_column,
                       const Table& right, const std::string& right_column,
                       const JoinOptions& options) {
  auto left_idx = left.ColumnIndex(left_column);
  if (!left_idx) {
    return Status::NotFound("left column '" + left_column + "' not found");
  }
  auto right_idx = right.ColumnIndex(right_column);
  if (!right_idx) {
    return Status::NotFound("right column '" + right_column + "' not found");
  }

  // Build side: key -> first matching right row.
  std::unordered_map<std::string, size_t> build;
  const Column& right_key = right.column(*right_idx);
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (right_key[r].is_null()) continue;
    build.emplace(right_key[r].AsString(), r);  // first occurrence wins
  }

  // Probe side: collect row pairs.
  std::vector<size_t> left_rows;
  std::vector<long> right_rows;  // -1 = no match (left join padding)
  const Column& left_key = left.column(*left_idx);
  for (size_t l = 0; l < left.num_rows(); ++l) {
    long matched = -1;
    if (!left_key[l].is_null()) {
      auto it = build.find(left_key[l].AsString());
      if (it != build.end()) matched = static_cast<long>(it->second);
    }
    if (matched < 0 && options.type == JoinType::kInner) continue;
    left_rows.push_back(l);
    right_rows.push_back(matched);
  }

  // Materialize: all left columns, then right columns minus the key.
  Table out(left.name() + "_join_" + right.name());
  for (const Column& c : left.columns()) {
    (void)out.AddColumn(c.TakeRows(left_rows));
  }
  for (size_t rc = 0; rc < right.num_columns(); ++rc) {
    if (rc == *right_idx) continue;
    const Column& c = right.column(rc);
    std::string name = c.name();
    if (out.ColumnIndex(name)) name = options.collision_prefix + name;
    Column merged(name, c.type());
    merged.Reserve(right_rows.size());
    for (long r : right_rows) {
      merged.Append(r < 0 ? Value::Null() : c[static_cast<size_t>(r)]);
    }
    VALENTINE_RETURN_NOT_OK(out.AddColumn(std::move(merged)));
  }
  return out;
}

Result<Table> UnionAll(
    const Table& top, const Table& bottom,
    const std::vector<std::pair<std::string, std::string>>& column_pairs) {
  if (column_pairs.empty()) {
    return Status::InvalidArgument("union needs at least one column pair");
  }
  Table out(top.name() + "_union_" + bottom.name());
  for (const auto& [top_col, bottom_col] : column_pairs) {
    const Column* t = top.FindColumn(top_col);
    if (t == nullptr) {
      return Status::NotFound("top column '" + top_col + "' not found");
    }
    const Column* b = bottom.FindColumn(bottom_col);
    if (b == nullptr) {
      return Status::NotFound("bottom column '" + bottom_col +
                              "' not found");
    }
    Column merged(t->name(), TypesCompatible(t->type(), b->type())
                                 ? t->type()
                                 : DataType::kString);
    merged.Reserve(t->size() + b->size());
    for (const Value& v : t->values()) merged.Append(v);
    for (const Value& v : b->values()) merged.Append(v);
    VALENTINE_RETURN_NOT_OK(out.AddColumn(std::move(merged)));
  }
  return out;
}

}  // namespace valentine
