#include "core/table.h"

namespace valentine {

Status Table::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name() + "' has " +
        std::to_string(column.size()) + " rows, table has " +
        std::to_string(num_rows()));
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

std::optional<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return std::nullopt;
}

const Column* Table::FindColumn(const std::string& name) const {
  auto idx = ColumnIndex(name);
  return idx ? &columns_[*idx] : nullptr;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name());
  return names;
}

Table Table::Project(const std::vector<size_t>& column_indices) const {
  Table out(name_);
  for (size_t i : column_indices) {
    (void)out.AddColumn(columns_[i]);
  }
  return out;
}

Table Table::TakeRows(const std::vector<size_t>& rows) const {
  Table out(name_);
  for (const Column& c : columns_) {
    (void)out.AddColumn(c.TakeRows(rows));
  }
  return out;
}

Table Table::SliceRows(size_t begin, size_t end) const {
  std::vector<size_t> rows;
  rows.reserve(end - begin);
  for (size_t r = begin; r < end; ++r) rows.push_back(r);
  return TakeRows(rows);
}

Status Table::RenameColumn(size_t index, std::string new_name) {
  if (index >= columns_.size()) {
    return Status::OutOfRange("column index " + std::to_string(index) +
                              " out of range");
  }
  columns_[index].set_name(std::move(new_name));
  return Status::OK();
}

std::string Table::Describe() const {
  return name_ + "(cols=" + std::to_string(num_columns()) +
         ", rows=" + std::to_string(num_rows()) + ")";
}

}  // namespace valentine
