#include "core/deadline.h"

#include <limits>

namespace valentine {

double Deadline::remaining_ms() const {
  if (!at_.has_value()) return std::numeric_limits<double>::infinity();
  auto now = std::chrono::steady_clock::now();
  if (now >= *at_) return 0.0;
  return std::chrono::duration<double, std::milli>(*at_ - now).count();
}

Status MatchContext::Check(const char* where) const {
  if (cancel != nullptr && cancel->cancelled()) {
    std::string msg = "cancelled";
    if (where != nullptr && where[0] != '\0') {
      msg += " at ";
      msg += where;
    }
    return Status::Cancelled(std::move(msg));
  }
  if (deadline.expired()) {
    std::string msg = "deadline exceeded";
    if (where != nullptr && where[0] != '\0') {
      msg += " at ";
      msg += where;
    }
    return Status::DeadlineExceeded(std::move(msg));
  }
  return Status::OK();
}

}  // namespace valentine
