#ifndef VALENTINE_CORE_COLUMN_H_
#define VALENTINE_CORE_COLUMN_H_

/// \file column.h
/// A named, typed vector of cells — the unit matchers compare.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/value.h"

namespace valentine {

/// \brief One column of a table: a name, a declared type, and cells.
class Column {
 public:
  Column() = default;
  Column(std::string name, DataType type)
      : name_(std::move(name)), type_(type) {}
  Column(std::string name, DataType type, std::vector<Value> values)
      : name_(std::move(name)), type_(type), values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Declared logical type. The declared type may be broader than the
  /// actual cells (e.g. kDate over string-typed cells).
  DataType type() const { return type_; }
  void set_type(DataType type) { type_ = type; }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }
  void Reserve(size_t n) { values_.reserve(n); }

  /// Number of null cells.
  size_t NullCount() const;

  /// All cells rendered as strings (nulls excluded).
  std::vector<std::string> NonNullStrings() const;

  /// Distinct textual values (nulls excluded), in first-seen order.
  std::vector<std::string> DistinctStrings() const;

  /// Distinct textual values as a set, for overlap computations.
  std::unordered_set<std::string> DistinctStringSet() const;

  /// Numeric interpretations of all interpretable cells.
  std::vector<double> NumericValues() const;

  /// Fraction of non-null cells that parse as numbers (0 when no cells).
  double NumericFraction() const;

  /// Creates a column with the same name/type and cells at the given rows.
  Column TakeRows(const std::vector<size_t>& rows) const;

 private:
  std::string name_;
  DataType type_ = DataType::kNull;
  std::vector<Value> values_;
};

}  // namespace valentine

#endif  // VALENTINE_CORE_COLUMN_H_
