#ifndef VALENTINE_CORE_JOIN_H_
#define VALENTINE_CORE_JOIN_H_

/// \file join.h
/// Relational join execution over the in-memory tables. Discovery finds
/// *which* columns are joinable (the matchers' job); this executes the
/// join so downstream consumers — e.g. ML feature augmentation, the
/// paper's motivating application [10][11] — can materialize the result.

#include <string>

#include "core/status.h"
#include "core/table.h"

namespace valentine {

/// Join variants.
enum class JoinType {
  kInner,  ///< only matching rows
  kLeft,   ///< all left rows; unmatched right columns become nulls
};

/// Options for a join.
struct JoinOptions {
  JoinType type = JoinType::kInner;
  /// Prefix applied to right-side column names that collide with a
  /// left-side name.
  std::string collision_prefix = "right_";
  /// On duplicate right keys, only the first matching row is used
  /// (keeps the output size bounded by |left| per key match).
  bool first_match_only = true;
};

/// Hash-joins `left` and `right` on textual equality of
/// left[left_column] == right[right_column]. Null keys never match.
/// Fails when either column is missing.
Result<Table> HashJoin(const Table& left, const std::string& left_column,
                       const Table& right, const std::string& right_column,
                       const JoinOptions& options = {});

/// Row-wise union of two tables whose columns are aligned by the given
/// pairs (source of the unionable scenario's downstream use). Columns of
/// `top` keep their names; rows of `bottom` are appended with its
/// matched columns reordered accordingly.
Result<Table> UnionAll(
    const Table& top, const Table& bottom,
    const std::vector<std::pair<std::string, std::string>>& column_pairs);

}  // namespace valentine

#endif  // VALENTINE_CORE_JOIN_H_
