#ifndef VALENTINE_CORE_LOCK_RANK_H_
#define VALENTINE_CORE_LOCK_RANK_H_

/// \file lock_rank.h
/// Runtime lock-ordering discipline for valentine::Mutex.
///
/// The Clang capability analysis (thread_annotations.h) proves that
/// guarded state is only touched under its mutex, but it cannot prove
/// the *order* in which two mutexes nest — and a rank inversion (thread
/// A holds X and waits for Y while thread B holds Y and waits for X) is
/// a deadlock TSan only reports if the losing interleaving actually
/// fires. This registry makes the ordering a checked invariant on every
/// acquisition, on any toolchain:
///
///  * every Mutex carries a fixed LockRank, one per subsystem;
///  * a thread may only acquire a mutex whose rank is strictly greater
///    than every ranked mutex it already holds (outer subsystems rank
///    low, leaf subsystems — obs — rank high);
///  * re-acquiring a mutex the thread already holds (self-deadlock with
///    std::mutex) is always a violation, regardless of rank.
///
/// The tracker itself is always compiled (so tests exercise detection
/// under every build type); Mutex only *calls* it when
/// VALENTINE_LOCK_RANK_CHECKS_ENABLED is 1 — debug/sanitizer builds.
/// Release builds (NDEBUG) compile the calls out entirely: zero
/// overhead on the serving path.
///
/// Violations invoke the installed handler; the default prints the two
/// mutexes involved and aborts. Tests install a recording handler.

#include <cstddef>

namespace valentine {

/// One rank per mutex-owning subsystem. A thread must acquire in
/// strictly increasing rank order: harness-level locks first, cache
/// locks next, observability (metrics/trace) locks last — obs is a leaf
/// dependency that outer critical sections may call into, never the
/// other way around. Gaps leave room for new subsystems; see DESIGN.md
/// §11 for the table and the rules for adding one.
enum class LockRank : int {
  /// Opts out of ordering checks (self-deadlock is still detected).
  /// For mutexes with no cross-subsystem nesting story yet; prefer a
  /// real rank.
  kUnranked = 0,
  kServeAdmission = 4,   ///< serve/admission.* (AdmissionQueue)
  kServeServer = 5,      ///< serve/server.* (HttpServer lifecycle/in-flight)
  kServeRegistry = 6,    ///< serve/service.* (DiscoveryService tables/engine)
  kServeTelemetry = 7,   ///< serve/telemetry.* (access log + tracez ring)
  kJournal = 10,         ///< harness/journal.* (OutcomeJournal)
  kFaultInjection = 20,  ///< matchers/fault_injection.* attempt counters
  kArtifactStore = 25,   ///< io/artifact_store.* (persistent discovery store)
  kArtifactCache = 30,   ///< matchers/artifact_cache.*
  kProfileCache = 40,    ///< stats/column_profile.* (ProfileCache)
  kCupidMemo = 50,       ///< matchers/cupid.* linguistic memo cache
  kMetrics = 60,         ///< obs/metrics.* (MetricsRegistry)
  kTracer = 70,          ///< obs/trace.* (Tracer)
};

/// Human-readable rank name for diagnostics ("kMetrics", ...).
const char* LockRankName(LockRank rank);

/// What a violation report carries. Pointers identify the mutex
/// instances; names are the ones passed at Mutex construction.
struct LockRankViolation {
  enum class Kind {
    kSelfDeadlock,   ///< acquiring a mutex this thread already holds
    kRankInversion,  ///< acquiring rank <= a rank already held
  };
  Kind kind = Kind::kRankInversion;
  const void* acquiring = nullptr;
  LockRank acquiring_rank = LockRank::kUnranked;
  const char* acquiring_name = "";
  const void* held = nullptr;
  LockRank held_rank = LockRank::kUnranked;
  const char* held_name = "";
};

/// Handler invoked on a violation. The default (nullptr) prints the
/// report to stderr and aborts. Returns the previous handler. Intended
/// for tests; not synchronized with concurrent Check calls, so install
/// before spawning threads.
using LockRankViolationHandler = void (*)(const LockRankViolation&);
LockRankViolationHandler SetLockRankViolationHandler(
    LockRankViolationHandler handler);

/// \brief Per-thread registry of held mutexes (a thread_local stack).
///
/// valentine::Mutex drives this in debug builds; tests may drive it
/// directly in any build. All methods are static and touch only
/// thread-local state — no synchronization, no allocation.
class LockRankTracker {
 public:
  /// Validates acquiring (mutex, rank) against this thread's held set;
  /// reports via the violation handler. Does not record the mutex as
  /// held. Call before blocking on the underlying lock, so a
  /// self-deadlock is reported instead of hanging.
  static void CheckAcquire(const void* mutex, LockRank rank, const char* name);

  /// Records the mutex as held by this thread (post-acquisition).
  static void Acquired(const void* mutex, LockRank rank, const char* name);

  /// Removes the mutex from this thread's held set. Tolerates
  /// out-of-LIFO release and unknown mutexes (a tracker that aborts on
  /// bookkeeping noise would be worse than the bugs it hunts).
  static void Released(const void* mutex);

  /// Number of mutexes this thread currently holds (testing hook).
  static size_t HeldCount();
};

}  // namespace valentine

#endif  // VALENTINE_CORE_LOCK_RANK_H_
