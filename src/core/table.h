#ifndef VALENTINE_CORE_TABLE_H_
#define VALENTINE_CORE_TABLE_H_

/// \file table.h
/// The in-memory tabular dataset model: a named collection of equal-length
/// columns. This is the substrate every matcher, fabricator, and generator
/// operates on (the C++ stand-in for the pandas DataFrames the original
/// Python suite used).

#include <optional>
#include <string>
#include <vector>

#include "core/column.h"
#include "core/status.h"

namespace valentine {

/// \brief A named relation with a flat schema.
class Table {
 public:
  Table() = default;
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Appends a column; fails if its length disagrees with existing ones.
  Status AddColumn(Column column);

  /// Index of the column with the given name, if present.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Pointer to the named column, or nullptr.
  const Column* FindColumn(const std::string& name) const;

  /// All column names in order.
  std::vector<std::string> ColumnNames() const;

  /// New table with only the given column indices (in the given order).
  Table Project(const std::vector<size_t>& column_indices) const;

  /// New table with only the given rows (in the given order).
  Table TakeRows(const std::vector<size_t>& rows) const;

  /// New table with rows [begin, end).
  Table SliceRows(size_t begin, size_t end) const;

  /// Renames column `index` (bounds-checked).
  Status RenameColumn(size_t index, std::string new_name);

  /// One-line summary for logs: "name(cols=N, rows=M)".
  std::string Describe() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

/// \brief A (table, column) reference — the endpoints of a match.
struct ColumnRef {
  std::string table;
  std::string column;

  bool operator==(const ColumnRef& other) const {
    return table == other.table && column == other.column;
  }
  bool operator<(const ColumnRef& other) const {
    if (table != other.table) return table < other.table;
    return column < other.column;
  }
  std::string ToString() const { return table + "." + column; }
};

}  // namespace valentine

#endif  // VALENTINE_CORE_TABLE_H_
