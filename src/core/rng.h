#ifndef VALENTINE_CORE_RNG_H_
#define VALENTINE_CORE_RNG_H_

/// \file rng.h
/// Deterministic random-number generation.
///
/// Every randomized component in the suite (fabricators, noise models,
/// EmbDI walks, word2vec init) takes an explicit seed so that experiments
/// are exactly reproducible run-to-run. We use splitmix64 for seeding and
/// xoshiro256** as the generator — fast, well-distributed, and stable
/// across platforms (unlike std::mt19937 distributions, whose outputs are
/// not standardized).

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace valentine {

/// Platform-stable 64-bit hash of a string key (FNV-1a), for deriving
/// deterministic seeds from experiment identifiers. std::hash is
/// implementation-defined, so it is banned from seed derivation; this is
/// the one spelling journals, retry backoff, and fault plans agree on.
uint64_t DeterministicSeed(const std::string& key);

/// \brief Deterministic xoshiro256** PRNG with convenience samplers.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 42);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p);

  /// Uniformly chosen index into a container of the given size (> 0).
  size_t Index(size_t size) { return static_cast<size_t>(NextBounded(size)); }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->size() < 2) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = Index(i + 1);
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) in random order (k <= n).
  std::vector<size_t> SampleIndices(size_t n, size_t k);

  /// Derives an independent child generator (for parallel determinism).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace valentine

#endif  // VALENTINE_CORE_RNG_H_
