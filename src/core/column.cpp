#include "core/column.h"

namespace valentine {

size_t Column::NullCount() const {
  size_t n = 0;
  for (const Value& v : values_) {
    if (v.is_null()) ++n;
  }
  return n;
}

std::vector<std::string> Column::NonNullStrings() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const Value& v : values_) {
    if (!v.is_null()) out.push_back(v.AsString());
  }
  return out;
}

std::vector<std::string> Column::DistinctStrings() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const Value& v : values_) {
    if (v.is_null()) continue;
    std::string s = v.AsString();
    if (seen.insert(s).second) out.push_back(std::move(s));
  }
  return out;
}

std::unordered_set<std::string> Column::DistinctStringSet() const {
  std::unordered_set<std::string> out;
  for (const Value& v : values_) {
    if (!v.is_null()) out.insert(v.AsString());
  }
  return out;
}

std::vector<double> Column::NumericValues() const {
  std::vector<double> out;
  out.reserve(values_.size());
  for (const Value& v : values_) {
    if (auto d = v.TryFloat()) out.push_back(*d);
  }
  return out;
}

double Column::NumericFraction() const {
  size_t non_null = 0;
  size_t numeric = 0;
  for (const Value& v : values_) {
    if (v.is_null()) continue;
    ++non_null;
    if (v.TryFloat()) ++numeric;
  }
  if (non_null == 0) return 0.0;
  return static_cast<double>(numeric) / static_cast<double>(non_null);
}

Column Column::TakeRows(const std::vector<size_t>& rows) const {
  Column out(name_, type_);
  out.Reserve(rows.size());
  for (size_t r : rows) out.Append(values_[r]);
  return out;
}

}  // namespace valentine
