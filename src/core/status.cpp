#include "core/status.h"

namespace valentine {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromName(const std::string& name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kOutOfRange,
      StatusCode::kIOError,      StatusCode::kParseError,
      StatusCode::kInternal,     StatusCode::kDeadlineExceeded,
      StatusCode::kCancelled,    StatusCode::kResourceExhausted,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeName(code)) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace valentine
