#include "core/lock_rank.h"

#include <cstdio>
#include <cstdlib>

namespace valentine {

namespace {

/// Deep-enough for any sane lock nesting; beyond it the tracker stops
/// checking rather than allocating (checking 65 simultaneously held
/// mutexes is not the bug class this guards).
constexpr size_t kMaxHeld = 64;

struct HeldEntry {
  const void* mutex;
  LockRank rank;
  const char* name;
};

struct ThreadHeld {
  HeldEntry entries[kMaxHeld];
  size_t count = 0;
};

ThreadHeld& Held() {
  thread_local ThreadHeld held;
  return held;
}

LockRankViolationHandler g_handler = nullptr;

void Report(const LockRankViolation& violation) {
  if (g_handler != nullptr) {
    g_handler(violation);
    return;
  }
  std::fprintf(
      stderr,
      "valentine lock-rank violation (%s): acquiring %s (%s, rank %d) "
      "while holding %s (%s, rank %d)\n",
      violation.kind == LockRankViolation::Kind::kSelfDeadlock
          ? "self-deadlock"
          : "rank inversion",
      violation.acquiring_name, LockRankName(violation.acquiring_rank),
      static_cast<int>(violation.acquiring_rank), violation.held_name,
      LockRankName(violation.held_rank),
      static_cast<int>(violation.held_rank));
  std::abort();
}

}  // namespace

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked:
      return "kUnranked";
    case LockRank::kServeAdmission:
      return "kServeAdmission";
    case LockRank::kServeServer:
      return "kServeServer";
    case LockRank::kServeRegistry:
      return "kServeRegistry";
    case LockRank::kServeTelemetry:
      return "kServeTelemetry";
    case LockRank::kJournal:
      return "kJournal";
    case LockRank::kFaultInjection:
      return "kFaultInjection";
    case LockRank::kArtifactStore:
      return "kArtifactStore";
    case LockRank::kArtifactCache:
      return "kArtifactCache";
    case LockRank::kProfileCache:
      return "kProfileCache";
    case LockRank::kCupidMemo:
      return "kCupidMemo";
    case LockRank::kMetrics:
      return "kMetrics";
    case LockRank::kTracer:
      return "kTracer";
  }
  return "<unknown rank>";
}

LockRankViolationHandler SetLockRankViolationHandler(
    LockRankViolationHandler handler) {
  LockRankViolationHandler previous = g_handler;
  g_handler = handler;
  return previous;
}

void LockRankTracker::CheckAcquire(const void* mutex, LockRank rank,
                                   const char* name) {
  const ThreadHeld& held = Held();
  for (size_t i = 0; i < held.count; ++i) {
    const HeldEntry& entry = held.entries[i];
    if (entry.mutex == mutex) {
      LockRankViolation violation;
      violation.kind = LockRankViolation::Kind::kSelfDeadlock;
      violation.acquiring = mutex;
      violation.acquiring_rank = rank;
      violation.acquiring_name = name;
      violation.held = entry.mutex;
      violation.held_rank = entry.rank;
      violation.held_name = entry.name;
      Report(violation);
      return;  // handler chose to continue; skip rank noise for this call
    }
  }
  if (rank == LockRank::kUnranked) return;
  for (size_t i = 0; i < held.count; ++i) {
    const HeldEntry& entry = held.entries[i];
    if (entry.rank != LockRank::kUnranked && entry.rank >= rank) {
      LockRankViolation violation;
      violation.kind = LockRankViolation::Kind::kRankInversion;
      violation.acquiring = mutex;
      violation.acquiring_rank = rank;
      violation.acquiring_name = name;
      violation.held = entry.mutex;
      violation.held_rank = entry.rank;
      violation.held_name = entry.name;
      Report(violation);
      return;
    }
  }
}

void LockRankTracker::Acquired(const void* mutex, LockRank rank,
                               const char* name) {
  ThreadHeld& held = Held();
  if (held.count >= kMaxHeld) return;
  held.entries[held.count++] = {mutex, rank, name};
}

void LockRankTracker::Released(const void* mutex) {
  ThreadHeld& held = Held();
  // Search from the top: releases are almost always LIFO.
  for (size_t i = held.count; i > 0; --i) {
    if (held.entries[i - 1].mutex == mutex) {
      for (size_t j = i - 1; j + 1 < held.count; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.count;
      return;
    }
  }
}

size_t LockRankTracker::HeldCount() { return Held().count; }

}  // namespace valentine
