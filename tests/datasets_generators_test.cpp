#include <gtest/gtest.h>

#include "datasets/chembl.h"
#include "datasets/ing.h"
#include "datasets/magellan.h"
#include "datasets/opendata.h"
#include "datasets/synthetic.h"
#include "datasets/tpcdi.h"
#include "datasets/wikidata.h"

namespace valentine {
namespace {

TEST(SyntheticBuilderTest, ColumnGeneratorsProduceDeclaredShapes) {
  SyntheticTableBuilder b("t", 50, 1);
  b.AddIdColumn("id", 10)
      .AddPrefixedIdColumn("code", "X")
      .AddCategorical("city", vocab::Cities())
      .AddUniformInt("n", 5, 9)
      .AddGaussianInt("g", 100, 10, 0)
      .AddGaussianFloat("f", 1.0, 0.1)
      .AddDateColumn("d", 2000, 2001)
      .AddPatternColumn("p", "Ad-a")
      .AddTextColumn("txt", vocab::Words(), 2, 4)
      .AddPersonNameColumn("person")
      .AddFlagColumn("flag", 0.5);
  Table t = b.Build();
  EXPECT_EQ(t.num_columns(), 11u);
  EXPECT_EQ(t.num_rows(), 50u);
  EXPECT_EQ(t.column(0)[0].int_value(), 10);
  EXPECT_EQ(t.column(0)[49].int_value(), 59);
  EXPECT_EQ(t.column(1)[0].AsString(), "X00001");
  for (size_t i = 0; i < 50; ++i) {
    int64_t n = t.column(3)[i].int_value();
    EXPECT_GE(n, 5);
    EXPECT_LE(n, 9);
    std::string p = t.column(7)[i].AsString();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_TRUE(isupper(static_cast<unsigned char>(p[0])));
    EXPECT_TRUE(isdigit(static_cast<unsigned char>(p[1])));
    EXPECT_EQ(p[2], '-');
    EXPECT_TRUE(islower(static_cast<unsigned char>(p[3])));
    std::string flag = t.column(10)[i].AsString();
    EXPECT_TRUE(flag == "Y" || flag == "N");
  }
}

TEST(SyntheticBuilderTest, WithNullsInjects) {
  SyntheticTableBuilder b("t", 400, 2);
  b.AddCategorical("c", vocab::Cities()).WithNulls("c", 0.3);
  Table t = b.Build();
  size_t nulls = t.column(0).NullCount();
  EXPECT_GT(nulls, 60u);
  EXPECT_LT(nulls, 200u);
}

TEST(SyntheticBuilderTest, DeterministicUnderSeed) {
  auto make = [] {
    SyntheticTableBuilder b("t", 20, 42);
    b.AddCategorical("c", vocab::Words()).AddUniformInt("n", 0, 100);
    return b.Build();
  };
  Table t1 = make();
  Table t2 = make();
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(t1.column(0)[i] == t2.column(0)[i]);
    EXPECT_TRUE(t1.column(1)[i] == t2.column(1)[i]);
  }
}

TEST(TpcdiTest, MatchesPublishedShape) {
  Table t = MakeTpcdiProspect(150, 7);
  EXPECT_EQ(t.num_columns(), 22u);  // Prospect has 22 attributes
  EXPECT_EQ(t.num_rows(), 150u);
  EXPECT_NE(t.FindColumn("income"), nullptr);
  EXPECT_NE(t.FindColumn("credit_rating"), nullptr);
  EXPECT_EQ(t.FindColumn("income")->type(), DataType::kInt64);
}

TEST(OpenDataTest, MatchesPublishedShape) {
  Table t = MakeOpenDataTable(100, 7);
  EXPECT_EQ(t.num_columns(), 51u);  // paper: up to 51 columns
  EXPECT_EQ(t.num_rows(), 100u);
  EXPECT_NE(t.FindColumn("permit_number"), nullptr);
  // Sparse columns exist (nulls present).
  EXPECT_GT(t.FindColumn("architect_firm")->NullCount(), 0u);
}

TEST(ChemblTest, MatchesPublishedShape) {
  Table t = MakeChemblAssays(100, 7);
  EXPECT_EQ(t.num_columns(), 23u);  // paper: up to 23 columns
  EXPECT_NE(t.FindColumn("assay_organism"), nullptr);
  EXPECT_NE(t.FindColumn("chembl_id"), nullptr);
}

TEST(WikidataTest, BaseTableShape) {
  Table t = MakeWikidataSingersBase(80, 7);
  EXPECT_EQ(t.num_columns(), 20u);  // paper: twenty columns
  EXPECT_EQ(t.num_rows(), 80u);
  EXPECT_NE(t.FindColumn("artist"), nullptr);
  EXPECT_NE(t.FindColumn("partner"), nullptr);
}

TEST(WikidataTest, FourScenarioPairs) {
  auto pairs = MakeWikidataPairs(120, 7);
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0].scenario, Scenario::kUnionable);
  EXPECT_EQ(pairs[1].scenario, Scenario::kViewUnionable);
  EXPECT_EQ(pairs[2].scenario, Scenario::kJoinable);
  EXPECT_EQ(pairs[3].scenario, Scenario::kSemanticallyJoinable);
  for (const auto& p : pairs) {
    EXPECT_GE(p.ground_truth.size(), 1u) << p.id;
    for (const auto& gt : p.ground_truth) {
      EXPECT_TRUE(p.source.ColumnIndex(gt.source_column).has_value())
          << p.id << " " << gt.source_column;
      EXPECT_TRUE(p.target.ColumnIndex(gt.target_column).has_value())
          << p.id << " " << gt.target_column;
    }
  }
}

TEST(WikidataTest, ColumnNamesVaryBetweenSides) {
  auto pairs = MakeWikidataPairs(60, 7);
  const DatasetPair& u = pairs[0];
  // partner -> spouse, as the paper highlights.
  EXPECT_TRUE(u.source.ColumnIndex("partner").has_value());
  EXPECT_TRUE(u.target.ColumnIndex("spouse").has_value());
  EXPECT_FALSE(u.target.ColumnIndex("partner").has_value());
}

TEST(WikidataTest, AlternativeEncodingsApplied) {
  auto pairs = MakeWikidataPairs(60, 7);
  const DatasetPair& u = pairs[0];
  // Citizenship encodings differ ("United States of America" vs "USA").
  const Column* src = u.source.FindColumn("citizenship");
  const Column* tgt = u.target.FindColumn("nationality");
  ASSERT_NE(src, nullptr);
  ASSERT_NE(tgt, nullptr);
  EXPECT_EQ((*src)[0].AsString(), "United States of America");
  EXPECT_EQ((*tgt)[0].AsString(), "USA");
}

TEST(MagellanTest, SevenUnionablePairs) {
  auto pairs = MakeMagellanPairs(60, 7);
  ASSERT_EQ(pairs.size(), 7u);
  for (const auto& p : pairs) {
    EXPECT_EQ(p.scenario, Scenario::kUnionable) << p.id;
    // Same attribute names on both sides (paper §V-B).
    EXPECT_EQ(p.source.ColumnNames(), p.target.ColumnNames()) << p.id;
    EXPECT_EQ(p.ground_truth.size(), p.source.num_columns());
    EXPECT_GE(p.source.num_columns(), 3u);
    EXPECT_LE(p.source.num_columns(), 7u);  // paper: 3-7 columns
  }
}

TEST(MagellanTest, DiscrepanciesPresent) {
  auto pairs = MakeMagellanPairs(200, 7);
  // Some target-side strings should differ from any source value
  // (typos/case jitter), hurting naive overlap methods.
  const DatasetPair& p = pairs[0];
  auto src_set = p.source.column(0).DistinctStringSet();
  size_t missing = 0;
  for (const auto& v : p.target.column(0).DistinctStrings()) {
    if (!src_set.count(v)) ++missing;
  }
  EXPECT_GT(missing, 0u);
}

TEST(IngTest, Pair1Shape) {
  DatasetPair p = MakeIngPair1(120, 11);
  EXPECT_EQ(p.source.num_columns(), 33u);  // paper: 33 columns
  EXPECT_EQ(p.target.num_columns(), 16u);  // paper: 16 columns
  EXPECT_EQ(p.ground_truth.size(), 14u);   // implied by 0.714 = 10/14
  EXPECT_NE(p.source.num_rows(), p.target.num_rows());
  for (const auto& gt : p.ground_truth) {
    EXPECT_TRUE(p.source.ColumnIndex(gt.source_column).has_value())
        << gt.source_column;
    EXPECT_TRUE(p.target.ColumnIndex(gt.target_column).has_value())
        << gt.target_column;
  }
}

TEST(IngTest, Pair2ShapeAndNmGroundTruth) {
  DatasetPair p = MakeIngPair2(120, 12);
  EXPECT_EQ(p.source.num_columns(), 59u);  // paper: 59 columns
  EXPECT_EQ(p.target.num_columns(), 25u);  // paper: 25 columns
  // n-m: some target column appears in multiple ground-truth entries.
  std::unordered_map<std::string, int> target_counts;
  for (const auto& gt : p.ground_truth) {
    ++target_counts[gt.target_column];
    EXPECT_TRUE(p.source.ColumnIndex(gt.source_column).has_value())
        << gt.source_column;
    EXPECT_TRUE(p.target.ColumnIndex(gt.target_column).has_value())
        << gt.target_column;
  }
  bool has_multi = false;
  for (const auto& [col, count] : target_counts) {
    if (count > 1) has_multi = true;
  }
  EXPECT_TRUE(has_multi);
}

TEST(IngTest, MatchingColumnsShareValuePools) {
  DatasetPair p = MakeIngPair1(200, 11);
  const Column* a = p.source.FindColumn("sprint_id");
  const Column* b = p.target.FindColumn("sprintid");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  auto sa = a->DistinctStringSet();
  size_t shared = 0;
  for (const auto& v : b->DistinctStrings()) shared += sa.count(v);
  EXPECT_GT(shared, sa.size() / 2);  // heavy overlap by construction
}

}  // namespace
}  // namespace valentine
