#include "matchers/fault_injection.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/column.h"
#include "core/table.h"
#include "core/value.h"
#include "matchers/jaccard_levenshtein.h"

namespace valentine {
namespace {

Table SmallTable(const std::string& name) {
  Table t(name);
  Column a("customer_id", DataType::kInt64);
  Column b("city", DataType::kString);
  for (int i = 0; i < 5; ++i) {
    a.Append(Value::Int(i));
    b.Append(Value::String("city_" + std::to_string(i)));
  }
  EXPECT_TRUE(t.AddColumn(std::move(a)).ok());
  EXPECT_TRUE(t.AddColumn(std::move(b)).ok());
  return t;
}

std::shared_ptr<const ColumnMatcher> Inner() {
  return std::make_shared<JaccardLevenshteinMatcher>();
}

TEST(FaultInjectionTest, NoPlanDelegatesTransparently) {
  Table s = SmallTable("s");
  Table t = SmallTable("t");
  FaultInjectingMatcher faulty(Inner(), FaultPlan{});
  JaccardLevenshteinMatcher plain;

  Result<MatchResult> got = faulty.Match(s, t, MatchContext());
  ASSERT_TRUE(got.ok());
  MatchResult expected = plain.Match(s, t);
  ASSERT_EQ(got->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*got)[i].score, expected[i].score);
  }
  EXPECT_EQ(faulty.Name(), plain.Name());
  EXPECT_EQ(faulty.Category(), plain.Category());
}

TEST(FaultInjectionTest, FailNThenSucceed) {
  FaultPlan plan;
  plan.fail_first = 2;
  plan.code = StatusCode::kIOError;
  plan.message = "flaky backend";
  FaultInjectingMatcher faulty(Inner(), plan);
  Table s = SmallTable("s");
  Table t = SmallTable("t");
  MatchContext ctx;
  ctx.trace_id = "fam\x1f"
                 "pair\x1f"
                 "config";

  Result<MatchResult> first = faulty.Match(s, t, ctx);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kIOError);
  EXPECT_EQ(first.status().message(), "flaky backend");
  Result<MatchResult> second = faulty.Match(s, t, ctx);
  ASSERT_FALSE(second.ok());
  Result<MatchResult> third = faulty.Match(s, t, ctx);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(faulty.AttemptsFor(ctx.trace_id), 3u);
}

TEST(FaultInjectionTest, AttemptsKeyedOnTraceIdNotTableNames) {
  // Two experiments over the *same* tables (the fabricated-suite
  // reality: table names repeat across pairs) must fail independently.
  FaultPlan plan;
  plan.fail_first = 1;
  FaultInjectingMatcher faulty(Inner(), plan);
  Table s = SmallTable("s");
  Table t = SmallTable("t");
  MatchContext exp_a;
  exp_a.trace_id = "fam\x1fpair_a\x1f" "cfg";
  MatchContext exp_b;
  exp_b.trace_id = "fam\x1fpair_b\x1f" "cfg";

  EXPECT_FALSE(faulty.Match(s, t, exp_a).ok());  // a's first attempt
  EXPECT_FALSE(faulty.Match(s, t, exp_b).ok());  // b's first attempt
  EXPECT_TRUE(faulty.Match(s, t, exp_a).ok());   // a recovered
  EXPECT_TRUE(faulty.Match(s, t, exp_b).ok());   // b recovered
}

TEST(FaultInjectionTest, AlwaysFailNeverRecovers) {
  FaultPlan plan;
  plan.always_fail = true;
  FaultInjectingMatcher faulty(Inner(), plan);
  Table s = SmallTable("s");
  Table t = SmallTable("t");
  for (int i = 0; i < 4; ++i) {
    Result<MatchResult> r = faulty.Match(s, t, MatchContext());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  }
}

TEST(FaultInjectionTest, OkFailureCodeIsCoercedToInternal) {
  FaultPlan plan;
  plan.always_fail = true;
  plan.code = StatusCode::kOk;  // nonsensical; must not disable faults
  FaultInjectingMatcher faulty(Inner(), plan);
  Table s = SmallTable("s");
  Table t = SmallTable("t");
  Result<MatchResult> r = faulty.Match(s, t, MatchContext());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(FaultInjectionTest, HangIsInterruptedByDeadline) {
  FaultPlan plan;
  plan.hang_ms = 60000.0;  // a minute-long hang...
  FaultInjectingMatcher faulty(Inner(), plan);
  Table s = SmallTable("s");
  Table t = SmallTable("t");
  MatchContext ctx;
  ctx.deadline = Deadline::AfterMs(5.0);  // ...cut to 5 ms
  Result<MatchResult> r = faulty.Match(s, t, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(FaultInjectionTest, HangIsInterruptedByCancellation) {
  FaultPlan plan;
  plan.hang_ms = 60000.0;
  FaultInjectingMatcher faulty(Inner(), plan);
  Table s = SmallTable("s");
  Table t = SmallTable("t");
  CancellationToken token;
  token.Cancel();
  MatchContext ctx;
  ctx.cancel = &token;
  Result<MatchResult> r = faulty.Match(s, t, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(FaultInjectionTest, ProbabilisticFaultsAreDeterministic) {
  FaultPlan plan;
  plan.fail_probability = 0.5;
  plan.seed = 99;
  Table s = SmallTable("s");
  Table t = SmallTable("t");
  // Two decorator instances replay the identical fault sequence for the
  // identical key sequence — the property the soak driver relies on.
  auto run = [&](FaultInjectingMatcher& m) {
    std::vector<bool> oks;
    for (int i = 0; i < 16; ++i) {
      MatchContext ctx;
      ctx.trace_id = "exp_" + std::to_string(i % 4);  // 4 attempts each
      oks.push_back(m.Match(s, t, ctx).ok());
    }
    return oks;
  };
  FaultInjectingMatcher first(Inner(), plan);
  FaultInjectingMatcher second(Inner(), plan);
  EXPECT_EQ(run(first), run(second));
}

}  // namespace
}  // namespace valentine
