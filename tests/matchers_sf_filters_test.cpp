// Tests for Similarity Flooding's post-flooding filters (stable
// marriage, perfectionist) from the original SF paper.

#include <gtest/gtest.h>

#include <set>

#include "matchers/similarity_flooding.h"

namespace valentine {
namespace {

Table MakeTable(const std::string& name,
                std::vector<std::pair<std::string, DataType>> cols) {
  Table t(name);
  for (auto& [col_name, type] : cols) {
    Column c(col_name, type);
    c.Append(Value::String("v"));
    EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
  }
  return t;
}

Table Src() {
  return MakeTable("s", {{"customer", DataType::kString},
                         {"amount", DataType::kFloat64},
                         {"created", DataType::kDate}});
}
Table Tgt() {
  return MakeTable("t", {{"customer", DataType::kString},
                         {"amount", DataType::kFloat64},
                         {"created", DataType::kDate}});
}

TEST(SfFilterTest, NoneRanksEveryPair) {
  SimilarityFloodingOptions opt;
  opt.filter = SfFilter::kNone;
  MatchResult r = SimilarityFloodingMatcher(opt).Match(Src(), Tgt());
  EXPECT_EQ(r.size(), 9u);
}

TEST(SfFilterTest, StableMarriageIsOneToOne) {
  SimilarityFloodingOptions opt;
  opt.filter = SfFilter::kStableMarriage;
  MatchResult r = SimilarityFloodingMatcher(opt).Match(Src(), Tgt());
  EXPECT_EQ(r.size(), 3u);
  std::set<std::string> srcs, tgts;
  for (const Match& m : r.matches()) {
    EXPECT_TRUE(srcs.insert(m.source.column).second);
    EXPECT_TRUE(tgts.insert(m.target.column).second);
    // Identical schemata: the stable assignment is the identity.
    EXPECT_EQ(m.source.column, m.target.column);
  }
}

TEST(SfFilterTest, StableMarriageHasNoBlockingPair) {
  SimilarityFloodingOptions none;
  none.filter = SfFilter::kNone;
  MatchResult all = SimilarityFloodingMatcher(none).Match(Src(), Tgt());
  auto sim = [&](const std::string& s, const std::string& t) {
    for (const Match& m : all.matches()) {
      if (m.source.column == s && m.target.column == t) return m.score;
    }
    return 0.0;
  };
  SimilarityFloodingOptions opt;
  opt.filter = SfFilter::kStableMarriage;
  MatchResult r = SimilarityFloodingMatcher(opt).Match(Src(), Tgt());
  // No two selected pairs (s1,t1),(s2,t2) where both s1 prefers t2 and
  // t2 prefers s1 (classic stability check).
  for (const Match& m1 : r.matches()) {
    for (const Match& m2 : r.matches()) {
      if (m1.SamePair(m2)) continue;
      bool s1_prefers_t2 =
          sim(m1.source.column, m2.target.column) > m1.score;
      bool t2_prefers_s1 =
          sim(m1.source.column, m2.target.column) > m2.score;
      EXPECT_FALSE(s1_prefers_t2 && t2_prefers_s1)
          << m1.source.column << " & " << m2.target.column;
    }
  }
}

TEST(SfFilterTest, StableMarriageUnevenSides) {
  Table src = MakeTable("s", {{"a", DataType::kString},
                              {"b", DataType::kInt64},
                              {"c", DataType::kFloat64},
                              {"d", DataType::kDate}});
  Table tgt = MakeTable("t", {{"a", DataType::kString},
                              {"b", DataType::kInt64}});
  SimilarityFloodingOptions opt;
  opt.filter = SfFilter::kStableMarriage;
  MatchResult r = SimilarityFloodingMatcher(opt).Match(src, tgt);
  EXPECT_EQ(r.size(), 2u);  // bounded by the smaller side
}

TEST(SfFilterTest, PerfectionistSubsetOfStable) {
  SimilarityFloodingOptions perf;
  perf.filter = SfFilter::kPerfectionist;
  MatchResult r = SimilarityFloodingMatcher(perf).Match(Src(), Tgt());
  EXPECT_LE(r.size(), 3u);
  for (const Match& m : r.matches()) {
    EXPECT_EQ(m.source.column, m.target.column);
  }
}

TEST(SfFilterTest, PerfectionistOnAmbiguousSchemaIsSelective) {
  // Two near-identical source columns compete for one target: the
  // perfectionist filter keeps at most one of them.
  Table src = MakeTable("s", {{"name_1", DataType::kString},
                              {"name_2", DataType::kString}});
  Table tgt = MakeTable("t", {{"name_1", DataType::kString}});
  SimilarityFloodingOptions perf;
  perf.filter = SfFilter::kPerfectionist;
  MatchResult r = SimilarityFloodingMatcher(perf).Match(src, tgt);
  EXPECT_LE(r.size(), 1u);
}

}  // namespace
}  // namespace valentine
