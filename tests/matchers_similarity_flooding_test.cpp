#include "matchers/similarity_flooding.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

Table MakeTable(const std::string& name,
                std::vector<std::pair<std::string, DataType>> cols) {
  Table t(name);
  for (auto& [col_name, type] : cols) {
    Column c(col_name, type);
    c.Append(Value::String("v"));
    EXPECT_TRUE(t.AddColumn(std::move(c)).ok());
  }
  return t;
}

TEST(SimilarityFloodingTest, IdenticalSchemataMatchPerfectly) {
  Table src = MakeTable("s", {{"id", DataType::kInt64},
                              {"name", DataType::kString},
                              {"price", DataType::kFloat64}});
  Table tgt = MakeTable("t", {{"id", DataType::kInt64},
                              {"name", DataType::kString},
                              {"price", DataType::kFloat64}});
  MatchResult r = SimilarityFloodingMatcher().Match(src, tgt);
  ASSERT_EQ(r.size(), 9u);
  // The three identity pairs must rank in the top three.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r[i].source.column, r[i].target.column) << i;
  }
}

TEST(SimilarityFloodingTest, TypeStructureHelpsDisambiguation) {
  // Names are unhelpful; types disambiguate through flooding.
  Table src = MakeTable("s", {{"aaa", DataType::kInt64},
                              {"bbb", DataType::kString}});
  Table tgt = MakeTable("t", {{"xxx", DataType::kInt64},
                              {"yyy", DataType::kString}});
  MatchResult r = SimilarityFloodingMatcher().Match(src, tgt);
  double same_type_score = 0.0;
  double cross_type_score = 0.0;
  for (const Match& m : r.matches()) {
    bool same_type = (m.source.column == "aaa") == (m.target.column == "xxx");
    if (same_type) {
      same_type_score += m.score;
    } else {
      cross_type_score += m.score;
    }
  }
  EXPECT_GT(same_type_score, cross_type_score);
}

TEST(SimilarityFloodingTest, ScoresNormalizedToUnitMax) {
  Table src = MakeTable("s", {{"alpha", DataType::kString},
                              {"beta", DataType::kInt64}});
  Table tgt = MakeTable("t", {{"alpha", DataType::kString},
                              {"gamma", DataType::kInt64}});
  MatchResult r = SimilarityFloodingMatcher().Match(src, tgt);
  for (const Match& m : r.matches()) {
    EXPECT_GE(m.score, 0.0);
    EXPECT_LE(m.score, 1.0 + 1e-9);
  }
}

TEST(SimilarityFloodingTest, ConvergesWithinIterationBudget) {
  SimilarityFloodingOptions opt;
  opt.max_iterations = 500;
  opt.epsilon = 1e-8;
  Table src = MakeTable("s", {{"a", DataType::kInt64},
                              {"b", DataType::kString},
                              {"c", DataType::kFloat64},
                              {"d", DataType::kDate}});
  Table tgt = src;
  tgt.set_name("t");
  MatchResult r = SimilarityFloodingMatcher(opt).Match(src, tgt);
  EXPECT_EQ(r.size(), 16u);
  EXPECT_EQ(r[0].source.column, r[0].target.column);
}

// All four fixpoint formulae produce valid rankings.
class SfFormulaTest : public ::testing::TestWithParam<SfFormula> {};

TEST_P(SfFormulaTest, ProducesCompleteBoundedRanking) {
  SimilarityFloodingOptions opt;
  opt.formula = GetParam();
  Table src = MakeTable("s", {{"customer", DataType::kString},
                              {"amount", DataType::kFloat64}});
  Table tgt = MakeTable("t", {{"client", DataType::kString},
                              {"total", DataType::kFloat64}});
  MatchResult r = SimilarityFloodingMatcher(opt).Match(src, tgt);
  EXPECT_EQ(r.size(), 4u);
  for (const Match& m : r.matches()) {
    EXPECT_GE(m.score, 0.0);
    EXPECT_LE(m.score, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Formulae, SfFormulaTest,
                         ::testing::Values(SfFormula::kBasic, SfFormula::kA,
                                           SfFormula::kB, SfFormula::kC));

TEST(SimilarityFloodingTest, SingleColumnTables) {
  Table src = MakeTable("s", {{"only", DataType::kString}});
  Table tgt = MakeTable("t", {{"only", DataType::kString}});
  MatchResult r = SimilarityFloodingMatcher().Match(src, tgt);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_GT(r[0].score, 0.5);
}

TEST(SimilarityFloodingTest, MetadataDeclared) {
  SimilarityFloodingMatcher m;
  EXPECT_EQ(m.Name(), "SimilarityFlooding");
  EXPECT_EQ(m.Category(), MatcherCategory::kSchemaBased);
}

}  // namespace
}  // namespace valentine
