// Executable paper claims: each test pins one qualitative finding of
// the paper (Sections VII & IX) at reduced scale, so the reproduction
// stays verified by ctest as the code evolves. Absolute numbers are not
// asserted — orderings and regimes are.

#include <gtest/gtest.h>

#include "datasets/ing.h"
#include "datasets/magellan.h"
#include "datasets/tpcdi.h"
#include "harness/runner.h"
#include "matchers/coma.h"
#include "matchers/cupid.h"
#include "matchers/distribution_based.h"
#include "matchers/jaccard_levenshtein.h"
#include "matchers/similarity_flooding.h"
#include "metrics/metrics.h"

namespace valentine {
namespace {

double Recall(const ColumnMatcher& m, const DatasetPair& p) {
  return RecallAtGroundTruth(m.Match(p.source, p.target), p.ground_truth);
}

DatasetPair Fabricate(Scenario scenario, bool noisy_schema,
                      bool noisy_instances, uint64_t seed) {
  Table original = MakeTpcdiProspect(150, 77);
  FabricationOptions fab;
  fab.scenario = scenario;
  fab.row_overlap = 0.5;
  fab.column_overlap = 0.5;
  fab.noisy_schema = noisy_schema;
  fab.noisy_instances = noisy_instances;
  fab.seed = seed;
  return FabricateDatasetPair(original, fab).ValueOrDie();
}

// §VII-A1, "Expected Results": with verbatim schemata all schema-based
// methods place the correct matches at the top.
TEST(PaperClaims, VerbatimSchemataAreEasyForSchemaMethods) {
  for (Scenario s : {Scenario::kUnionable, Scenario::kViewUnionable,
                     Scenario::kJoinable}) {
    DatasetPair p = Fabricate(s, false, false, 1);
    EXPECT_GE(Recall(CupidMatcher(), p), 0.9) << ScenarioName(s);
    EXPECT_GE(Recall(SimilarityFloodingMatcher(), p), 0.9)
        << ScenarioName(s);
    EXPECT_GE(Recall(ComaMatcher(), p), 0.9) << ScenarioName(s);
  }
}

// §VII-A1, "Interesting Outcomes": noisy schemata leave no schema-based
// method with consistently good results.
TEST(PaperClaims, NoisySchemataDegradeEverySchemaMethod) {
  double cupid_total = 0.0;
  double sf_total = 0.0;
  double coma_total = 0.0;
  int n = 0;
  for (uint64_t seed : {2, 3, 4}) {
    DatasetPair p = Fabricate(Scenario::kUnionable, true, false, seed);
    cupid_total += Recall(CupidMatcher(), p);
    sf_total += Recall(SimilarityFloodingMatcher(), p);
    coma_total += Recall(ComaMatcher(), p);
    ++n;
  }
  EXPECT_LT(cupid_total / n, 0.85);
  EXPECT_LT(sf_total / n, 0.85);
  EXPECT_LT(coma_total / n, 0.85);
}

// §VII-A2: instance-based methods are very effective on joinable pairs.
TEST(PaperClaims, JoinablePairsEasyForInstanceMethods) {
  DatasetPair p = Fabricate(Scenario::kJoinable, true, false, 5);
  JaccardLevenshteinOptions o;
  o.max_distinct_values = 100;
  EXPECT_GE(Recall(JaccardLevenshteinMatcher(o), p), 0.9);
  EXPECT_GE(Recall(DistributionBasedMatcher(), p), 0.9);
}

// §VII-A2: view-unionable is considerably harder than unionable for
// instance-based methods (no row overlap to lean on).
TEST(PaperClaims, ViewUnionableHarderThanUnionableForInstances) {
  double union_total = 0.0;
  double view_total = 0.0;
  JaccardLevenshteinOptions o;
  o.threshold = 0.0;
  o.max_distinct_values = 100;
  JaccardLevenshteinMatcher jl(o);
  for (uint64_t seed : {6, 7, 8}) {
    union_total += Recall(jl, Fabricate(Scenario::kUnionable, false, false,
                                        seed));
    view_total += Recall(jl, Fabricate(Scenario::kViewUnionable, false,
                                       false, seed));
  }
  EXPECT_GT(union_total, view_total);
}

// §VII-A2: semantically-joinable is harder than joinable for
// instance-based methods (noise breaks the instance sets apart).
TEST(PaperClaims, SemanticallyJoinableHarderThanJoinable) {
  JaccardLevenshteinOptions o;
  o.threshold = 0.0;
  o.max_distinct_values = 100;
  JaccardLevenshteinMatcher jl(o);
  double join_total = 0.0;
  double sem_total = 0.0;
  for (uint64_t seed : {9, 10, 11}) {
    join_total += Recall(jl, Fabricate(Scenario::kJoinable, false, false,
                                       seed));
    sem_total += Recall(jl, Fabricate(Scenario::kSemanticallyJoinable,
                                      false, true, seed));
  }
  EXPECT_GT(join_total, sem_total);
}

// Table III: on Magellan-style pairs (same column names), schema-based
// methods are perfect while the distribution-based matcher is not.
TEST(PaperClaims, MagellanSchemaPerfectInstanceImperfect) {
  auto pairs = MakeMagellanPairs(150, 5);
  double coma_total = 0.0;
  double dist_total = 0.0;
  for (const auto& p : pairs) {
    coma_total += Recall(ComaMatcher(), p);
    dist_total += Recall(DistributionBasedMatcher(), p);
  }
  EXPECT_DOUBLE_EQ(coma_total / pairs.size(), 1.0);
  EXPECT_LT(dist_total / pairs.size(), 1.0);
}

// Table III / §VII-B3: the distribution-based method wins on both ING
// pairs.
TEST(PaperClaims, DistributionBasedBestOnIngData) {
  for (int which : {1, 2}) {
    DatasetPair p = which == 1 ? MakeIngPair1(250, 11)
                               : MakeIngPair2(250, 12);
    DistributionBasedOptions dopt;
    dopt.phase1_threshold = 0.2;
    dopt.phase2_threshold = 0.2;
    double dist = Recall(DistributionBasedMatcher(dopt), p);
    double cupid = Recall(CupidMatcher(), p);
    double sf = Recall(SimilarityFloodingMatcher(), p);
    EXPECT_GT(dist, cupid) << "ING#" << which;
    EXPECT_GT(dist, sf) << "ING#" << which;
  }
}

// §VII-B3: COMA's 1-1 selection cannot express ING#2's n-m ground
// truth; disabling the selection (ranking all pairs) recovers matches.
TEST(PaperClaims, ComaSelectionCollapsesOnNmGroundTruth) {
  DatasetPair p = MakeIngPair2(250, 12);
  ComaOptions one;
  one.strategy = ComaStrategy::kInstances;
  one.selection = ComaSelection::kOneToOne;
  ComaOptions all = one;
  all.selection = ComaSelection::kAll;
  double with_selection = Recall(ComaMatcher(one), p);
  double without_selection = Recall(ComaMatcher(all), p);
  EXPECT_LT(with_selection, 0.7);  // the collapse
  EXPECT_GT(without_selection, with_selection);
}

// §IX "One size does not fit all": the best method on fabricated noisy
// pairs (COMA) is not the best on the ING data (distribution-based).
// COMA runs with the 1-1 selection here, the COMA 3.0 behaviour the
// paper's ING experiments actually observed.
TEST(PaperClaims, NoSingleWinnerAcrossDataSources) {
  DatasetPair fabricated = Fabricate(Scenario::kUnionable, true, true, 13);
  DatasetPair ing = MakeIngPair2(250, 12);
  ComaOptions copt;
  copt.strategy = ComaStrategy::kInstances;
  copt.selection = ComaSelection::kOneToOne;
  ComaMatcher coma(copt);
  DistributionBasedOptions dopt;
  dopt.phase1_threshold = 0.2;
  dopt.phase2_threshold = 0.2;
  DistributionBasedMatcher dist(dopt);
  EXPECT_GT(Recall(coma, fabricated), Recall(dist, fabricated) - 0.15);
  EXPECT_GT(Recall(dist, ing), Recall(coma, ing));
}

}  // namespace
}  // namespace valentine
