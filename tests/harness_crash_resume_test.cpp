// End-to-end crash-resume contract: a campaign SIGKILLed mid-flight is
// resumed from its outcome journal and produces a final report
// byte-identical to an uninterrupted run. Every campaign (child and
// parent alike) runs under an injected FakeClock, so the reports are
// compared unmodified — no wall-clock field scrubbing. The kill is a
// real one — fork(), run the campaign in the child with a decorator
// that raises SIGKILL after N successful matches, then resume in the
// parent against whatever the torn journal holds.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/campaign.h"
#include "harness/journal.h"
#include "harness/json_export.h"
#include "matchers/matcher.h"
#include "obs/clock.h"

namespace valentine {
namespace {

std::vector<DatasetPair> SmallSuite() {
  Table original = MakeTpcdiProspect(25, 4242);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.schema_noise_variants = false;
  opt.instance_noise_variants = false;
  return BuildFabricatedSuite(original, opt);
}

MethodFamily SmallFamily() {
  MethodFamily family = JaccardLevenshteinFamily();
  family.grid.resize(2);
  return family;
}

// Replayed triples skip Prepare entirely, so cache counters differ
// between a resumed and an uninterrupted campaign by design — but those
// live on the MetricsRegistry, not the report, so the reports compare
// byte-for-byte as-is.

/// Delegates until `budget` successful matches have been spent, then
/// raises SIGKILL — the hardest kill there is: no destructors, no
/// flushes beyond what the journal already forced line-by-line.
class KillAfterMatcher : public ColumnMatcher {
 public:
  KillAfterMatcher(std::shared_ptr<const ColumnMatcher> inner,
                   std::shared_ptr<std::atomic<int>> budget)
      : inner_(std::move(inner)), budget_(std::move(budget)) {}

  std::string Name() const override { return inner_->Name(); }
  MatcherCategory Category() const override { return inner_->Category(); }
  std::vector<MatchType> Capabilities() const override {
    return inner_->Capabilities();
  }
  [[nodiscard]] Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const override {
    if (budget_->fetch_sub(1) <= 0) {
      raise(SIGKILL);
    }
    return inner_->Match(source, target, context);
  }

 private:
  std::shared_ptr<const ColumnMatcher> inner_;
  std::shared_ptr<std::atomic<int>> budget_;
};

MethodFamily KillAfter(const MethodFamily& base, int budget) {
  auto shared_budget = std::make_shared<std::atomic<int>>(budget);
  MethodFamily wrapped{base.name, {}};
  for (const ConfiguredMatcher& cm : base.grid) {
    wrapped.grid.push_back(
        {cm.description,
         std::make_shared<KillAfterMatcher>(cm.matcher, shared_budget)});
  }
  return wrapped;
}

TEST(CrashResumeTest, SigkilledCampaignResumesToByteIdenticalReport) {
  std::vector<DatasetPair> suite = SmallSuite();

  // All runs measure time on a non-advancing fake clock: every timing
  // field is deterministically zero, so the reports compare unmodified.
  FakeClock fake_clock;

  // The reference: an uninterrupted, journal-free run.
  CampaignOptions plain;
  plain.num_threads = 2;
  plain.clock = &fake_clock;
  std::string expected =
      ToJson(RunCampaignOnSuite(suite, {SmallFamily()}, plain));

  std::string journal_path = ::testing::TempDir() + "valentine_crash_" +
                             std::to_string(getpid()) + ".jsonl";
  std::remove(journal_path.c_str());
  CampaignOptions journaled = plain;
  journaled.journal_path = journal_path;

  pid_t child = fork();
  ASSERT_NE(child, -1) << "fork failed";
  if (child == 0) {
    // In the child: die after 5 successful matches, mid-campaign.
    (void)RunCampaignOnSuite(suite, {KillAfter(SmallFamily(), 5)}, journaled);
    _exit(0);  // unreachable when the kill fires
  }

  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child was expected to die mid-run";
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  // The journal holds a strict subset of the campaign (and possibly a
  // torn final line).
  auto index = JournalIndex::Load(journal_path);
  ASSERT_TRUE(index.ok());
  EXPECT_GT(index->size(), 0u);
  EXPECT_LT(index->size(), 12u * 2u);  // pairs x configs

  // Resume in the parent: completed triples replay, the rest execute.
  CampaignReport resumed =
      RunCampaignOnSuite(suite, {SmallFamily()}, journaled);
  EXPECT_EQ(ToJson(resumed), expected);
  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace valentine
