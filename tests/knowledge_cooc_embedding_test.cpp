#include "knowledge/cooc_embedding.h"

#include <gtest/gtest.h>

#include "core/rng.h"
#include "matchers/embdi.h"
#include "metrics/metrics.h"

namespace valentine {
namespace {

std::vector<std::vector<std::string>> TopicCorpus() {
  std::vector<std::vector<std::string>> sentences;
  for (int i = 0; i < 150; ++i) {
    sentences.push_back({"cat", "dog", "pet", "fur", "cat", "dog"});
    sentences.push_back({"sql", "table", "query", "index", "sql", "table"});
  }
  return sentences;
}

TEST(CoocEmbeddingTest, BuildsVocabulary) {
  CoocOptions o;
  o.dimensions = 16;
  CoocEmbedding model(o);
  model.Train(TopicCorpus());
  EXPECT_EQ(model.vocab_size(), 8u);
  EXPECT_NE(model.Vector("cat"), nullptr);
  EXPECT_EQ(model.Vector("banana"), nullptr);
  EXPECT_EQ(model.Vector("cat")->size(), 16u);
}

TEST(CoocEmbeddingTest, CooccurringWordsCloser) {
  CoocOptions o;
  o.dimensions = 32;
  CoocEmbedding model(o);
  model.Train(TopicCorpus());
  double within = CosineSimilarity(*model.Vector("cat"), *model.Vector("dog"));
  double across = CosineSimilarity(*model.Vector("cat"), *model.Vector("sql"));
  EXPECT_GT(within, across);
}

TEST(CoocEmbeddingTest, Deterministic) {
  auto corpus = TopicCorpus();
  CoocOptions o;
  o.dimensions = 16;
  CoocEmbedding m1(o);
  CoocEmbedding m2(o);
  m1.Train(corpus);
  m2.Train(corpus);
  EXPECT_EQ(*m1.Vector("cat"), *m2.Vector("cat"));
}

TEST(CoocEmbeddingTest, VectorsUnitNorm) {
  CoocEmbedding model;
  model.Train(TopicCorpus());
  double norm = 0.0;
  for (float x : *model.Vector("pet")) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(CoocEmbeddingTest, MinCountFilters) {
  CoocOptions o;
  o.min_count = 5;
  CoocEmbedding model(o);
  model.Train({{"frequent", "frequent", "frequent", "frequent", "frequent",
                "rare"}});
  EXPECT_NE(model.Vector("frequent"), nullptr);
  EXPECT_EQ(model.Vector("rare"), nullptr);
}

TEST(CoocEmbeddingTest, EmptyCorpusSafe) {
  CoocEmbedding model;
  model.Train({});
  EXPECT_EQ(model.vocab_size(), 0u);
}

TEST(EmbdiPpmiTest, PpmiTrainingProducesComparableMatcher) {
  // Both trainers must solve the easy shared-pool case.
  Rng rng(3);
  auto make = [&](const std::string& name, const std::string& c1,
                  const std::string& c2) {
    Table t(name);
    for (const std::string& col : {c1, c2}) {
      Column c(col, DataType::kString);
      for (int r = 0; r < 60; ++r) {
        c.Append(Value::String("pool_" + col.substr(col.size() - 1) + "_" +
                               std::to_string(rng.Index(10))));
      }
      (void)t.AddColumn(std::move(c));
    }
    return t;
  };
  // Column name suffix determines the pool: a/x share, b/y share.
  Table src = make("s", "col_a", "col_b");
  Table tgt = make("t", "col2_a", "col2_b");

  for (EmbdiTraining training :
       {EmbdiTraining::kWord2Vec, EmbdiTraining::kPpmi}) {
    EmbdiOptions o;
    o.training = training;
    o.max_rows = 60;
    o.walks_per_node = 2;
    o.sentence_length = 15;
    o.dimensions = 24;
    o.epochs = 3;
    MatchResult r = EmbdiMatcher(o).Match(src, tgt);
    ASSERT_EQ(r.size(), 4u);
    double correct = 0.0;
    double crossed = 0.0;
    for (const Match& m : r.matches()) {
      bool ok = m.source.column.back() == m.target.column.back();
      (ok ? correct : crossed) += m.score;
    }
    EXPECT_GT(correct, crossed)
        << (training == EmbdiTraining::kWord2Vec ? "word2vec" : "ppmi");
  }
}

}  // namespace
}  // namespace valentine
