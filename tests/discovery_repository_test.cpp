// Tests for TableRepository (discovery/repository.h): validation,
// copy-on-write snapshot semantics, store accounting, and a
// tsan-labelled churn-vs-query race check (snapshots taken by readers
// must stay safe while a writer mutates its own copy).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "discovery/repository.h"
#include "io/artifact_store.h"
#include "obs/metrics.h"
#include "scaling/lsh_index.h"

namespace valentine {
namespace {

Table SmallTable(const std::string& name, int seed) {
  Table t = MakeOpenDataTable(40, 1000 + seed);
  t.set_name(name);
  return t;
}

RepositoryOptions DefaultOptions() {
  RepositoryOptions opt;
  opt.signature_size = LshOptions().bands * LshOptions().rows_per_band;
  return opt;
}

TEST(TableRepositoryTest, ValidatesRegistrations) {
  TableRepository repo(DefaultOptions());

  Table empty("empty");
  Status s = repo.AddTable(empty).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("has no columns"), std::string::npos);

  ASSERT_TRUE(repo.AddTable(SmallTable("t", 1)).ok());
  s = repo.AddTable(SmallTable("t", 2)).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("duplicate table name 't'"), std::string::npos);

  Table reserved(std::string("bad\x1fname"));
  Column c("c", DataType::kString);
  c.Append(Value::String("v"));
  ASSERT_TRUE(reserved.AddColumn(std::move(c)).ok());
  s = repo.AddTable(std::move(reserved)).status();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("reserved separator"), std::string::npos);

  EXPECT_EQ(repo.RemoveTable("absent").code(), StatusCode::kNotFound);
}

TEST(TableRepositoryTest, EntriesCarryDerivedMetadata) {
  TableRepository repo(DefaultOptions());
  auto entry = repo.AddTable(SmallTable("t", 1));
  ASSERT_TRUE(entry.ok());
  const RegisteredTable& e = **entry;
  ASSERT_NE(e.artifact, nullptr);
  EXPECT_EQ(e.artifact->columns.size(), e.table.num_columns());
  EXPECT_EQ(e.name_tokens.size(), e.table.num_columns());
  EXPECT_EQ(e.canon_names.size(), e.table.num_columns());
  EXPECT_EQ(repo.Find("t").get(), &e);
  EXPECT_EQ(repo.Find("absent"), nullptr);
}

TEST(TableRepositoryTest, CopyIsAnIndependentSnapshot) {
  TableRepository original(DefaultOptions());
  ASSERT_TRUE(original.AddTable(SmallTable("a", 1)).ok());
  ASSERT_TRUE(original.AddTable(SmallTable("b", 2)).ok());

  TableRepository snapshot = original;
  // The snapshot shares entry storage (no rebuild)...
  EXPECT_EQ(snapshot.Find("a").get(), original.Find("a").get());

  // ...but mutations are private to each side.
  ASSERT_TRUE(snapshot.AddTable(SmallTable("c", 3)).ok());
  ASSERT_TRUE(snapshot.RemoveTable("a").ok());
  EXPECT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(original.size(), 2u);
  EXPECT_TRUE(original.Contains("a"));
  EXPECT_FALSE(original.Contains("c"));
  EXPECT_FALSE(snapshot.Contains("a"));

  // Entry handles outlive the repositories that minted them.
  std::shared_ptr<const RegisteredTable> held = original.Find("a");
  ASSERT_TRUE(original.RemoveTable("a").ok());
  EXPECT_EQ(held->table.name(), "a");

  // Removal keeps registration order and lookups consistent for the
  // surviving entries.
  EXPECT_EQ(snapshot.entry(0).table.name(), "b");
  EXPECT_EQ(snapshot.entry(1).table.name(), "c");
  EXPECT_EQ(snapshot.Find("c").get(), &snapshot.entry(1));
}

TEST(TableRepositoryTest, StoreRoundTripSkipsRebuilds) {
  std::string dir = ::testing::TempDir() + "/valentine_repository_store_test";
  std::filesystem::remove_all(dir);
  ArtifactStore store(dir);
  MetricsRegistry metrics;
  RepositoryOptions opt = DefaultOptions();
  opt.store = &store;
  opt.metrics = &metrics;

  TableRepository first(opt);
  ASSERT_TRUE(first.AddTable(SmallTable("t", 1)).ok());
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_store_total",
                            {{"event", "build"}})
                ->value(),
            1u);
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_store_total",
                            {{"event", "hit"}})
                ->value(),
            0u);

  // A second repository over the same store resolves the same table by
  // content fingerprint: hit, no rebuild, and profiles come along.
  TableRepository second(opt);
  auto entry = second.AddTable(SmallTable("t", 1));
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_store_total",
                            {{"event", "hit"}})
                ->value(),
            1u);
  EXPECT_EQ(metrics
                .CounterFor("valentine_discovery_store_total",
                            {{"event", "build"}})
                ->value(),
            1u);
  EXPECT_NE((*entry)->profile, nullptr);
}

// tsan-labelled (VALENTINE_TSAN_TESTS): a writer mutating its own
// copy-on-write clone must never race readers iterating previously
// published snapshots — the serving layer's rebuild pattern
// (DiscoveryService publishes each rebuilt snapshot under its own
// registry lock; entry storage itself is shared lock-free).
TEST(TableRepositoryTest, SnapshotReadersNeverRaceCloneWriter) {
  auto published = std::make_shared<const TableRepository>([] {
    TableRepository repo(DefaultOptions());
    for (int i = 0; i < 8; ++i) {
      (void)repo.AddTable(SmallTable("seed_" + std::to_string(i), i));
    }
    return repo;
  }());

  std::atomic<bool> stop{false};
  // Publication slot: the lock only covers the shared_ptr handoff, so
  // every read of repository state happens on an unlocked snapshot.
  std::mutex current_mu;
  std::shared_ptr<const TableRepository> current = published;
  auto load_current = [&] {
    std::lock_guard<std::mutex> lock(current_mu);
    return current;
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      size_t touched = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const TableRepository> snap = load_current();
        for (size_t i = 0; i < snap->size(); ++i) {
          touched += snap->entry(i).artifact->columns.size();
        }
        std::shared_ptr<const RegisteredTable> e = snap->Find("seed_0");
        if (e != nullptr) touched += e->canon_names.size();
      }
      EXPECT_GT(touched, 0u);
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < 40; ++i) {
      TableRepository next = *load_current();
      std::string churn = "churn_" + std::to_string(i);
      ASSERT_TRUE(next.AddTable(SmallTable(churn, 100 + i)).ok());
      if (i % 3 == 2) {
        ASSERT_TRUE(next.RemoveTable(churn).ok());
      }
      auto replacement =
          std::make_shared<const TableRepository>(std::move(next));
      std::lock_guard<std::mutex> lock(current_mu);
      current = std::move(replacement);
    }
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GE(load_current()->size(), 8u);
}

}  // namespace
}  // namespace valentine
