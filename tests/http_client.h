#ifndef VALENTINE_TESTS_HTTP_CLIENT_H_
#define VALENTINE_TESTS_HTTP_CLIENT_H_

// Minimal blocking HTTP/1.1 client for exercising the serving daemon
// from tests and stress tools. One request per connection
// (Connection: close), response read to EOF — deliberately the
// simplest client that can express every contract the server makes:
// golden bodies, error envelopes, Retry-After on sheds, torn requests
// (via SendRaw). Not a general client; never use it in src/.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace valentine {
namespace serve {
namespace testing {

struct HttpClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-cased names
  std::string body;

  std::string Header(const std::string& lower_name) const {
    for (const auto& [name, value] : headers) {
      if (name == lower_name) return value;
    }
    return "";
  }
};

namespace internal {

inline int ConnectTo(const std::string& host, uint16_t port,
                     int timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

inline bool SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

inline std::string RecvAll(int fd) {
  std::string out;
  char buf[8192];
  while (true) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

inline Result<HttpClientResponse> ParseResponse(const std::string& raw) {
  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::ParseError("no header terminator in response");
  }
  HttpClientResponse response;
  size_t line_end = raw.find("\r\n");
  std::string status_line = raw.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  size_t sp = status_line.find(' ');
  if (sp == std::string::npos || status_line.size() < sp + 4) {
    return Status::ParseError("malformed status line: " + status_line);
  }
  response.status = std::atoi(status_line.c_str() + sp + 1);
  size_t pos = line_end + 2;
  while (pos < head_end) {
    size_t eol = raw.find("\r\n", pos);
    std::string line = raw.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    size_t vstart = line.find_first_not_of(" \t", colon + 1);
    response.headers.emplace_back(
        name, vstart == std::string::npos ? "" : line.substr(vstart));
  }
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace internal

/// Opens a raw connection and returns its fd (-1 on failure) WITHOUT
/// sending anything — for occupying a server's admission queue in
/// overload tests. Caller closes.
inline int HttpConnect(const std::string& host, uint16_t port,
                       int timeout_ms = 5000) {
  return internal::ConnectTo(host, port, timeout_ms);
}

/// Sends `bytes` verbatim and returns everything the server answers
/// before closing. For torn/oversized/malformed-request tests.
inline Result<std::string> HttpSendRaw(const std::string& host, uint16_t port,
                                       const std::string& bytes,
                                       int timeout_ms = 5000) {
  int fd = internal::ConnectTo(host, port, timeout_ms);
  if (fd < 0) {
    return Status::IOError("connect to " + host + ":" +
                           std::to_string(port) + " failed");
  }
  if (!internal::SendAll(fd, bytes)) {
    close(fd);
    return Status::IOError("send failed");
  }
  std::string raw = internal::RecvAll(fd);
  close(fd);
  return raw;
}

/// One full request/response round trip (Connection: close).
inline Result<HttpClientResponse> HttpFetch(
    const std::string& host, uint16_t port, const std::string& method,
    const std::string& target, const std::string& body = "",
    int timeout_ms = 5000) {
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Connection: close\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Type: application/json\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  Result<std::string> raw = HttpSendRaw(host, port, request, timeout_ms);
  if (!raw.ok()) return raw.status();
  return internal::ParseResponse(raw.ValueOrDie());
}

}  // namespace testing
}  // namespace serve
}  // namespace valentine

#endif  // VALENTINE_TESTS_HTTP_CLIENT_H_
