// Contract tests for CandidateIndex (candidate_index.h), run against
// both implementations: nominations stay inside the repository with no
// duplicates, Remove makes a table un-nominate-able until re-Add, and a
// value-blind query degrades to flagged whole-repository nomination
// instead of a silent empty answer.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datasets/chembl.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "discovery/candidate_index.h"
#include "discovery/repository.h"
#include "fabrication/fabricator.h"

namespace valentine {
namespace {

struct IndexMaker {
  std::string name;
  std::function<std::unique_ptr<CandidateIndex>()> make;
};

std::vector<IndexMaker> AllIndexes() {
  return {
      {"lsh",
       [] {
         LshCandidateIndex::Options opt;
         return std::make_unique<LshCandidateIndex>(opt);
       }},
      {"exhaustive", [] { return std::make_unique<ExhaustiveCandidateIndex>(); }},
  };
}

class CandidateIndexContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Table prospect = MakeTpcdiProspect(150, 2026);
    FabricationOptions fab;
    fab.scenario = Scenario::kJoinable;
    fab.column_overlap = 0.4;
    fab.seed = 4;
    DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
    query_ = split.source;
    query_.set_name("query");
    Table partner = split.target;
    partner.set_name("planted_partner");
    tables_.push_back(std::move(partner));
    tables_.push_back(MakeOpenDataTable(150, 4711));
    tables_.push_back(MakeChemblAssays(150, 99));

    RepositoryOptions opt;
    opt.signature_size =
        LshOptions().bands * LshOptions().rows_per_band;
    repository_ = TableRepository(opt);
    for (const Table& t : tables_) {
      entries_.push_back(repository_.AddTable(t).ValueOrDie());
    }
  }

  std::set<std::string> RepositoryNames() const {
    std::set<std::string> names;
    for (size_t i = 0; i < repository_.size(); ++i) {
      names.insert(repository_.entry(i).table.name());
    }
    return names;
  }

  Table query_;
  std::vector<Table> tables_;
  TableRepository repository_;
  std::vector<std::shared_ptr<const RegisteredTable>> entries_;
};

TEST_F(CandidateIndexContractTest, NominationsStayInsideRepository) {
  for (const IndexMaker& maker : AllIndexes()) {
    std::unique_ptr<CandidateIndex> index = maker.make();
    EXPECT_EQ(index->Name(), maker.name);
    for (const auto& entry : entries_) {
      ASSERT_TRUE(index->Add(*entry).ok()) << maker.name;
    }
    const std::set<std::string> repo_names = RepositoryNames();
    for (DiscoveryMode mode :
         {DiscoveryMode::kJoinable, DiscoveryMode::kUnionable}) {
      RetrievedCandidates out = index->Retrieve(query_, mode, repository_);
      EXPECT_EQ(out.index, maker.name);
      for (const std::string& name : out.tables) {
        EXPECT_EQ(repo_names.count(name), 1u)
            << maker.name << " nominated unknown table " << name;
      }
    }
  }
}

TEST_F(CandidateIndexContractTest, LshNominatesThePlantedPartner) {
  // Not part of the abstract contract, but the reason the LSH index
  // exists: a fabricated joinable partner must be recalled.
  LshCandidateIndex::Options opt;
  LshCandidateIndex index(opt);
  for (const auto& entry : entries_) {
    ASSERT_TRUE(index.Add(*entry).ok());
  }
  RetrievedCandidates out =
      index.Retrieve(query_, DiscoveryMode::kJoinable, repository_);
  EXPECT_FALSE(out.fallback);
  EXPECT_EQ(out.tables.count("planted_partner"), 1u);
}

TEST_F(CandidateIndexContractTest, RemoveUnNominatesUntilReAdd) {
  for (const IndexMaker& maker : AllIndexes()) {
    std::unique_ptr<CandidateIndex> index = maker.make();
    for (const auto& entry : entries_) {
      ASSERT_TRUE(index->Add(*entry).ok()) << maker.name;
    }

    // Remove the partner from BOTH the index and the repository (the
    // engine always mutates them together; the exhaustive index
    // nominates straight from the repository).
    std::shared_ptr<const RegisteredTable> partner = entries_[0];
    ASSERT_EQ(partner->table.name(), "planted_partner");
    ASSERT_TRUE(index->Remove(*partner).ok()) << maker.name;
    TableRepository without = repository_;  // snapshot: original untouched
    ASSERT_TRUE(without.RemoveTable("planted_partner").ok());

    for (DiscoveryMode mode :
         {DiscoveryMode::kJoinable, DiscoveryMode::kUnionable}) {
      RetrievedCandidates out = index->Retrieve(query_, mode, without);
      EXPECT_EQ(out.tables.count("planted_partner"), 0u)
          << maker.name << " still nominates a removed table";
    }

    // Re-Add restores nomination as if fresh.
    TableRepository again = without;
    auto readded = again.AddTable(partner->table);
    ASSERT_TRUE(readded.ok());
    ASSERT_TRUE(index->Add(**readded).ok()) << maker.name;
    RetrievedCandidates out =
        index->Retrieve(query_, DiscoveryMode::kJoinable, again);
    EXPECT_EQ(out.tables.count("planted_partner"), 1u) << maker.name;
  }
}

TEST_F(CandidateIndexContractTest, ValueBlindQueryDegradesLoudly) {
  Table blind("blind");
  Column c("c", DataType::kString);
  for (int i = 0; i < 3; ++i) c.Append(Value::Null());
  ASSERT_TRUE(blind.AddColumn(std::move(c)).ok());

  // LSH joinable: cannot see the query at all -> flagged fallback over
  // the whole repository.
  LshCandidateIndex::Options opt;
  LshCandidateIndex lsh(opt);
  for (const auto& entry : entries_) {
    ASSERT_TRUE(lsh.Add(*entry).ok());
  }
  RetrievedCandidates out =
      lsh.Retrieve(blind, DiscoveryMode::kJoinable, repository_);
  EXPECT_TRUE(out.fallback);
  EXPECT_EQ(out.fallback_reason, "empty-query-columns");
  EXPECT_EQ(out.tables, RepositoryNames());

  // Unionable with name postings on: the name channel still works, so
  // no fallback.
  RetrievedCandidates named =
      lsh.Retrieve(blind, DiscoveryMode::kUnionable, repository_);
  EXPECT_FALSE(named.fallback);

  // Exhaustive nomination is never degraded: it already is the
  // fallback behaviour, unflagged.
  ExhaustiveCandidateIndex exhaustive;
  RetrievedCandidates all =
      exhaustive.Retrieve(blind, DiscoveryMode::kJoinable, repository_);
  EXPECT_FALSE(all.fallback);
  EXPECT_EQ(all.tables, RepositoryNames());
}

TEST_F(CandidateIndexContractTest, ExhaustiveNominatesEverythingAlways) {
  ExhaustiveCandidateIndex index;
  // Never fed a single Add: nominations come from the repository.
  for (DiscoveryMode mode :
       {DiscoveryMode::kJoinable, DiscoveryMode::kUnionable}) {
    RetrievedCandidates out = index.Retrieve(query_, mode, repository_);
    EXPECT_EQ(out.tables, RepositoryNames());
    EXPECT_FALSE(out.fallback);
  }
}

}  // namespace
}  // namespace valentine
