#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "datasets/tpcdi.h"
#include "harness/json_export.h"
#include "harness/parallel.h"

namespace valentine {
namespace {

TEST(ParallelRunnerTest, MatchesSequentialResults) {
  Table original = MakeTpcdiProspect(60, 71);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  auto suite = BuildFabricatedSuite(original, opt);
  MethodFamily family = JaccardLevenshteinFamily();

  auto sequential = RunFamilyOnSuite(family, suite);
  auto parallel = RunFamilyOnSuiteParallel(family, suite, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].pair_id, parallel[i].pair_id);
    EXPECT_DOUBLE_EQ(sequential[i].best_recall, parallel[i].best_recall);
    EXPECT_EQ(sequential[i].best_config, parallel[i].best_config);
    EXPECT_EQ(sequential[i].runs, parallel[i].runs);
  }
}

TEST(ParallelRunnerTest, SharedCupidCacheIsThreadSafe) {
  Table original = MakeTpcdiProspect(40, 72);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.3, 0.5, 0.8};
  opt.column_overlaps = {0.5};
  auto suite = BuildFabricatedSuite(original, opt);
  // A small Cupid grid shares matcher instances across worker threads.
  MethodFamily family{"Cupid", {CupidFamily().grid[0], CupidFamily().grid[50]}};
  auto outcomes = RunFamilyOnSuiteParallel(family, suite, 8);
  EXPECT_EQ(outcomes.size(), suite.size());
  for (const auto& o : outcomes) {
    EXPECT_GE(o.best_recall, 0.0);
    EXPECT_LE(o.best_recall, 1.0);
  }
}

TEST(ParallelRunnerTest, SingleThreadFallsBack) {
  Table original = MakeTpcdiProspect(30, 73);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.schema_noise_variants = false;
  opt.instance_noise_variants = false;
  auto suite = BuildFabricatedSuite(original, opt);
  auto outcomes =
      RunFamilyOnSuiteParallel(SimilarityFloodingFamily(), suite, 1);
  EXPECT_EQ(outcomes.size(), suite.size());
}

TEST(JsonExportTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("with \"quote\""), "with \\\"quote\\\"");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string("ctrl\x01") + "x"), "ctrl\\u0001x");
}

TEST(JsonExportTest, ExperimentResultRoundTrippableShape) {
  ExperimentResult r;
  r.pair_id = "pair\"1\"";
  r.scenario = Scenario::kJoinable;
  r.method = "COMA";
  r.config = "th=0";
  r.recall_at_gt = 0.75;
  r.map = 0.5;
  r.runtime_ms = 12.5;
  r.ground_truth_size = 8;
  std::string json = ToJson(r);
  EXPECT_NE(json.find("\"pair_id\":\"pair\\\"1\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\":\"Joinable\""), std::string::npos);
  EXPECT_NE(json.find("\"recall_at_gt\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"ground_truth_size\":8"), std::string::npos);
}

TEST(JsonExportTest, ArraysWellFormed) {
  std::vector<ExperimentResult> results(2);
  results[0].method = "A";
  results[1].method = "B";
  std::string json = ToJson(results);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("},{"), std::string::npos);
  EXPECT_EQ(ToJson(std::vector<ExperimentResult>{}), "[]");
}

TEST(JsonExportTest, MatchResultJson) {
  MatchResult r;
  r.Add({"s", "a"}, {"t", "b"}, 0.5);
  std::string json = ToJson(r);
  EXPECT_NE(json.find("\"source\":\"s.a\""), std::string::npos);
  EXPECT_NE(json.find("\"score\":0.5"), std::string::npos);
}

TEST(JsonExportTest, OutcomesJson) {
  FamilyPairOutcome o;
  o.family = "Cupid";
  o.pair_id = "p";
  o.scenario = Scenario::kUnionable;
  o.best_recall = 1.0;
  o.best_config = "w=0.2";
  o.total_ms = 3.5;
  o.runs = 96;
  std::string json = ToJson(std::vector<FamilyPairOutcome>{o});
  EXPECT_NE(json.find("\"family\":\"Cupid\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":96"), std::string::npos);
}

TEST(JsonExportTest, WriteFile) {
  std::string path = ::testing::TempDir() + "/valentine_results.json";
  ASSERT_TRUE(WriteJsonFile("[1,2,3]", path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "[1,2,3]");
  std::remove(path.c_str());
}

TEST(JsonExportTest, WriteFileToBadPathFails) {
  EXPECT_FALSE(WriteJsonFile("x", "/nonexistent/dir/file.json").ok());
}

}  // namespace
}  // namespace valentine
