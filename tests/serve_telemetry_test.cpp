// Tests for the request-telemetry spine (serve/telemetry.h) and its
// service/transport integration: deterministic trace ids, the JSONL
// access log (golden lines, fake-clock byte-stability), the
// byte-identity contract (responses identical with telemetry on/off),
// the /metrics golden exposition under a fake clock, /statusz and
// /tracez schemas via the mini JSON parser, span parenting from
// serve.request down to discovery stages, the configurable Retry-After,
// and the route-labelled request-level shed counter.

#include "serve/telemetry.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "http_client.h"
#include "json_mini.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve_test_util.h"

namespace valentine {
namespace serve {
namespace {

using testing::ServeTableJson;

HttpRequest MakeRequest(const std::string& method, const std::string& target,
                        const std::string& body = "",
                        const std::string& trace_header = "") {
  HttpRequest r;
  r.method = method;
  r.target = target;
  r.version = "HTTP/1.1";
  r.body = body;
  if (!trace_header.empty()) {
    r.headers.emplace_back("x-valentine-trace", trace_header);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Trace-id derivation.

TEST(ServeTelemetryTraceId, HeaderWinsElseSeededCounter) {
  ServeTelemetry::Options opt;
  opt.trace_seed = 10;
  ServeTelemetry telemetry(opt);
  EXPECT_EQ(telemetry.TraceIdFor("client-trace-7"), "client-trace-7");
  EXPECT_EQ(telemetry.TraceIdFor(""), "serve/10");
  EXPECT_EQ(telemetry.TraceIdFor(""), "serve/11");
  // A hostile oversized header is truncated, not copied wholesale.
  std::string huge(4096, 'x');
  EXPECT_EQ(telemetry.TraceIdFor(huge).size(), 128u);
}

// ---------------------------------------------------------------------------
// Access-log lines.

TEST(ServeTelemetryLog, GoldenLineFullyPopulated) {
  RequestLogEntry entry;
  entry.trace_id = "serve/1";
  entry.method = "POST";
  entry.route = "joinable";
  entry.path = "/v1/discovery/joinable";
  entry.status = 503;
  entry.bytes_in = 120;
  entry.bytes_out = 80;
  entry.queue_wait_ms = 0.25;
  entry.handler_ms = 3.5;
  entry.budget_ms = 100;
  entry.deadline_remaining_ms = 96.5;
  entry.error_code = "Cancelled";
  entry.start_ns = 1000000;
  entry.end_ns = 4500000;
  EXPECT_EQ(RenderAccessLogLine(entry),
            "{\"budget_ms\":100,\"bytes_in\":120,\"bytes_out\":80,"
            "\"deadline_remaining_ms\":96.5,\"end_ns\":4500000,"
            "\"error\":\"Cancelled\",\"handler_ms\":3.5,"
            "\"method\":\"POST\",\"path\":\"/v1/discovery/joinable\","
            "\"queue_wait_ms\":0.25,\"route\":\"joinable\","
            "\"start_ns\":1000000,\"status\":503,"
            "\"trace_id\":\"serve/1\"}");
}

TEST(ServeTelemetryLog, UnbudgetedLineOmitsRealClockFields) {
  // budget_ms / deadline_remaining_ms are the only fields derived from
  // the real steady clock; an unbudgeted request must not carry them,
  // so fake-clock runs serialize byte-stable lines.
  RequestLogEntry entry;
  entry.trace_id = "serve/1";
  entry.method = "GET";
  entry.route = "healthz";
  entry.path = "/healthz";
  entry.status = 200;
  std::string line = RenderAccessLogLine(entry);
  EXPECT_EQ(line.find("budget_ms"), std::string::npos);
  EXPECT_EQ(line.find("deadline_remaining_ms"), std::string::npos);
  EXPECT_EQ(line.find("error"), std::string::npos);
}

TEST(ServeTelemetryLog, TracezRingKeepsLastN) {
  ServeTelemetry::Options opt;
  opt.trace_buffer_capacity = 2;
  ServeTelemetry telemetry(opt);
  for (int i = 1; i <= 3; ++i) {
    RequestLogEntry entry;
    entry.trace_id = "serve/" + std::to_string(i);
    telemetry.RecordRequest(entry);
  }
  std::vector<RequestLogEntry> recent = telemetry.RecentRequests();
  ASSERT_EQ(recent.size(), 2u);  // oldest dropped
  EXPECT_EQ(recent[0].trace_id, "serve/2");
  EXPECT_EQ(recent[1].trace_id, "serve/3");
  EXPECT_EQ(telemetry.requests_logged(), 3u);
}

// ---------------------------------------------------------------------------
// Byte identity: telemetry attached vs not.

TEST(ServeTelemetryIdentity, ResponsesByteIdenticalWithTelemetryOnOff) {
  const std::vector<HttpRequest> sequence = {
      MakeRequest("GET", "/healthz"),
      MakeRequest("POST", "/v1/tables", ServeTableJson("orders", 30, 3)),
      MakeRequest("POST", "/v1/tables", ServeTableJson("billing", 30, 7)),
      MakeRequest("POST", "/v1/discovery/joinable",
                  "{\"table\":" + ServeTableJson("probe", 30, 3) + "}"),
      MakeRequest("POST", "/v1/discovery/unionable",
                  "{\"table\":" + ServeTableJson("probe", 30, 3) +
                      ",\"k\":3,\"explain\":true}"),
      MakeRequest("DELETE", "/v1/tables/billing"),
      MakeRequest("GET", "/no/such/route"),
      MakeRequest("PUT", "/healthz"),
  };

  DiscoveryService bare;

  FakeClock clock(0, 1000000);
  MetricsRegistry metrics;
  Tracer tracer(&clock);
  ServeTelemetry::Options topt;
  topt.metrics = &metrics;
  topt.tracer = &tracer;
  topt.clock = &clock;
  topt.keep_access_log_in_memory = true;
  ServeTelemetry telemetry(topt);
  ServiceOptions sopt;
  sopt.metrics = &metrics;
  sopt.tracer = &tracer;
  sopt.telemetry = &telemetry;
  DiscoveryService instrumented(sopt);

  for (const HttpRequest& request : sequence) {
    HttpResponse plain = bare.Handle(request);
    HttpResponse traced =
        HandleWithTelemetry(&instrumented, &telemetry, request, nullptr);
    EXPECT_EQ(plain.status, traced.status) << request.target;
    EXPECT_EQ(plain.body, traced.body) << request.target;
    EXPECT_EQ(plain.content_type, traced.content_type) << request.target;
  }
  // ...and the side channels did fire: every request logged + traced.
  EXPECT_EQ(telemetry.requests_logged(), sequence.size());
  EXPECT_GT(tracer.size(), sequence.size());  // request + discovery spans
}

TEST(ServeTelemetryIdentity, FakeClockAccessLogIsByteStable) {
  // Two runs of the same unbudgeted request sequence through fresh
  // service+telemetry stacks under the same FakeClock settings must
  // serialize the exact same access-log bytes.
  auto run_once = [] {
    FakeClock clock(0, 1000000);  // 1ms per read
    Tracer tracer(&clock);
    ServeTelemetry::Options topt;
    topt.tracer = &tracer;
    topt.clock = &clock;
    topt.keep_access_log_in_memory = true;
    ServeTelemetry telemetry(topt);
    ServiceOptions sopt;
    sopt.telemetry = &telemetry;
    DiscoveryService service(sopt);

    const std::vector<HttpRequest> sequence = {
        MakeRequest("GET", "/healthz"),
        MakeRequest("POST", "/v1/tables", ServeTableJson("orders", 25, 3)),
        MakeRequest("POST", "/v1/discovery/joinable",
                    "{\"table\":" + ServeTableJson("probe", 25, 3) + "}",
                    "client/trace-a"),
        MakeRequest("POST", "/v1/discovery/unionable",
                    "{\"table\":" + ServeTableJson("probe", 25, 3) + "}"),
        MakeRequest("GET", "/nowhere"),
    };
    for (const HttpRequest& request : sequence) {
      HandleWithTelemetry(&service, &telemetry, request, nullptr);
    }
    return telemetry.AccessLogText();
  };
  std::string first = run_once();
  std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Derived ids are the seeded counter; the header-provided id rides
  // through verbatim.
  EXPECT_NE(first.find("\"trace_id\":\"serve/1\""), std::string::npos);
  EXPECT_NE(first.find("\"trace_id\":\"client/trace-a\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// /metrics golden under fake clock.

TEST(ServeTelemetryMetrics, GoldenPrometheusRenderingUnderFakeClock) {
  FakeClock clock(0, 1000000);  // every read advances 1ms
  MetricsRegistry metrics;
  ServeTelemetry::Options topt;
  topt.metrics = &metrics;
  topt.clock = &clock;
  ServeTelemetry telemetry(topt);
  ServiceOptions sopt;
  sopt.metrics = &metrics;
  sopt.telemetry = &telemetry;
  DiscoveryService service(sopt);

  // Reads: ctor(0ms) → handler start(1ms) → handler end(2ms), so
  // handler_ms is exactly 1.0 and every histogram value is pinned.
  HttpResponse health =
      HandleWithTelemetry(&service, &telemetry, MakeRequest("GET", "/healthz"),
                          nullptr);
  ASSERT_EQ(health.status, 200);
  ASSERT_EQ(health.body.size(), 26u);  // bytes_out below depends on this

  EXPECT_EQ(
      metrics.RenderPrometheusText(),
      "# TYPE valentine_serve_queue_wait_ms histogram\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"0.1\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"0.5\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"1\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"5\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"10\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"50\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"100\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"500\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"1000\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"5000\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"10000\"} 1\n"
      "valentine_serve_queue_wait_ms_bucket{le=\"+Inf\"} 1\n"
      "valentine_serve_queue_wait_ms_sum 0\n"
      "valentine_serve_queue_wait_ms_count 1\n"
      "# TYPE valentine_serve_request_latency_ms histogram\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"0.1\"} 0\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"0.5\"} 0\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"1\"} 1\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"5\"} 1\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"10\"} 1\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"50\"} 1\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"100\"} 1\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"500\"} 1\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"1000\"} 1\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"5000\"} 1\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"10000\"} 1\n"
      "valentine_serve_request_latency_ms_bucket{route=\"healthz\",le=\"+Inf\"} 1\n"
      "valentine_serve_request_latency_ms_sum{route=\"healthz\"} 1\n"
      "valentine_serve_request_latency_ms_count{route=\"healthz\"} 1\n"
      "# TYPE valentine_serve_requests_total counter\n"
      "valentine_serve_requests_total{code=\"200\",route=\"healthz\"} 1\n"
      "# TYPE valentine_serve_response_bytes histogram\n"
      "valentine_serve_response_bytes_bucket{route=\"healthz\",le=\"256\"} 1\n"
      "valentine_serve_response_bytes_bucket{route=\"healthz\",le=\"1024\"} 1\n"
      "valentine_serve_response_bytes_bucket{route=\"healthz\",le=\"4096\"} 1\n"
      "valentine_serve_response_bytes_bucket{route=\"healthz\",le=\"16384\"} 1\n"
      "valentine_serve_response_bytes_bucket{route=\"healthz\",le=\"65536\"} 1\n"
      "valentine_serve_response_bytes_bucket{route=\"healthz\",le=\"262144\"} 1\n"
      "valentine_serve_response_bytes_bucket{route=\"healthz\",le=\"1048576\"} 1\n"
      "valentine_serve_response_bytes_bucket{route=\"healthz\",le=\"+Inf\"} 1\n"
      "valentine_serve_response_bytes_sum{route=\"healthz\"} 26\n"
      "valentine_serve_response_bytes_count{route=\"healthz\"} 1\n");
}

// ---------------------------------------------------------------------------
// /statusz and /tracez schemas (via the test-only mini JSON parser).

TEST(ServeTelemetryEndpoints, StatuszSchema) {
  FakeClock clock(0, 1000000);
  MetricsRegistry metrics;
  ServeTelemetry::Options topt;
  topt.metrics = &metrics;
  topt.clock = &clock;
  ServeTelemetry telemetry(topt);
  ServeTelemetry::ServerState state;
  state.running = true;
  state.workers = 4;
  state.queue_capacity = 64;
  telemetry.PublishServerState(state);
  ServiceOptions sopt;
  sopt.metrics = &metrics;
  sopt.telemetry = &telemetry;
  DiscoveryService service(sopt);

  HandleWithTelemetry(&service, &telemetry, MakeRequest("GET", "/healthz"),
                      nullptr);
  HttpResponse statusz = service.Handle(MakeRequest("GET", "/statusz"));
  ASSERT_EQ(statusz.status, 200);

  json_mini::Parser parser(statusz.body);
  json_mini::ValuePtr doc = parser.Parse();
  ASSERT_NE(doc, nullptr) << statusz.body;
  ASSERT_TRUE(doc->is_object());

  json_mini::ValuePtr build = doc->Get("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->Get("name")->string, "valentine-serve");
  EXPECT_TRUE(build->Get("version")->is_string());

  EXPECT_TRUE(doc->Get("tables")->is_number());
  EXPECT_TRUE(doc->Get("uptime_ms")->is_number());
  EXPECT_EQ(doc->Get("requests_logged")->number, 1.0);

  json_mini::ValuePtr server = doc->Get("server");
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->Get("running")->boolean);
  EXPECT_FALSE(server->Get("draining")->boolean);
  EXPECT_EQ(server->Get("workers")->number, 4.0);
  EXPECT_EQ(server->Get("queue_capacity")->number, 64.0);

  json_mini::ValuePtr admission = doc->Get("admission");
  ASSERT_NE(admission, nullptr);
  EXPECT_TRUE(admission->Get("queue_depth")->is_number());
  EXPECT_TRUE(admission->Get("connections_total")->is_number());
  EXPECT_TRUE(admission->Get("shed_total")->is_number());

  // Per-route counters: healthz got one 200, and the /statusz request
  // itself is counted before rendering.
  json_mini::ValuePtr routes = doc->Get("routes");
  ASSERT_NE(routes, nullptr);
  ASSERT_NE(routes->Get("healthz"), nullptr);
  EXPECT_EQ(routes->Get("healthz")->Get("200")->number, 1.0);
  ASSERT_NE(routes->Get("statusz"), nullptr);
  EXPECT_EQ(routes->Get("statusz")->Get("200")->number, 1.0);
}

TEST(ServeTelemetryEndpoints, TracezSchemaAndCapacity) {
  FakeClock clock(0, 1000000);
  ServeTelemetry::Options topt;
  topt.clock = &clock;
  topt.trace_buffer_capacity = 2;
  ServeTelemetry telemetry(topt);
  ServiceOptions sopt;
  sopt.telemetry = &telemetry;
  DiscoveryService service(sopt);

  for (int i = 0; i < 3; ++i) {
    HandleWithTelemetry(&service, &telemetry, MakeRequest("GET", "/healthz"),
                        nullptr);
  }
  HttpResponse tracez = service.Handle(MakeRequest("GET", "/tracez"));
  ASSERT_EQ(tracez.status, 200);

  json_mini::Parser parser(tracez.body);
  json_mini::ValuePtr doc = parser.Parse();
  ASSERT_NE(doc, nullptr) << tracez.body;
  EXPECT_EQ(doc->Get("capacity")->number, 2.0);
  json_mini::ValuePtr requests = doc->Get("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_TRUE(requests->is_array());
  ASSERT_EQ(requests->array.size(), 2u);  // ring, not history
  for (const json_mini::ValuePtr& entry : requests->array) {
    ASSERT_TRUE(entry->is_object());
    EXPECT_TRUE(entry->Get("trace_id")->is_string());
    EXPECT_EQ(entry->Get("route")->string, "healthz");
    EXPECT_EQ(entry->Get("status")->number, 200.0);
    EXPECT_TRUE(entry->Get("handler_ms")->is_number());
    EXPECT_TRUE(entry->Get("start_ns")->is_number());
  }
  // Oldest dropped: the ring holds requests 2 and 3.
  EXPECT_EQ(requests->array[0]->Get("trace_id")->string, "serve/2");
  EXPECT_EQ(requests->array[1]->Get("trace_id")->string, "serve/3");
}

// ---------------------------------------------------------------------------
// Span parenting: serve.request → discovery query → stages.

TEST(ServeTelemetrySpans, RequestSpanParentsDiscoveryStages) {
  FakeClock clock(0, 1000000);
  Tracer tracer(&clock);
  ServeTelemetry::Options topt;
  topt.tracer = &tracer;
  topt.clock = &clock;
  ServeTelemetry telemetry(topt);
  ServiceOptions sopt;
  sopt.tracer = &tracer;
  sopt.telemetry = &telemetry;
  DiscoveryService service(sopt);

  ASSERT_EQ(HandleWithTelemetry(
                &service, &telemetry,
                MakeRequest("POST", "/v1/tables",
                            ServeTableJson("orders", 25, 3)),
                nullptr)
                .status,
            200);
  ASSERT_EQ(HandleWithTelemetry(
                &service, &telemetry,
                MakeRequest("POST", "/v1/discovery/joinable",
                            "{\"table\":" + ServeTableJson("probe", 25, 3) +
                                "}",
                            "trace/abc"),
                nullptr)
                .status,
            200);

  uint64_t request_span = 0;
  for (const SpanRecord& span : tracer.Snapshot()) {
    if (span.kind == "request" && span.trace_id == "trace/abc") {
      request_span = span.span_id;
      EXPECT_EQ(span.parent_id, 0u);  // per-request trace root
    }
  }
  ASSERT_NE(request_span, 0u);

  uint64_t query_span = 0;
  size_t stage_spans = 0;
  for (const SpanRecord& span : tracer.Snapshot()) {
    if (span.trace_id != "trace/abc") continue;
    if (span.kind == "query") {
      query_span = span.span_id;
      EXPECT_EQ(span.parent_id, request_span);
    }
    if (span.kind == "stage") ++stage_spans;
  }
  EXPECT_NE(query_span, 0u) << "discovery query span not joined to the "
                               "request trace";
  EXPECT_GE(stage_spans, 3u);  // retrieve / enrich / rerank
}

// ---------------------------------------------------------------------------
// Configurable Retry-After + route-labelled request-level sheds.

TEST(ServeTelemetryShed, RetryAfterConfigurableAndShedLabelledByRoute) {
  MetricsRegistry metrics;
  ServiceOptions sopt;
  sopt.metrics = &metrics;
  sopt.retry_after_s = 7;
  DiscoveryService service(sopt);
  ASSERT_EQ(service
                .Handle(MakeRequest("POST", "/v1/tables",
                                    ServeTableJson("orders", 25, 3)))
                .status,
            200);

  CancellationToken cancelled;
  cancelled.Cancel();
  HttpResponse shed = service.Handle(
      MakeRequest("POST", "/v1/discovery/joinable",
                  "{\"table\":" + ServeTableJson("probe", 25, 3) + "}"),
      &cancelled);
  EXPECT_EQ(shed.status, 503);
  std::string retry_after;
  for (const auto& [name, value] : shed.headers) {
    if (name == "Retry-After") retry_after = value;
  }
  EXPECT_EQ(retry_after, "7");
  EXPECT_EQ(metrics.CounterValue("valentine_serve_shed_total",
                                 {{"reason", "Cancelled"},
                                  {"route", "joinable"}}),
            1u);
  // The unlabelled transport-shed series is untouched by request-level
  // sheds.
  EXPECT_EQ(metrics.CounterValue("valentine_serve_shed_total"), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end over the wire: HttpServer feeds the same spine.

TEST(ServeTelemetryServer, WireRequestsLandInAccessLogAndStatusz) {
  MetricsRegistry metrics;
  ServeTelemetry::Options topt;
  topt.metrics = &metrics;
  topt.keep_access_log_in_memory = true;
  ServeTelemetry telemetry(topt);

  ServiceOptions sopt;
  sopt.metrics = &metrics;
  sopt.telemetry = &telemetry;
  DiscoveryService service(sopt);

  ServerOptions server_opt;
  server_opt.workers = 2;
  server_opt.metrics = &metrics;
  server_opt.telemetry = &telemetry;
  HttpServer server(&service, server_opt);
  ASSERT_TRUE(server.Start().ok());

  Result<testing::HttpClientResponse> health =
      testing::HttpFetch("127.0.0.1", server.port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.ValueOrDie().status, 200);

  Result<testing::HttpClientResponse> statusz =
      testing::HttpFetch("127.0.0.1", server.port(), "GET", "/statusz");
  ASSERT_TRUE(statusz.ok());
  ASSERT_EQ(statusz.ValueOrDie().status, 200);
  server.Shutdown();

  // Both requests went through the telemetry spine with transport-truth
  // byte counts.
  EXPECT_EQ(telemetry.requests_logged(), 2u);
  std::vector<RequestLogEntry> recent = telemetry.RecentRequests();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].route, "healthz");
  EXPECT_GT(recent[0].bytes_in, 0u);    // raw wire bytes, headers included
  EXPECT_GT(recent[0].bytes_out, 26u);  // serialized wire > healthz body
  EXPECT_GE(recent[0].queue_wait_ms, 0.0);

  // /statusz (served mid-flight) saw the server running with the
  // configured shape.
  json_mini::Parser parser(statusz.ValueOrDie().body);
  json_mini::ValuePtr doc = parser.Parse();
  ASSERT_NE(doc, nullptr);
  json_mini::ValuePtr state = doc->Get("server");
  ASSERT_NE(state, nullptr);
  EXPECT_TRUE(state->Get("running")->boolean);
  EXPECT_EQ(state->Get("workers")->number, 2.0);
}

}  // namespace
}  // namespace serve
}  // namespace valentine
