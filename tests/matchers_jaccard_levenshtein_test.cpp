#include "matchers/jaccard_levenshtein.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

Column MakeStringColumn(const std::string& name,
                        std::vector<std::string> values) {
  Column c(name, DataType::kString);
  for (auto& v : values) c.Append(Value::String(std::move(v)));
  return c;
}

Table TwoColumnTable(const std::string& name, Column a, Column b) {
  Table t(name);
  EXPECT_TRUE(t.AddColumn(std::move(a)).ok());
  EXPECT_TRUE(t.AddColumn(std::move(b)).ok());
  return t;
}

TEST(JaccardLevenshteinTest, RanksOverlappingColumnFirst) {
  Table src = TwoColumnTable(
      "src", MakeStringColumn("fruit", {"apple", "pear", "plum"}),
      MakeStringColumn("city", {"boston", "denver", "austin"}));
  Table tgt = TwoColumnTable(
      "tgt", MakeStringColumn("f", {"apple", "pear", "kiwi"}),
      MakeStringColumn("c", {"boston", "miami", "dallas"}));

  JaccardLevenshteinMatcher m;
  MatchResult r = m.Match(src, tgt);
  ASSERT_EQ(r.size(), 4u);
  // fruit-f overlap 2/4 = 0.5 is the top match.
  EXPECT_EQ(r[0].source.column, "fruit");
  EXPECT_EQ(r[0].target.column, "f");
  EXPECT_DOUBLE_EQ(r[0].score, 0.5);
}

TEST(JaccardLevenshteinTest, FuzzyThresholdMatters) {
  Table src = TwoColumnTable("src",
                             MakeStringColumn("a", {"johnson", "smith"}),
                             MakeStringColumn("b", {"x", "y"}));
  Table tgt = TwoColumnTable("tgt",
                             MakeStringColumn("a2", {"jhonson", "smiht"}),
                             MakeStringColumn("b2", {"q", "r"}));
  JaccardLevenshteinOptions strict;
  strict.threshold = 0.0;
  EXPECT_DOUBLE_EQ(JaccardLevenshteinMatcher(strict).Match(src, tgt)[0].score,
                   0.0);
  JaccardLevenshteinOptions fuzzy;
  fuzzy.threshold = 0.5;
  MatchResult r = JaccardLevenshteinMatcher(fuzzy).Match(src, tgt);
  EXPECT_EQ(r[0].source.column, "a");
  EXPECT_DOUBLE_EQ(r[0].score, 1.0);
}

TEST(JaccardLevenshteinTest, AllPairsReturned) {
  Table src = TwoColumnTable("src", MakeStringColumn("a", {"1"}),
                             MakeStringColumn("b", {"2"}));
  Table tgt = TwoColumnTable("tgt", MakeStringColumn("c", {"3"}),
                             MakeStringColumn("d", {"4"}));
  MatchResult r = JaccardLevenshteinMatcher().Match(src, tgt);
  EXPECT_EQ(r.size(), 4u);  // the baseline ranks every pair
}

TEST(JaccardLevenshteinTest, DistinctCapRespected) {
  Column big("big", DataType::kString);
  for (int i = 0; i < 100; ++i) big.Append(Value::Int(i));
  Table src("src");
  ASSERT_TRUE(src.AddColumn(std::move(big)).ok());
  Table tgt = src;
  tgt.set_name("tgt");
  JaccardLevenshteinOptions opt;
  opt.max_distinct_values = 10;
  opt.threshold = 0.0;
  MatchResult r = JaccardLevenshteinMatcher(opt).Match(src, tgt);
  // With the cap, both sides keep the same first 10 distinct values.
  EXPECT_DOUBLE_EQ(r[0].score, 1.0);
}

TEST(JaccardLevenshteinTest, NullsIgnored) {
  Column a("a", DataType::kString);
  a.Append(Value::String("x"));
  a.Append(Value::Null());
  Table src("src");
  ASSERT_TRUE(src.AddColumn(std::move(a)).ok());
  Column b("b", DataType::kString);
  b.Append(Value::String("x"));
  b.Append(Value::String("x"));
  Table tgt("tgt");
  ASSERT_TRUE(tgt.AddColumn(std::move(b)).ok());
  MatchResult r = JaccardLevenshteinMatcher().Match(src, tgt);
  EXPECT_DOUBLE_EQ(r[0].score, 1.0);  // distinct sets both {"x"}
}

TEST(JaccardLevenshteinTest, MetadataDeclared) {
  JaccardLevenshteinMatcher m;
  EXPECT_EQ(m.Name(), "JaccardLevenshtein");
  EXPECT_EQ(m.Category(), MatcherCategory::kInstanceBased);
  ASSERT_EQ(m.Capabilities().size(), 1u);
  EXPECT_EQ(m.Capabilities()[0], MatchType::kValueOverlap);
}

}  // namespace
}  // namespace valentine
