#include "core/table.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

Column MakeIntColumn(const std::string& name, std::vector<int64_t> values) {
  Column c(name, DataType::kInt64);
  for (int64_t v : values) c.Append(Value::Int(v));
  return c;
}

Table MakeTestTable() {
  Table t("people");
  EXPECT_TRUE(t.AddColumn(MakeIntColumn("id", {1, 2, 3})).ok());
  Column name("name", DataType::kString);
  name.Append(Value::String("ann"));
  name.Append(Value::String("bob"));
  name.Append(Value::String("cid"));
  EXPECT_TRUE(t.AddColumn(std::move(name)).ok());
  EXPECT_TRUE(t.AddColumn(MakeIntColumn("age", {30, 40, 50})).ok());
  return t;
}

TEST(TableTest, EmptyTable) {
  Table t("empty");
  EXPECT_EQ(t.num_columns(), 0u);
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.name(), "empty");
}

TEST(TableTest, AddColumnRejectsLengthMismatch) {
  Table t("t");
  ASSERT_TRUE(t.AddColumn(MakeIntColumn("a", {1, 2})).ok());
  Status s = t.AddColumn(MakeIntColumn("b", {1, 2, 3}));
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_columns(), 1u);
}

TEST(TableTest, ColumnLookup) {
  Table t = MakeTestTable();
  EXPECT_EQ(*t.ColumnIndex("name"), 1u);
  EXPECT_FALSE(t.ColumnIndex("missing").has_value());
  ASSERT_NE(t.FindColumn("age"), nullptr);
  EXPECT_EQ(t.FindColumn("age")->name(), "age");
  EXPECT_EQ(t.FindColumn("missing"), nullptr);
}

TEST(TableTest, ColumnNamesInOrder) {
  Table t = MakeTestTable();
  std::vector<std::string> expected = {"id", "name", "age"};
  EXPECT_EQ(t.ColumnNames(), expected);
}

TEST(TableTest, ProjectSelectsAndReorders) {
  Table t = MakeTestTable();
  Table p = t.Project({2, 0});
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name(), "age");
  EXPECT_EQ(p.column(1).name(), "id");
  EXPECT_EQ(p.num_rows(), 3u);
}

TEST(TableTest, TakeRowsSelectsAndReorders) {
  Table t = MakeTestTable();
  Table r = t.TakeRows({2, 0});
  EXPECT_EQ(r.num_rows(), 2u);
  EXPECT_EQ(r.column(0)[0].int_value(), 3);
  EXPECT_EQ(r.column(0)[1].int_value(), 1);
}

TEST(TableTest, SliceRows) {
  Table t = MakeTestTable();
  Table s = t.SliceRows(1, 3);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.column(1)[0].AsString(), "bob");
}

TEST(TableTest, RenameColumn) {
  Table t = MakeTestTable();
  EXPECT_TRUE(t.RenameColumn(1, "full_name").ok());
  EXPECT_EQ(t.column(1).name(), "full_name");
  EXPECT_EQ(t.RenameColumn(99, "x").code(), StatusCode::kOutOfRange);
}

TEST(TableTest, Describe) {
  Table t = MakeTestTable();
  EXPECT_EQ(t.Describe(), "people(cols=3, rows=3)");
}

TEST(ColumnRefTest, OrderingAndToString) {
  ColumnRef a{"t1", "ca"};
  ColumnRef b{"t1", "cb"};
  ColumnRef c{"t2", "ca"};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a.ToString(), "t1.ca");
  EXPECT_EQ(a, (ColumnRef{"t1", "ca"}));
}

TEST(ColumnTest, NullCountAndDistinct) {
  Column c("x", DataType::kString);
  c.Append(Value::String("a"));
  c.Append(Value::Null());
  c.Append(Value::String("a"));
  c.Append(Value::String("b"));
  EXPECT_EQ(c.NullCount(), 1u);
  EXPECT_EQ(c.NonNullStrings().size(), 3u);
  std::vector<std::string> expected = {"a", "b"};
  EXPECT_EQ(c.DistinctStrings(), expected);
  EXPECT_EQ(c.DistinctStringSet().size(), 2u);
}

TEST(ColumnTest, NumericValuesAndFraction) {
  Column c("x", DataType::kString);
  c.Append(Value::String("1.5"));
  c.Append(Value::String("abc"));
  c.Append(Value::Int(2));
  c.Append(Value::Null());
  EXPECT_EQ(c.NumericValues().size(), 2u);
  EXPECT_DOUBLE_EQ(c.NumericFraction(), 2.0 / 3.0);
}

TEST(ColumnTest, NumericFractionEmptyColumn) {
  Column c("x", DataType::kString);
  EXPECT_DOUBLE_EQ(c.NumericFraction(), 0.0);
}

TEST(ColumnTest, TakeRows) {
  Column c = MakeIntColumn("x", {10, 20, 30});
  Column t = c.TakeRows({2, 2, 0});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].int_value(), 30);
  EXPECT_EQ(t[1].int_value(), 30);
  EXPECT_EQ(t[2].int_value(), 10);
  EXPECT_EQ(t.name(), "x");
  EXPECT_EQ(t.type(), DataType::kInt64);
}

}  // namespace
}  // namespace valentine
