#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(QuantileHistogramTest, EmptyData) {
  auto h = QuantileHistogram::Build({}, 10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.num_bins(), 0u);
}

TEST(QuantileHistogramTest, ZeroBins) {
  auto h = QuantileHistogram::Build({1.0, 2.0}, 0);
  EXPECT_TRUE(h.empty());
}

TEST(QuantileHistogramTest, MassesSumToOne) {
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) data.push_back(i * 0.5);
  auto h = QuantileHistogram::Build(data, 16);
  EXPECT_EQ(h.num_bins(), 16u);
  double total = 0.0;
  for (size_t i = 0; i < h.num_bins(); ++i) total += h.mass(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(QuantileHistogramTest, EquiDepthOnUniformData) {
  std::vector<double> data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<double>(i));
  auto h = QuantileHistogram::Build(data, 4);
  ASSERT_EQ(h.num_bins(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(h.mass(i), 0.25, 1e-9);
  // Centers increase.
  for (size_t i = 1; i < 4; ++i) EXPECT_GT(h.center(i), h.center(i - 1));
}

TEST(QuantileHistogramTest, FewerValuesThanBins) {
  auto h = QuantileHistogram::Build({5.0, 7.0}, 10);
  EXPECT_EQ(h.num_bins(), 2u);
  EXPECT_DOUBLE_EQ(h.min_value(), 5.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 7.0);
}

TEST(QuantileHistogramTest, SingleValue) {
  auto h = QuantileHistogram::Build({3.0}, 8);
  ASSERT_EQ(h.num_bins(), 1u);
  EXPECT_DOUBLE_EQ(h.center(0), 3.0);
  EXPECT_DOUBLE_EQ(h.mass(0), 1.0);
}

TEST(QuantileHistogramTest, UnsortedInputHandled) {
  auto h = QuantileHistogram::Build({9.0, 1.0, 5.0}, 3);
  EXPECT_DOUBLE_EQ(h.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 9.0);
}

TEST(ValueToPointTest, NumericStringsMapToValue) {
  EXPECT_DOUBLE_EQ(ValueToPoint("42"), 42.0);
  EXPECT_DOUBLE_EQ(ValueToPoint("-3.5"), -3.5);
}

TEST(ValueToPointTest, NonNumericDeterministicAndBounded) {
  double p1 = ValueToPoint("hello");
  double p2 = ValueToPoint("hello");
  EXPECT_DOUBLE_EQ(p1, p2);
  EXPECT_GE(p1, 0.0);
  EXPECT_LT(p1, 1e6);
  EXPECT_NE(ValueToPoint("hello"), ValueToPoint("world"));
}

TEST(ValueToPointTest, PartialNumberIsHashed) {
  // "12abc" is not fully numeric, so it gets the hash treatment.
  double p = ValueToPoint("12abc");
  EXPECT_GE(p, 0.0);
  EXPECT_LT(p, 1e6);
}

TEST(ValuesToPointsTest, MapsAll) {
  auto pts = ValuesToPoints({"1", "2", "x"});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0], 1.0);
  EXPECT_DOUBLE_EQ(pts[1], 2.0);
}

}  // namespace
}  // namespace valentine
