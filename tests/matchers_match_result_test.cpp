#include "matchers/match_result.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

MatchResult MakeResult() {
  MatchResult r;
  r.Add({"s", "a"}, {"t", "x"}, 0.5);
  r.Add({"s", "b"}, {"t", "y"}, 0.9);
  r.Add({"s", "c"}, {"t", "z"}, 0.1);
  return r;
}

TEST(MatchResultTest, SortDescending) {
  MatchResult r = MakeResult();
  r.Sort();
  EXPECT_DOUBLE_EQ(r[0].score, 0.9);
  EXPECT_DOUBLE_EQ(r[1].score, 0.5);
  EXPECT_DOUBLE_EQ(r[2].score, 0.1);
}

TEST(MatchResultTest, SortTiesDeterministic) {
  MatchResult r;
  r.Add({"s", "b"}, {"t", "y"}, 0.5);
  r.Add({"s", "a"}, {"t", "x"}, 0.5);
  r.Add({"s", "a"}, {"t", "w"}, 0.5);
  r.Sort();
  EXPECT_EQ(r[0].source.column, "a");
  EXPECT_EQ(r[0].target.column, "w");
  EXPECT_EQ(r[1].target.column, "x");
  EXPECT_EQ(r[2].source.column, "b");
}

TEST(MatchResultTest, TopK) {
  MatchResult r = MakeResult();
  r.Sort();
  auto top = r.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].score, 0.9);
  auto all = r.TopK(100);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(r.TopK(0).empty());
}

TEST(MatchResultTest, FilterBelow) {
  MatchResult r = MakeResult();
  r.FilterBelow(0.5);
  EXPECT_EQ(r.size(), 2u);
  for (const Match& m : r.matches()) EXPECT_GE(m.score, 0.5);
}

TEST(MatchResultTest, FilterBelowKeepsEqual) {
  MatchResult r;
  r.Add({"s", "a"}, {"t", "x"}, 0.5);
  r.FilterBelow(0.5);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MatchResultTest, ToStringTruncates) {
  MatchResult r = MakeResult();
  r.Sort();
  std::string s = r.ToString(2);
  EXPECT_NE(s.find("s.b -> t.y"), std::string::npos);
  EXPECT_NE(s.find("(1 more)"), std::string::npos);
}

TEST(MatchResultTest, EmptyResult) {
  MatchResult r;
  EXPECT_TRUE(r.empty());
  r.Sort();
  EXPECT_TRUE(r.TopK(5).empty());
  EXPECT_EQ(r.ToString(), "");
}

TEST(MatchTest, SamePair) {
  Match a{{"s", "a"}, {"t", "x"}, 0.1};
  Match b{{"s", "a"}, {"t", "x"}, 0.9};
  Match c{{"s", "a"}, {"t", "y"}, 0.1};
  EXPECT_TRUE(a.SamePair(b));
  EXPECT_FALSE(a.SamePair(c));
}

}  // namespace
}  // namespace valentine
