#include "harness/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "datasets/tpcdi.h"
#include "harness/campaign.h"
#include "harness/json_export.h"
#include "matchers/fault_injection.h"
#include "obs/clock.h"

namespace valentine {
namespace {

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + "valentine_journal_" + name;
  std::remove(path.c_str());
  return path;
}

JournalEntry SampleEntry() {
  JournalEntry e;
  e.family = "Fuzzy\"Family";  // embedded quote must survive escaping
  e.pair_id = "prospect_r50\x1f" "c50";
  e.config = "q=2\nlev";  // embedded newline must be escaped, not split
  e.code = StatusCode::kIOError;
  e.error = "disk \\ backslash";
  e.recall_at_gt = 1.0 / 3.0;  // needs all 17 significant digits
  e.map = 0.7071067811865476;
  e.runtime_ms = 12.25;
  e.attempts = 3;
  return e;
}

TEST(JournalEntryTest, SerializeParseRoundTripsExactly) {
  JournalEntry e = SampleEntry();
  std::string line = SerializeJournalEntry(e);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one entry, one line
  auto parsed = ParseJournalEntry(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->family, e.family);
  EXPECT_EQ(parsed->pair_id, e.pair_id);
  EXPECT_EQ(parsed->config, e.config);
  EXPECT_EQ(parsed->code, e.code);
  EXPECT_EQ(parsed->error, e.error);
  // Bit-exact doubles: resumed tie-breaks must match the original run.
  EXPECT_EQ(parsed->recall_at_gt, e.recall_at_gt);
  EXPECT_EQ(parsed->map, e.map);
  EXPECT_EQ(parsed->runtime_ms, e.runtime_ms);
  EXPECT_EQ(parsed->attempts, e.attempts);
}

TEST(JournalEntryTest, OkEntryRoundTrips) {
  JournalEntry e;
  e.family = "Coma";
  e.pair_id = "p";
  e.config = "c";
  e.recall_at_gt = 1.0;
  std::string line = SerializeJournalEntry(e);
  auto parsed = ParseJournalEntry(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->code, StatusCode::kOk);
  EXPECT_TRUE(parsed->error.empty());
  EXPECT_EQ(parsed->recall_at_gt, 1.0);
}

TEST(JournalEntryTest, TornLinesAreRejected) {
  std::string line = SerializeJournalEntry(SampleEntry());
  // A SIGKILLed writer leaves an arbitrary prefix; every strict prefix
  // must parse as "malformed", never as a truncated-but-plausible entry.
  for (size_t len = 0; len < line.size(); ++len) {
    EXPECT_FALSE(ParseJournalEntry(line.substr(0, len)).has_value()) << len;
  }
  EXPECT_FALSE(ParseJournalEntry("not json at all").has_value());
  EXPECT_FALSE(ParseJournalEntry("{\"family\":\"x\"}").has_value());
}

TEST(JournalIndexTest, MissingFileLoadsEmpty) {
  auto index = JournalIndex::Load(TempPath("missing.jsonl"));
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->size(), 0u);
  EXPECT_EQ(index->Find("f", "p", "c"), nullptr);
}

TEST(JournalIndexTest, AppendThenLoadFindsEntries) {
  std::string path = TempPath("append.jsonl");
  {
    OutcomeJournal journal(path);
    ASSERT_TRUE(journal.status().ok());
    JournalEntry e = SampleEntry();
    journal.Append(e);
    e.config = "other";
    e.recall_at_gt = 0.25;
    journal.Append(e);
    EXPECT_TRUE(journal.status().ok());
  }
  auto index = JournalIndex::Load(path);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->size(), 2u);
  JournalEntry e = SampleEntry();
  const JournalEntry* found = index->Find(e.family, e.pair_id, e.config);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->recall_at_gt, e.recall_at_gt);
  EXPECT_EQ(found->attempts, 3u);
  EXPECT_NE(index->Find(e.family, e.pair_id, "other"), nullptr);
  EXPECT_EQ(index->Find(e.family, e.pair_id, "nope"), nullptr);
  std::remove(path.c_str());
}

TEST(JournalIndexTest, TornFinalLineIsTolerated) {
  std::string path = TempPath("torn.jsonl");
  JournalEntry e = SampleEntry();
  std::string full = SerializeJournalEntry(e);
  {
    std::ofstream out(path);
    out << full << "\n";
    out << full.substr(0, full.size() / 2);  // the killed process's line
  }
  auto index = JournalIndex::Load(path);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->size(), 1u);
  EXPECT_NE(index->Find(e.family, e.pair_id, e.config), nullptr);
  std::remove(path.c_str());
}

TEST(JournalIndexTest, LaterDuplicateWins) {
  std::string path = TempPath("dup.jsonl");
  JournalEntry e = SampleEntry();
  {
    OutcomeJournal journal(path);
    journal.Append(e);
    e.recall_at_gt = 0.875;
    e.code = StatusCode::kOk;
    e.error.clear();
    journal.Append(e);
  }
  auto index = JournalIndex::Load(path);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->size(), 1u);
  const JournalEntry* found = index->Find(e.family, e.pair_id, e.config);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->recall_at_gt, 0.875);
  EXPECT_EQ(found->code, StatusCode::kOk);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Campaign-level resume semantics.

std::vector<DatasetPair> SmallSuite() {
  Table original = MakeTpcdiProspect(25, 99);
  PairSuiteOptions opt;
  opt.row_overlaps = {0.5};
  opt.column_overlaps = {0.5};
  opt.schema_noise_variants = false;
  opt.instance_noise_variants = false;
  return BuildFabricatedSuite(original, opt);
}

MethodFamily SmallFamily() {
  MethodFamily family = JaccardLevenshteinFamily();
  family.grid.resize(2);
  return family;
}

// Campaigns here run under a shared non-advancing FakeClock
// (CampaignOptions::clock), so timing fields — including the journaled
// runtime a resume replays — are deterministically zero and reports are
// compared unmodified. Replayed triples never reach Prepare, so
// artifact-cache counters legitimately differ between fresh and resumed
// campaigns; those live on the MetricsRegistry, not the report.
FakeClock& SharedFakeClock() {
  static FakeClock clock;
  return clock;
}

CampaignOptions ClockedOptions() {
  CampaignOptions opt;
  opt.clock = &SharedFakeClock();
  return opt;
}

MethodFamily AlwaysFailing(const MethodFamily& base) {
  FaultPlan plan;
  plan.always_fail = true;
  plan.message = "must never execute";
  MethodFamily wrapped{base.name, {}};
  for (const ConfiguredMatcher& cm : base.grid) {
    wrapped.grid.push_back(
        {cm.description,
         std::make_shared<FaultInjectingMatcher>(cm.matcher, plan)});
  }
  return wrapped;
}

TEST(CampaignResumeTest, CompleteJournalReplaysWithoutExecuting) {
  std::vector<DatasetPair> suite = SmallSuite();
  CampaignOptions opt = ClockedOptions();
  opt.num_threads = 2;
  opt.journal_path = TempPath("replay.jsonl");

  CampaignReport fresh = RunCampaignOnSuite(suite, {SmallFamily()}, opt);
  EXPECT_EQ(fresh.failed_experiments, 0u);

  // Same options, same journal — but every matcher now always fails. A
  // byte-identical report proves the rerun replayed the journal and
  // never invoked a matcher.
  CampaignReport resumed =
      RunCampaignOnSuite(suite, {AlwaysFailing(SmallFamily())}, opt);
  EXPECT_EQ(ToJson(resumed), ToJson(fresh));
  std::remove(opt.journal_path.c_str());
}

TEST(CampaignResumeTest, PartialJournalResumesToIdenticalReport) {
  std::vector<DatasetPair> suite = SmallSuite();
  CampaignOptions opt = ClockedOptions();
  opt.num_threads = 1;  // deterministic journal line order for truncation
  opt.journal_path = TempPath("partial_full.jsonl");
  CampaignReport fresh = RunCampaignOnSuite(suite, {SmallFamily()}, opt);
  std::string expected = ToJson(fresh);

  // Keep only the first half of the journal, plus a torn final line —
  // the on-disk state after a mid-campaign SIGKILL.
  std::vector<std::string> lines;
  {
    std::ifstream in(opt.journal_path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 2u);
  CampaignOptions resume_opt = opt;
  resume_opt.journal_path = TempPath("partial_cut.jsonl");
  {
    std::ofstream out(resume_opt.journal_path);
    for (size_t i = 0; i < lines.size() / 2; ++i) out << lines[i] << "\n";
    out << lines[lines.size() / 2].substr(0, 10);  // torn
  }

  CampaignReport resumed =
      RunCampaignOnSuite(suite, {SmallFamily()}, resume_opt);
  EXPECT_EQ(ToJson(resumed), expected);

  // The resumed journal is now itself complete: a third run replays it.
  CampaignReport replayed =
      RunCampaignOnSuite(suite, {AlwaysFailing(SmallFamily())}, resume_opt);
  EXPECT_EQ(ToJson(replayed), expected);
  std::remove(opt.journal_path.c_str());
  std::remove(resume_opt.journal_path.c_str());
}

TEST(CampaignResumeTest, QuarantinedFailuresAreNotReAttempted) {
  std::vector<DatasetPair> suite = SmallSuite();
  FaultPlan plan;
  plan.always_fail = true;
  CampaignOptions opt = ClockedOptions();
  opt.num_threads = 2;
  opt.policy.max_attempts = 2;
  opt.journal_path = TempPath("quarantine.jsonl");

  CampaignReport first =
      RunCampaignOnSuite(suite, {AlwaysFailing(SmallFamily())}, opt);
  EXPECT_EQ(first.failed_experiments, first.num_experiments);

  // Resume replays the quarantine records: identical taxonomy, and the
  // retry counter proves no new attempts were spent.
  CampaignReport resumed =
      RunCampaignOnSuite(suite, {AlwaysFailing(SmallFamily())}, opt);
  EXPECT_EQ(ToJson(resumed), ToJson(first));
  ASSERT_EQ(resumed.families.size(), 1u);
  EXPECT_EQ(resumed.families[0].retry_attempts,
            first.families[0].retry_attempts);
  std::remove(opt.journal_path.c_str());
}

}  // namespace
}  // namespace valentine
