#include "core/join.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

Table MakeLeft() {
  Table t("orders");
  Column id("customer_id", DataType::kString);
  Column amount("amount", DataType::kInt64);
  for (auto& [k, v] : std::vector<std::pair<std::string, int64_t>>{
           {"c1", 10}, {"c2", 20}, {"c3", 30}, {"cX", 40}}) {
    id.Append(Value::String(k));
    amount.Append(Value::Int(v));
  }
  EXPECT_TRUE(t.AddColumn(std::move(id)).ok());
  EXPECT_TRUE(t.AddColumn(std::move(amount)).ok());
  return t;
}

Table MakeRight() {
  Table t("customers");
  Column id("id", DataType::kString);
  Column city("city", DataType::kString);
  for (auto& [k, v] : std::vector<std::pair<std::string, std::string>>{
           {"c1", "boston"}, {"c2", "denver"}, {"c3", "austin"}}) {
    id.Append(Value::String(k));
    city.Append(Value::String(v));
  }
  EXPECT_TRUE(t.AddColumn(std::move(id)).ok());
  EXPECT_TRUE(t.AddColumn(std::move(city)).ok());
  return t;
}

TEST(HashJoinTest, InnerJoinMatchesRows) {
  auto joined = HashJoin(MakeLeft(), "customer_id", MakeRight(), "id");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 3u);  // cX has no partner
  EXPECT_EQ(joined->num_columns(), 3u);  // customer_id, amount, city
  auto city = joined->FindColumn("city");
  ASSERT_NE(city, nullptr);
  EXPECT_EQ((*city)[0].AsString(), "boston");
  EXPECT_EQ((*city)[2].AsString(), "austin");
}

TEST(HashJoinTest, LeftJoinPadsWithNulls) {
  JoinOptions opt;
  opt.type = JoinType::kLeft;
  auto joined = HashJoin(MakeLeft(), "customer_id", MakeRight(), "id", opt);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 4u);
  const Column* city = joined->FindColumn("city");
  ASSERT_NE(city, nullptr);
  EXPECT_TRUE((*city)[3].is_null());  // cX unmatched
}

TEST(HashJoinTest, MissingColumnsReported) {
  EXPECT_EQ(HashJoin(MakeLeft(), "nope", MakeRight(), "id").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(HashJoin(MakeLeft(), "customer_id", MakeRight(), "nope")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Table left("l");
  Column k("k", DataType::kString);
  k.Append(Value::Null());
  k.Append(Value::String("a"));
  ASSERT_TRUE(left.AddColumn(std::move(k)).ok());
  Table right("r");
  Column rk("k2", DataType::kString);
  rk.Append(Value::Null());
  rk.Append(Value::String("a"));
  Column payload("p", DataType::kInt64);
  payload.Append(Value::Int(1));
  payload.Append(Value::Int(2));
  ASSERT_TRUE(right.AddColumn(std::move(rk)).ok());
  ASSERT_TRUE(right.AddColumn(std::move(payload)).ok());
  auto joined = HashJoin(left, "k", right, "k2");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 1u);
  EXPECT_EQ((*joined->FindColumn("p"))[0].int_value(), 2);
}

TEST(HashJoinTest, NameCollisionPrefixed) {
  Table left("l");
  Column k("k", DataType::kString);
  Column shared("name", DataType::kString);
  k.Append(Value::String("x"));
  shared.Append(Value::String("left_value"));
  ASSERT_TRUE(left.AddColumn(std::move(k)).ok());
  ASSERT_TRUE(left.AddColumn(std::move(shared)).ok());
  Table right("r");
  Column rk("k", DataType::kString);
  Column rshared("name", DataType::kString);
  rk.Append(Value::String("x"));
  rshared.Append(Value::String("right_value"));
  ASSERT_TRUE(right.AddColumn(std::move(rk)).ok());
  ASSERT_TRUE(right.AddColumn(std::move(rshared)).ok());
  auto joined = HashJoin(left, "k", right, "k");
  ASSERT_TRUE(joined.ok());
  ASSERT_NE(joined->FindColumn("right_name"), nullptr);
  EXPECT_EQ((*joined->FindColumn("right_name"))[0].AsString(),
            "right_value");
}

TEST(HashJoinTest, DuplicateRightKeysFirstWins) {
  Table left("l");
  Column k("k", DataType::kString);
  k.Append(Value::String("dup"));
  ASSERT_TRUE(left.AddColumn(std::move(k)).ok());
  Table right("r");
  Column rk("k2", DataType::kString);
  rk.Append(Value::String("dup"));
  rk.Append(Value::String("dup"));
  Column payload("p", DataType::kInt64);
  payload.Append(Value::Int(1));
  payload.Append(Value::Int(2));
  ASSERT_TRUE(right.AddColumn(std::move(rk)).ok());
  ASSERT_TRUE(right.AddColumn(std::move(payload)).ok());
  auto joined = HashJoin(left, "k", right, "k2");
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->num_rows(), 1u);
  EXPECT_EQ((*joined->FindColumn("p"))[0].int_value(), 1);
}

TEST(UnionAllTest, AppendsRowsWithAlignment) {
  Table top("t");
  Column a("name", DataType::kString);
  a.Append(Value::String("ann"));
  ASSERT_TRUE(top.AddColumn(std::move(a)).ok());
  Table bottom("b");
  Column b("full_name", DataType::kString);
  b.Append(Value::String("bob"));
  b.Append(Value::String("cid"));
  ASSERT_TRUE(bottom.AddColumn(std::move(b)).ok());

  auto merged = UnionAll(top, bottom, {{"name", "full_name"}});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_rows(), 3u);
  EXPECT_EQ(merged->column(0).name(), "name");
  EXPECT_EQ(merged->column(0)[2].AsString(), "cid");
}

TEST(UnionAllTest, TypeWidening) {
  Table top("t");
  Column a("v", DataType::kInt64);
  a.Append(Value::Int(1));
  ASSERT_TRUE(top.AddColumn(std::move(a)).ok());
  Table bottom("b");
  Column b("v2", DataType::kString);
  b.Append(Value::String("x"));
  ASSERT_TRUE(bottom.AddColumn(std::move(b)).ok());
  auto merged = UnionAll(top, bottom, {{"v", "v2"}});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->column(0).type(), DataType::kString);
}

TEST(UnionAllTest, ErrorsOnMissingColumns) {
  Table t("t");
  Column c("c", DataType::kString);
  c.Append(Value::String("v"));
  ASSERT_TRUE(t.AddColumn(std::move(c)).ok());
  EXPECT_FALSE(UnionAll(t, t, {{"c", "nope"}}).ok());
  EXPECT_FALSE(UnionAll(t, t, {}).ok());
}

}  // namespace
}  // namespace valentine
