#include "text/normalizer.h"

#include <gtest/gtest.h>

#include <memory>

#include "datasets/wikidata.h"
#include "matchers/jaccard_levenshtein.h"
#include "metrics/metrics.h"

namespace valentine {
namespace {

TEST(NormalizeValueTest, CasefoldAndWhitespace) {
  EXPECT_EQ(NormalizeValue("  Elvis   PRESLEY "), "elvis presley");
}

TEST(NormalizeValueTest, PunctuationStripped) {
  EXPECT_EQ(NormalizeValue("Presley, Elvis."), "presley elvis");
}

TEST(NormalizeValueTest, LongDateToIso) {
  EXPECT_EQ(NormalizeValue("March 12, 1956"), "1956-03-12");
  EXPECT_EQ(NormalizeValue("march 5 2001"), "2001-03-05");
  EXPECT_EQ(NormalizeValue("December 31, 1999"), "1999-12-31");
}

TEST(NormalizeValueTest, NonDatesUntouchedByDateRule) {
  EXPECT_EQ(NormalizeValue("mayhem 12"), "mayhem 12");
  EXPECT_EQ(NormalizeValue("March of the penguins"),
            "march of the penguins");
}

TEST(NormalizeValueTest, UrlDecorationStripped) {
  // Scheme and "www." go first; the later punctuation pass also drops
  // the dots — what matters is that both encodings land on one form.
  EXPECT_EQ(NormalizeValue("https://www.elvis.com/"),
            NormalizeValue("elvis.com"));
  EXPECT_EQ(NormalizeValue("http://example.org"),
            NormalizeValue("example.org"));
  EXPECT_EQ(NormalizeValue("www.plain.net"), NormalizeValue("plain.net"));
  NormalizeOptions keep_punct;
  keep_punct.strip_punctuation = false;
  EXPECT_EQ(NormalizeValue("https://www.elvis.com/", keep_punct),
            "elvis.com");
}

TEST(NormalizeValueTest, ListValuesSorted) {
  // Differently-ordered lists canonicalize identically.
  EXPECT_EQ(NormalizeValue("Zoe Q; Adam B; Mia K"),
            NormalizeValue("Adam B; Mia K; Zoe Q"));
  NormalizeOptions keep_punct;
  keep_punct.strip_punctuation = false;
  EXPECT_EQ(NormalizeValue("Zoe Q; Adam B; Mia K", keep_punct),
            "adam b; mia k; zoe q");
}

TEST(NormalizeValueTest, OptionsDisable) {
  NormalizeOptions opt;
  opt.casefold = false;
  opt.strip_punctuation = false;
  EXPECT_EQ(NormalizeValue("Hello, World", opt), "Hello, World");
}

TEST(NormalizeValueTest, IsoDatesStayIso) {
  EXPECT_EQ(NormalizeValue("1956-03-12"), "1956-03-12");
}

TEST(NormalizeTableTest, OnlyStringCellsTouched) {
  Table t("t");
  Column s("s", DataType::kString);
  s.Append(Value::String("ABC"));
  s.Append(Value::Null());
  Column n("n", DataType::kInt64);
  n.Append(Value::Int(5));
  n.Append(Value::Int(6));
  ASSERT_TRUE(t.AddColumn(std::move(s)).ok());
  ASSERT_TRUE(t.AddColumn(std::move(n)).ok());
  Table out = NormalizeTable(t);
  EXPECT_EQ(out.column(0)[0].AsString(), "abc");
  EXPECT_TRUE(out.column(0)[1].is_null());
  EXPECT_EQ(out.column(1)[0].int_value(), 5);
}

TEST(NormalizingMatcherTest, RecoversSemanticJoinRecall) {
  // The WikiData semantically-joinable pair encodes six columns
  // differently; normalization recovers part of the value overlap, so
  // the baseline must not get worse and should typically improve.
  auto pairs = MakeWikidataPairs(200, 7);
  const DatasetPair& sem = pairs[3];
  ASSERT_EQ(sem.scenario, Scenario::kSemanticallyJoinable);

  JaccardLevenshteinOptions o;
  o.threshold = 0.0;  // strict equality isolates the encoding gap
  o.max_distinct_values = 150;
  double plain = RecallAtGroundTruth(
      JaccardLevenshteinMatcher(o).Match(sem.source, sem.target),
      sem.ground_truth);
  NormalizingMatcher normalized(
      std::make_unique<JaccardLevenshteinMatcher>(o));
  double with_norm = RecallAtGroundTruth(
      normalized.Match(sem.source, sem.target), sem.ground_truth);
  EXPECT_GE(with_norm, plain);
}

TEST(NormalizingMatcherTest, DelegatesMetadata) {
  NormalizingMatcher m(std::make_unique<JaccardLevenshteinMatcher>());
  EXPECT_EQ(m.Name(), "Normalized(JaccardLevenshtein)");
  EXPECT_EQ(m.Category(), MatcherCategory::kInstanceBased);
}

}  // namespace
}  // namespace valentine
