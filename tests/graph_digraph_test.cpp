#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace valentine {
namespace {

TEST(DigraphTest, AddNodesAndEdges) {
  Digraph g;
  NodeId a = g.AddNode("a", "table");
  NodeId b = g.AddNode("b", "column");
  EXPECT_EQ(g.num_nodes(), 2u);
  g.AddEdge(a, b, "column");
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.name(a), "a");
  EXPECT_EQ(g.kind(b), "column");
}

TEST(DigraphTest, OutAndInEdges) {
  Digraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(a, b, "x");
  g.AddEdge(a, c, "y");
  ASSERT_EQ(g.OutEdges(a).size(), 2u);
  EXPECT_EQ(g.OutEdges(a)[0].label, "x");
  EXPECT_EQ(g.OutEdges(a)[0].target, b);
  ASSERT_EQ(g.InEdges(c).size(), 1u);
  EXPECT_EQ(g.InEdges(c)[0].target, a);
  EXPECT_TRUE(g.OutEdges(b).empty());
}

TEST(DigraphTest, GetOrAddNodeDeduplicates) {
  Digraph g;
  NodeId a = g.GetOrAddNode("x", "value");
  NodeId b = g.GetOrAddNode("x", "value");
  EXPECT_EQ(a, b);
  NodeId c = g.GetOrAddNode("x", "cid");  // different kind -> new node
  EXPECT_NE(a, c);
  NodeId d = g.GetOrAddNode("y", "value");
  EXPECT_NE(a, d);
  EXPECT_EQ(g.num_nodes(), 3u);
}

TEST(DigraphTest, GetOrAddDistinguishesKindNameBoundary) {
  Digraph g;
  // ("ab", "c") must differ from ("a", "bc").
  NodeId a = g.GetOrAddNode("ab", "c");
  NodeId b = g.GetOrAddNode("a", "bc");
  EXPECT_NE(a, b);
}

TEST(DigraphTest, NeighborsBothDirections) {
  Digraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(a, b, "x");
  g.AddEdge(c, a, "y");
  auto n = g.Neighbors(a);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0], b);
  EXPECT_EQ(n[1], c);
}

TEST(DigraphTest, DegreeWithLabel) {
  Digraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(a, b, "t");
  g.AddEdge(a, c, "t");
  g.AddEdge(a, b, "u");
  EXPECT_EQ(g.OutDegreeWithLabel(a, "t"), 2u);
  EXPECT_EQ(g.OutDegreeWithLabel(a, "u"), 1u);
  EXPECT_EQ(g.OutDegreeWithLabel(a, "v"), 0u);
  EXPECT_EQ(g.InDegreeWithLabel(b, "t"), 1u);
  EXPECT_EQ(g.InDegreeWithLabel(b, "u"), 1u);
}

TEST(DigraphTest, MultiEdgesAllowed) {
  Digraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(a, b, "x");
  g.AddEdge(a, b, "x");
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutDegreeWithLabel(a, "x"), 2u);
}

}  // namespace
}  // namespace valentine
