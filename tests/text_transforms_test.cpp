// Dedicated tests for the schema-noise transformation rules (paper §IV):
// table-name prefixing, abbreviation, vowel dropping, and their
// compositions.

#include "text/transforms.h"

#include <gtest/gtest.h>

#include <cctype>

#include "text/tokenizer.h"

namespace valentine {
namespace {

TEST(PrefixRuleTest, Basic) {
  EXPECT_EQ(PrefixWithTable("name", "clients"), "clients_name");
  EXPECT_EQ(PrefixWithTable("a_b", "t"), "t_a_b");
}

TEST(AbbreviateRuleTest, TruncatesAndConcatenates) {
  EXPECT_EQ(AbbreviateName("address_line1"), "addlin1");
  EXPECT_EQ(AbbreviateName("customer"), "cus");
  EXPECT_EQ(AbbreviateName("id"), "id");  // short tokens untouched
  EXPECT_EQ(AbbreviateName("postal_code", 4), "postcode");
}

TEST(AbbreviateRuleTest, EmptyAndDegenerate) {
  EXPECT_EQ(AbbreviateName(""), "");
  EXPECT_EQ(AbbreviateName("___"), "___");  // no tokens -> unchanged
}

TEST(DropVowelsRuleTest, KeepsLeadingAndConsonants) {
  EXPECT_EQ(DropVowels("income"), "incm");
  EXPECT_EQ(DropVowels("area"), "ar");  // leading vowel kept
  EXPECT_EQ(DropVowels("xyz"), "xyz");
  EXPECT_EQ(DropVowels("line1"), "ln_1");  // digits kept, token split
}

TEST(ComposedRulesTest, AllSixRulesDistinctWhereExpected) {
  const std::string name = "customer_address";
  const std::string table = "orders";
  std::set<std::string> outputs;
  for (int rule = 0; rule < 6; ++rule) {
    std::string out = ApplySchemaNoiseRule(name, table, rule);
    EXPECT_FALSE(out.empty()) << rule;
    outputs.insert(out);
  }
  // All six rules give different surface forms for a rich enough name.
  EXPECT_EQ(outputs.size(), 6u);
}

TEST(ComposedRulesTest, RuleIndexWraps) {
  EXPECT_EQ(ApplySchemaNoiseRule("a_b", "t", 0),
            ApplySchemaNoiseRule("a_b", "t", 6));
}

// Property sweep: every rule output is a usable identifier — non-empty,
// deterministic, and tokenizable.
class TransformPropertyTest
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(TransformPropertyTest, OutputsAreUsableIdentifiers) {
  auto [name, rule] = GetParam();
  std::string out1 = ApplySchemaNoiseRule(name, "tbl", rule);
  std::string out2 = ApplySchemaNoiseRule(name, "tbl", rule);
  EXPECT_EQ(out1, out2);
  EXPECT_FALSE(out1.empty());
  EXPECT_FALSE(TokenizeIdentifier(out1).empty());
  for (char c : out1) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_')
        << out1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    NamesAndRules, TransformPropertyTest,
    ::testing::Combine(
        ::testing::Values("income", "customer_address", "addressLine1",
                          "NET_WORTH", "a", "sprint_number"),
        ::testing::Range(0, 6)));

}  // namespace
}  // namespace valentine
