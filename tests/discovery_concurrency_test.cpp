// Thread-safety and determinism of DiscoveryEngine queries (discovery.h):
// concurrent FindJoinable/FindUnionable on a const engine must be safe
// (the shared ArtifactCache is the only mutable state) and byte-identical
// to a sequential run — and the prepared fast path must serialize
// identically to the monolithic per-pair path. Runs under TSan via the
// tsan ctest label.

#include "discovery/discovery.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/chembl.h"
#include "datasets/opendata.h"
#include "datasets/tpcdi.h"
#include "fabrication/fabricator.h"
#include "matchers/jaccard_levenshtein.h"

namespace valentine {
namespace {

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Full-fidelity serialization of a result list: any divergence in
/// ranking, score, or evidence shows up as a byte difference.
std::string Serialize(const std::vector<DiscoveryResult>& results) {
  std::string out;
  for (const DiscoveryResult& r : results) {
    out += r.table_name + "=" + Num(r.score) + "[";
    for (const Match& m : r.evidence) {
      out += m.source.ToString() + "~" + m.target.ToString() + ":" +
             Num(m.score) + ";";
    }
    out += "]\n";
  }
  return out;
}

void FillEngine(DiscoveryEngine* engine, Table* query) {
  Table prospect = MakeTpcdiProspect(120, 2026);
  FabricationOptions fab;
  fab.scenario = Scenario::kJoinable;
  fab.column_overlap = 0.4;
  fab.seed = 4;
  DatasetPair split = FabricateDatasetPair(prospect, fab).ValueOrDie();
  *query = split.source;
  query->set_name("query");
  Table partner = split.target;
  partner.set_name("planted_partner");
  ASSERT_TRUE(engine->AddTable(std::move(partner)).ok());
  ASSERT_TRUE(engine->AddTable(MakeOpenDataTable(120, 4711)).ok());
  ASSERT_TRUE(engine->AddTable(MakeChemblAssays(120, 99)).ok());
}

/// Wraps a matcher but hides its pipeline overrides: only
/// MatchWithContext is forwarded, so the engine degrades to the legacy
/// monolithic per-pair path (the default Score falls through to it).
class MonolithicOnly : public ColumnMatcher {
 public:
  std::string Name() const override { return inner_.Name(); }
  MatcherCategory Category() const override { return inner_.Category(); }
  std::vector<MatchType> Capabilities() const override {
    return inner_.Capabilities();
  }
  [[nodiscard]] Result<MatchResult> MatchWithContext(
      const Table& source, const Table& target,
      const MatchContext& context) const override {
    return inner_.Match(source, target, context);
  }

 private:
  JaccardLevenshteinMatcher inner_;
};

TEST(DiscoveryDeterminismTest, PreparedPathMatchesMonolithicBytes) {
  DiscoveryOptions prepared_opt;
  prepared_opt.matcher = std::make_unique<JaccardLevenshteinMatcher>();
  DiscoveryEngine prepared_engine(std::move(prepared_opt));
  Table query;
  FillEngine(&prepared_engine, &query);

  DiscoveryOptions monolithic_opt;
  monolithic_opt.matcher = std::make_unique<MonolithicOnly>();
  DiscoveryEngine monolithic_engine(std::move(monolithic_opt));
  Table same_query;
  FillEngine(&monolithic_engine, &same_query);

  EXPECT_EQ(Serialize(prepared_engine.FindJoinable(query, 5)),
            Serialize(monolithic_engine.FindJoinable(same_query, 5)));
  EXPECT_EQ(Serialize(prepared_engine.FindUnionable(query, 5)),
            Serialize(monolithic_engine.FindUnionable(same_query, 5)));
}

TEST(DiscoveryDeterminismTest, WarmCacheMatchesColdBytes) {
  DiscoveryEngine engine;
  Table query;
  FillEngine(&engine, &query);
  const std::string cold_join = Serialize(engine.FindJoinable(query, 5));
  const std::string cold_union = Serialize(engine.FindUnionable(query, 5));
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(Serialize(engine.FindJoinable(query, 5)), cold_join);
    EXPECT_EQ(Serialize(engine.FindUnionable(query, 5)), cold_union);
  }
}

TEST(DiscoveryDeterminismTest, AddTableInvalidatesCachedArtifacts) {
  // Artifacts borrow table storage, which may move when the repository
  // vector grows; a Find after AddTable must not read stale artifacts.
  DiscoveryEngine engine;
  Table query;
  FillEngine(&engine, &query);
  (void)engine.FindUnionable(query, 5);  // warm the cache

  Table extra = MakeOpenDataTable(80, 77);
  extra.set_name("late_arrival");
  ASSERT_TRUE(engine.AddTable(extra).ok());
  DiscoveryEngine fresh;
  Table same_query;
  FillEngine(&fresh, &same_query);
  ASSERT_TRUE(fresh.AddTable(extra).ok());
  EXPECT_EQ(Serialize(engine.FindUnionable(query, 6)),
            Serialize(fresh.FindUnionable(same_query, 6)));
  EXPECT_EQ(Serialize(engine.FindJoinable(query, 6)),
            Serialize(fresh.FindJoinable(same_query, 6)));
}

// Concurrent queries on a const engine: every thread's bytes must equal
// the sequential baseline — both cold (threads race to build artifacts)
// and warm (threads serve from the shared cache).
TEST(DiscoveryConcurrencyTest, ConcurrentFindsMatchSequentialBytes) {
  DiscoveryEngine engine;
  Table query;
  FillEngine(&engine, &query);

  DiscoveryEngine baseline_engine;
  Table baseline_query;
  FillEngine(&baseline_engine, &baseline_query);
  const std::string expected_join =
      Serialize(baseline_engine.FindJoinable(baseline_query, 5));
  const std::string expected_union =
      Serialize(baseline_engine.FindUnionable(baseline_query, 5));

  constexpr size_t kThreads = 8;
  for (int repeat = 0; repeat < 2; ++repeat) {  // cold then warm cache
    std::vector<std::string> joins(kThreads), unions(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const DiscoveryEngine& const_engine = engine;
        joins[t] = Serialize(const_engine.FindJoinable(query, 5));
        unions[t] = Serialize(const_engine.FindUnionable(query, 5));
      });
    }
    for (auto& t : threads) t.join();
    for (size_t t = 0; t < kThreads; ++t) {
      EXPECT_EQ(joins[t], expected_join)
          << "FindJoinable diverged in thread " << t << " repeat " << repeat;
      EXPECT_EQ(unions[t], expected_union)
          << "FindUnionable diverged in thread " << t << " repeat " << repeat;
    }
  }
}

}  // namespace
}  // namespace valentine
